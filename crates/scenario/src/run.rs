//! The scenario runner: compiles a [`ScenarioSpec`] into a live
//! [`Network`] of [`ControlNode`]s, drives its phases from the sim
//! clock, and measures per-protocol delivery through partitions.
//!
//! Every router runs the real control-plane stack — routes come from
//! HELLO adjacencies, LSA flooding, and SPF, never from hand-written
//! FIBs. The producer's edge router announces IPv4/IPv6/name/XIA
//! reachability at its host port; the rest of the graph learns all of it
//! purely by flooding. Partition windows are scheduled
//! `link_down`/`link_up` events on every uplink of that edge router, so
//! the producer island genuinely disappears mid-run while traffic
//! continues — which is exactly where NDN's in-network caches and IPv4's
//! lack of them diverge.

use crate::script::{PhaseSpec, ScenarioProtocol, ScenarioSpec};
use dip_controlplane::{AgentConfig, ControlAgent, ControlNode};
use dip_core::{border, DipRouter};
use dip_crypto::DetRng;
use dip_fnops::DropReason;
use dip_protocols::opt::{opt_triples, OptSession};
use dip_protocols::{ip, ndn, xia};
use dip_sim::engine::{Host, Network, NodeId};
use dip_sim::SimTime;
use dip_tables::{Pit, XiaNextHop};
use dip_wire::ipv4::{Ipv4Addr, Ipv4Repr};
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::opt::OPT_BLOCK_LEN;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::xia::{Dag, DagNode, Xid, XidType};
use dip_workload::Zipf;
use std::collections::HashMap;

/// Control tick (= HELLO) period, matching [`AgentConfig::default`].
const HELLO_TICK: SimTime = 50_000;
/// Host attachment latency (virtual ns).
const HOST_LINK_NS: u64 = 1_000;

/// Per-protocol traffic accounting for one phase.
#[derive(Debug, Clone)]
pub struct ProtocolCount {
    /// Protocol label ([`ScenarioProtocol::label`]).
    pub protocol: &'static str,
    /// Requests injected during the phase.
    pub injected: u64,
    /// Requests whose payload (or data) reached the destination
    /// application — for OPT, *verified* deliveries only.
    pub delivered: u64,
}

/// What one phase measured.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name from the spec.
    pub name: String,
    /// Phase start (virtual ns).
    pub start: SimTime,
    /// Scheduled phase end (the event queue fully drains past it).
    pub end: SimTime,
    /// Partition window length, if this phase opened one.
    pub partition_window: Option<SimTime>,
    /// Per-protocol injected/delivered counts.
    pub traffic: Vec<ProtocolCount>,
    /// Content-store answers during the phase (any router).
    pub cache_hits: u64,
    /// Nonzero drop counts by reason label.
    pub drops: Vec<(String, u64)>,
    /// Packets lost to downed/faulty links during the phase.
    pub link_dropped: u64,
    /// Live PIT entries across all routers at phase end (post-sweep).
    pub pit_entries: u64,
    /// PIT entries aged out during the phase (data-path `PitExpired`
    /// consumes plus the end-of-phase garbage-collection sweep).
    pub pit_expired_evictions: u64,
    /// Cached objects across all routers at phase end.
    pub cs_entries: u64,
    /// Largest per-node unacked-LSA retransmit backlog at phase end.
    pub retransmit_depth_max: u64,
    /// For partition phases: heal time → first IPv4 delivery whose
    /// request was injected after the heal. `None` when not measurable.
    pub reconvergence_ns: Option<u64>,
}

impl PhaseReport {
    /// Injected count for a protocol label (0 when absent).
    pub fn injected(&self, protocol: &str) -> u64 {
        self.traffic.iter().find(|t| t.protocol == protocol).map_or(0, |t| t.injected)
    }

    /// Delivered count for a protocol label (0 when absent).
    pub fn delivered(&self, protocol: &str) -> u64 {
        self.traffic.iter().find(|t| t.protocol == protocol).map_or(0, |t| t.delivered)
    }

    /// delivered / injected, or `None` when the protocol sent nothing.
    pub fn delivery_fraction(&self, protocol: &str) -> Option<f64> {
        let injected = self.injected(protocol);
        (injected > 0).then(|| self.delivered(protocol) as f64 / injected as f64)
    }
}

/// The full result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name from the spec.
    pub name: String,
    /// Topology label (e.g. `fat_tree(k=12)`).
    pub topology: String,
    /// Router count.
    pub routers: usize,
    /// Link count (router-router; host links excluded).
    pub links: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether every router's LSDB held every origin after the initial
    /// convergence segment.
    pub converged: bool,
    /// Per-phase measurements, in phase order.
    pub phases: Vec<PhaseReport>,
    /// SPF recomputations published network-wide over the whole run.
    pub spf_runs: u64,
    /// Samples in the convergence-time histogram (> 0 once any topology
    /// change has been absorbed).
    pub convergence_samples: u64,
    /// `dip_packets_total` at the end of the run.
    pub accounted: u64,
    /// `dip_node_sent_total` at the end of the run.
    pub sent: u64,
    /// `dip_link_dropped_total` at the end of the run.
    pub link_dropped: u64,
    /// The network-wide accounting identity
    /// `accounted == sent - link_dropped`, asserted over every phase,
    /// partitions included.
    pub identity_ok: bool,
    /// Legacy IPv4 packets for which `decap(encap(pkt)) == pkt` held.
    pub legacy_roundtrips: u64,
    /// FNV-1a digest over every integer counter above — two runs of the
    /// same spec must produce the same value (byte determinism).
    pub fingerprint: u64,
}

impl ScenarioReport {
    /// The phase named `name`, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Renders the report as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2_048);
        s.push('{');
        push_str_field(&mut s, "scenario", &self.name);
        push_str_field(&mut s, "topology", &self.topology);
        push_u64_field(&mut s, "routers", self.routers as u64);
        push_u64_field(&mut s, "links", self.links as u64);
        push_u64_field(&mut s, "seed", self.seed);
        push_bool_field(&mut s, "converged", self.converged);
        s.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_str_field(&mut s, "name", &p.name);
            push_u64_field(&mut s, "start_ns", p.start);
            push_u64_field(&mut s, "end_ns", p.end);
            match p.partition_window {
                Some(w) => push_u64_field(&mut s, "partition_window_ns", w),
                None => s.push_str("\"partition_window_ns\":null,"),
            }
            s.push_str("\"traffic\":[");
            for (j, t) in p.traffic.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let fraction = p.delivery_fraction(t.protocol).unwrap_or(0.0);
                s.push_str(&format!(
                    "{{\"protocol\":\"{}\",\"injected\":{},\"delivered\":{},\"delivery_fraction\":{:.4}}}",
                    t.protocol, t.injected, t.delivered, fraction
                ));
            }
            s.push_str("],");
            push_u64_field(&mut s, "cache_hits", p.cache_hits);
            s.push_str("\"drops\":{");
            for (j, (reason, n)) in p.drops.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{reason}\":{n}"));
            }
            s.push_str("},");
            push_u64_field(&mut s, "link_dropped", p.link_dropped);
            push_u64_field(&mut s, "pit_entries", p.pit_entries);
            push_u64_field(&mut s, "pit_expired_evictions", p.pit_expired_evictions);
            push_u64_field(&mut s, "cs_entries", p.cs_entries);
            push_u64_field(&mut s, "retransmit_depth_max", p.retransmit_depth_max);
            match p.reconvergence_ns {
                Some(ns) => s.push_str(&format!("\"reconvergence_ns\":{ns}")),
                None => s.push_str("\"reconvergence_ns\":null"),
            }
            s.push('}');
        }
        s.push_str("],");
        push_u64_field(&mut s, "spf_runs", self.spf_runs);
        push_u64_field(&mut s, "convergence_samples", self.convergence_samples);
        push_u64_field(&mut s, "accounted", self.accounted);
        push_u64_field(&mut s, "sent", self.sent);
        push_u64_field(&mut s, "link_dropped", self.link_dropped);
        push_bool_field(&mut s, "identity_ok", self.identity_ok);
        push_u64_field(&mut s, "legacy_roundtrips", self.legacy_roundtrips);
        s.push_str(&format!("\"fingerprint\":\"{:016x}\"", self.fingerprint));
        s.push('}');
        s
    }
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push_str(&format!("\"{key}\":\"{value}\","));
}

fn push_u64_field(s: &mut String, key: &str, value: u64) {
    s.push_str(&format!("\"{key}\":{value},"));
}

fn push_bool_field(s: &mut String, key: &str, value: bool) {
    s.push_str(&format!("\"{key}\":{value},"));
}

/// One point of a partition-length sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Partition window length (virtual ns).
    pub window: SimTime,
    /// The full report of the fresh network run at this window.
    pub report: ScenarioReport,
}

// ---------------------------------------------------------------------
// Link-admin wrappers.
//
// `diplint` pins raw `link_down` / `link_up` / scheduled variants to the
// sim and scenario crates; any other layer (benches, experiment drivers)
// scripts outages through these.

/// Immediately severs both directions of the link on `node.port`.
pub fn sever_link(net: &mut Network, node: NodeId, port: u32) {
    net.link_down(node, port);
}

/// Immediately restores both directions of the link on `node.port`.
pub fn restore_link(net: &mut Network, node: NodeId, port: u32) {
    net.link_up(node, port);
}

/// Schedules a full outage window `[down_at, up_at)` on `node.port`.
pub fn schedule_outage(
    net: &mut Network,
    down_at: SimTime,
    up_at: SimTime,
    node: NodeId,
    port: u32,
) {
    net.schedule_link_down(down_at, node, port);
    net.schedule_link_up(up_at, node, port);
}

// ---------------------------------------------------------------------
// The compiled scenario.

struct Built {
    net: Network,
    routers: Vec<NodeId>,
    consumer_router: usize,
    consumer_host: NodeId,
    producer_host: NodeId,
    /// `(endpoint, port)` of every router-router link at the producer's
    /// edge router — the set a partition window takes down.
    producer_uplinks: Vec<(NodeId, u32)>,
    names: Vec<Name>,
    dag: Dag,
    dst4: Ipv4Addr,
    src4: Ipv4Addr,
    dst6: Ipv6Addr,
    src6: Ipv6Addr,
    links: usize,
}

fn control_node(net: &mut Network, id: NodeId) -> &mut ControlNode<DipRouter> {
    net.router_node_mut(id)
        .expect("scenario node is a router")
        .as_any_mut()
        .downcast_mut::<ControlNode<DipRouter>>()
        .expect("scenario routers are ControlNode<DipRouter>")
}

fn catalog_payload(i: usize, payload: usize) -> Vec<u8> {
    let mut bytes = format!("obj-{i}-").into_bytes();
    bytes.resize(bytes.len().max(payload), b'x');
    bytes
}

fn build(spec: &ScenarioSpec) -> Built {
    let topo = spec.topology.generate(spec.seed);
    assert!(topo.edge_routers.len() >= 2, "scenario needs two host attachment points");
    let consumer_router = topo.edge_routers[0];
    let producer_router = *topo.edge_routers.last().expect("nonempty edge set");
    assert_ne!(consumer_router, producer_router);

    // Assign ports in link order; hosts get the next free port after.
    let mut next_port = vec![0u32; topo.routers];
    let mut wiring = Vec::with_capacity(topo.links.len());
    for l in &topo.links {
        let pa = next_port[l.a];
        next_port[l.a] += 1;
        let pb = next_port[l.b];
        next_port[l.b] += 1;
        wiring.push((l.a, pa, l.b, pb, l.class.latency_ns()));
    }

    let names: Vec<Name> =
        (0..spec.catalog).map(|i| Name::parse(&format!("/scn/content/{i}"))).collect();
    let movie = Xid::derive(b"scenario-movie");
    let dag = Dag::direct_with_fallback(
        DagNode::sink(XidType::Cid, movie),
        Xid::derive(b"scenario-ad"),
        Xid::derive(b"scenario-hid"),
    )
    .expect("static DAG");
    let dst4 = Ipv4Addr::new(10, 0, 0, 7);
    let src4 = Ipv4Addr::new(192, 168, 0, 1);
    let dst6 = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 9]);
    let src6 = Ipv6Addr::new([0xfdbb, 0, 0, 0, 0, 0, 0, 1]);

    let mut net = Network::new(spec.seed);
    // Internet-scale graphs flood O(routers · links) control events; the
    // default valve is sized for protocol microbenchmarks.
    net.max_events = 50_000_000;

    let mut routers = Vec::with_capacity(topo.routers);
    for (i, &ports) in next_port.iter().enumerate() {
        let id = (i + 1) as u64;
        let mut router = DipRouter::new(id, [id as u8; 16]);
        // Table sizing must precede add_router_node: attaching wires the
        // PIT eviction counter into the network registry.
        router.state_mut().pit = Pit::new(spec.pit_capacity, spec.pit_ttl);
        if spec.content_store > 0 {
            router.state_mut().enable_content_store(spec.content_store);
        }
        let agent_ports: Vec<u32> = (0..ports).collect();
        let mut node =
            ControlNode::new(router, ControlAgent::new(id, agent_ports, AgentConfig::default()));
        if i == producer_router {
            let host_port = ports;
            node.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, host_port);
            node.agent_mut().announce_v6(
                Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
                16,
                host_port,
            );
            for name in &names {
                node.agent_mut().announce_name(name.clone(), host_port);
            }
            node.agent_mut().announce_xia(XidType::Cid, movie, XiaNextHop::Port(host_port));
        }
        routers.push(net.add_router_node(Box::new(node)));
    }

    let consumer_host = net.add_host(Host::consumer(1_000));
    let mut contents = HashMap::new();
    for (i, name) in names.iter().enumerate() {
        contents.insert(name.compact32(), catalog_payload(i, spec.payload));
    }
    let producer_host = net.add_host(Host::producer(2_000, contents));

    let mut producer_uplinks = Vec::new();
    for &(a, pa, b, pb, latency) in &wiring {
        net.connect(routers[a], pa, routers[b], pb, latency);
        if a == producer_router {
            producer_uplinks.push((routers[a], pa));
        } else if b == producer_router {
            producer_uplinks.push((routers[b], pb));
        }
    }
    net.connect(
        consumer_host,
        0,
        routers[consumer_router],
        next_port[consumer_router],
        HOST_LINK_NS,
    );
    net.connect(
        producer_host,
        0,
        routers[producer_router],
        next_port[producer_router],
        HOST_LINK_NS,
    );

    Built {
        net,
        routers,
        consumer_router,
        consumer_host,
        producer_host,
        producer_uplinks,
        names,
        dag,
        dst4,
        src4,
        dst6,
        src6,
        links: topo.links.len(),
    }
}

/// Lets the control plane converge from a cold start: HELLO adjacency
/// formation, full LSA flooding, SPF on every node. Returns whether
/// every router's LSDB ended up holding every origin.
fn converge(built: &mut Built) -> bool {
    // Flooding is event-driven and fast; the horizon just needs enough
    // tick rounds for hellos, triggered floods, and one retransmit pass.
    let horizon = 400_000 + built.routers.len() as u64 * 2_000;
    for round in 0..3 {
        let start = built.net.now() + if round == 0 { 0 } else { HELLO_TICK };
        for &r in &built.routers.clone() {
            built.net.schedule_control_ticks(r, start, HELLO_TICK, start + horizon);
        }
        built.net.run();
        if lsdb_full(built) {
            return true;
        }
    }
    lsdb_full(built)
}

fn lsdb_full(built: &mut Built) -> bool {
    let want = built.routers.len();
    let ids = built.routers.clone();
    ids.iter().all(|&r| control_node(&mut built.net, r).agent().lsdb_len() == want)
}

/// An OPT packet routed by the control-plane-installed FIB: the OPT
/// triples plus a `Match32` over the IPv4 destination after the block.
fn routed_opt(session: &OptSession, payload: &[u8], timestamp: u32, dst: Ipv4Addr) -> DipRepr {
    let block = session.initial_block(payload, timestamp);
    let mut locations = block.to_bytes().to_vec();
    locations.extend_from_slice(&dst.0);
    let mut fns = opt_triples(0);
    fns.push(FnTriple::router((OPT_BLOCK_LEN * 8) as u16, 32, FnKey::Match32));
    DipRepr { next_header: 0, hop_limit: 64, parallel: false, fns, locations }
}

/// Walks the converged IPv4 forwarding state hop by hop from the
/// consumer's edge router toward `dst4`, collecting router secrets in
/// path order — the sequence a path-bound OPT session must commit to.
fn trace_v4_path(built: &mut Built) -> Option<Vec<[u8; 16]>> {
    let mut secrets = Vec::new();
    let mut node = built.routers[built.consumer_router];
    for _ in 0..64 {
        let cn = control_node(&mut built.net, node);
        let id = cn.inner().state().node_id;
        secrets.push([id as u8; 16]);
        let port = cn.inner().state().lookup_v4(built.dst4)?.port;
        let (next, _) = built.net.link_peer(node, port)?;
        if next == built.producer_host {
            return Some(secrets);
        }
        node = next;
    }
    None
}

struct PhaseOutcome {
    report: PhaseReport,
    legacy_roundtrips: u64,
}

#[allow(clippy::too_many_lines)]
fn run_phase(
    built: &mut Built,
    spec: &ScenarioSpec,
    phase_idx: usize,
    phase: &PhaseSpec,
) -> PhaseOutcome {
    let start = built.net.now() + HELLO_TICK;
    let end = start + phase.duration;
    for &r in &built.routers.clone() {
        built.net.schedule_control_ticks(r, start, HELLO_TICK, end);
    }
    let heal_at = phase.partition.map(|window| {
        let up_at = start + window;
        for &(node, port) in &built.producer_uplinks.clone() {
            built.net.schedule_link_down(start, node, port);
            built.net.schedule_link_up(up_at, node, port);
        }
        up_at
    });

    // Path-bound OPT: commit to whatever route SPF chose right now.
    let opt_session = if phase.protocols.contains(&ScenarioProtocol::Opt) {
        trace_v4_path(built).map(|router_secrets| {
            let mut key = [0u8; 16];
            key[0] = (phase_idx + 1) as u8;
            key[1] = spec.seed as u8;
            let session = OptSession::establish(key, &[0x55; 16], &router_secrets);
            built.net.host_mut(built.producer_host).expect("producer host").host_ctx =
                session.host_context();
            session
        })
    } else {
        None
    };

    // Baselines for the deltas this phase reports.
    let ndn_before = built.net.host(built.consumer_host).expect("consumer").delivered.len();
    let cache_before = built.net.trace().cache_hits();
    let drops_before: Vec<usize> =
        DropReason::ALL.iter().map(|&r| built.net.trace().drops_with(r)).collect();
    let snap_before = built.net.metrics_snapshot();
    let pit_expired_before = sum_routers(built, |cn| cn.inner().state().pit.expired_evictions());
    let mut legacy_roundtrips = 0u64;

    let mut rng = DetRng::seed_from_u64(spec.seed ^ ((phase_idx as u64 + 1) << 32));
    let zipf = Zipf::new(spec.catalog.max(1), phase.zipf_s);
    let step = phase.duration / (phase.requests.max(1) as u64);
    let mut injected: Vec<(ScenarioProtocol, u64)> =
        phase.protocols.iter().map(|&p| (p, 0)).collect();
    let mut v4_send_times: Vec<SimTime> = Vec::with_capacity(phase.requests);

    for i in 0..phase.requests {
        let at = start + i as u64 * step;
        for (proto, count) in injected.iter_mut() {
            let tag = format!("{}|{phase_idx}|{i}", short_tag(*proto)).into_bytes();
            let packet = match proto {
                ScenarioProtocol::Ipv4 => {
                    v4_send_times.push(at);
                    ip::dip32_packet(built.dst4, built.src4, 64).to_bytes(&tag).ok()
                }
                ScenarioProtocol::Ipv6 => {
                    ip::dip128_packet(built.dst6, built.src6, 64).to_bytes(&tag).ok()
                }
                ScenarioProtocol::Ndn => {
                    let idx = if phase.sweep_catalog {
                        i % spec.catalog.max(1)
                    } else {
                        zipf.sample(&mut rng)
                    };
                    ndn::interest(&built.names[idx], 64).to_bytes(&[]).ok()
                }
                ScenarioProtocol::Opt => opt_session.as_ref().and_then(|session| {
                    routed_opt(session, &tag, (phase_idx + 1) as u32, built.dst4)
                        .to_bytes(&tag)
                        .ok()
                }),
                ScenarioProtocol::Xia => xia::packet(&built.dag, 64).to_bytes(&tag).ok(),
                ScenarioProtocol::LegacyV4 => {
                    let legacy = Ipv4Repr {
                        src: Ipv4Addr::new(192, 168, 9, 9),
                        dst: built.dst4,
                        protocol: 17,
                        ttl: 32,
                        payload_len: tag.len(),
                    }
                    .to_bytes(&tag)
                    .expect("legacy packet");
                    let encapped = border::encap_ipv4(&legacy).expect("border encap");
                    // The border transform must be lossless before the
                    // packet is allowed onto the shared core.
                    if border::decap_ipv4(&encapped).as_deref() == Ok(&legacy[..]) {
                        legacy_roundtrips += 1;
                    }
                    Some(encapped)
                }
            };
            if let Some(bytes) = packet {
                *count += 1;
                built.net.send(built.consumer_host, 0, bytes, at);
            }
        }
    }
    built.net.run();

    // Attribute deliveries back to protocols via payload tags.
    let producer_delivered = &built.net.host(built.producer_host).expect("producer").delivered;
    let mut traffic = Vec::with_capacity(injected.len());
    let mut reconvergence_ns = None;
    for &(proto, sent) in &injected {
        let delivered = match proto {
            ScenarioProtocol::Ndn => {
                (built.net.host(built.consumer_host).expect("consumer").delivered.len()
                    - ndn_before) as u64
            }
            _ => {
                let prefix = format!("{}|{phase_idx}|", short_tag(proto)).into_bytes();
                producer_delivered
                    .iter()
                    .filter(|d| {
                        d.payload.starts_with(&prefix)
                            && (proto != ScenarioProtocol::Opt || d.verified)
                    })
                    .count() as u64
            }
        };
        if proto == ScenarioProtocol::Ipv4 {
            if let Some(heal) = heal_at {
                let prefix = format!("{}|{phase_idx}|", short_tag(proto)).into_bytes();
                reconvergence_ns = producer_delivered
                    .iter()
                    .filter(|d| d.payload.starts_with(&prefix))
                    .filter_map(|d| {
                        let i: usize =
                            std::str::from_utf8(&d.payload[prefix.len()..]).ok()?.parse().ok()?;
                        let sent_at = *v4_send_times.get(i)?;
                        (sent_at >= heal).then(|| d.time.saturating_sub(heal))
                    })
                    .min();
            }
        }
        traffic.push(ProtocolCount { protocol: proto.label(), injected: sent, delivered });
    }

    // Age out PIT entries the phase left behind — the accounting-honest
    // end of a long partition: every one is a counted eviction, not a
    // silent disappearance.
    let now = built.net.now();
    for &r in &built.routers.clone() {
        control_node(&mut built.net, r).inner_mut().state_mut().pit.expire(now);
    }

    let drops = DropReason::ALL
        .iter()
        .zip(&drops_before)
        .filter_map(|(&reason, &before)| {
            let delta = (built.net.trace().drops_with(reason) - before) as u64;
            (delta > 0).then(|| (reason.as_str().to_string(), delta))
        })
        .collect();
    let snap_after = built.net.metrics_snapshot();
    let report = PhaseReport {
        name: phase.name.clone(),
        start,
        end,
        partition_window: phase.partition,
        traffic,
        cache_hits: (built.net.trace().cache_hits() - cache_before) as u64,
        drops,
        link_dropped: snap_after.get("dip_link_dropped_total")
            - snap_before.get("dip_link_dropped_total"),
        pit_entries: sum_routers(built, |cn| cn.inner().state().pit.len() as u64),
        pit_expired_evictions: sum_routers(built, |cn| cn.inner().state().pit.expired_evictions())
            - pit_expired_before,
        cs_entries: sum_routers(built, |cn| {
            cn.inner().state().content_store.as_ref().map_or(0, |cs| cs.len() as u64)
        }),
        retransmit_depth_max: built
            .routers
            .clone()
            .iter()
            .map(|&r| control_node(&mut built.net, r).agent().retransmit_queue_depth() as u64)
            .max()
            .unwrap_or(0),
        reconvergence_ns,
    };
    PhaseOutcome { report, legacy_roundtrips }
}

fn short_tag(proto: ScenarioProtocol) -> &'static str {
    match proto {
        ScenarioProtocol::Ipv4 => "v4",
        ScenarioProtocol::Ipv6 => "v6",
        ScenarioProtocol::Ndn => "nd",
        ScenarioProtocol::Opt => "op",
        ScenarioProtocol::Xia => "xa",
        ScenarioProtocol::LegacyV4 => "lg",
    }
}

fn sum_routers(built: &mut Built, f: impl Fn(&ControlNode<DipRouter>) -> u64) -> u64 {
    let ids = built.routers.clone();
    ids.iter().map(|&r| f(control_node(&mut built.net, r))).sum()
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn fingerprint(report: &ScenarioReport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |s: String| h = fnv1a(s.as_bytes(), h);
    eat(format!("{}/{}/{}/{}", report.name, report.topology, report.routers, report.seed));
    for p in &report.phases {
        eat(format!("|{}@{}..{}", p.name, p.start, p.end));
        for t in &p.traffic {
            eat(format!(";{}={}:{}", t.protocol, t.injected, t.delivered));
        }
        for (reason, n) in &p.drops {
            eat(format!(";d:{reason}={n}"));
        }
        eat(format!(
            ";c={};l={};p={};x={};s={}",
            p.cache_hits, p.link_dropped, p.pit_entries, p.pit_expired_evictions, p.cs_entries
        ));
    }
    eat(format!(
        "|t:{}:{}:{}:{}:{}",
        report.spf_runs,
        report.accounted,
        report.sent,
        report.link_dropped,
        report.legacy_roundtrips
    ));
    h
}

/// Compiles and runs `spec` end to end: build the topology, converge the
/// control plane from nothing, execute every phase, and assemble the
/// measurement report (byte-deterministic in the spec).
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    let mut built = build(spec);
    let converged = converge(&mut built);

    let mut phases = Vec::with_capacity(spec.phases.len());
    let mut legacy_roundtrips = 0;
    for (idx, phase) in spec.phases.iter().enumerate() {
        let outcome = run_phase(&mut built, spec, idx, phase);
        legacy_roundtrips += outcome.legacy_roundtrips;
        phases.push(outcome.report);
    }

    let snap = built.net.metrics_snapshot();
    let accounted = snap.get("dip_packets_total");
    let sent = snap.get("dip_node_sent_total");
    let link_dropped = snap.get("dip_link_dropped_total");
    let topo = spec.topology.generate(spec.seed);
    let mut report = ScenarioReport {
        name: spec.name.clone(),
        topology: topo.label,
        routers: built.routers.len(),
        links: built.links,
        seed: spec.seed,
        converged,
        phases,
        spf_runs: snap.get("dip_ctrl_spf_runs_total"),
        convergence_samples: snap.get("dip_ctrl_convergence_ns_count"),
        accounted,
        sent,
        link_dropped,
        identity_ok: accounted == sent - link_dropped,
        legacy_roundtrips,
        fingerprint: 0,
    };
    report.fingerprint = fingerprint(&report);
    report
}

/// Runs one fresh network per partition window, holding the outage
/// phase's duration fixed across the sweep so delivery fractions are
/// comparable: the only variable is how long the producer island stays
/// dark. `window == 0` runs the identical scenario with no partition.
pub fn partition_sweep(
    k: usize,
    windows: &[SimTime],
    requests: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    let max_window = windows.iter().copied().max().unwrap_or(0);
    let fixed_duration = (max_window + 800_000).max(1_600_000);
    windows
        .iter()
        .map(|&window| {
            let mut spec = ScenarioSpec::partition(k, window.max(1), requests, seed);
            spec.name = format!("partition_k{k}_w{window}");
            spec.phases[1].duration = fixed_duration;
            if window == 0 {
                spec.phases[1].partition = None;
            }
            SweepPoint { window, report: run_scenario(&spec) }
        })
        .collect()
}

//! Declarative scenario scripts: what to build, what to break, when.
//!
//! A [`ScenarioSpec`] is pure data — a topology recipe, table sizing, and
//! an ordered list of [`PhaseSpec`]s, each of which may open a partition
//! window (scheduled `link_down`/`link_up` around the producer's
//! attachment point) and re-weight the Zipf request mix (flash crowds).
//! The runner ([`crate::run::run_scenario`]) is the only interpreter;
//! specs also parse from the compact `family:key=value,...` strings the
//! `dipload --scenario` CLI accepts.

use crate::topology::Topology;
use dip_sim::SimTime;

/// How to generate the underlying router graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// A `k`-ary fat-tree ([`Topology::fat_tree`]).
    FatTree {
        /// Fat-tree arity (even, ≥ 2); `5k²/4` routers.
        k: usize,
    },
    /// A preferential-attachment AS graph ([`Topology::as_graph`]).
    AsGraph {
        /// Number of ASes.
        nodes: usize,
        /// Transit providers each new AS attaches to.
        m: usize,
        /// Extra settlement-free peering links.
        peers: usize,
    },
}

impl TopologySpec {
    /// Materializes the abstract graph (deterministic in `seed`).
    pub fn generate(&self, seed: u64) -> Topology {
        match *self {
            TopologySpec::FatTree { k } => Topology::fat_tree(k),
            TopologySpec::AsGraph { nodes, m, peers } => Topology::as_graph(nodes, m, peers, seed),
        }
    }
}

/// The protocol realizations a phase injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioProtocol {
    /// Native DIP-32 (IPv4 semantics).
    Ipv4,
    /// Native DIP-128 (IPv6 semantics).
    Ipv6,
    /// NDN interest/data with router content stores.
    Ndn,
    /// Path-bound OPT over the route SPF actually chose.
    Opt,
    /// XIA DAG with CID intent.
    Xia,
    /// A legacy IPv4 island: packets enter through
    /// [`dip_core::border::encap_ipv4`] and ride the shared core.
    LegacyV4,
}

impl ScenarioProtocol {
    /// Stable label used in payload tags, JSON, and fingerprints.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioProtocol::Ipv4 => "ipv4",
            ScenarioProtocol::Ipv6 => "ipv6",
            ScenarioProtocol::Ndn => "ndn",
            ScenarioProtocol::Opt => "opt",
            ScenarioProtocol::Xia => "xia",
            ScenarioProtocol::LegacyV4 => "legacy_v4",
        }
    }

    /// Every protocol the runner knows, in fingerprint order.
    pub const ALL: [ScenarioProtocol; 6] = [
        ScenarioProtocol::Ipv4,
        ScenarioProtocol::Ipv6,
        ScenarioProtocol::Ndn,
        ScenarioProtocol::Opt,
        ScenarioProtocol::Xia,
        ScenarioProtocol::LegacyV4,
    ];
}

/// One traffic phase, driven deterministically from the sim clock.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Phase name (JSON key, payload tag prefix).
    pub name: String,
    /// Phase length in virtual ns; requests are spread evenly across it.
    pub duration: SimTime,
    /// Requests injected *per protocol* during the phase.
    pub requests: usize,
    /// Zipf exponent of the NDN request mix for this phase — flash
    /// crowds re-weight this (higher `s` ⇒ hotter head).
    pub zipf_s: f64,
    /// Protocols this phase injects.
    pub protocols: Vec<ScenarioProtocol>,
    /// When set, all links at the producer's edge router go down at the
    /// phase start and come back after this window (virtual ns).
    pub partition: Option<SimTime>,
    /// Walk the whole catalog round-robin instead of Zipf sampling —
    /// the cache-warming phase uses this so every object gets cached
    /// along the return path.
    pub sweep_catalog: bool,
}

/// A complete scenario: topology, table sizing, and phases.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (JSON, BENCH keys).
    pub name: String,
    /// Master seed: topology wiring, request sampling, sim RNG.
    pub seed: u64,
    /// The router graph recipe.
    pub topology: TopologySpec,
    /// Content catalog size (names `/scn/content/<i>`).
    pub catalog: usize,
    /// Per-router content-store capacity (0 disables caching).
    pub content_store: usize,
    /// Per-router PIT capacity.
    pub pit_capacity: usize,
    /// Per-router PIT entry TTL (virtual ns).
    pub pit_ttl: SimTime,
    /// Payload bytes per data object.
    pub payload: usize,
    /// The ordered phases.
    pub phases: Vec<PhaseSpec>,
}

impl ScenarioSpec {
    /// Sizing defaults shared by the canned builders.
    fn base(name: String, seed: u64, topology: TopologySpec, catalog: usize) -> ScenarioSpec {
        ScenarioSpec {
            name,
            seed,
            topology,
            catalog,
            // Catalog-sized cache: after the warm sweep every object is
            // resident at the consumer's edge, which is exactly the
            // disruption-tolerance mechanism the partition phases probe.
            content_store: catalog.max(1),
            pit_capacity: 4_096,
            pit_ttl: 4_000_000_000,
            payload: 64,
            phases: Vec::new(),
        }
    }

    /// The canonical partition scenario on a `k`-ary fat-tree: warm the
    /// caches over the full catalog, cut every link at the producer's
    /// edge switch for `window` ns while traffic continues, then measure
    /// the recovery (reconvergence + flash-crowd mix).
    pub fn partition(k: usize, window: SimTime, requests: usize, seed: u64) -> ScenarioSpec {
        let catalog = requests.clamp(8, 64);
        let mut spec = ScenarioSpec::base(
            format!("partition_k{k}_w{window}"),
            seed,
            TopologySpec::FatTree { k },
            catalog,
        );
        let protocols = vec![
            ScenarioProtocol::Ipv4,
            ScenarioProtocol::Ipv6,
            ScenarioProtocol::Ndn,
            ScenarioProtocol::Xia,
            ScenarioProtocol::LegacyV4,
        ];
        spec.phases = vec![
            PhaseSpec {
                name: "warm".into(),
                duration: 2_000_000,
                requests: catalog,
                zipf_s: 0.0,
                protocols: vec![ScenarioProtocol::Ndn, ScenarioProtocol::Ipv4],
                partition: None,
                sweep_catalog: true,
            },
            PhaseSpec {
                name: "outage".into(),
                duration: (window * 2).max(1_000_000),
                requests,
                zipf_s: 0.9,
                protocols: protocols.clone(),
                partition: Some(window),
                sweep_catalog: false,
            },
            PhaseSpec {
                name: "recovery".into(),
                duration: 1_500_000,
                requests,
                // Flash crowd after the outage: the mix snaps to the head.
                zipf_s: 1.4,
                protocols,
                partition: None,
                sweep_catalog: false,
            },
        ];
        spec
    }

    /// A no-fault fat-tree scenario carrying all six traffic classes —
    /// the ≥128-router convergence point uses this with `k = 12`.
    pub fn fat_tree(k: usize, requests: usize, seed: u64) -> ScenarioSpec {
        let catalog = requests.clamp(8, 64);
        let mut spec = ScenarioSpec::base(
            format!("fat_tree_k{k}"),
            seed,
            TopologySpec::FatTree { k },
            catalog,
        );
        spec.phases = vec![
            PhaseSpec {
                name: "warm".into(),
                duration: 2_000_000,
                requests: catalog,
                zipf_s: 0.0,
                protocols: vec![ScenarioProtocol::Ndn],
                partition: None,
                sweep_catalog: true,
            },
            PhaseSpec {
                name: "steady".into(),
                duration: 2_000_000,
                requests,
                zipf_s: 0.9,
                protocols: ScenarioProtocol::ALL.to_vec(),
                partition: None,
                sweep_catalog: false,
            },
        ];
        spec
    }

    /// An AS-level scenario: stub-to-stub traffic over a preferential-
    /// attachment transit hierarchy, with a partition window at the
    /// producer's stub uplinks.
    pub fn as_graph(
        nodes: usize,
        m: usize,
        peers: usize,
        window: SimTime,
        requests: usize,
        seed: u64,
    ) -> ScenarioSpec {
        let catalog = requests.clamp(8, 64);
        let mut spec = ScenarioSpec::base(
            format!("as_graph_n{nodes}_w{window}"),
            seed,
            TopologySpec::AsGraph { nodes, m, peers },
            catalog,
        );
        spec.phases = vec![
            PhaseSpec {
                name: "warm".into(),
                duration: 2_500_000,
                requests: catalog,
                zipf_s: 0.0,
                protocols: vec![ScenarioProtocol::Ndn, ScenarioProtocol::Ipv4],
                partition: None,
                sweep_catalog: true,
            },
            PhaseSpec {
                name: "outage".into(),
                duration: (window * 2).max(1_200_000),
                requests,
                zipf_s: 1.1,
                protocols: vec![
                    ScenarioProtocol::Ipv4,
                    ScenarioProtocol::Ndn,
                    ScenarioProtocol::LegacyV4,
                ],
                partition: Some(window),
                sweep_catalog: false,
            },
        ];
        spec
    }

    /// Parses the compact CLI form `family:key=value,...`:
    ///
    /// * `partition:k=4,window=400000,requests=24,seed=7`
    /// * `fat_tree:k=12,requests=24,seed=7`
    /// * `as_graph:nodes=48,m=2,peers=8,window=400000,requests=24,seed=7`
    ///
    /// Unknown keys are an error (typos should not silently become
    /// defaults); every key has a default, so `partition:` alone works.
    pub fn parse(s: &str) -> Result<ScenarioSpec, String> {
        let (family, rest) = s.split_once(':').unwrap_or((s, ""));
        let mut k = 4usize;
        let mut nodes = 48usize;
        let mut m = 2usize;
        let mut peers = 8usize;
        let mut window: SimTime = 400_000;
        let mut requests = 24usize;
        let mut seed = 7u64;
        for kv in rest.split(',').filter(|p| !p.is_empty()) {
            let (key, value) =
                kv.split_once('=').ok_or_else(|| format!("expected key=value, got {kv:?}"))?;
            let parse = |v: &str| v.parse::<u64>().map_err(|e| format!("bad value {v:?}: {e}"));
            match key {
                "k" => k = parse(value)? as usize,
                "nodes" => nodes = parse(value)? as usize,
                "m" => m = parse(value)? as usize,
                "peers" => peers = parse(value)? as usize,
                "window" => window = parse(value)?,
                "requests" => requests = parse(value)? as usize,
                "seed" => seed = parse(value)?,
                other => return Err(format!("unknown scenario key {other:?}")),
            }
        }
        match family {
            "partition" => Ok(ScenarioSpec::partition(k, window, requests, seed)),
            "fat_tree" => Ok(ScenarioSpec::fat_tree(k, requests, seed)),
            "as_graph" => Ok(ScenarioSpec::as_graph(nodes, m, peers, window, requests, seed)),
            other => Err(format!(
                "unknown scenario family {other:?} (expected partition | fat_tree | as_graph)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_documented_examples() {
        let p = ScenarioSpec::parse("partition:k=4,window=200000,requests=16,seed=3").unwrap();
        assert_eq!(p.topology, TopologySpec::FatTree { k: 4 });
        assert_eq!(p.phases.len(), 3);
        assert_eq!(p.phases[1].partition, Some(200_000));
        assert_eq!(p.seed, 3);

        let f = ScenarioSpec::parse("fat_tree:k=12").unwrap();
        assert_eq!(f.topology, TopologySpec::FatTree { k: 12 });

        let a = ScenarioSpec::parse("as_graph:nodes=40,peers=4").unwrap();
        assert_eq!(a.topology, TopologySpec::AsGraph { nodes: 40, m: 2, peers: 4 });
    }

    #[test]
    fn parse_rejects_typos_instead_of_defaulting() {
        assert!(ScenarioSpec::parse("partition:windw=5").is_err());
        assert!(ScenarioSpec::parse("meteor:k=4").is_err());
        assert!(ScenarioSpec::parse("partition:k").is_err());
    }

    #[test]
    fn canned_partition_spec_warms_before_it_breaks() {
        let p = ScenarioSpec::partition(4, 300_000, 24, 1);
        assert!(p.phases[0].sweep_catalog, "phase 0 warms the caches");
        assert!(p.phases[0].partition.is_none());
        assert!(p.phases[1].partition.is_some());
        assert!(
            p.phases[2].zipf_s > p.phases[1].zipf_s,
            "recovery phase is a flash crowd (hotter Zipf head)"
        );
        assert!(p.content_store >= p.catalog, "cache holds the catalog");
    }
}

//! Internet-scale scenarios over the DIP control plane.
//!
//! This crate closes the loop between the topology the paper argues
//! about (hundreds of routers, heterogeneous protocol islands) and the
//! mechanisms the rest of the workspace implements one crate at a time:
//!
//! * [`topology`] — seeded generators for `k`-ary fat-trees and
//!   preferential-attachment AS graphs, as pure data.
//! * [`script`] — declarative scenario specs: phases, partition windows,
//!   flash-crowd Zipf re-weighting, legacy islands; parseable from the
//!   `dipload --scenario family:key=value,...` CLI form.
//! * [`run`] — the runner: compiles a spec into a [`dip_sim`] network
//!   whose every router runs the real [`dip_controlplane`] stack (routes
//!   from SPF, never hand-written), schedules the disruptions, injects
//!   the per-protocol request mix, and reports per-phase delivery
//!   fractions, PIT/CS occupancy, and reconvergence times — all
//!   byte-deterministic in the spec.
//!
//! The headline measurement: through a partition of the producer's edge
//! router, NDN requests keep resolving from in-network content stores
//! while IPv4's delivery fraction collapses for the length of the
//! window — the disruption-tolerance argument of the paper's §2.3,
//! quantified on graphs two orders of magnitude larger than the unit
//! tests'.
//!
//! Raw link-admin calls (`link_down` / `link_up` and their scheduled
//! variants) are pinned by `diplint` to the sim and scenario crates;
//! other layers script outages through [`run::sever_link`],
//! [`run::restore_link`], and [`run::schedule_outage`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod run;
pub mod script;
pub mod topology;

pub use run::{
    partition_sweep, restore_link, run_scenario, schedule_outage, sever_link, PhaseReport,
    ProtocolCount, ScenarioReport, SweepPoint,
};
pub use script::{PhaseSpec, ScenarioProtocol, ScenarioSpec, TopologySpec};
pub use topology::{EdgeClass, TopoLink, Topology};

//! Seeded topology generators: `k`-ary fat-trees and AS-level graphs.
//!
//! Both produce an abstract [`Topology`] — routers, classed links, and
//! the set of edge routers hosts may attach to — that the runner
//! ([`crate::run`]) compiles into a [`dip_sim::engine::Network`] of
//! [`ControlNode`](dip_controlplane::ControlNode)s. Nothing here touches
//! the simulator: generation is pure and deterministic, so the same
//! `(spec, seed)` always yields byte-identical wiring.

use dip_crypto::DetRng;

/// The role of a link in the generated graph, which determines its
/// propagation latency (datacenter hops are short, provider hops longer,
/// peering hops longest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Fat-tree edge-switch to aggregation-switch link.
    EdgeAgg,
    /// Fat-tree aggregation-switch to core-switch link.
    AggCore,
    /// AS-graph customer-to-provider link (preferential attachment).
    Provider,
    /// AS-graph settlement-free peering link.
    Peer,
}

impl EdgeClass {
    /// Propagation latency for this class of link (virtual ns).
    pub fn latency_ns(&self) -> u64 {
        match self {
            EdgeClass::EdgeAgg | EdgeClass::AggCore => 1_000,
            EdgeClass::Provider => 2_000,
            EdgeClass::Peer => 3_000,
        }
    }

    /// Stable label (JSON output, fingerprints).
    pub fn label(&self) -> &'static str {
        match self {
            EdgeClass::EdgeAgg => "edge_agg",
            EdgeClass::AggCore => "agg_core",
            EdgeClass::Provider => "provider",
            EdgeClass::Peer => "peer",
        }
    }
}

/// One undirected link between router indices `a` and `b`.
#[derive(Debug, Clone, Copy)]
pub struct TopoLink {
    /// First endpoint (router index).
    pub a: usize,
    /// Second endpoint (router index).
    pub b: usize,
    /// Link class (drives latency).
    pub class: EdgeClass,
}

/// An abstract generated topology over router indices `0..routers`.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable shape, e.g. `fat_tree(k=4)`.
    pub label: String,
    /// Number of routers; indices are `0..routers` and control-plane node
    /// ids are `index + 1` (id 0 is reserved).
    pub routers: usize,
    /// Undirected links (each wired once into the simulator).
    pub links: Vec<TopoLink>,
    /// Routers hosts may attach to: fat-tree edge switches, AS-graph
    /// stub networks.
    pub edge_routers: Vec<usize>,
}

impl Topology {
    /// A `k`-ary fat-tree (`k` even, ≥ 2): `(k/2)²` core switches, `k`
    /// pods of `k/2` aggregation and `k/2` edge switches each — `5k²/4`
    /// routers total, every edge switch reachable from every other over
    /// `k²/4` equal-cost core paths.
    pub fn fat_tree(k: usize) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree k must be even and >= 2");
        let half = k / 2;
        let cores = half * half;
        let aggs = k * half;
        let agg_base = cores;
        let edge_base = cores + aggs;
        let routers = cores + 2 * aggs;
        let mut links = Vec::new();
        for pod in 0..k {
            for i in 0..half {
                let agg = agg_base + pod * half + i;
                // Aggregation switch i of every pod uplinks to core group i.
                for c in 0..half {
                    links.push(TopoLink { a: agg, b: i * half + c, class: EdgeClass::AggCore });
                }
                // Full bipartite edge↔agg mesh within the pod.
                for j in 0..half {
                    let edge = edge_base + pod * half + j;
                    links.push(TopoLink { a: edge, b: agg, class: EdgeClass::EdgeAgg });
                }
            }
        }
        Topology {
            label: format!("fat_tree(k={k})"),
            routers,
            links,
            edge_routers: (edge_base..routers).collect(),
        }
    }

    /// An AS-level graph by preferential attachment: a seed clique of
    /// `m + 1` nodes, then each new node buys transit from `m` distinct
    /// existing providers chosen with probability proportional to degree
    /// (Barabási–Albert), plus `peers` extra settlement-free peering
    /// links between non-adjacent pairs. Deterministic in `seed`.
    pub fn as_graph(nodes: usize, m: usize, peers: usize, seed: u64) -> Topology {
        let m = m.max(1);
        assert!(nodes >= m + 2, "as-graph needs at least m + 2 nodes");
        let mut rng = DetRng::seed_from_u64(seed ^ 0xA5A5_0001);
        let mut links: Vec<TopoLink> = Vec::new();
        // Every link endpoint once per degree: sampling an element of
        // this list IS degree-proportional sampling.
        let mut endpoints: Vec<usize> = Vec::new();
        let add = |links: &mut Vec<TopoLink>,
                   endpoints: &mut Vec<usize>,
                   a: usize,
                   b: usize,
                   class: EdgeClass| {
            links.push(TopoLink { a, b, class });
            endpoints.push(a);
            endpoints.push(b);
        };
        for a in 0..=m {
            for b in (a + 1)..=m {
                add(&mut links, &mut endpoints, a, b, EdgeClass::Provider);
            }
        }
        for new in (m + 1)..nodes {
            let mut targets: Vec<usize> = Vec::new();
            let mut guard = 0;
            while targets.len() < m && guard < 10_000 {
                guard += 1;
                let t = endpoints[rng.gen_index(endpoints.len())];
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                add(&mut links, &mut endpoints, new, t, EdgeClass::Provider);
            }
        }
        // Peering links between distinct, not-already-adjacent pairs.
        let adjacent = |links: &[TopoLink], a: usize, b: usize| {
            links.iter().any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
        };
        let mut added = 0;
        let mut guard = 0;
        while added < peers && guard < 10_000 {
            guard += 1;
            let a = rng.gen_index(nodes);
            let b = rng.gen_index(nodes);
            if a != b && !adjacent(&links, a, b) {
                add(&mut links, &mut endpoints, a, b, EdgeClass::Peer);
                added += 1;
            }
        }
        // Stubs (lowest-degree late joiners) are the host attachment
        // points — the AS-graph analogue of fat-tree edge switches.
        let mut degree = vec![0usize; nodes];
        for l in &links {
            degree[l.a] += 1;
            degree[l.b] += 1;
        }
        let min_degree = degree.iter().copied().min().unwrap_or(0);
        let mut edge_routers: Vec<usize> =
            (0..nodes).filter(|&r| degree[r] <= min_degree + 1).collect();
        if edge_routers.len() < 2 {
            edge_routers = (0..nodes).collect();
        }
        Topology {
            label: format!("as_graph(n={nodes},m={m},peers={peers})"),
            routers: nodes,
            links,
            edge_routers,
        }
    }

    /// Degree (link endpoints) of router `r`.
    pub fn degree(&self, r: usize) -> usize {
        self.links.iter().filter(|l| l.a == r || l.b == r).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts_match_the_formula() {
        for k in [2usize, 4, 6, 8] {
            let t = Topology::fat_tree(k);
            assert_eq!(t.routers, 5 * k * k / 4, "5k^2/4 switches for k={k}");
            // k/2 core uplinks per agg + k/2 edge downlinks per agg.
            assert_eq!(t.links.len(), k * k * k / 2, "k^3/2 links for k={k}");
            assert_eq!(t.edge_routers.len(), k * k / 2);
            // Every edge switch has exactly k/2 links, every core exactly k.
            for &e in &t.edge_routers {
                assert_eq!(t.degree(e), k / 2);
            }
            for c in 0..(k / 2) * (k / 2) {
                assert_eq!(t.degree(c), k);
            }
        }
    }

    #[test]
    fn fat_tree_k4_has_128_plus_node_sibling() {
        // The bench's >=128-router point: k=12 -> 180 routers.
        let t = Topology::fat_tree(12);
        assert!(t.routers >= 128, "k=12 fat-tree has {} routers", t.routers);
    }

    #[test]
    fn as_graph_is_deterministic_and_connected() {
        let a = Topology::as_graph(40, 2, 6, 7);
        let b = Topology::as_graph(40, 2, 6, 7);
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!((x.a, x.b, x.class), (y.a, y.b, y.class));
        }
        // Connectivity by union-find-free BFS.
        let mut seen = vec![false; a.routers];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for l in &a.links {
                for (x, y) in [(l.a, l.b), (l.b, l.a)] {
                    if x == r && !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "preferential attachment keeps the graph connected");
        assert!(a.edge_routers.len() >= 2, "at least two stub attachment points");
        // A different seed rewires the peering (and usually the transit).
        let c = Topology::as_graph(40, 2, 6, 8);
        let same = a.links.iter().zip(&c.links).all(|(x, y)| (x.a, x.b) == (y.a, y.b));
        assert!(!same, "seed changes the wiring");
    }
}

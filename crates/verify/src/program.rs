//! The verifier's view of a composed FN program.
//!
//! A program is what §2.3's host construction produces *before* it is
//! serialized: an ordered FN chain, the size of the locations area the
//! chain indexes into, and the basic-header parallel flag. The verifier
//! never needs the locations *contents* — only the geometry.

use dip_wire::packet::DipRepr;
use dip_wire::triple::FnTriple;

/// A composed FN program to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnProgram {
    /// FN triples in execution order (Algorithm 1 line 2).
    pub fns: Vec<FnTriple>,
    /// Length of the FN locations area, in bytes.
    pub loc_len: usize,
    /// The basic header's modular-parallelism flag.
    pub parallel: bool,
}

impl FnProgram {
    /// A program from its parts.
    pub fn new(fns: Vec<FnTriple>, loc_len: usize, parallel: bool) -> Self {
        FnProgram { fns, loc_len, parallel }
    }

    /// The program a [`DipRepr`] carries.
    pub fn from_repr(repr: &DipRepr) -> Self {
        FnProgram { fns: repr.fns.clone(), loc_len: repr.locations.len(), parallel: repr.parallel }
    }

    /// Size of the locations area in bits — the bound every target field
    /// must respect.
    pub fn loc_bits(&self) -> usize {
        self.loc_len * 8
    }

    /// The router-executed triples (tag bit clear), with their original
    /// chain indices. Routers skip host-tagged FNs (Algorithm 1 line 5),
    /// so the registry/data-flow/resource passes look only at these.
    pub fn router_fns(&self) -> impl Iterator<Item = (usize, &FnTriple)> {
        self.fns.iter().enumerate().filter(|(_, t)| !t.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::triple::FnKey;

    #[test]
    fn from_repr_captures_geometry_only() {
        let repr = DipRepr {
            parallel: true,
            fns: vec![FnTriple::router(0, 32, FnKey::Pit), FnTriple::host(0, 544, FnKey::Ver)],
            locations: vec![0xff; 68],
            ..Default::default()
        };
        let p = FnProgram::from_repr(&repr);
        assert_eq!(p.loc_len, 68);
        assert_eq!(p.loc_bits(), 544);
        assert!(p.parallel);
        assert_eq!(p.fns.len(), 2);
    }

    #[test]
    fn router_fns_skips_host_tagged() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 32, FnKey::Pit),
                FnTriple::host(0, 544, FnKey::Ver),
                FnTriple::router(32, 128, FnKey::Parm),
            ],
            68,
            false,
        );
        let idx: Vec<usize> = p.router_fns().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 2]);
    }
}

//! A seeded corpus of invalid FN programs.
//!
//! Each case is a composed chain that *looks* plausible but violates one
//! of the verifier's invariants. The corpus is the verifier's regression
//! anchor: `dipcheck` (and the integration tests) assert every entry is
//! rejected with its expected diagnostic, while the five paper protocols
//! stay clean — pinning both the detection power and the false-positive
//! rate of the passes.

use crate::diag::DiagCode;
use crate::program::FnProgram;
use dip_wire::triple::{FnKey, FnTriple};

/// One known-invalid program.
pub struct CorpusCase {
    /// Short stable identifier (used in test output and the CLI).
    pub name: &'static str,
    /// What is wrong, in one sentence.
    pub description: &'static str,
    /// The program itself.
    pub program: FnProgram,
    /// Per-hop capability key sets for the registry pass. Empty means
    /// "one fully-capable hop".
    pub hop_keys: Vec<Vec<FnKey>>,
    /// The diagnostic code the verifier must produce.
    pub expect: DiagCode,
}

impl CorpusCase {
    fn new(
        name: &'static str,
        description: &'static str,
        program: FnProgram,
        expect: DiagCode,
    ) -> Self {
        CorpusCase { name, description, program, hop_keys: Vec::new(), expect }
    }
}

/// Builds the full invalid corpus.
#[allow(clippy::vec_init_then_push)] // one case per push reads as a catalog
pub fn invalid_corpus() -> Vec<CorpusCase> {
    let mut cases = Vec::new();

    cases.push(CorpusCase::new(
        "field-past-locations",
        "a 64-bit match field indexed into a 4-byte locations area",
        FnProgram::new(vec![FnTriple::router(0, 64, FnKey::Match32)], 4, false),
        DiagCode::FieldOutOfBounds,
    ));

    cases.push(CorpusCase::new(
        "mac-tag-slot-past-locations",
        "the MAC coverage fits but its 128-bit tag slot spills past the area",
        FnProgram::new(
            vec![FnTriple::router(128, 128, FnKey::Parm), FnTriple::router(0, 416, FnKey::Mac)],
            58,
            false,
        ),
        DiagCode::FieldOutOfBounds,
    ));

    cases.push(CorpusCase::new(
        "fn-num-overflow",
        "256 triples cannot be expressed in the 8-bit FN number",
        FnProgram::new(vec![FnTriple::router(0, 8, FnKey::Source); 256], 1, false),
        DiagCode::FnNumOverflow,
    ));

    cases.push(CorpusCase::new(
        "loc-len-overflow",
        "a 1024-byte locations area exceeds the 10-bit fn_loc_len",
        FnProgram::new(vec![FnTriple::router(0, 8, FnKey::Source)], 1024, false),
        DiagCode::LocLenOverflow,
    ));

    cases.push(CorpusCase::new(
        "parm-width-not-128",
        "F_parm derives the dynamic key from exactly one 128-bit block",
        FnProgram::new(vec![FnTriple::router(0, 64, FnKey::Parm)], 8, false),
        DiagCode::BadFieldWidth,
    ));

    cases.push(CorpusCase::new(
        "mark-width-not-128",
        "F_mark updates exactly one 128-bit PVF",
        FnProgram::new(
            vec![FnTriple::router(64, 128, FnKey::Parm), FnTriple::router(0, 64, FnKey::Mark)],
            24,
            false,
        ),
        DiagCode::BadFieldWidth,
    ));

    cases.push(CorpusCase::new(
        "ver-on-router",
        "F_ver router-tagged would verify mid-path with keys only the destination holds",
        FnProgram::new(vec![FnTriple::router(0, 544, FnKey::Ver)], 68, false),
        DiagCode::TagBitInconsistent,
    ));

    cases.push(CorpusCase::new(
        "mac-on-host",
        "a host-tagged F_MAC silently drops out of the per-hop participation chain",
        FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::host(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
            ],
            68,
            false,
        ),
        DiagCode::TagBitInconsistent,
    ));

    // Registry: an NDN interest across a path whose middle AS never
    // installed F_FIB (a legacy IP-only deployment, §2.4).
    let mut uninstalled = CorpusCase::new(
        "fib-uninstalled-at-hop-1",
        "an NDN interest through an AS that only deployed the IP profile",
        FnProgram::new(vec![FnTriple::router(0, 32, FnKey::Fib)], 4, false),
        DiagCode::UnsupportedAtHop,
    );
    uninstalled.hop_keys = vec![
        FnKey::table1().to_vec(),
        vec![FnKey::Match32, FnKey::Match128, FnKey::Source],
        FnKey::table1().to_vec(),
    ];
    cases.push(uninstalled);

    cases.push(CorpusCase::new(
        "mac-without-parm",
        "F_MAC reads the per-packet dynamic key no F_parm ever derived",
        FnProgram::new(
            vec![FnTriple::router(0, 416, FnKey::Mac), FnTriple::router(288, 128, FnKey::Mark)],
            68,
            false,
        ),
        DiagCode::KeyUseBeforeDef,
    ));

    cases.push(CorpusCase::new(
        "parm-after-use",
        "the key derivation is ordered after the MAC that needs it",
        FnProgram::new(
            vec![
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(288, 128, FnKey::Mark),
            ],
            68,
            false,
        ),
        DiagCode::KeyUseBeforeDef,
    ));

    cases.push(CorpusCase::new(
        "mutate-after-mac",
        "an intent rewrite lands inside the MAC'd coverage, invalidating the tag",
        FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(0, 128, FnKey::Intent),
            ],
            68,
            false,
        ),
        DiagCode::MacThenMutate,
    ));

    cases.push(CorpusCase::new(
        "parallel-flag-hazard",
        "the parallel flag is set over two rewrites of the same field",
        FnProgram::new(
            vec![FnTriple::router(0, 64, FnKey::Intent), FnTriple::router(0, 64, FnKey::Intent)],
            8,
            true,
        ),
        DiagCode::ParallelHazard,
    ));

    cases.push(CorpusCase::new(
        "stage-budget-overflow",
        "sixteen sequential one-stage rewrites exceed the 12-stage pipeline",
        FnProgram::new(
            (0..16).map(|i| FnTriple::router(i * 8, 8, FnKey::Source)).collect(),
            16,
            false,
        ),
        DiagCode::StageBudgetExceeded,
    ));

    cases.push(CorpusCase::new(
        "cipher-budget-overflow",
        "five stacked 416-bit MACs exceed the pipeline's cipher capacity",
        FnProgram::new(
            {
                let mut fns = vec![FnTriple::router(0, 128, FnKey::Parm)];
                fns.extend((0..5u16).map(|k| FnTriple::router(128 + k * 544, 416, FnKey::Mac)));
                fns
            },
            (128 + 5 * 544) / 8,
            false,
        ),
        DiagCode::CipherBudgetExceeded,
    ));

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Checker;
    use dip_fnops::FnRegistry;

    #[test]
    fn corpus_is_large_and_diverse() {
        let corpus = invalid_corpus();
        assert!(corpus.len() >= 10, "corpus has only {} cases", corpus.len());
        let codes: std::collections::HashSet<&str> =
            corpus.iter().map(|c| c.expect.as_str()).collect();
        assert!(codes.len() >= 8, "only {} distinct codes", codes.len());
        let names: std::collections::HashSet<&str> = corpus.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), corpus.len(), "duplicate case names");
    }

    #[test]
    fn every_case_is_rejected_with_its_expected_code() {
        let checker = Checker::new();
        for case in invalid_corpus() {
            let report = if case.hop_keys.is_empty() {
                checker.check(&case.program)
            } else {
                let hops: Vec<FnRegistry> =
                    case.hop_keys.iter().map(|ks| FnRegistry::with_keys(ks)).collect();
                checker.check_path(&case.program, &hops)
            };
            assert!(report.has_errors(), "{}: accepted ({report})", case.name);
            assert!(
                report.has_code(case.expect),
                "{}: expected {:?}, got: {report}",
                case.name,
                case.expect
            );
        }
    }
}

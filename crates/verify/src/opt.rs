//! # dipopt — abstract-interpretation optimizer passes over FN programs.
//!
//! Runs *after* the four admission passes and emits a [`ProgramFacts`]
//! artifact: per-hop def/use footprints on header bit ranges plus a small
//! constant lattice ([`AbstractVal`]) over FN operands, and a list of
//! [`Rewrite`]s each proven safe by that analysis. The dataplane's
//! `ProgramCache` consumes the facts to compile an optimized execution
//! plan; every transformation is also covered by a differential
//! equivalence gate (optimized vs interpreted chain over a seeded packet
//! corpus, byte-identical outputs and verdicts).
//!
//! ## The lattice
//!
//! Operands are abstracted as `Unknown ⊒ Interval ⊒ Const`. Everything a
//! triple carries (`field_loc`, `field_len`, the operation key) is
//! program-constant — `Const` — because the chain is immutable once the
//! packet is parsed; field *values* are per-packet and stay `Unknown`.
//! Derived quantities fold through: a DAG-shaped field of `L` bits holds
//! between 1 and `(L/8 − 6)/28` nodes (`Interval`), and a MAC over an
//! `L`-bit field costs a `Const` number of cipher blocks. The rewrites
//! below only ever rely on `Const`/`Interval` facts, never on `Unknown`.
//!
//! ## Rewrite legality
//!
//! * **Redundant-parse elimination** — a hop whose only effect is
//!   publishing a parsed structure into per-packet scratch
//!   ([`FieldOp::writes_parsed_dag`]) may be deleted when the next router
//!   hop consumes that scratch *and* re-parses the same span with
//!   identical semantics on a miss
//!   ([`FieldOp::consumes_parsed_dag_with_fallback`]) — the triples must
//!   select byte-for-byte the same span, otherwise the pair is
//!   order-sensitive and dipopt bails ([`BailReason::SpanMismatch`]).
//! * **Dead-key-write elimination** — a hop that only writes the dynamic
//!   key slot, cannot drop ([`FieldOp::infallible_for`]), and has no
//!   later reader of the key is effect-free and deleted.
//! * **Fusion** — adjacent router hops whose footprints do not conflict
//!   (per the *same* [`dip_fnops::parallel::conflicts`] predicate the
//!   planner and the data-flow pass use) share pipeline stages; this is a
//!   pure cost rewrite — execution order is untouched.
//! * **Hoisting** — packet-invariant setup (the OPT key schedule) moves
//!   to once-per-compiled-chain via [`FieldOp::hoist`]; the per-packet
//!   residue must be byte-identical ([`FieldOp::execute_hoisted`]).
//!
//! Budget accounting is *replayed*, not optimized: the compiled plan
//! charges the original cost of every hop (eliminated hops become
//! charge-only units) so the budget meter's drop decisions are identical
//! on both paths. Only the timing-model cost shrinks.
//!
//! Programs dipopt refuses to touch get a [`Bail`] with the reason; the
//! dataplane then runs the plain interpreted chain. The
//! [`optimization_corpus`] pins admissible-but-unoptimizable programs.
//!
//! [`FieldOp::writes_parsed_dag`]: dip_fnops::FieldOp::writes_parsed_dag
//! [`FieldOp::consumes_parsed_dag_with_fallback`]: dip_fnops::FieldOp::consumes_parsed_dag_with_fallback
//! [`FieldOp::infallible_for`]: dip_fnops::FieldOp::infallible_for
//! [`FieldOp::hoist`]: dip_fnops::FieldOp::hoist
//! [`FieldOp::execute_hoisted`]: dip_fnops::FieldOp::execute_hoisted

use crate::program::FnProgram;
use dip_fnops::parallel::{conflicts, footprint, Footprint};
use dip_fnops::{FnRegistry, OpCost};
use dip_wire::triple::FnKey;

/// A value in dipopt's three-level lattice: `Unknown ⊒ Interval ⊒ Const`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractVal {
    /// Per-packet: nothing is known statically.
    Unknown,
    /// Program-constant: the exact value is known at admission time.
    Const(u64),
    /// Bounded: the value is known to lie in `[lo, hi]`.
    Interval {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl AbstractVal {
    /// Least upper bound of two abstract values.
    pub fn join(self, other: AbstractVal) -> AbstractVal {
        use AbstractVal::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => Unknown,
            (Const(a), Const(b)) if a == b => Const(a),
            (a, b) => {
                let (alo, ahi) = a.bounds();
                let (blo, bhi) = b.bounds();
                Interval { lo: alo.min(blo), hi: ahi.max(bhi) }
            }
        }
    }

    /// The exact value, when program-constant.
    pub fn as_const(self) -> Option<u64> {
        match self {
            AbstractVal::Const(v) => Some(v),
            _ => None,
        }
    }

    fn bounds(self) -> (u64, u64) {
        match self {
            AbstractVal::Unknown => (0, u64::MAX),
            AbstractVal::Const(v) => (v, v),
            AbstractVal::Interval { lo, hi } => (lo, hi),
        }
    }
}

/// Def/use and folded-operand facts for one hop of an FN program.
#[derive(Debug, Clone)]
pub struct HopFacts {
    /// Position in the chain.
    pub index: usize,
    /// The operation key.
    pub key: FnKey,
    /// Host-tagged (routers skip it).
    pub host: bool,
    /// Whether the registry has a module for the key.
    pub installed: bool,
    /// Bits read in the locations area, `[start, end)`.
    pub read_bits: (usize, usize),
    /// Bits written, or `None` for pure readers.
    pub write_bits: Option<(usize, usize)>,
    /// Reads the per-packet dynamic key.
    pub reads_key: bool,
    /// Writes the per-packet dynamic key.
    pub writes_key: bool,
    /// Unoptimized per-packet cost under the standard model.
    pub model: OpCost,
    /// Folded field offset (always `Const`: triples are program text).
    pub field_loc: AbstractVal,
    /// Folded field width (always `Const`).
    pub field_len: AbstractVal,
    /// The field's *value* — per-packet, so always `Unknown`.
    pub field_value: AbstractVal,
    /// Node count for DAG-shaped fields: `Interval{1, capacity}`.
    pub dag_nodes: AbstractVal,
    /// Cipher-block count for keyed-MAC hops: folded to `Const`.
    pub cipher_blocks: AbstractVal,
}

/// A transformation dipopt has proven safe for a specific program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// Delete the parse at `parse`; its consumer at `into` re-parses the
    /// same span on scratch miss. `fused_model` is the consumer's reduced
    /// timing-model cost (the pre-parse stage folds into the walk).
    EliminateRedundantParse {
        /// Index of the deleted publisher hop.
        parse: usize,
        /// Index of the consuming hop that absorbs it.
        into: usize,
        /// Consumer's cost with the parse folded in.
        fused_model: OpCost,
    },
    /// Delete the hop at `index`: it only writes the dynamic key, cannot
    /// drop, and no later hop reads the key.
    EliminateDeadKeyWrite {
        /// Index of the dead hop.
        index: usize,
    },
    /// Hops `first` and `second` share pipeline stages (cost-only rewrite;
    /// execution order unchanged).
    FuseAdjacent {
        /// Earlier hop of the fused pair.
        first: usize,
        /// Later hop of the fused pair.
        second: usize,
    },
    /// Hop `index`'s packet-invariant setup runs once per compiled chain;
    /// `hoisted_model` is its per-packet residue cost.
    HoistKeySchedule {
        /// Index of the hoisted hop.
        index: usize,
        /// Per-packet cost after hoisting.
        hoisted_model: OpCost,
    },
}

/// Why dipopt declined an optimization opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BailReason {
    /// The program requests parallel execution; the wave planner owns it.
    ParallelProgram,
    /// A router hop's key has no installed module — its semantics (and
    /// footprint) are unknown, so the whole program is left alone.
    UninstalledKey(FnKey),
    /// A parse/consume pair selects different bit spans; eliminating the
    /// parse would change which bytes the consumer walks.
    SpanMismatch,
    /// A parse's published value is consumed, but not by the immediately
    /// following hop; intervening effects make elimination unprovable.
    NotAdjacent,
    /// Two hops write overlapping bit spans (aliasing).
    AliasingWrites,
    /// One hop writes bits the other reads — the pair is order-dependent.
    OrderDependentWrites,
    /// The pair is linked through the dynamic-key slot.
    KeyDependency,
}

/// A declined opportunity: which hop(s), and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bail {
    /// First involved hop, when the bail is hop-specific.
    pub first: Option<usize>,
    /// Second involved hop, for pairwise bails.
    pub second: Option<usize>,
    /// The reason.
    pub reason: BailReason,
}

/// The artifact dipopt emits per program: facts plus proven rewrites.
#[derive(Debug, Clone)]
pub struct ProgramFacts {
    /// Per-hop def/use and folded-operand facts.
    pub hops: Vec<HopFacts>,
    /// Transformations proven safe for this program.
    pub rewrites: Vec<Rewrite>,
    /// Opportunities declined, with reasons.
    pub bails: Vec<Bail>,
}

impl ProgramFacts {
    /// Whether any rewrite applies.
    pub fn optimizes(&self) -> bool {
        !self.rewrites.is_empty()
    }

    /// Number of hops deleted from the per-packet path.
    pub fn ops_eliminated(&self) -> usize {
        self.rewrites
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Rewrite::EliminateRedundantParse { .. } | Rewrite::EliminateDeadKeyWrite { .. }
                )
            })
            .count()
    }

    /// Number of adjacent-pair fusions.
    pub fn fusions(&self) -> usize {
        self.rewrites.iter().filter(|r| matches!(r, Rewrite::FuseAdjacent { .. })).count()
    }

    /// Number of hoisted setups.
    pub fn hoists(&self) -> usize {
        self.rewrites.iter().filter(|r| matches!(r, Rewrite::HoistKeySchedule { .. })).count()
    }

    /// Whether a bail with `reason` was recorded.
    pub fn bailed(&self, reason: BailReason) -> bool {
        self.bails.iter().any(|b| b.reason == reason)
    }
}

/// Maximum node count a DAG-shaped field of `field_len` bits can carry
/// (6 header bytes, then 28 bytes per node).
pub fn dag_nodes_cap(field_len: u16) -> usize {
    (usize::from(field_len) / 8).saturating_sub(6) / 28
}

fn hop_facts(index: usize, program: &FnProgram, registry: &FnRegistry) -> HopFacts {
    let t = &program.fns[index];
    let fp = if t.host { None } else { footprint(t, registry) };
    let op = registry.get(t.key);
    let model = match (&op, t.host) {
        (Some(op), false) => op.cost(t.field_len),
        _ => OpCost::default(),
    };
    let dag_shaped =
        op.as_ref().is_some_and(|o| o.writes_parsed_dag() || o.consumes_parsed_dag_with_fallback());
    let cap = dag_nodes_cap(t.field_len);
    HopFacts {
        index,
        key: t.key,
        host: t.host,
        installed: op.is_some(),
        read_bits: fp.as_ref().map(|f| f.read).unwrap_or((usize::from(t.field_loc), t.field_end())),
        write_bits: fp.as_ref().and_then(|f| f.write),
        reads_key: fp.as_ref().is_some_and(|f| f.reads_key),
        writes_key: fp.as_ref().is_some_and(|f| f.writes_key),
        model,
        field_loc: AbstractVal::Const(u64::from(t.field_loc)),
        field_len: AbstractVal::Const(u64::from(t.field_len)),
        field_value: AbstractVal::Unknown,
        dag_nodes: if dag_shaped && cap >= 1 {
            AbstractVal::Interval { lo: 1, hi: cap as u64 }
        } else {
            AbstractVal::Unknown
        },
        cipher_blocks: if model.cipher_blocks > 0 {
            AbstractVal::Const(u64::from(model.cipher_blocks))
        } else {
            AbstractVal::Unknown
        },
    }
}

fn classify_conflict(a: &Footprint, b: &Footprint) -> BailReason {
    use dip_fnops::parallel::ranges_overlap;
    if let (Some(wa), Some(wb)) = (a.write, b.write) {
        if ranges_overlap(wa, wb) {
            return BailReason::AliasingWrites;
        }
    }
    let write_read = a.write.is_some_and(|wa| ranges_overlap(wa, b.read))
        || b.write.is_some_and(|wb| ranges_overlap(wb, a.read));
    if write_read {
        return BailReason::OrderDependentWrites;
    }
    BailReason::KeyDependency
}

/// Runs the dipopt passes over `program` against `registry`.
///
/// Always total: a program that cannot be optimized comes back with an
/// empty rewrite list and the reasons recorded in `bails`, never an error.
pub fn analyze(program: &FnProgram, registry: &FnRegistry) -> ProgramFacts {
    let mut facts = ProgramFacts {
        hops: (0..program.fns.len()).map(|i| hop_facts(i, program, registry)).collect(),
        rewrites: Vec::new(),
        bails: Vec::new(),
    };

    // The wave planner owns parallel-flagged programs (§2.2); a compile-time
    // re-ordering on top of a runtime one would have to prove commutativity
    // twice. Bail outright.
    if program.parallel {
        facts.bails.push(Bail { first: None, second: None, reason: BailReason::ParallelProgram });
        return facts;
    }

    let router: Vec<usize> =
        program.fns.iter().enumerate().filter(|(_, t)| !t.host).map(|(i, _)| i).collect();

    // Any uninstalled router key means unknown semantics somewhere in the
    // chain; every rewrite's legality argument assumes it knows all effects.
    let mut blocked = false;
    for &i in &router {
        if registry.get(program.fns[i].key).is_none() {
            facts.bails.push(Bail {
                first: Some(i),
                second: None,
                reason: BailReason::UninstalledKey(program.fns[i].key),
            });
            blocked = true;
        }
    }
    if blocked {
        return facts;
    }

    let mut eliminated = vec![false; program.fns.len()];

    // Pass 1: redundant-parse elimination (publisher → adjacent consumer).
    for w in router.windows(2) {
        let (i, j) = (w[0], w[1]);
        let (ti, tj) = (&program.fns[i], &program.fns[j]);
        let pi = registry.get(ti.key).expect("checked installed");
        let pj = registry.get(tj.key).expect("checked installed");
        if !pi.writes_parsed_dag() {
            continue;
        }
        if pj.consumes_parsed_dag_with_fallback() {
            if ti.field_loc == tj.field_loc && ti.field_len == tj.field_len {
                // Constant-folded from the triple: the consumer's walk visits
                // at most cap nodes and resolves a route in at most cap−1
                // lookups once the pre-parse stage is folded away.
                let cap = dag_nodes_cap(tj.field_len);
                let fused_model = OpCost::lookup(1, cap.saturating_sub(1).max(1) as u32);
                facts.rewrites.push(Rewrite::EliminateRedundantParse {
                    parse: i,
                    into: j,
                    fused_model,
                });
                eliminated[i] = true;
            } else {
                facts.bails.push(Bail {
                    first: Some(i),
                    second: Some(j),
                    reason: BailReason::SpanMismatch,
                });
            }
        } else if router.iter().any(|&k| {
            k > j
                && registry
                    .get(program.fns[k].key)
                    .is_some_and(|o| o.consumes_parsed_dag_with_fallback())
        }) {
            facts.bails.push(Bail {
                first: Some(i),
                second: None,
                reason: BailReason::NotAdjacent,
            });
        }
    }

    // Pass 2: dead-key-write elimination.
    for (pos, &i) in router.iter().enumerate() {
        if eliminated[i] {
            continue;
        }
        let t = &program.fns[i];
        let op = registry.get(t.key).expect("checked installed");
        let fp = footprint(t, registry).expect("checked installed");
        let dead = fp.writes_key
            && fp.write.is_none()
            && op.infallible_for(t)
            && !router[pos + 1..]
                .iter()
                .any(|&k| footprint(&program.fns[k], registry).is_some_and(|f| f.reads_key));
        if dead {
            facts.rewrites.push(Rewrite::EliminateDeadKeyWrite { index: i });
            eliminated[i] = true;
        }
    }

    // Pass 3: hoist packet-invariant setup on surviving hops.
    for &i in &router {
        if eliminated[i] {
            continue;
        }
        let t = &program.fns[i];
        let op = registry.get(t.key).expect("checked installed");
        if op.hoistable() {
            let hoisted_model = op.hoisted_cost(t.field_len);
            if hoisted_model != op.cost(t.field_len) {
                facts.rewrites.push(Rewrite::HoistKeySchedule { index: i, hoisted_model });
            }
        }
    }

    // Pass 4: stage fusion over surviving adjacent pairs. Fused hops share
    // stage occupancy on hardware, so members must be mutually
    // conflict-free; groups grow greedily and a conflict with *any* member
    // closes the group (and is recorded as a bail for the adjacent pair).
    let surviving: Vec<usize> = router.iter().copied().filter(|&i| !eliminated[i]).collect();
    let mut group: Vec<usize> = Vec::new();
    for w in surviving.windows(2) {
        let (i, j) = (w[0], w[1]);
        if group.is_empty() {
            group.push(i);
        }
        let fj = footprint(&program.fns[j], registry).expect("checked installed");
        let clash = group.iter().any(|&g| {
            let fg = footprint(&program.fns[g], registry).expect("checked installed");
            conflicts(&fg, &fj)
        });
        if clash {
            let fi = footprint(&program.fns[i], registry).expect("checked installed");
            let reason = if conflicts(&fi, &fj) {
                classify_conflict(&fi, &fj)
            } else {
                // The clash is with an earlier group member.
                BailReason::OrderDependentWrites
            };
            facts.bails.push(Bail { first: Some(i), second: Some(j), reason });
            group.clear();
        } else {
            facts.rewrites.push(Rewrite::FuseAdjacent { first: i, second: j });
            group.push(j);
        }
    }

    facts
}

/// One admissible-but-unoptimizable program, with the bail dipopt must
/// record for it.
pub struct OptCorpusCase {
    /// Short stable identifier.
    pub name: &'static str,
    /// Why the program must not be optimized.
    pub description: &'static str,
    /// The program (passes all four admission passes).
    pub program: FnProgram,
    /// The bail reason dipopt must record, with zero rewrites.
    pub expect: BailReason,
}

/// Programs that are *admissible* — all four admission passes accept them —
/// but that dipopt must provably refuse to optimize. The pinned contract:
/// `analyze` returns **zero rewrites** and records the expected bail.
pub fn optimization_corpus() -> Vec<OptCorpusCase> {
    use dip_wire::triple::FnTriple;
    vec![
        OptCorpusCase {
            name: "aliasing-spans",
            description: "two F_intent hops rewrite the same 720-bit span; \
                          write/write aliasing makes any reordering or fusion unsound",
            program: FnProgram::new(
                vec![
                    FnTriple::router(0, 720, FnKey::Intent),
                    FnTriple::router(0, 720, FnKey::Intent),
                ],
                90,
                false,
            ),
            expect: BailReason::AliasingWrites,
        },
        OptCorpusCase {
            name: "order-dependent-writes",
            description: "F_intent rewrites bits 0..720, then F_32_match reads bits 32..64 \
                          of the rewritten span; the pair is order-dependent",
            program: FnProgram::new(
                vec![
                    FnTriple::router(0, 720, FnKey::Intent),
                    FnTriple::router(32, 32, FnKey::Match32),
                ],
                90,
                false,
            ),
            expect: BailReason::OrderDependentWrites,
        },
        OptCorpusCase {
            name: "verdict-dependent-parse",
            description: "F_DAG parses span 0..720 but F_intent walks span 64..784; \
                          the intent's verdict depends on the published parse, so \
                          eliminating it would route on different bytes",
            program: FnProgram::new(
                vec![
                    FnTriple::router(0, 720, FnKey::Dag),
                    FnTriple::router(64, 720, FnKey::Intent),
                ],
                98,
                false,
            ),
            expect: BailReason::SpanMismatch,
        },
        OptCorpusCase {
            name: "parallel-program",
            description: "hazard-free parallel-flagged program; the wave planner owns it \
                          and dipopt must not second-guess the runtime schedule",
            program: FnProgram::new(
                vec![
                    FnTriple::router(0, 32, FnKey::Match32),
                    FnTriple::router(32, 32, FnKey::Source),
                ],
                8,
                true,
            ),
            expect: BailReason::ParallelProgram,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Checker;
    use dip_wire::triple::FnTriple;

    #[test]
    fn lattice_join_laws() {
        use AbstractVal::*;
        let samples = [Unknown, Const(3), Const(7), Interval { lo: 1, hi: 5 }];
        for a in samples {
            // Idempotent; Unknown is top.
            assert_eq!(a.join(a), a);
            assert_eq!(a.join(Unknown), Unknown);
            for b in samples {
                // Commutative.
                assert_eq!(a.join(b), b.join(a));
            }
        }
        assert_eq!(Const(3).join(Const(7)), Interval { lo: 3, hi: 7 });
        assert_eq!(Const(3).join(Interval { lo: 1, hi: 5 }), Interval { lo: 1, hi: 5 });
        assert_eq!(Const(3).as_const(), Some(3));
        assert_eq!(Interval { lo: 1, hi: 5 }.as_const(), None);
    }

    #[test]
    fn xia_chain_eliminates_the_redundant_parse() {
        // The XIA wire program: F_DAG then F_intent over the same 3-node
        // 720-bit span. The parse is redundant — F_intent re-parses
        // identically on a scratch miss — and the fused walk needs at most
        // nodes−1 lookups.
        let p = FnProgram::new(
            vec![FnTriple::router(0, 720, FnKey::Dag), FnTriple::router(0, 720, FnKey::Intent)],
            90,
            false,
        );
        let facts = analyze(&p, &FnRegistry::standard());
        assert_eq!(
            facts.rewrites,
            vec![Rewrite::EliminateRedundantParse {
                parse: 0,
                into: 1,
                fused_model: OpCost::lookup(1, 2),
            }]
        );
        assert_eq!(facts.ops_eliminated(), 1);
        // The folded node-count fact backs the fused model.
        assert_eq!(facts.hops[1].dag_nodes, AbstractVal::Interval { lo: 1, hi: 3 });
    }

    #[test]
    fn opt_chain_hoists_the_key_schedule_and_respects_key_deps() {
        // §3's OPT chain: parm → MAC → mark (+ host-tagged ver).
        let p = FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
                FnTriple::host(0, 544, FnKey::Ver),
            ],
            68,
            false,
        );
        let facts = analyze(&p, &FnRegistry::standard());
        assert_eq!(facts.hoists(), 1);
        assert!(facts.rewrites.contains(&Rewrite::HoistKeySchedule {
            index: 0,
            hoisted_model: OpCost::cipher(1, 2, 0),
        }));
        // parm→MAC is a key dependency, MAC→mark an order-dependent write;
        // neither pair fuses and nothing is eliminated.
        assert!(facts.bailed(BailReason::KeyDependency));
        assert!(facts.bailed(BailReason::OrderDependentWrites));
        assert_eq!(facts.fusions(), 0);
        assert_eq!(facts.ops_eliminated(), 0);
    }

    #[test]
    fn lone_key_derivation_is_a_dead_write() {
        let p = FnProgram::new(vec![FnTriple::router(128, 128, FnKey::Parm)], 68, false);
        let facts = analyze(&p, &FnRegistry::standard());
        assert_eq!(facts.rewrites, vec![Rewrite::EliminateDeadKeyWrite { index: 0 }]);
        // The eliminated hop must not also be hoisted.
        assert_eq!(facts.hoists(), 0);
    }

    #[test]
    fn disjoint_readers_fuse() {
        // The dip32 chain: match then source touch disjoint spans, no keys.
        let p = FnProgram::new(
            vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)],
            8,
            false,
        );
        let facts = analyze(&p, &FnRegistry::standard());
        assert_eq!(facts.rewrites, vec![Rewrite::FuseAdjacent { first: 0, second: 1 }]);
        assert_eq!(facts.fusions(), 1);
    }

    #[test]
    fn fusion_groups_require_mutual_compatibility() {
        // a reads 0..32, b reads 64..96, c rewrites 0..720: c conflicts with
        // a (already in the group) even though it could pair with b alone —
        // the group must close.
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(64, 32, FnKey::Match32),
                FnTriple::router(0, 720, FnKey::Intent),
            ],
            90,
            false,
        );
        let facts = analyze(&p, &FnRegistry::standard());
        assert_eq!(facts.rewrites, vec![Rewrite::FuseAdjacent { first: 0, second: 1 }]);
        assert!(facts.bailed(BailReason::OrderDependentWrites));
    }

    #[test]
    fn distant_consumer_blocks_parse_elimination() {
        // F_DAG's publish is consumed two hops later; the intervening hop
        // makes adjacency-based elimination unprovable.
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 720, FnKey::Dag),
                FnTriple::router(720, 32, FnKey::Match32),
                FnTriple::router(0, 720, FnKey::Intent),
            ],
            94,
            false,
        );
        let facts = analyze(&p, &FnRegistry::standard());
        assert!(facts.bailed(BailReason::NotAdjacent));
        assert!(facts
            .rewrites
            .iter()
            .all(|r| !matches!(r, Rewrite::EliminateRedundantParse { .. })));
    }

    #[test]
    fn uninstalled_key_blocks_everything() {
        let p = FnProgram::new(
            vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)],
            8,
            false,
        );
        let facts = analyze(&p, &FnRegistry::with_keys(&[FnKey::Match32]));
        assert!(facts.bailed(BailReason::UninstalledKey(FnKey::Source)));
        assert!(facts.rewrites.is_empty());
    }

    #[test]
    fn corpus_cases_are_admissible_yet_never_optimized() {
        let checker = Checker::new();
        for case in optimization_corpus() {
            let report = checker.check(&case.program);
            assert!(report.is_clean(), "corpus case {} must be admissible: {report}", case.name);
            let facts = analyze(&case.program, &FnRegistry::standard());
            assert!(
                facts.rewrites.is_empty(),
                "corpus case {} must not be optimized, got {:?}",
                case.name,
                facts.rewrites
            );
            assert!(
                facts.bailed(case.expect),
                "corpus case {} must bail with {:?}, got {:?}",
                case.name,
                case.expect,
                facts.bails
            );
        }
    }

    #[test]
    fn hop_facts_fold_program_constants() {
        let p = FnProgram::new(
            vec![FnTriple::router(0, 416, FnKey::Mac), FnTriple::host(0, 544, FnKey::Ver)],
            68,
            false,
        );
        let facts = analyze(&p, &FnRegistry::standard());
        let mac = &facts.hops[0];
        assert_eq!(mac.field_loc, AbstractVal::Const(0));
        assert_eq!(mac.field_len, AbstractVal::Const(416));
        assert_eq!(mac.field_value, AbstractVal::Unknown);
        // 52 bytes of coverage → 1 length block + 4 message blocks.
        assert_eq!(mac.cipher_blocks, AbstractVal::Const(5));
        assert!(mac.reads_key && !mac.writes_key);
        assert!(facts.hops[1].host);
    }
}

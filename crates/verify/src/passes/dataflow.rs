//! Pass 3 — data-flow checks over the router-executed chain.
//!
//! This pass shares its notion of "what bits does an operation touch"
//! with the runtime parallel planner — both are built on
//! [`dip_fnops::parallel::footprint`] and
//! [`dip_fnops::parallel::conflicts`] — so a hazard reported here is
//! exactly an edge the planner would serialize. Three properties are
//! checked:
//!
//! * **Dynamic-key def-use** (§3's `F_parm` → `F_MAC`/`F_mark` chain): an
//!   operation that reads the per-packet dynamic key must be preceded by
//!   one that derives it, or the router drops with `MissingDynamicKey`.
//! * **MAC-then-mutate**: once `F_MAC` has covered a bit range (and
//!   deposited its tag), a later operation overwriting those bits
//!   invalidates the authentication — unless that operation is itself part
//!   of the dynamic-key chain (`F_mark` updating the PVF *inside* the
//!   covered range is the sanctioned §3 composition, not a bug).
//! * **Parallel-flag hazards** (§2.2): when the packet requests modular
//!   parallelism, two conflicting operations are only safe if the planner
//!   serializes them — which it does for dynamic-key chain members. A
//!   conflict where *either* side is outside the chain means the flag was
//!   set on a program that cannot actually parallelize safely.

use crate::diag::{DiagCode, Diagnostic};
use crate::program::FnProgram;
use dip_fnops::parallel::{conflicts, footprint, ranges_overlap, Footprint};
use dip_fnops::FnRegistry;
use dip_wire::triple::{FnKey, FnTriple};

/// Runs the data-flow pass. `semantics` supplies operation behavior
/// (footprints); keys it does not know are skipped here — the registry
/// pass owns "unknown key" reporting.
pub fn check(program: &FnProgram, semantics: &FnRegistry) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let chain: Vec<(usize, &FnTriple, Option<Footprint>)> =
        program.router_fns().map(|(i, t)| (i, t, footprint(t, semantics))).collect();

    check_key_def_use(&chain, &mut diags);
    check_mac_then_mutate(&chain, &mut diags);
    if program.parallel {
        check_parallel_hazards(&chain, &mut diags);
    }
    diags
}

/// Member of the dynamic-key chain: serialized by the planner and
/// sanctioned to cooperate on the authentication block.
fn in_key_chain(f: &Footprint) -> bool {
    f.reads_key || f.writes_key
}

fn check_key_def_use(chain: &[(usize, &FnTriple, Option<Footprint>)], diags: &mut Vec<Diagnostic>) {
    let mut key_defined = false;
    for (i, t, fp) in chain {
        let Some(fp) = fp else { continue };
        if fp.reads_key && !key_defined {
            diags.push(
                Diagnostic::error(
                    DiagCode::KeyUseBeforeDef,
                    format!(
                        "{} reads the per-packet dynamic key but no earlier F_parm derives it",
                        t.key.notation()
                    ),
                )
                .at_triple(*i),
            );
        }
        if fp.writes_key {
            key_defined = true;
        }
    }
}

fn check_mac_then_mutate(
    chain: &[(usize, &FnTriple, Option<Footprint>)],
    diags: &mut Vec<Diagnostic>,
) {
    for (mac_pos, (mac_i, mac_t, mac_fp)) in chain.iter().enumerate() {
        if mac_t.key != FnKey::Mac {
            continue;
        }
        let Some(mac_fp) = mac_fp else { continue };
        // Protected bits: the covered field plus the deposited tag slot.
        let coverage = mac_fp.read;
        let tag = mac_fp.write;
        for (j, t, fp) in &chain[mac_pos + 1..] {
            let Some(fp) = fp else { continue };
            let Some(w) = fp.write else { continue };
            if fp.reads_key {
                // F_mark (and any further MAC) participates in the same
                // chain; its writes are part of the protocol, not damage.
                continue;
            }
            let hits_coverage = ranges_overlap(w, coverage);
            let hits_tag = tag.is_some_and(|tg| ranges_overlap(w, tg));
            if hits_coverage || hits_tag {
                diags.push(
                    Diagnostic::error(
                        DiagCode::MacThenMutate,
                        format!(
                            "{} overwrites bits {}..{} {} by the F_MAC at fn#{mac_i}",
                            t.key.notation(),
                            w.0,
                            w.1,
                            if hits_coverage { "covered" } else { "of the tag written" },
                        ),
                    )
                    .at_triple(*j)
                    .with_span(w),
                );
            }
        }
    }
}

fn check_parallel_hazards(
    chain: &[(usize, &FnTriple, Option<Footprint>)],
    diags: &mut Vec<Diagnostic>,
) {
    for (pos, (i, ti, fi)) in chain.iter().enumerate() {
        let Some(fi) = fi else { continue };
        for (j, tj, fj) in &chain[pos + 1..] {
            let Some(fj) = fj else { continue };
            if !conflicts(fi, fj) {
                continue;
            }
            // Both ends inside the dynamic-key chain: the planner
            // serializes them (key dependency), so the flag is honest.
            if in_key_chain(fi) && in_key_chain(fj) {
                continue;
            }
            diags.push(
                Diagnostic::error(
                    DiagCode::ParallelHazard,
                    format!(
                        "parallel flag set but {} (fn#{i}) and {} (fn#{j}) conflict on packet state",
                        ti.key.notation(),
                        tj.key.notation()
                    ),
                )
                .at_triple(*j),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std() -> FnRegistry {
        FnRegistry::standard()
    }

    fn opt_chain(parallel: bool) -> FnProgram {
        FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
                FnTriple::host(0, 544, FnKey::Ver),
            ],
            68,
            parallel,
        )
    }

    /// NDN+OPT data with the parallel flag — the layout built by
    /// `dip_protocols::ndn_opt::data_parallel` (OPT block at bit 32).
    fn ndn_opt_parallel() -> FnProgram {
        FnProgram::new(
            vec![
                FnTriple::router(0, 32, FnKey::Pit),
                FnTriple::router(32 + 128, 128, FnKey::Parm),
                FnTriple::router(32, 416, FnKey::Mac),
                FnTriple::router(32 + 288, 128, FnKey::Mark),
                FnTriple::host(32, 544, FnKey::Ver),
            ],
            72,
            true,
        )
    }

    #[test]
    fn paper_opt_chain_is_clean() {
        assert!(check(&opt_chain(false), &std()).is_empty());
        // Even with the parallel flag: every conflict is inside the
        // dynamic-key chain, which the planner serializes.
        assert!(check(&opt_chain(true), &std()).is_empty());
    }

    #[test]
    fn ndn_opt_parallel_data_is_clean() {
        assert!(check(&ndn_opt_parallel(), &std()).is_empty());
    }

    #[test]
    fn mac_without_parm_is_use_before_def() {
        let p = FnProgram::new(
            vec![FnTriple::router(0, 416, FnKey::Mac), FnTriple::router(288, 128, FnKey::Mark)],
            68,
            false,
        );
        let d = check(&p, &std());
        assert_eq!(d.len(), 2, "{d:?}"); // both Mac and Mark read the key
        assert!(d.iter().all(|x| x.code == DiagCode::KeyUseBeforeDef));
    }

    #[test]
    fn parm_after_use_is_still_use_before_def() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(288, 128, FnKey::Mark),
            ],
            68,
            false,
        );
        let d = check(&p, &std());
        assert_eq!(d.len(), 1, "{d:?}"); // Mac flagged; Mark comes after parm
        assert_eq!(d[0].code, DiagCode::KeyUseBeforeDef);
        assert_eq!(d[0].triple, Some(0));
    }

    #[test]
    fn host_tagged_ver_never_counts_as_key_use() {
        // F_ver reads session material at the destination, not the
        // router's per-packet dynamic key; the chain ending in a host Ver
        // with no router ops must be clean.
        let p = FnProgram::new(vec![FnTriple::host(0, 544, FnKey::Ver)], 68, false);
        assert!(check(&p, &std()).is_empty());
    }

    #[test]
    fn mutating_covered_bits_after_mac_is_flagged() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(0, 128, FnKey::Intent), // writes inside coverage
            ],
            68,
            false,
        );
        let d = check(&p, &std());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::MacThenMutate);
        assert_eq!(d[0].triple, Some(2));
        assert_eq!(d[0].span, Some((0, 128)));
    }

    #[test]
    fn mutating_the_tag_slot_is_flagged_too() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(416, 128, FnKey::Intent), // clobbers the tag
            ],
            68,
            false,
        );
        let d = check(&p, &std());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::MacThenMutate);
        assert!(d[0].message.contains("tag"));
    }

    #[test]
    fn mark_inside_mac_coverage_is_the_sanctioned_composition() {
        // §3: F_mark updates the PVF *within* the MAC'd range by design.
        assert!(check(&opt_chain(false), &std()).is_empty());
    }

    #[test]
    fn writes_before_the_mac_are_fine() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 128, FnKey::Intent),
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
            ],
            68,
            false,
        );
        assert!(check(&p, &std()).is_empty());
    }

    #[test]
    fn parallel_flag_over_conflicting_writers_is_a_hazard() {
        let p = FnProgram::new(
            vec![FnTriple::router(0, 64, FnKey::Intent), FnTriple::router(0, 64, FnKey::Intent)],
            8,
            true,
        );
        let d = check(&p, &std());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::ParallelHazard);
        // Same program without the flag: sequential execution, no hazard.
        let p = FnProgram::new(p.fns, 8, false);
        assert!(check(&p, &std()).is_empty());
    }

    #[test]
    fn disjoint_ops_parallelize_cleanly() {
        let p = FnProgram::new(
            vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)],
            8,
            true,
        );
        assert!(check(&p, &std()).is_empty());
    }

    #[test]
    fn unknown_keys_are_left_to_the_registry_pass() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 32, FnKey::Other(0x300)),
                FnTriple::router(0, 32, FnKey::Other(0x301)),
            ],
            4,
            true,
        );
        assert!(check(&p, &std()).is_empty());
    }
}

//! Pass 4 — resource feasibility against a pipeline budget.
//!
//! §4.1's Tofino mapping pre-writes operation modules into match-action
//! stages and unrolls the FN loop; a chain that wants more stages, lookups
//! or cipher math than the pipeline has cannot be deployed at all. This
//! pass sums the per-operation [`OpCost`]s the modules themselves report
//! (the same numbers the `dip-sim` timing model consumes) and compares
//! them against a [`ResourceBudget`].
//!
//! Stage accounting honors the parallel flag: modular parallelism packs
//! non-conflicting operations into the *same* stages, so a parallel
//! program is charged, per planner wave, only the widest member — computed
//! with the very planner ([`dip_fnops::parallel::plan`]) routers run.

use crate::budget::ResourceBudget;
use crate::diag::{DiagCode, Diagnostic};
use crate::program::FnProgram;
use dip_fnops::parallel::plan;
use dip_fnops::{FnRegistry, OpCost};
use dip_wire::triple::FnTriple;

/// Runs the resource pass.
pub fn check(
    program: &FnProgram,
    semantics: &FnRegistry,
    budget: &ResourceBudget,
) -> Vec<Diagnostic> {
    let router: Vec<FnTriple> = program.router_fns().map(|(_, t)| *t).collect();
    let costs: Vec<Option<OpCost>> =
        router.iter().map(|t| semantics.get(t.key).map(|op| op.cost(t.field_len))).collect();

    let mut total = OpCost::default();
    for c in costs.iter().flatten() {
        total = total + *c;
    }

    // Stage occupancy under modular parallelism: per wave, the widest
    // member (the paper's §2.2 speedup is exactly this packing).
    let stages = if program.parallel {
        let p = plan(&router, semantics);
        p.waves
            .iter()
            .map(|wave| wave.iter().map(|&i| costs[i].map_or(0, |c| c.stages)).max().unwrap_or(0))
            .sum()
    } else {
        total.stages
    };

    let mut diags = Vec::new();
    let mut over = |code, used: u32, avail: u32, what: &str| {
        if used > avail {
            diags.push(Diagnostic::error(
                code,
                format!("chain needs {used} {what} but the target provides {avail}"),
            ));
        }
    };
    over(DiagCode::StageBudgetExceeded, stages, budget.max_stages, "match-action stages");
    over(
        DiagCode::LookupBudgetExceeded,
        total.table_lookups,
        budget.max_table_lookups,
        "table lookups",
    );
    over(
        DiagCode::CipherBudgetExceeded,
        total.cipher_blocks,
        budget.max_cipher_blocks,
        "cipher blocks",
    );
    over(DiagCode::ResubmitBudgetExceeded, total.resubmits, budget.max_resubmits, "resubmissions");
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_fnops::{Action, FieldOp, PacketCtx, RouterState};
    use dip_wire::triple::FnKey;

    fn std() -> FnRegistry {
        FnRegistry::standard()
    }

    fn tofino() -> ResourceBudget {
        ResourceBudget::tofino()
    }

    /// NDN+OPT — the heaviest paper composition — must fit the Tofino
    /// budget (pit 1 + parm 1 + mac 2 + mark 1 = 5 stages; 3+5+2 = 10
    /// cipher blocks; 1 lookup).
    #[test]
    fn ndn_opt_fits_the_tofino_budget() {
        let p = FnProgram::new(
            vec![
                FnTriple::router(0, 32, FnKey::Pit),
                FnTriple::router(160, 128, FnKey::Parm),
                FnTriple::router(32, 416, FnKey::Mac),
                FnTriple::router(320, 128, FnKey::Mark),
                FnTriple::host(32, 544, FnKey::Ver),
            ],
            72,
            false,
        );
        assert!(check(&p, &std(), &tofino()).is_empty());
    }

    #[test]
    fn stage_overflow_is_flagged() {
        let fns: Vec<FnTriple> =
            (0..16).map(|i| FnTriple::router(i * 8, 8, FnKey::Source)).collect();
        let p = FnProgram::new(fns, 16, false);
        let d = check(&p, &std(), &tofino());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::StageBudgetExceeded);
        assert!(d[0].message.contains("16"));
    }

    #[test]
    fn parallel_packing_reclaims_stages() {
        // The same 16 one-stage ops with the parallel flag: all fields are
        // disjoint reads, so the planner packs them into one wave = one
        // stage — within budget.
        let fns: Vec<FnTriple> =
            (0..16).map(|i| FnTriple::router(i * 8, 8, FnKey::Source)).collect();
        let p = FnProgram::new(fns, 16, true);
        assert!(check(&p, &std(), &tofino()).is_empty());
    }

    #[test]
    fn cipher_overflow_is_flagged() {
        // parm + five disjoint 416-bit MACs: 3 + 5·5 = 28 blocks > 24,
        // while stages (1 + 5·2 = 11) stay inside the budget.
        let mut fns = vec![FnTriple::router(0, 128, FnKey::Parm)];
        for k in 0..5u16 {
            fns.push(FnTriple::router(128 + k * 544, 416, FnKey::Mac));
        }
        let p = FnProgram::new(fns, (128 + 5 * 544) / 8, false);
        let d = check(&p, &std(), &tofino());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::CipherBudgetExceeded);
    }

    #[test]
    fn lookup_overflow_is_flagged() {
        // Nine 32-bit FIB matches: 9 lookups·2 = 18 > 8 (and 9 stages ≤ 12).
        let fns: Vec<FnTriple> = (0..9).map(|i| FnTriple::router(i * 32, 32, FnKey::Fib)).collect();
        let p = FnProgram::new(fns, 36, false);
        let d = check(&p, &std(), &tofino());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::LookupBudgetExceeded);
    }

    /// An op that needs a packet resubmission per invocation (AES-style).
    struct ResubmitOp;
    impl FieldOp for ResubmitOp {
        fn key(&self) -> FnKey {
            FnKey::Other(0x700)
        }
        fn execute(&self, _t: &FnTriple, _s: &mut RouterState, _c: &mut PacketCtx<'_>) -> Action {
            Action::Continue
        }
        fn cost(&self, _field_bits: u16) -> OpCost {
            OpCost::cipher(1, 1, 1)
        }
    }

    #[test]
    fn resubmit_overflow_is_flagged() {
        let mut reg = FnRegistry::standard();
        reg.install(std::sync::Arc::new(ResubmitOp));
        let fns = vec![
            FnTriple::router(0, 8, FnKey::Other(0x700)),
            FnTriple::router(8, 8, FnKey::Other(0x700)),
        ];
        let p = FnProgram::new(fns, 2, false);
        let d = check(&p, &reg, &tofino());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, DiagCode::ResubmitBudgetExceeded);
    }

    #[test]
    fn unconstrained_budget_never_fires() {
        let fns: Vec<FnTriple> = (0..200).map(|i| FnTriple::router(i, 1, FnKey::Source)).collect();
        let p = FnProgram::new(fns, 32, false);
        assert!(check(&p, &std(), &ResourceBudget::unconstrained()).is_empty());
    }

    #[test]
    fn unknown_keys_cost_nothing_here() {
        let p = FnProgram::new(vec![FnTriple::router(0, 8, FnKey::Other(0x666)); 40], 1, false);
        assert!(check(&p, &std(), &tofino()).is_empty());
    }
}

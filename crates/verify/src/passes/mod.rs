//! The four verifier passes.
//!
//! Each pass is a pure function from a program (plus whatever environment
//! it checks against) to a list of diagnostics, so they can be run
//! individually or composed by [`crate::Checker`]:
//!
//! 1. [`structural`] — wire-format geometry: bounds, widths, counts, tag
//!    bits. Needs nothing but the program.
//! 2. [`registry`] — installation: is every router-executed key present in
//!    each traversed AS's `FnRegistry`?
//! 3. [`dataflow`] — ordering: dynamic-key def-use, MAC-coverage
//!    invalidation, parallel-flag hazards. Reuses the *same* footprint and
//!    conflict machinery as the runtime planner in `dip_fnops::parallel`.
//! 4. [`resource`] — feasibility: summed pipeline costs against a
//!    [`crate::ResourceBudget`].

pub mod dataflow;
pub mod registry;
pub mod resource;
pub mod structural;

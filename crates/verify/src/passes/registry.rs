//! Pass 2 — registry checks: is the program installable where it will run?
//!
//! §2.3: hosts formulate FNs "considering both the required network
//! services and the supported FNs". This pass is the static form of that
//! consideration — every router-executed operation key must be installed
//! in each traversed AS's [`FnRegistry`], otherwise the chain dies (or is
//! silently skipped) at that hop.

use crate::diag::{DiagCode, Diagnostic};
use crate::program::FnProgram;
use dip_fnops::FnRegistry;

/// Runs the registry pass against an ordered list of per-hop registries.
///
/// Host-tagged triples are exempt: routers skip them (Algorithm 1 line 5)
/// and the *receiving host's* registry is a different question from path
/// deployability.
pub fn check(program: &FnProgram, hops: &[FnRegistry]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (hop, registry) in hops.iter().enumerate() {
        for (i, t) in program.router_fns() {
            if !registry.supports(t.key) {
                diags.push(
                    Diagnostic::error(
                        DiagCode::UnsupportedAtHop,
                        format!(
                            "{} (key {}) is not installed at hop {hop}",
                            t.key.notation(),
                            t.key.to_wire()
                        ),
                    )
                    .at_triple(i)
                    .at_hop(hop),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::triple::{FnKey, FnTriple};

    fn ndn_interest() -> FnProgram {
        FnProgram::new(vec![FnTriple::router(0, 32, FnKey::Fib)], 4, false)
    }

    #[test]
    fn fully_capable_path_is_clean() {
        let hops = vec![FnRegistry::standard(); 3];
        assert!(check(&ndn_interest(), &hops).is_empty());
    }

    #[test]
    fn missing_key_names_the_hop() {
        let hops = vec![
            FnRegistry::standard(),
            FnRegistry::with_keys(&[FnKey::Match32, FnKey::Source]),
            FnRegistry::standard(),
        ];
        let d = check(&ndn_interest(), &hops);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::UnsupportedAtHop);
        assert_eq!(d[0].hop, Some(1));
        assert_eq!(d[0].triple, Some(0));
        assert!(d[0].message.contains("F_FIB"));
    }

    #[test]
    fn host_tagged_triples_are_exempt() {
        let p = FnProgram::new(vec![FnTriple::host(0, 544, FnKey::Ver)], 68, false);
        let hops = vec![FnRegistry::empty()];
        assert!(check(&p, &hops).is_empty());
    }

    #[test]
    fn unknown_keys_are_unsupported_everywhere() {
        let p = FnProgram::new(vec![FnTriple::router(0, 8, FnKey::Other(0x300))], 1, false);
        let d = check(&p, &[FnRegistry::standard(), FnRegistry::standard()]);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.code == DiagCode::UnsupportedAtHop));
    }

    #[test]
    fn empty_path_checks_nothing() {
        assert!(check(&ndn_interest(), &[]).is_empty());
    }
}

//! Pass 1 — structural checks on the wire-format geometry.
//!
//! Everything here is decidable from the program alone: field bit-ranges
//! must lie inside the FN locations area (including `F_MAC`'s implicit
//! tag-slot write), counts must fit their header fields, fixed-width
//! operations must get fields of the right width, and the tag bit must
//! agree with where the operation can run.

use crate::diag::{DiagCode, Diagnostic};
use crate::program::FnProgram;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::{MAX_FN_LOC_LEN, MAX_FN_NUM};

/// Bits of the tag `F_MAC` deposits immediately after its covered field
/// (mirrors `dip_fnops::ops::mac_op::TAG_BITS`).
const MAC_TAG_BITS: usize = 128;

/// Runs the structural pass.
pub fn check(program: &FnProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let loc_bits = program.loc_bits();

    if program.fns.len() > MAX_FN_NUM {
        diags.push(Diagnostic::error(
            DiagCode::FnNumOverflow,
            format!(
                "{} FN triples exceed the 8-bit FN number limit of {MAX_FN_NUM}",
                program.fns.len()
            ),
        ));
    }
    if program.loc_len > MAX_FN_LOC_LEN {
        diags.push(Diagnostic::error(
            DiagCode::LocLenOverflow,
            format!(
                "locations area of {} bytes exceeds the 10-bit fn_loc_len limit of {MAX_FN_LOC_LEN}",
                program.loc_len
            ),
        ));
    }

    for (i, t) in program.fns.iter().enumerate() {
        check_bounds(i, t, loc_bits, &mut diags);
        check_width(i, t, &mut diags);
        check_tag(i, t, &mut diags);
    }
    diags
}

fn check_bounds(i: usize, t: &FnTriple, loc_bits: usize, diags: &mut Vec<Diagnostic>) {
    let span = (usize::from(t.field_loc), t.field_end());
    if t.field_end() > loc_bits {
        diags.push(
            Diagnostic::error(
                DiagCode::FieldOutOfBounds,
                format!(
                    "{} target field ends at bit {} but the locations area holds only {loc_bits} bits",
                    t.key.notation(),
                    t.field_end()
                ),
            )
            .at_triple(i)
            .with_span(span),
        );
        return;
    }
    // F_MAC writes its 128-bit tag just past the covered field; the router
    // drops the packet at runtime when that slot is missing, and the
    // accepted-programs-execute guarantee needs the slot checked here.
    if t.key == FnKey::Mac && !t.host {
        let tag = (t.field_end(), t.field_end() + MAC_TAG_BITS);
        if tag.1 > loc_bits {
            diags.push(
                Diagnostic::error(
                    DiagCode::FieldOutOfBounds,
                    format!(
                        "F_MAC tag slot ends at bit {} but the locations area holds only {loc_bits} bits",
                        tag.1
                    ),
                )
                .at_triple(i)
                .with_span(tag),
            );
        }
    }
}

fn check_width(i: usize, t: &FnTriple, diags: &mut Vec<Diagnostic>) {
    // F_parm and F_mark operate on exactly one 128-bit block (session id /
    // PVF); their modules drop other widths at runtime.
    if matches!(t.key, FnKey::Parm | FnKey::Mark) && t.field_len != 128 {
        diags.push(
            Diagnostic::error(
                DiagCode::BadFieldWidth,
                format!("{} requires a 128-bit field, got {} bits", t.key.notation(), t.field_len),
            )
            .at_triple(i)
            .with_span((usize::from(t.field_loc), t.field_end())),
        );
    }
}

fn check_tag(i: usize, t: &FnTriple, diags: &mut Vec<Diagnostic>) {
    // F_ver is the destination's verification (§2.3: "the host receives
    // and verifies the packet by performing F_ver") — a router-tagged one
    // would run mid-path with keys only the destination holds.
    if t.key == FnKey::Ver && !t.host {
        diags.push(
            Diagnostic::error(
                DiagCode::TagBitInconsistent,
                "F_ver is a host operation; its tag bit must be set".to_string(),
            )
            .at_triple(i),
        );
    }
    // The path-authentication chain needs *every router* to participate
    // (§2.4); tagging one of its ops host-side silently skips it on path.
    if matches!(t.key, FnKey::Parm | FnKey::Mac | FnKey::Mark) && t.host {
        diags.push(
            Diagnostic::error(
                DiagCode::TagBitInconsistent,
                format!(
                    "{} runs on every on-path router; its tag bit must be clear",
                    t.key.notation()
                ),
            )
            .at_triple(i),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt_program() -> FnProgram {
        FnProgram::new(
            vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
                FnTriple::host(0, 544, FnKey::Ver),
            ],
            68,
            false,
        )
    }

    #[test]
    fn paper_opt_chain_is_structurally_clean() {
        assert!(check(&opt_program()).is_empty());
    }

    #[test]
    fn field_past_locations_is_flagged() {
        let p = FnProgram::new(vec![FnTriple::router(0, 64, FnKey::Match32)], 4, false);
        let d = check(&p);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::FieldOutOfBounds);
        assert_eq!(d[0].span, Some((0, 64)));
        assert_eq!(d[0].triple, Some(0));
    }

    #[test]
    fn mac_tag_slot_must_fit_too() {
        // 58-byte area = 464 bits: the 416-bit coverage fits, the tag
        // slot (416..544) does not.
        let p = FnProgram::new(
            vec![FnTriple::router(128, 128, FnKey::Parm), FnTriple::router(0, 416, FnKey::Mac)],
            58,
            false,
        );
        let d = check(&p);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::FieldOutOfBounds);
        assert_eq!(d[0].span, Some((416, 544)));
        assert_eq!(d[0].triple, Some(1));
    }

    #[test]
    fn host_tagged_mac_skips_the_tag_slot_check() {
        // A host-tagged Mac is already tag-inconsistent; don't pile on an
        // out-of-bounds for a write routers will never perform.
        let p = FnProgram::new(vec![FnTriple::host(0, 416, FnKey::Mac)], 52, false);
        let d = check(&p);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::TagBitInconsistent);
    }

    #[test]
    fn fn_num_and_loc_len_overflow() {
        let p = FnProgram::new(vec![FnTriple::router(0, 8, FnKey::Source); 256], 1, false);
        assert!(check(&p).iter().any(|d| d.code == DiagCode::FnNumOverflow));
        let p = FnProgram::new(Vec::new(), 1024, false);
        let d = check(&p);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::LocLenOverflow);
    }

    #[test]
    fn parm_and_mark_require_128_bits() {
        for key in [FnKey::Parm, FnKey::Mark] {
            let p = FnProgram::new(vec![FnTriple::router(0, 64, key)], 8, false);
            let d = check(&p);
            assert_eq!(d.len(), 1, "{key:?}");
            assert_eq!(d[0].code, DiagCode::BadFieldWidth);
        }
        // 128 bits is fine.
        let p = FnProgram::new(vec![FnTriple::router(0, 128, FnKey::Parm)], 16, false);
        assert!(check(&p).is_empty());
    }

    #[test]
    fn tag_bit_rules() {
        let p = FnProgram::new(vec![FnTriple::router(0, 544, FnKey::Ver)], 68, false);
        let d = check(&p);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagCode::TagBitInconsistent);

        for key in [FnKey::Parm, FnKey::Mac, FnKey::Mark] {
            let len = if key == FnKey::Mac { 416 } else { 128 };
            let p = FnProgram::new(vec![FnTriple::host(0, len, key)], 68, false);
            assert!(check(&p).iter().any(|d| d.code == DiagCode::TagBitInconsistent), "{key:?}");
        }
    }

    #[test]
    fn zero_length_field_at_the_boundary_is_fine() {
        let p = FnProgram::new(vec![FnTriple::router(32, 0, FnKey::Source)], 4, false);
        assert!(check(&p).is_empty());
    }
}

//! # dip-verify — static verification of composed FN programs (`dipcheck`)
//!
//! DIP's expressiveness cuts both ways: because a packet header *is* a
//! program (an FN chain indexing into the locations area, §2.2), a host
//! can compose chains that are malformed, undeployable, or subtly
//! self-defeating — and the dataplane only discovers that at runtime, one
//! drop at a time. This crate is the static complement: it validates a
//! composed program **without executing it**, in four passes:
//!
//! 1. **structural** ([`passes::structural`]) — bit-range bounds inside
//!    the FN locations area (including `F_MAC`'s implicit tag-slot
//!    write), `FN_Num`/`fn_loc_len` limits, fixed-width operations, and
//!    tag-bit consistency;
//! 2. **registry** ([`passes::registry`]) — every router-executed key is
//!    installed in each traversed AS's [`FnRegistry`], with *unsupported
//!    at hop k* diagnostics (the static form of §2.3's planning);
//! 3. **data-flow** ([`passes::dataflow`]) — the `F_parm` →
//!    `F_MAC`/`F_mark` def-use order, MAC-coverage invalidation, and
//!    parallel-flag hazards, built on the *same* footprint/conflict
//!    machinery as the runtime planner ([`dip_fnops::parallel`]);
//! 4. **resource** ([`passes::resource`]) — summed pipeline costs against
//!    a deployment target's [`ResourceBudget`] (§4.1's Tofino limits).
//!
//! The guarantee the test-suite pins: a program this crate accepts
//! executes through the router pipeline without out-of-bounds errors or
//! drops attributable to construction (and every entry of the seeded
//! [`corpus`] of invalid programs is rejected with the expected
//! diagnostic, while the five paper protocols verify clean).
//!
//! ```
//! use dip_verify::{Checker, FnProgram};
//! use dip_wire::triple::{FnKey, FnTriple};
//!
//! // The §3 OPT chain: parm → MAC → mark on routers, ver at the host.
//! let opt = FnProgram::new(
//!     vec![
//!         FnTriple::router(128, 128, FnKey::Parm),
//!         FnTriple::router(0, 416, FnKey::Mac),
//!         FnTriple::router(288, 128, FnKey::Mark),
//!         FnTriple::host(0, 544, FnKey::Ver),
//!     ],
//!     68,
//!     false,
//! );
//! assert!(Checker::new().check(&opt).is_clean());
//!
//! // Reorder the derivation after its first use and the chain is caught.
//! let broken = FnProgram::new(
//!     vec![
//!         FnTriple::router(0, 416, FnKey::Mac),
//!         FnTriple::router(128, 128, FnKey::Parm),
//!     ],
//!     68,
//!     false,
//! );
//! assert!(Checker::new().check(&broken).has_errors());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod corpus;
pub mod diag;
pub mod opt;
pub mod passes;
pub mod program;

pub use budget::ResourceBudget;
pub use corpus::{invalid_corpus, CorpusCase};
pub use diag::{DiagCode, Diagnostic, Report, Severity};
pub use opt::{
    analyze, optimization_corpus, AbstractVal, Bail, BailReason, HopFacts, OptCorpusCase,
    ProgramFacts, Rewrite,
};
pub use program::FnProgram;

use dip_fnops::FnRegistry;
use dip_wire::packet::DipRepr;

/// The composed verifier: runs all four passes over a program.
pub struct Checker {
    /// Operation semantics (footprints, costs) used by the data-flow and
    /// resource passes, and the installation set `check` lints against.
    semantics: FnRegistry,
    /// Pipeline capacity for the resource pass.
    budget: ResourceBudget,
}

impl Checker {
    /// A checker with standard operation semantics and the Tofino budget.
    pub fn new() -> Self {
        Checker { semantics: FnRegistry::standard(), budget: ResourceBudget::tofino() }
    }

    /// Replaces the resource budget.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the semantics registry (e.g. to teach the verifier about
    /// custom operation modules and their footprints).
    pub fn with_semantics(mut self, registry: FnRegistry) -> Self {
        self.semantics = registry;
        self
    }

    /// Verifies a program against a single node's registry — the checker's
    /// own semantics registry doubles as the installation set.
    pub fn check(&self, program: &FnProgram) -> Report {
        self.check_path(program, std::slice::from_ref(&self.semantics))
    }

    /// Verifies a program for a path: the registry pass runs per hop, the
    /// remaining passes once.
    pub fn check_path(&self, program: &FnProgram, hops: &[FnRegistry]) -> Report {
        let mut report = Report::default();
        report.extend(passes::structural::check(program));
        report.extend(passes::registry::check(program, hops));
        report.extend(passes::dataflow::check(program, &self.semantics));
        report.extend(passes::resource::check(program, &self.semantics, &self.budget));
        report
    }
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

/// One-shot convenience: verify the program a [`DipRepr`] carries with the
/// default checker.
pub fn dipcheck(repr: &DipRepr) -> Report {
    Checker::new().check(&FnProgram::from_repr(repr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_fnops::parallel::{footprint, plan};
    use dip_wire::triple::{FnKey, FnTriple};

    #[test]
    fn dipcheck_convenience_on_a_repr() {
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations: vec![0u8; 8],
            ..Default::default()
        };
        assert!(dipcheck(&repr).is_clean());
    }

    #[test]
    fn check_path_aggregates_all_passes() {
        // Out of bounds + missing at hop + key-use-before-def, one report.
        let p = FnProgram::new(
            vec![FnTriple::router(0, 416, FnKey::Mac), FnTriple::router(512, 64, FnKey::Fib)],
            68,
            false,
        );
        let hops = vec![FnRegistry::with_keys(&[FnKey::Mac])];
        let r = Checker::new().check_path(&p, &hops);
        assert!(r.has_code(DiagCode::FieldOutOfBounds)); // fib field 512..576 > 544
        assert!(r.has_code(DiagCode::UnsupportedAtHop)); // fib missing at hop 0
        assert!(r.has_code(DiagCode::KeyUseBeforeDef)); // mac without parm
    }

    /// The verifier's parallel-hazard analysis and the runtime planner
    /// must agree: for programs with no dynamic-key operations (where the
    /// chain exemption never applies), a hazard is reported **iff** the
    /// planner needs more than one wave. Exhaustively checked over all
    /// 3-op chains drawn from a read op and a write op at two offsets.
    #[test]
    fn parallel_hazards_match_planner_waves_exactly() {
        let semantics = FnRegistry::standard();
        let checker = Checker::new().with_budget(ResourceBudget::unconstrained());
        // (key, loc): Match32 reads its field; Intent rewrites its field.
        let menu =
            [(FnKey::Match32, 0u16), (FnKey::Match32, 64), (FnKey::Intent, 0), (FnKey::Intent, 64)];
        let mut checked = 0;
        for a in 0..menu.len() {
            for b in 0..menu.len() {
                for c in 0..menu.len() {
                    let fns: Vec<FnTriple> = [menu[a], menu[b], menu[c]]
                        .iter()
                        .map(|&(k, loc)| FnTriple::router(loc, 64, k))
                        .collect();
                    debug_assert!(fns
                        .iter()
                        .all(|t| footprint(t, &semantics)
                            .is_some_and(|f| !f.reads_key && !f.writes_key)));
                    let depth = plan(&fns, &semantics).depth();
                    let program = FnProgram::new(fns, 16, true);
                    let report = checker.check(&program);
                    let hazard = report.has_code(DiagCode::ParallelHazard);
                    assert_eq!(
                        hazard,
                        depth > 1,
                        "chain {:?}: verifier hazard={hazard} but planner depth={depth}",
                        program.fns
                    );
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 64);
    }

    /// And for the sanctioned dynamic-key chain the two intentionally
    /// diverge: the planner serializes (depth > 1) while the verifier
    /// stays silent, because the flag is still safe to set.
    #[test]
    fn key_chain_is_serialized_by_planner_but_not_a_hazard() {
        let fns = vec![
            FnTriple::router(128, 128, FnKey::Parm),
            FnTriple::router(0, 416, FnKey::Mac),
            FnTriple::router(288, 128, FnKey::Mark),
        ];
        assert!(plan(&fns, &FnRegistry::standard()).depth() > 1);
        let report = Checker::new().check(&FnProgram::new(fns, 68, true));
        assert!(report.is_clean(), "{report}");
    }
}

//! Diagnostics emitted by the verifier passes.
//!
//! Every finding carries enough structure for tooling (severity, a stable
//! code, the offending triple index and bit span) plus a human message, so
//! the `dipcheck` CLI and library callers can both consume reports.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably broken; the program may still run.
    Warning,
    /// The program is malformed, will be dropped, or cannot be deployed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable machine-readable code identifying the class of finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// A target field (or an implicit write such as `F_MAC`'s tag slot)
    /// extends past the FN locations area.
    FieldOutOfBounds,
    /// More FN triples than the 8-bit `FN_Num` field can express.
    FnNumOverflow,
    /// FN locations area longer than the 10-bit `fn_loc_len` field allows.
    LocLenOverflow,
    /// The tag bit contradicts where the operation runs (e.g. a
    /// router-tagged `F_ver`, a host-tagged `F_MAC`).
    TagBitInconsistent,
    /// The operation rejects fields of this width at runtime (e.g.
    /// `F_parm`/`F_mark` require exactly 128 bits).
    BadFieldWidth,
    /// A router-executed operation key is not installed at some hop.
    UnsupportedAtHop,
    /// The parallel flag is set but two operations outside the dynamic-key
    /// chain conflict on packet bits.
    ParallelHazard,
    /// An operation reads the per-packet dynamic key before any `F_parm`
    /// defines it (the router would drop with `MissingDynamicKey`).
    KeyUseBeforeDef,
    /// A later operation overwrites bits covered by an earlier `F_MAC`,
    /// invalidating the tag before the destination can verify it.
    MacThenMutate,
    /// The chain occupies more match-action stages than the target
    /// pipeline provides.
    StageBudgetExceeded,
    /// The chain performs more table lookups than the target provides.
    LookupBudgetExceeded,
    /// The chain performs more cipher-block operations than the target's
    /// arithmetic stages can absorb.
    CipherBudgetExceeded,
    /// The chain needs more packet resubmissions than the target allows.
    ResubmitBudgetExceeded,
}

impl DiagCode {
    /// The code's stable string form (used in CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::FieldOutOfBounds => "field-out-of-bounds",
            DiagCode::FnNumOverflow => "fn-num-overflow",
            DiagCode::LocLenOverflow => "loc-len-overflow",
            DiagCode::TagBitInconsistent => "tag-bit-inconsistent",
            DiagCode::BadFieldWidth => "bad-field-width",
            DiagCode::UnsupportedAtHop => "unsupported-at-hop",
            DiagCode::ParallelHazard => "parallel-hazard",
            DiagCode::KeyUseBeforeDef => "key-use-before-def",
            DiagCode::MacThenMutate => "mac-then-mutate",
            DiagCode::StageBudgetExceeded => "stage-budget-exceeded",
            DiagCode::LookupBudgetExceeded => "lookup-budget-exceeded",
            DiagCode::CipherBudgetExceeded => "cipher-budget-exceeded",
            DiagCode::ResubmitBudgetExceeded => "resubmit-budget-exceeded",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable class of the finding.
    pub code: DiagCode,
    /// Index of the offending FN triple in the program, when one exists.
    pub triple: Option<usize>,
    /// Offending bit span `[start, end)` in the FN locations area.
    pub span: Option<(usize, usize)>,
    /// Path hop the finding applies to (registry pass).
    pub hop: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            triple: None,
            span: None,
            hop: None,
            message: message.into(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(code, message) }
    }

    /// Attaches the offending triple index.
    pub fn at_triple(mut self, i: usize) -> Self {
        self.triple = Some(i);
        self
    }

    /// Attaches the offending bit span.
    pub fn with_span(mut self, span: (usize, usize)) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches the path hop.
    pub fn at_hop(mut self, hop: usize) -> Self {
        self.hop = Some(hop);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(i) = self.triple {
            write!(f, " fn#{i}")?;
        }
        if let Some((s, e)) = self.span {
            write!(f, " bits {s}..{e}")?;
        }
        if let Some(h) = self.hop {
            write!(f, " at hop {h}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of verifying one FN program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Every finding, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an error (the program must be rejected).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Whether some finding carries `code`.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another pass.
    pub fn extend(&mut self, diags: Vec<Diagnostic>) {
        self.diagnostics.extend(diags);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_all_fields() {
        let d = Diagnostic::error(DiagCode::FieldOutOfBounds, "field past locations")
            .at_triple(2)
            .with_span((416, 544))
            .at_hop(1);
        assert_eq!(
            d.to_string(),
            "error[field-out-of-bounds] fn#2 bits 416..544 at hop 1: field past locations"
        );
    }

    #[test]
    fn report_classification() {
        let mut r = Report::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        r.push(Diagnostic::warning(DiagCode::ParallelHazard, "w"));
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        r.push(Diagnostic::error(DiagCode::KeyUseBeforeDef, "e"));
        assert!(r.has_errors());
        assert!(r.has_code(DiagCode::KeyUseBeforeDef));
        assert!(!r.has_code(DiagCode::MacThenMutate));
        assert_eq!(r.errors().count(), 1);
    }

    #[test]
    fn clean_report_displays_as_clean() {
        assert_eq!(Report::default().to_string(), "clean");
    }
}

//! Resource budgets for the resource-feasibility pass.
//!
//! §4.1's prototype runs on a Tofino, whose PISA pipeline has a fixed
//! number of match-action stages and charges a full extra pipeline pass
//! per resubmission. A composed chain that exceeds those capacities cannot
//! be deployed no matter how it is scheduled — which is exactly the kind
//! of error worth catching *before* handing a program to the dataplane.
//!
//! The budget lives here (in `dip-verify`) rather than in `dip-sim` so the
//! dependency order stays acyclic: the sim's `TofinoModel` *bridges to* a
//! budget, not the other way around.

/// Capacity limits of a deployment target's pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Match-action stages available to the FN chain.
    pub max_stages: u32,
    /// Table lookups (SRAM exact / TCAM LPM) available per packet.
    pub max_table_lookups: u32,
    /// 128-bit cipher-block operations the arithmetic stages can absorb
    /// per packet.
    pub max_cipher_blocks: u32,
    /// Packet resubmissions (extra full pipeline passes) allowed.
    pub max_resubmits: u32,
}

impl ResourceBudget {
    /// A Tofino-class PISA pipeline (§4.1): 12 stages, one resubmission.
    ///
    /// The cipher budget is sized so the heaviest paper composition
    /// (NDN+OPT: ≈10 blocks per packet) fits with headroom while a chain
    /// of stacked MACs does not.
    pub fn tofino() -> Self {
        ResourceBudget {
            max_stages: 12,
            max_table_lookups: 8,
            max_cipher_blocks: 24,
            max_resubmits: 1,
        }
    }

    /// A software dataplane: no hard stage fabric, generous limits that
    /// only catch runaway chains.
    pub fn software() -> Self {
        ResourceBudget {
            max_stages: 256,
            max_table_lookups: 256,
            max_cipher_blocks: 4096,
            max_resubmits: 64,
        }
    }

    /// No limits at all (disables the resource pass).
    pub fn unconstrained() -> Self {
        ResourceBudget {
            max_stages: u32::MAX,
            max_table_lookups: u32::MAX,
            max_cipher_blocks: u32::MAX,
            max_resubmits: u32::MAX,
        }
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::tofino()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_tofino_profile() {
        assert_eq!(ResourceBudget::default(), ResourceBudget::tofino());
        assert_eq!(ResourceBudget::tofino().max_stages, 12);
    }

    #[test]
    fn profiles_are_ordered_by_generosity() {
        let t = ResourceBudget::tofino();
        let s = ResourceBudget::software();
        let u = ResourceBudget::unconstrained();
        assert!(t.max_stages < s.max_stages && s.max_stages < u.max_stages);
        assert!(t.max_cipher_blocks < s.max_cipher_blocks);
    }
}

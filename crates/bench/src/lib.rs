//! # dip-bench — workload generation shared by every table/figure harness
//!
//! The paper's evaluation protocol (§4.2): "For the IP, NDN, OPT, and
//! NDN+OPT packets, we test their processing time with 128-byte, 768-byte,
//! and 1500-byte packet sizes. The forwarding times of IPv4 and IPv6
//! packets are used as baselines. We carried out 1000 forwarding tests for
//! each size of the packet." This crate builds exactly those workloads —
//! 1000 *distinct* packets per protocol per size (distinct so NDN's
//! duplicate-interest suppression and PIT consumption see realistic
//! traffic) — plus the native IPv4/IPv6 forwarding baselines.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;
pub mod json;
pub mod native;
pub mod workload;

pub use dip_crypto::rng;
pub use dip_crypto::DetRng;
pub use harness::{BenchGroup, Bencher};
pub use json::JsonLine;
pub use native::{native_ipv4_forward, native_ipv6_forward};
pub use workload::{Protocol, Workload, FIG2_SIZES, RUNS_PER_POINT};

/// Simple summary statistics for harness output.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics of a sample.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty());
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Summary { mean, stddev: var.sqrt(), min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basics() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}

//! Regenerates **Table 1: Field operations in the DIP prototype** from the
//! live registry (plus the `F_pass` extension of §2.4), and reports each
//! module's PISA cost profile — the data behind the MAC-vs-match cost gap
//! that drives Figure 2.

use dip_fnops::FnRegistry;
use dip_wire::triple::FnKey;

fn main() {
    let registry = FnRegistry::standard();

    println!("Table 1 — field operations in the DIP prototype");
    println!();
    println!(
        "{:<36} {:<14} {:>4} {:>7} {:>8} {:>8}",
        "operation", "notation", "key", "stages", "lookups", "cipher"
    );
    println!("{}", "-".repeat(82));
    for key in registry.supported_keys() {
        let op = registry.get(key).expect("listed key resolves");
        // Representative field width per operation (the §3 triples).
        let field_bits: u16 = match key {
            FnKey::Match32 | FnKey::Fib | FnKey::Pit => 32,
            FnKey::Match128 | FnKey::Source | FnKey::Parm | FnKey::Mark => 128,
            FnKey::Mac => 416,
            FnKey::Ver => 544,
            FnKey::Dag | FnKey::Intent => 90 * 8,
            FnKey::Pass => 256,
            FnKey::Other(_) => 32,
        };
        let cost = op.cost(field_bits);
        println!(
            "{:<36} {:<14} {:>4} {:>7} {:>8} {:>8}",
            key.description(),
            key.notation(),
            key.to_wire(),
            cost.stages,
            cost.table_lookups,
            cost.cipher_blocks
        );
    }
    println!();
    println!(
        "(keys 1-11 are Table 1 of the paper; key 12 is the F_pass source-label\n\
         verification discussed in §2.4)"
    );
}

//! Experiment E11 — the three extension protocols built from custom FNs
//! (§5's opportunities: new services by upgrading FNs only).
//!
//! 1. **NetFence AIMD** — a closed congestion-control loop: offered load vs
//!    admitted rate over time, with the bottleneck toggling congestion on
//!    and off (the classic sawtooth).
//! 2. **SCION-style hop fields** — stateless forwarding correctness and the
//!    attack matrix (forge / splice / detour / wrong ingress).
//! 3. **In-band telemetry** — per-hop path reconstruction from a probe.

use dip_core::{DipRouter, Verdict};
use dip_fnops::DropReason;
use dip_protocols::{netfence, scion_path, telemetry};
use std::sync::Arc;

fn main() {
    netfence_sawtooth();
    println!();
    scion_matrix();
    println!();
    telemetry_demo();
}

fn netfence_sawtooth() {
    println!("E11a — NetFence AIMD over DIP (custom F_cong, key 0x100)\n");
    let mut access = DipRouter::new(1, [1; 16]);
    access.config_mut().default_port = Some(1);
    access.registry_mut().install(Arc::new(netfence::CongestionOp));
    {
        let nf = access.state_mut().ext.get_or_default::<netfence::NetFenceState>();
        nf.police = true;
        nf.params = Some(netfence::AimdParams {
            initial_rate_bps: 400_000.0,
            min_rate_bps: 20_000.0,
            max_rate_bps: 2_000_000.0,
            additive_increase_bps: 200_000.0,
        });
    }
    let mut bottleneck = DipRouter::new(2, [2; 16]);
    bottleneck.config_mut().default_port = Some(1);
    bottleneck.registry_mut().install(Arc::new(netfence::CongestionOp));

    const FLOW: u64 = 9;
    const PKT: usize = 1_000; // ~1 kB packets
    const STEP_NS: u64 = 10_000_000; // 10 ms between packets -> 100 pkt/s offered

    println!("{:>6} {:>12} {:>10} {:>10}", "t(s)", "rate(B/s)", "admitted", "congested");
    let mut now: u64 = 0;
    for second in 0..12u64 {
        // Congestion at the bottleneck during seconds 3-5 and 8-9.
        let congested = (3..6).contains(&second) || (8..10).contains(&second);
        bottleneck.state_mut().ext.get_or_default::<netfence::NetFenceState>().congested =
            congested;
        let mut admitted = 0;
        for _ in 0..100 {
            now += STEP_NS;
            let mut pkt = netfence::packet(FLOW, 64).to_bytes(&vec![0u8; PKT]).unwrap();
            match access.process(&mut pkt, 0, now).0 {
                Verdict::Forward(_) => {
                    admitted += 1;
                    let (v, _) = bottleneck.process(&mut pkt, 0, now);
                    assert!(matches!(v, Verdict::Forward(_)));
                    // Receiver echoes any congestion mark straight back.
                    let locs =
                        dip_wire::DipPacket::new_checked(&pkt[..]).unwrap().locations().to_vec();
                    if netfence::parse_field(&locs).unwrap().1 == 1 {
                        let echo = dip_wire::packet::DipRepr {
                            fns: vec![dip_wire::triple::FnTriple::router(
                                0,
                                netfence::CONG_FIELD_BITS,
                                netfence::CONG_KEY,
                            )],
                            locations: locs,
                            ..Default::default()
                        };
                        let mut ebuf = echo.to_bytes(&[]).unwrap();
                        access.process(&mut ebuf, 1, now);
                    }
                }
                Verdict::Drop(DropReason::RateLimited) => {}
                other => panic!("{other:?}"),
            }
        }
        let rate = access
            .state_mut()
            .ext
            .get_or_default::<netfence::NetFenceState>()
            .flow_rate(FLOW)
            .unwrap();
        println!(
            "{:>6} {:>12.0} {:>9}% {:>10}",
            second,
            rate,
            admitted,
            if congested { "yes" } else { "" }
        );
    }
    println!("-> multiplicative decrease under congestion, additive recovery after");
}

fn scion_matrix() {
    println!("E11b — SCION-style stateless path forwarding (custom F_hopfield, key 0x101)\n");
    const S1: [u8; 16] = [1; 16];
    const S2: [u8; 16] = [2; 16];
    let as_router = |id: u64, s: [u8; 16]| {
        let mut r = DipRouter::new(id, s);
        r.registry_mut().install(Arc::new(scion_path::HopFieldOp));
        r
    };
    let path = scion_path::ScionPath::construct(&[(0, 5, S1), (2, 6, S2)]);

    let run = |mutate: &dyn Fn(&mut scion_path::ScionPath), in_port: u32| -> &'static str {
        let mut p = path.clone();
        mutate(&mut p);
        let mut buf = p.packet(64).to_bytes(&[]).unwrap();
        let mut r1 = as_router(1, S1);
        match r1.process(&mut buf, in_port, 0).0 {
            Verdict::Forward(_) => {
                let mut r2 = as_router(2, S2);
                match r2.process(&mut buf, 2, 0).0 {
                    Verdict::Forward(_) => "forwarded end-to-end",
                    Verdict::Drop(_) => "dropped at hop 2",
                    _ => "other",
                }
            }
            Verdict::Drop(_) => "dropped at hop 1",
            _ => "other",
        }
    };

    println!("  honest path            : {}", run(&|_| {}, 0));
    println!("  forged egress at hop 2 : {}", run(&|p| p.hops[1].egress = 9, 0));
    println!("  wrong ingress port     : {}", run(&|_| {}, 7));
    let other = scion_path::ScionPath::construct(&[(0, 9, S1), (2, 6, S2)]);
    println!("  spliced A[0] + B[1]    : {}", run(&|p| p.hops[1] = other.hops[1], 0));
    println!("-> zero table lookups per hop; every manipulation caught by the chained MACs");
}

fn telemetry_demo() {
    println!("E11c — in-band telemetry (custom F_tele, key 0x102)\n");
    let mut buf = telemetry::probe(8, 64).to_bytes(&[]).unwrap();
    let hops =
        [(101u64, 120_000u64, 3u32), (102, 350_000, 1), (103, 410_000, 2), (104, 980_000, 9)];
    for (node, at, port) in hops {
        let mut r = DipRouter::new(node, [0; 16]);
        r.config_mut().default_port = Some(1);
        r.registry_mut().install(Arc::new(telemetry::TelemetryOp));
        let (v, _) = r.process(&mut buf, port, at);
        assert!(matches!(v, Verdict::Forward(_)));
    }
    let pkt = dip_wire::DipPacket::new_checked(&buf[..]).unwrap();
    let (records, overflow) = telemetry::parse_records(pkt.locations()).unwrap();
    println!("  {:>6} {:>12} {:>9} {:>12}", "node", "arrival(µs)", "ingress", "hop lat(µs)");
    let mut prev = None;
    for r in &records {
        println!(
            "  {:>6} {:>12} {:>9} {:>12}",
            r.node_id,
            r.arrival_us,
            r.ingress,
            prev.map(|p: u32| (r.arrival_us - p).to_string()).unwrap_or_else(|| "-".into())
        );
        prev = Some(r.arrival_us);
    }
    assert_eq!(records.len(), 4);
    assert!(!overflow);
    println!("-> destination reconstructs path and per-hop latency from the header alone");
}

//! Experiment E7 — incremental deployment (§2.4).
//!
//! Sweeps the fraction of DIP-capable ASes on 8-AS paths and reports, over
//! 1000 random paths per point:
//!
//! * **no tunneling** — a DIP packet needs every on-path AS DIP-capable;
//! * **with tunneling** — DIP islands bridge legacy segments with
//!   DIP-in-IPv6 tunnels (§2.4), so only the endpoint ASes must be
//!   DIP-capable;
//! * **path authentication (OPT)** — participation-required FNs need every
//!   AS capable, tunneling or not (a tunneled legacy AS cannot update the
//!   PVF chain).
//!
//! Also demonstrates one concrete tunnel encap/transit/decap round trip.

use dip_core::bootstrap::CapabilityMap;
use dip_core::tunnel;
use dip_crypto::DetRng;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::triple::FnKey;

const PATH_LEN: usize = 8;
const TRIALS: usize = 1000;

fn main() {
    println!("E7 — heterogeneous deployment, {PATH_LEN}-AS paths, {TRIALS} trials per point\n");
    println!("{:<12} {:>14} {:>14} {:>14}", "DIP ASes", "no tunnel", "with tunnel", "OPT e2e");
    println!("{}", "-".repeat(58));

    let mut rng = DetRng::seed_from_u64(2022);
    let full_keys: Vec<u16> = (1u16..=12).collect();

    for pct in [0, 10, 25, 50, 75, 90, 100] {
        let p = f64::from(pct) / 100.0;
        let (mut plain, mut tunneled, mut opt) = (0usize, 0usize, 0usize);
        for _ in 0..TRIALS {
            let mut caps = CapabilityMap::new();
            let dip: Vec<bool> = (0..PATH_LEN).map(|_| rng.gen_bool(p)).collect();
            let path: Vec<u32> = (0..PATH_LEN as u32).collect();
            for (i, &is_dip) in dip.iter().enumerate() {
                if is_dip {
                    caps.announce(i as u32, full_keys.iter().copied());
                } else {
                    caps.announce(i as u32, []);
                }
            }
            // No tunneling: plain DIP forwarding (key 1) must hold on every AS.
            if caps.path_supports(&path, FnKey::Match32) {
                plain += 1;
            }
            // Tunneling: endpoint ASes DIP-capable suffices for connectivity.
            if dip[0] && dip[PATH_LEN - 1] {
                tunneled += 1;
            }
            // OPT: every AS must run the participation chain.
            if caps.path_supports(&path, FnKey::Mac) {
                opt += 1;
            }
        }
        let pc = |n: usize| 100.0 * n as f64 / TRIALS as f64;
        println!("{:>10}%  {:>13.1}% {:>13.1}% {:>13.1}%", pct, pc(plain), pc(tunneled), pc(opt));
    }

    // Concrete tunnel round trip across a legacy segment.
    println!("\ntunnel demo (DIP island A — legacy core — DIP island B):");
    let inner = dip_protocols::ip::dip32_packet(
        dip_wire::ipv4::Ipv4Addr::new(10, 2, 0, 1),
        dip_wire::ipv4::Ipv4Addr::new(10, 1, 0, 1),
        64,
    )
    .to_bytes(b"across the legacy core")
    .unwrap();
    let a = Ipv6Addr::new([0x2001, 0xdb8, 0, 1, 0, 0, 0, 1]);
    let b = Ipv6Addr::new([0x2001, 0xdb8, 0, 2, 0, 0, 0, 1]);
    let outer = tunnel::encap(&inner, a, b, 64).expect("encap");
    println!("  inner DIP packet : {} bytes", inner.len());
    println!(
        "  outer IPv6 packet: {} bytes (+{} overhead)",
        outer.len(),
        outer.len() - inner.len()
    );
    // The legacy core sees plain IPv6; the far endpoint recovers the DIP
    // packet bit-for-bit.
    let recovered = tunnel::decap(&outer).expect("decap");
    assert_eq!(recovered, inner);
    println!("  decap at far island: exact inner packet recovered ✓");

    println!(
        "\nresult: tunneling lifts availability from all-ASes-DIP to endpoints-DIP;\n\
         path authentication remains gated on full deployment, as §2.4 predicts"
    );
}

//! Experiment E9 — §2.4's state/processing exhaustion defenses.
//!
//! Two attacks, two hard limits:
//!
//! 1. **Interest flooding vs. the PIT budget** — an attacker floods
//!    distinct-name interests; the PIT capacity bound caps the state while
//!    entry expiry restores service to honest clients.
//! 2. **FN-chain bombs vs. the processing budget** — a packet stuffed with
//!    MAC operations is cut off by the per-packet cost meter instead of
//!    monopolizing the pipeline.

use dip_core::budget::ProcessingBudget;
use dip_core::{DipRouter, Verdict};
use dip_fnops::DropReason;
use dip_tables::fib::NextHop;
use dip_wire::ndn::Name;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

const PIT_CAPACITY: usize = 1_000;
const PIT_TTL: u64 = 1_000_000; // 1 ms of virtual time
const FLOOD: usize = 5_000;

fn main() {
    interest_flood();
    println!();
    fn_chain_bomb();
}

fn interest_flood() {
    println!("E9a — interest flood vs PIT budget (capacity {PIT_CAPACITY}, ttl {PIT_TTL} ns)\n");
    let mut r = DipRouter::new(1, [1; 16]);
    r.state_mut().pit = dip_tables::Pit::new(PIT_CAPACITY, PIT_TTL);
    r.state_mut().name_fib.add_route(&Name::parse("/attack"), NextHop::port(9));
    r.state_mut().name_fib.add_route(&Name::parse("/honest"), NextHop::port(9));

    // Attacker: FLOOD distinct full-name interests under /attack.
    let mut accepted = 0;
    let mut rejected = 0;
    for i in 0..FLOOD {
        let name = Name::parse(&format!("/attack/{i}"));
        let mut pkt = dip_protocols::ndn::interest_full(&name, 64).unwrap().to_bytes(&[]).unwrap();
        let (verdict, _) = r.process(&mut pkt, 2, i as u64);
        match verdict {
            Verdict::Forward(_) => accepted += 1,
            Verdict::Drop(DropReason::StateBudgetExhausted) => rejected += 1,
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    println!("  attacker interests accepted : {accepted}");
    println!("  attacker interests rejected : {rejected} (state budget)");
    println!("  PIT occupancy               : {} / {}", r.state().pit.len(), PIT_CAPACITY);
    assert_eq!(accepted, PIT_CAPACITY);
    assert_eq!(rejected, FLOOD - PIT_CAPACITY);

    // Honest client during the flood: rejected (the cost of the attack)...
    let honest = Name::parse("/honest/page");
    let mut pkt = dip_protocols::ndn::interest_full(&honest, 64).unwrap().to_bytes(&[]).unwrap();
    let (during, _) = r.process(&mut pkt, 3, FLOOD as u64);
    println!("  honest interest during flood: {during:?}");

    // ...but after TTL expiry the state self-heals.
    let after_expiry = 2 * PIT_TTL;
    r.state_mut().pit.expire(after_expiry);
    let mut pkt2 = dip_protocols::ndn::interest_full(&honest, 64).unwrap().to_bytes(&[]).unwrap();
    let (after, _) = r.process(&mut pkt2, 3, after_expiry);
    println!("  honest interest after expiry: {after:?}");
    assert!(matches!(after, Verdict::Forward(_)));
    println!("  -> the budget bounds attacker state; expiry restores service");
}

fn fn_chain_bomb() {
    println!("E9b — FN-chain bomb vs processing budget\n");
    // A packet with 30 MAC operations over the same field.
    let mut fns = vec![FnTriple::router(16 * 8, 128, FnKey::Parm)];
    for _ in 0..30 {
        fns.push(FnTriple::router(0, 416, FnKey::Mac));
    }
    let bomb = DipRepr { fns, locations: vec![0u8; 68], ..Default::default() };

    let mut limited = DipRouter::new(1, [1; 16]);
    limited.config_mut().default_port = Some(1);
    let mut pkt = bomb.to_bytes(&[]).unwrap();
    let (verdict, stats) = limited.process(&mut pkt, 0, 0);
    println!("  default budget : verdict {:?}", verdict);
    println!(
        "                   executed {} FNs, {} cipher blocks",
        stats.fns_executed, stats.cost.cipher_blocks
    );
    assert_eq!(verdict, Verdict::Drop(DropReason::ProcessingBudgetExceeded));

    let mut unlimited = DipRouter::new(2, [1; 16]);
    unlimited.config_mut().default_port = Some(1);
    unlimited.config_mut().budget = ProcessingBudget::unlimited();
    let mut pkt2 = bomb.to_bytes(&[]).unwrap();
    let (verdict2, stats2) = unlimited.process(&mut pkt2, 0, 0);
    println!(
        "  no budget      : verdict {:?} after {} FNs, {} cipher blocks",
        match verdict2 {
            Verdict::Forward(_) => "Forward",
            _ => "other",
        },
        stats2.fns_executed,
        stats2.cost.cipher_blocks
    );
    println!(
        "  -> the budget cuts the bomb off at {}x fewer cipher blocks",
        stats2.cost.cipher_blocks / stats.cost.cipher_blocks.max(1)
    );
}

//! Experiment E10 — end-to-end NDN vs NDN+OPT in the network simulator.
//!
//! The §2.3 walkthrough at network scale: a consumer retrieves 200 content
//! items across a 3-router chain, once with plain NDN and once with
//! NDN+OPT. Reports retrieval latency and the security overhead, then
//! repeats the NDN+OPT run with an on-path tamperer to show detection.

use dip_bench::summarize;
use dip_protocols::opt::OptSession;
use dip_sim::engine::{Host, Network};
use dip_sim::topology::chain;
use dip_sim::FaultConfig;
use dip_tables::fib::NextHop;
use dip_wire::ndn::Name;
use std::collections::HashMap;

const N_ROUTERS: usize = 3;
const N_ITEMS: usize = 200;
const LINK_NS: u64 = 50_000; // 50 µs per link

fn content_name(i: usize) -> Name {
    Name::parse(&format!("/library/item{i}"))
}

struct RunResult {
    latencies_ns: Vec<f64>,
    delivered: usize,
    verified: usize,
    /// Delivered payloads that are NOT genuine content — must stay zero:
    /// OPT may let a bit flip in an unauthenticated mutable header field
    /// (hop limit, parallel flag) through, but never a payload change.
    corrupted_accepted: usize,
}

fn run(secure: bool, tamper: bool) -> RunResult {
    let router_secrets: Vec<[u8; 16]> = (0..N_ROUTERS).map(|i| [i as u8 + 1; 16]).collect();
    // OPT authenticates the *data* path, which runs producer -> consumer:
    // the session's path keys are the routers in that (reverse) order.
    let data_path_secrets: Vec<[u8; 16]> = router_secrets.iter().rev().copied().collect();
    let session = OptSession::establish([0xCC; 16], &[9; 16], &data_path_secrets);

    let mut contents = HashMap::new();
    for i in 0..N_ITEMS {
        contents.insert(content_name(i).compact32(), format!("content #{i}").into_bytes());
    }

    let consumer = if secure {
        Host::verifying_consumer(100, session.host_context())
    } else {
        Host::consumer(100)
    };
    let producer = if secure {
        Host::secure_producer(101, contents, session.clone())
    } else {
        Host::producer(101, contents)
    };

    let mut net = Network::new(7);
    let secrets = router_secrets.clone();
    let (consumer_id, routers, _producer_id) =
        chain(&mut net, N_ROUTERS, consumer, producer, |i| secrets[i], LINK_NS);
    for (idx, &r) in routers.iter().enumerate() {
        let rt = net.router_mut(r).expect("router node");
        for i in 0..N_ITEMS {
            rt.state_mut().name_fib.add_route(&content_name(i), NextHop::port(1));
        }
        // Optional tamperer: the middle router flips payload bytes by
        // corrupting its producer-side link.
        let _ = idx;
    }
    if tamper {
        // Reconnect the middle link with full corruption.
        net.connect_with(
            routers[0],
            1,
            routers[1],
            0,
            LINK_NS,
            10_000_000_000,
            FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() },
        );
    }

    // Issue all interests up front; the sim serializes them in time.
    for i in 0..N_ITEMS {
        let interest = if secure {
            dip_protocols::ndn_opt::interest(&content_name(i), 64)
        } else {
            dip_protocols::ndn::interest(&content_name(i), 64)
        };
        let at = (i as u64) * 1_000_000; // 1 ms apart
        net.send(consumer_id, 0, interest.to_bytes(&[]).unwrap(), at);
    }
    net.run();

    let host = net.host(consumer_id).expect("consumer host");
    let latencies: Vec<f64> = host
        .delivered
        .iter()
        .enumerate()
        .map(|(i, d)| (d.time - (i as u64) * 1_000_000) as f64)
        .collect();
    RunResult {
        latencies_ns: latencies,
        delivered: host.delivered.len(),
        verified: host.delivered.iter().filter(|d| d.verified).count(),
        corrupted_accepted: host
            .delivered
            .iter()
            .filter(|d| !d.payload.starts_with(b"content #"))
            .count(),
    }
}

fn main() {
    println!("E10 — NDN vs NDN+OPT end-to-end ({N_ROUTERS}-router chain, {N_ITEMS} items)\n");

    let plain = run(false, false);
    let secure = run(true, false);
    println!(
        "{:<24} {:>10} {:>10} {:>16} {:>12}",
        "run", "delivered", "verified", "mean latency", "p.latency/NDN"
    );
    println!("{}", "-".repeat(78));
    let m_plain = summarize(&plain.latencies_ns).mean;
    let m_secure = summarize(&secure.latencies_ns).mean;
    println!(
        "{:<24} {:>10} {:>10} {:>13.1} µs {:>11.2}x",
        "NDN",
        plain.delivered,
        plain.verified,
        m_plain / 1000.0,
        1.0
    );
    println!(
        "{:<24} {:>10} {:>10} {:>13.1} µs {:>11.2}x",
        "NDN+OPT",
        secure.delivered,
        secure.verified,
        m_secure / 1000.0,
        m_secure / m_plain
    );
    assert_eq!(plain.delivered, N_ITEMS);
    assert_eq!(secure.delivered, N_ITEMS);
    assert_eq!(secure.verified, N_ITEMS, "every secure delivery must verify");
    assert_eq!(plain.verified, 0);

    let tampered = run(true, true);
    println!(
        "{:<24} {:>10} {:>10}",
        "NDN+OPT + bit-flipper", tampered.delivered, tampered.verified
    );
    println!(
        "  (each packet on the corrupted link had one random bit flipped: {} of {} flips\n\
         \u{20}  were detected and rejected; the rest hit unauthenticated mutable header\n\
         \u{20}  fields such as the hop limit — every *delivered* payload is genuine)",
        N_ITEMS - tampered.delivered,
        N_ITEMS
    );
    assert_eq!(tampered.corrupted_accepted, 0, "no corrupted payload may be accepted");
    assert!(
        tampered.delivered < N_ITEMS / 10,
        "almost all flips must be caught ({}/{N_ITEMS} delivered)",
        tampered.delivered
    );

    println!(
        "\nresult: NDN+OPT delivers everything with source+path verification at a\n\
         {:.1}% latency premium over NDN; under an on-path bit-flipper, no corrupted\n\
         payload is ever accepted ({} of {} flips rejected outright)",
        (m_secure / m_plain - 1.0) * 100.0,
        N_ITEMS - tampered.delivered,
        N_ITEMS
    );
}

//! Regenerates **Figure 2: Packet processing time in the DIP prototype**.
//!
//! Protocol (§4.2): IPv4/IPv6 native baselines plus DIP-32, DIP-128, NDN,
//! OPT and NDN+OPT packets at 128/768/1500 bytes; 1000 forwarding tests per
//! point. Two axes are reported:
//!
//! * **software dataplane** — wall-clock nanoseconds per packet through the
//!   real `DipRouter` pipeline on this machine;
//! * **PISA model** — the calibrated Tofino pipeline model of
//!   `dip_sim::TofinoModel` (the hardware substitute; see DESIGN.md §3).
//!
//! The reproduction target is the *shape*: DIP ≈ IP baseline, OPT and
//! NDN+OPT cost visibly more (MACs), size affects everything via
//! serialization.

use dip_bench::{summarize, Protocol, Workload, FIG2_SIZES, RUNS_PER_POINT};
use dip_sim::TofinoModel;
use std::time::Instant;

fn main() {
    let model = TofinoModel::tofino();
    println!("Figure 2 — packet processing time ({RUNS_PER_POINT} forwarding tests per point)");
    println!();
    println!(
        "{:<14} {:>6}  {:>12} {:>10}  {:>12}",
        "protocol", "size", "sw ns/pkt", "± std", "PISA ns/pkt"
    );
    println!("{}", "-".repeat(62));

    let mut rows: Vec<(Protocol, usize, f64, f64)> = Vec::new();
    for proto in Protocol::ALL {
        for size in FIG2_SIZES {
            let mut w = Workload::new(proto, size);
            // Warm-up (caches, allocator).
            for _ in 0..200 {
                let mut pkt = w.next_packet();
                let _ = w.process(&mut pkt);
            }
            let mut samples = Vec::with_capacity(RUNS_PER_POINT);
            let mut model_ns = 0.0;
            for _ in 0..RUNS_PER_POINT {
                let mut pkt = w.next_packet();
                let t0 = Instant::now();
                let stats = w.process(&mut pkt);
                samples.push(t0.elapsed().as_nanos() as f64);
                model_ns = model.process_ns(&stats, size, w.mac_choice());
            }
            let s = summarize(&samples);
            println!(
                "{:<14} {:>5}B  {:>12.0} {:>10.0}  {:>12.0}",
                proto.label(),
                size,
                s.mean,
                s.stddev,
                model_ns
            );
            rows.push((proto, size, s.mean, model_ns));
        }
        println!();
    }

    // Shape checks mirroring the paper's observations.
    let mean_of = |p: Protocol, size: usize, model: bool| {
        rows.iter()
            .find(|(rp, rs, _, _)| *rp == p && *rs == size)
            .map(|(_, _, sw, m)| if model { *m } else { *sw })
            .unwrap()
    };
    println!("shape checks (PISA model, 768B):");
    let ip = mean_of(Protocol::Ipv4Native, 768, true);
    let dip32 = mean_of(Protocol::Dip32, 768, true);
    let opt = mean_of(Protocol::Opt, 768, true);
    let ndn_opt = mean_of(Protocol::NdnOpt, 768, true);
    println!("  DIP-32 / IPv4 baseline : {:.2}x (paper: \"close to the baseline\")", dip32 / ip);
    println!("  OPT    / IPv4 baseline : {:.2}x (paper: \"more processing time, MACs\")", opt / ip);
    println!("  NDN+OPT/ OPT           : {:.2}x (paper: slightly above OPT)", ndn_opt / opt);

    // ASCII rendition of the figure (PISA model).
    println!();
    println!("Figure 2 (PISA model, ns/packet):");
    let max = rows.iter().map(|r| r.3).fold(0.0, f64::max);
    for proto in Protocol::ALL {
        for size in FIG2_SIZES {
            let v = mean_of(proto, size, true);
            let bar = "#".repeat(((v / max) * 48.0).round() as usize);
            println!("  {:<14} {:>5}B |{}", proto.label(), size, bar);
        }
    }
}

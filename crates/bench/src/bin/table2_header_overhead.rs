//! Regenerates **Table 2: The packet header size overhead**.
//!
//! Every row is *measured* from the actual bytes the protocol builders
//! emit (not recomputed from formulas), then compared with the paper's
//! numbers.

use dip_protocols::{header_sizes, ip, ndn, ndn_opt, opt::OptSession};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;

fn main() {
    let name = Name::parse("hotnets.org");
    let session = OptSession::establish([1; 16], &[2; 16], &[[3; 16]]);

    let rows: Vec<(&str, usize, usize)> = vec![
        ("IPv6 forwarding", dip_wire::ipv6::IPV6_HEADER_LEN, header_sizes::IPV6),
        ("IPv4 forwarding", dip_wire::ipv4::IPV4_HEADER_LEN, header_sizes::IPV4),
        (
            "DIP-128 forwarding",
            ip::dip128_packet(
                Ipv6Addr::new([1, 0, 0, 0, 0, 0, 0, 2]),
                Ipv6Addr::new([3, 0, 0, 0, 0, 0, 0, 4]),
                64,
            )
            .header_len(),
            header_sizes::DIP_128,
        ),
        (
            "DIP-32 forwarding",
            ip::dip32_packet(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64).header_len(),
            header_sizes::DIP_32,
        ),
        ("NDN forwarding (interest)", ndn::interest(&name, 64).header_len(), header_sizes::NDN),
        ("NDN forwarding (data)", ndn::data(&name, 64).header_len(), header_sizes::NDN),
        ("OPT forwarding", session.packet(b"x", 1, 64).header_len(), header_sizes::OPT),
        (
            "NDN+OPT forwarding",
            ndn_opt::data(&session, &name, b"x", 1, 64).header_len(),
            header_sizes::NDN_OPT,
        ),
    ];

    println!("Table 2 — packet header size overhead");
    println!();
    println!(
        "{:<28} {:>14} {:>10} {:>8}",
        "Network function", "measured (B)", "paper (B)", "match"
    );
    println!("{}", "-".repeat(64));
    let mut all_match = true;
    for (label, measured, paper) in &rows {
        let ok = measured == paper;
        all_match &= ok;
        println!(
            "{:<28} {:>14} {:>10} {:>8}",
            label,
            measured,
            paper,
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    if all_match {
        println!("all rows match the paper exactly");
    } else {
        println!("MISMATCH — see EXPERIMENTS.md");
        std::process::exit(1);
    }

    // Derived analysis: goodput fraction (payload / wire bytes) at the
    // Figure-2 packet sizes — what the header overhead costs in practice.
    println!();
    println!("derived: goodput fraction at Figure-2 sizes");
    println!("{:<28} {:>8} {:>8} {:>8}", "Network function", "128B", "768B", "1500B");
    println!("{}", "-".repeat(56));
    for (label, hdr, _) in &rows {
        let f = |size: usize| {
            if *hdr >= size {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * (size - hdr) as f64 / size as f64)
            }
        };
        println!("{:<28} {:>8} {:>8} {:>8}", label, f(128), f(768), f(1500));
    }
}

//! Experiment E6 — §2.4's content-poisoning attack and the `F_pass`
//! defense.
//!
//! "An attacker can use both F_FIB and F_PIT in one packet and carry
//! maliciously constructed data to pollute the node's content cache.
//! Nodes can enable source label verification designs (implemented as a
//! new FN F_pass) to defend against this attack. ... F_pass can be enabled
//! on the fly upon detecting content poisoning attacks."
//!
//! Three phases on one caching router:
//! 1. no defense — the combined FIB+PIT packet seeds the cache, and honest
//!    consumers are served the bogus bytes;
//! 2. F_pass policy — caching requires a verified source label, so the
//!    attack packet forwards but never enters the cache;
//! 3. forged label — an attacker guessing labels is dropped outright.

use dip_core::{DipRouter, Verdict};
use dip_fnops::ops::pass::{issue_label, PASS_FIELD_BITS};
use dip_fnops::DropReason;
use dip_tables::fib::NextHop;
use dip_wire::ndn::Name;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

const N_NAMES: usize = 64;

fn victim_name(i: usize) -> Name {
    Name::parse(&format!("/victim/content{i}"))
}

/// The §2.4 attack packet: F_FIB creates the PIT entry, F_PIT immediately
/// consumes it, caching the attacker's payload.
fn attack_packet(name: &Name) -> Vec<u8> {
    DipRepr {
        fns: vec![FnTriple::router(0, 32, FnKey::Fib), FnTriple::router(0, 32, FnKey::Pit)],
        locations: name.compact32().to_be_bytes().to_vec(),
        ..Default::default()
    }
    .to_bytes(b"BOGUS CONTENT FROM ATTACKER")
    .unwrap()
}

/// The same attack with a forged (random-guess) source label prepended.
fn attack_packet_forged_label(name: &Name) -> Vec<u8> {
    let mut locations = name.compact32().to_be_bytes().to_vec();
    locations.extend_from_slice(&[0xEEu8; 32]); // source id + bogus label
    DipRepr {
        fns: vec![
            FnTriple::router(32, PASS_FIELD_BITS, FnKey::Pass),
            FnTriple::router(0, 32, FnKey::Fib),
            FnTriple::router(0, 32, FnKey::Pit),
        ],
        locations,
        ..Default::default()
    }
    .to_bytes(b"BOGUS CONTENT FROM ATTACKER")
    .unwrap()
}

/// A legitimate producer's data packet with a valid AS-issued label.
fn legit_data(name: &Name, as_secret: &[u8; 16]) -> Vec<u8> {
    let source_id = [0x0Au8; 16];
    let mut locations = name.compact32().to_be_bytes().to_vec();
    locations.extend_from_slice(&source_id);
    locations.extend_from_slice(&issue_label(as_secret, &source_id));
    DipRepr {
        fns: vec![
            FnTriple::router(32, PASS_FIELD_BITS, FnKey::Pass),
            FnTriple::router(0, 32, FnKey::Pit),
        ],
        locations,
        ..Default::default()
    }
    .to_bytes(b"genuine content")
    .unwrap()
}

fn fresh_router(defended: bool) -> DipRouter {
    let mut r = DipRouter::new(1, [0x11; 16]);
    r.state_mut().enable_content_store(256);
    r.state_mut().require_pass_for_cache = defended;
    for i in 0..N_NAMES {
        r.state_mut().name_fib.add_route(&victim_name(i), NextHop::port(9));
    }
    r
}

/// Runs the attack volley, then measures how many honest interests get a
/// poisoned cache answer. Returns (cached_bogus, poisoned_responses,
/// attack_drops).
fn run_phase(router: &mut DipRouter, forged_label: bool) -> (usize, usize, usize) {
    let mut attack_drops = 0;
    for i in 0..N_NAMES {
        let name = victim_name(i);
        let mut pkt =
            if forged_label { attack_packet_forged_label(&name) } else { attack_packet(&name) };
        let (verdict, _) = router.process(&mut pkt, 2, 1_000 + i as u64);
        if matches!(verdict, Verdict::Drop(_)) {
            attack_drops += 1;
        }
    }
    let cached_bogus = (0..N_NAMES)
        .filter(|&i| {
            router
                .state()
                .content_store
                .as_ref()
                .unwrap()
                .peek(&victim_name(i).compact32())
                .is_some_and(|d| d.starts_with(b"BOGUS"))
        })
        .count();

    // Honest consumers request every name.
    let mut poisoned = 0;
    for i in 0..N_NAMES {
        let name = victim_name(i);
        let mut interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        let (verdict, _) = router.process(&mut interest, 3, 100_000 + i as u64);
        if let Verdict::RespondCached(data) = verdict {
            if data.starts_with(b"BOGUS") {
                poisoned += 1;
            }
        }
    }
    (cached_bogus, poisoned, attack_drops)
}

fn main() {
    println!("E6 — content poisoning via combined F_FIB+F_PIT (§2.4) — {N_NAMES} names\n");
    println!("{:<34} {:>12} {:>12} {:>12}", "scenario", "bogus cached", "poisoned", "atk dropped");
    println!("{}", "-".repeat(74));

    let mut undefended = fresh_router(false);
    let (cached, poisoned, dropped) = run_phase(&mut undefended, false);
    println!("{:<34} {:>12} {:>12} {:>12}", "no defense", cached, poisoned, dropped);
    assert!(cached == N_NAMES && poisoned == N_NAMES, "attack must succeed undefended");

    let mut defended = fresh_router(true);
    let (cached, poisoned, dropped) = run_phase(&mut defended, false);
    println!("{:<34} {:>12} {:>12} {:>12}", "F_pass cache policy", cached, poisoned, dropped);
    assert!(cached == 0 && poisoned == 0, "policy must block cache pollution");

    let mut strict = fresh_router(true);
    let (cached, poisoned, dropped) = run_phase(&mut strict, true);
    println!("{:<34} {:>12} {:>12} {:>12}", "forged label (defended)", cached, poisoned, dropped);
    assert!(cached == 0 && dropped == N_NAMES, "forged labels must be dropped");

    // Availability: a legitimate producer with a valid label still gets
    // cached under the defense.
    let mut r = fresh_router(true);
    let name = victim_name(0);
    let mut interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
    let _ = r.process(&mut interest, 3, 1);
    let as_secret = r.state().as_secret;
    let mut data = legit_data(&name, &as_secret);
    let (verdict, _) = r.process(&mut data, 9, 2);
    let cached_ok = r
        .state()
        .content_store
        .as_ref()
        .unwrap()
        .peek(&name.compact32())
        .is_some_and(|d| d == b"genuine content");
    println!();
    println!(
        "legit producer under defense: verdict={:?}, cached={} (availability preserved)",
        match verdict {
            Verdict::Forward(_) => "forwarded",
            Verdict::Drop(DropReason::BadSourceLabel) => "DROPPED?!",
            _ => "other",
        },
        cached_ok
    );
    assert!(cached_ok, "defense must not block legitimate producers");
    println!(
        "\nresult: attack succeeds undefended; F_pass policy blocks it; legit traffic unaffected"
    );
}

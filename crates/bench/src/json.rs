//! A tiny JSON-lines emitter for machine-readable benchmark output.
//!
//! The workspace builds fully offline, so instead of `serde_json` the
//! harnesses that need structured output (the `dataplane_scale` sweep)
//! use this hand-rolled builder: one [`JsonLine`] per measurement,
//! fields appended in insertion order, printed as a single line on
//! stdout so results can be collected with `cargo bench ... | grep '^{'`
//! and parsed by any JSON tool.

use std::fmt::Write as _;

/// Builder for one JSON object, emitted as a single output line.
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

impl JsonLine {
    /// Starts an object whose first field is `"bench": name`.
    pub fn new(name: &str) -> Self {
        let mut line = JsonLine { buf: String::from("{") };
        line.push_key("bench");
        line.push_str_value(name);
        line
    }

    fn push_key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    fn push_str_value(&mut self, value: &str) {
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        self.push_str_value(value);
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field (rendered with one decimal; JSON-safe for
    /// NaN/infinity by falling back to `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.1}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a float field rendered with `decimals` decimal places
    /// (small fractions like drop rates vanish at the default single
    /// decimal); NaN/infinity fall back to `null`.
    pub fn f64p(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.push_key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Closes the object and returns the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Closes the object and prints it on its own stdout line.
    pub fn emit(self) {
        println!("{}", self.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_keep_insertion_order() {
        let line = JsonLine::new("demo").u64("workers", 4).f64("pps", 1234.56).str("mode", "block");
        assert_eq!(line.finish(), r#"{"bench":"demo","workers":4,"pps":1234.6,"mode":"block"}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let line = JsonLine::new("q\"uote").str("k", "a\\b\nc");
        assert_eq!(line.finish(), r#"{"bench":"q\"uote","k":"a\\b\nc"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonLine::new("x").f64("v", f64::NAN).finish(), r#"{"bench":"x","v":null}"#);
    }
}

//! Figure-2 workload construction: per-protocol packet streams and
//! pre-seeded routers.
//!
//! Each workload yields an unbounded stream of `(prepare, process)` pairs:
//! [`Workload::next_packet`] is the *untimed* setup (build the packet,
//! install the PIT entry a data packet will consume, advance virtual time)
//! and [`Workload::process`] is the *timed* forwarding step — exactly the
//! separation a hardware traffic generator gives the paper's testbed.

use dip_core::{DipRouter, ProcessStats, Verdict};
use dip_fnops::context::MacChoice;
use dip_fnops::OpCost;
use dip_protocols::opt::OptSession;
use dip_protocols::{ip, ndn, ndn_opt};
use dip_tables::fib::{Ipv4Fib, Ipv6Fib, NextHop};
use dip_tables::Ticks;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;

/// The packet sizes of Figure 2.
pub const FIG2_SIZES: [usize; 3] = [128, 768, 1500];

/// "We carried out 1000 forwarding tests for each size of the packet."
pub const RUNS_PER_POINT: usize = 1000;

/// The protocols of Figure 2 (baselines first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Native IPv4 forwarding (baseline).
    Ipv4Native,
    /// Native IPv6 forwarding (baseline).
    Ipv6Native,
    /// IPv4 semantics over DIP (26-byte header).
    Dip32,
    /// IPv6 semantics over DIP (50-byte header).
    Dip128,
    /// NDN interest forwarding over DIP (16-byte header).
    Ndn,
    /// OPT source/path authentication over DIP (98-byte header).
    Opt,
    /// NDN+OPT secure content delivery (108-byte data header).
    NdnOpt,
}

impl Protocol {
    /// All Figure-2 series in display order.
    pub const ALL: [Protocol; 7] = [
        Protocol::Ipv4Native,
        Protocol::Ipv6Native,
        Protocol::Dip32,
        Protocol::Dip128,
        Protocol::Ndn,
        Protocol::Opt,
        Protocol::NdnOpt,
    ];

    /// Display label matching the paper's series names.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Ipv4Native => "IPv4 (native)",
            Protocol::Ipv6Native => "IPv6 (native)",
            Protocol::Dip32 => "DIP-32",
            Protocol::Dip128 => "DIP-128",
            Protocol::Ndn => "NDN",
            Protocol::Opt => "OPT",
            Protocol::NdnOpt => "NDN+OPT",
        }
    }

    /// Whether this series runs the DIP pipeline (vs. the native baseline).
    pub fn is_dip(self) -> bool {
        !matches!(self, Protocol::Ipv4Native | Protocol::Ipv6Native)
    }
}

/// Synthetic pipeline stats for a native IP hop (one lookup + TTL rewrite),
/// used to put the baselines on the same Tofino-model axis.
pub fn native_stats() -> ProcessStats {
    ProcessStats {
        fns_executed: 1,
        skipped_host: 0,
        skipped_unsupported: 0,
        cost: OpCost::lookup(1, 1),
        plan_depth: 1,
    }
}

enum Engine {
    Dip(Box<DipRouter>),
    V4(Ipv4Fib),
    V6(Ipv6Fib),
}

/// A ready-to-run Figure-2 measurement series.
pub struct Workload {
    /// The protocol under test.
    pub protocol: Protocol,
    /// Total packet size on the wire.
    pub size: usize,
    engine: Engine,
    template: Vec<u8>,
    session: Option<OptSession>,
    name: Name,
    counter: u64,
    now: Ticks,
}

const ROUTER_SECRET: [u8; 16] = [0x42; 16];

impl Workload {
    /// Builds the workload for `protocol` at wire size `size`.
    pub fn new(protocol: Protocol, size: usize) -> Workload {
        let name = Name::parse("hotnets.org");
        let dst4 = Ipv4Addr::new(10, 1, 2, 3);
        let src4 = Ipv4Addr::new(192, 168, 0, 1);
        let dst6 = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 9]);
        let src6 = Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 1]);
        let session = OptSession::establish([0x5a; 16], &[7; 16], &[ROUTER_SECRET]);

        let mut router = DipRouter::new(1, ROUTER_SECRET);
        router.config_mut().default_port = Some(1);
        router.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        router.state_mut().ipv6_fib.add_route(
            Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]),
            16,
            NextHop::port(1),
        );
        router.state_mut().name_fib.add_route(&name, NextHop::port(1));
        // Short-TTL PIT: each benchmark round sees a fresh (expired) slot,
        // so every interest measures the full insert + FIB path.
        router.state_mut().pit = dip_tables::Pit::new(1 << 20, 1);

        let (engine, template) = match protocol {
            Protocol::Ipv4Native => {
                let mut fib = Ipv4Fib::new();
                fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
                (Engine::V4(fib), crate::native::ipv4_packet(dst4, src4, size))
            }
            Protocol::Ipv6Native => {
                let mut fib = Ipv6Fib::new();
                fib.add_route(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(1));
                (Engine::V6(fib), crate::native::ipv6_packet(dst6, src6, size))
            }
            Protocol::Dip32 => (
                Engine::Dip(Box::new(router)),
                ip::dip32_packet(dst4, src4, 64).to_bytes_padded(size).unwrap(),
            ),
            Protocol::Dip128 => (
                Engine::Dip(Box::new(router)),
                ip::dip128_packet(dst6, src6, 64).to_bytes_padded(size).unwrap(),
            ),
            Protocol::Ndn => (
                Engine::Dip(Box::new(router)),
                ndn::interest(&name, 64).to_bytes_padded(size).unwrap(),
            ),
            Protocol::Opt => {
                let payload_len = size - dip_protocols::header_sizes::OPT;
                let payload = vec![0u8; payload_len];
                (
                    Engine::Dip(Box::new(router)),
                    session.packet(&payload, 0, 64).to_bytes(&payload).unwrap(),
                )
            }
            Protocol::NdnOpt => {
                let payload_len = size - dip_protocols::header_sizes::NDN_OPT;
                let payload = vec![0u8; payload_len];
                (
                    Engine::Dip(Box::new(router)),
                    ndn_opt::data(&session, &name, &payload, 0, 64).to_bytes(&payload).unwrap(),
                )
            }
        };
        assert_eq!(template.len(), size, "{protocol:?} template size");
        Workload {
            protocol,
            size,
            engine,
            template,
            session: Some(session),
            name,
            counter: 0,
            now: 0,
        }
    }

    /// The cipher the DIP router is configured with.
    pub fn set_mac_choice(&mut self, mac: MacChoice) {
        if let Engine::Dip(r) = &mut self.engine {
            r.state_mut().mac_choice = mac;
        }
    }

    /// Untimed preparation: returns the next packet to process and puts the
    /// router in the right state to process it (PIT entry for data packets,
    /// advanced virtual clock for interest dedup).
    pub fn next_packet(&mut self) -> Vec<u8> {
        self.counter += 1;
        self.now += 10;
        let mut pkt = self.template.clone();
        // Make packets distinct: stamp the counter into the payload tail
        // (headers stay canonical).
        let n = pkt.len();
        pkt[n - 8..].copy_from_slice(&self.counter.to_be_bytes());
        if self.protocol == Protocol::NdnOpt {
            // A data packet needs a pending interest to consume.
            if let Engine::Dip(r) = &mut self.engine {
                let _ = r.state_mut().pit.record_interest(
                    self.name.compact32(),
                    7,
                    self.counter,
                    self.now,
                );
            }
        }
        pkt
    }

    /// Timed forwarding step. Returns the pipeline stats (synthetic ones
    /// for the native baselines). Panics if the packet was not forwarded —
    /// a mis-built workload must not silently measure the drop path.
    pub fn process(&mut self, pkt: &mut [u8]) -> ProcessStats {
        match &mut self.engine {
            Engine::Dip(r) => {
                let (verdict, stats) = r.process(pkt, 7, self.now);
                debug_assert!(
                    matches!(verdict, Verdict::Forward(_)),
                    "{:?} verdict {verdict:?}",
                    self.protocol
                );
                stats
            }
            Engine::V4(fib) => {
                let port = crate::native_ipv4_forward(pkt, fib);
                debug_assert!(port.is_some());
                native_stats()
            }
            Engine::V6(fib) => {
                let port = crate::native_ipv6_forward(pkt, fib);
                debug_assert!(port.is_some());
                native_stats()
            }
        }
    }

    /// The current MAC choice (for the timing model).
    pub fn mac_choice(&self) -> MacChoice {
        match &self.engine {
            Engine::Dip(r) => r.state().mac_choice,
            _ => MacChoice::TwoRoundEm,
        }
    }

    /// The negotiated OPT session (present on every workload; used by
    /// verification-side harnesses).
    pub fn session(&self) -> Option<&OptSession> {
        self.session.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_builds_at_every_size() {
        for proto in Protocol::ALL {
            for size in FIG2_SIZES {
                let mut w = Workload::new(proto, size);
                for _ in 0..5 {
                    let mut pkt = w.next_packet();
                    assert_eq!(pkt.len(), size);
                    let stats = w.process(&mut pkt);
                    if proto.is_dip() {
                        assert!(stats.fns_executed >= 1, "{proto:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn packets_are_distinct() {
        let mut w = Workload::new(Protocol::Ndn, 128);
        let a = w.next_packet();
        let b = w.next_packet();
        assert_ne!(a, b);
    }

    #[test]
    fn sustained_processing_many_rounds() {
        // The regression this guards: interest dedup / PIT consumption
        // making later rounds take a different code path.
        for proto in [Protocol::Ndn, Protocol::NdnOpt] {
            let mut w = Workload::new(proto, 128);
            for _ in 0..2_000 {
                let mut pkt = w.next_packet();
                let stats = w.process(&mut pkt);
                assert!(stats.fns_executed >= 1);
            }
        }
    }

    #[test]
    fn opt_runs_the_auth_chain() {
        let mut w = Workload::new(Protocol::Opt, 768);
        let mut pkt = w.next_packet();
        let stats = w.process(&mut pkt);
        assert_eq!(stats.fns_executed, 3); // parm + mac + mark
        assert_eq!(stats.skipped_host, 1); // ver
        assert!(stats.cost.cipher_blocks > 0);
    }

    #[test]
    fn ndn_opt_runs_pit_plus_auth() {
        let mut w = Workload::new(Protocol::NdnOpt, 768);
        let mut pkt = w.next_packet();
        let stats = w.process(&mut pkt);
        assert_eq!(stats.fns_executed, 4);
    }

    #[test]
    fn mac_choice_switch() {
        let mut w = Workload::new(Protocol::Opt, 128);
        assert_eq!(w.mac_choice(), MacChoice::TwoRoundEm);
        w.set_mac_choice(MacChoice::Aes);
        assert_eq!(w.mac_choice(), MacChoice::Aes);
        let mut pkt = w.next_packet();
        w.process(&mut pkt); // still forwards
    }
}

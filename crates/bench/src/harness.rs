//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `criterion` dependency was
//! replaced by this self-contained substitute with a deliberately similar
//! API: [`BenchGroup::bench_function`] with a [`Bencher`] supporting
//! `iter`, `iter_custom` and `iter_batched`. Each benchmark is calibrated
//! to a target sample duration, run for a fixed number of samples, and
//! reported as `mean ± stddev (min .. max)` nanoseconds per iteration on
//! stdout.
//!
//! Set `DIP_BENCH_SAMPLES` to override the per-group sample count (handy
//! for smoke runs: `DIP_BENCH_SAMPLES=3 cargo bench`).

use crate::summarize;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one sample after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// One measurement context handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the requested number of iterations, timing the whole
    /// batch.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = t0.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time —
    /// for benchmarks that must exclude per-iteration setup.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }

    /// Runs `setup` outside the timed region and `f` inside it, once per
    /// iteration — for benchmarks consuming their input.
    pub fn iter_batched<I, T>(&mut self, mut setup: impl FnMut() -> I, mut f: impl FnMut(I) -> T) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of benchmarks, printed with a common prefix.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// A group with the default sample count (10, or `DIP_BENCH_SAMPLES`).
    pub fn new(name: impl Into<String>) -> Self {
        let samples =
            std::env::var("DIP_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
        BenchGroup { name: name.into(), samples: usize::max(samples, 2) }
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = usize::max(samples, 2);
        self
    }

    /// Calibrates, measures and reports one benchmark.
    pub fn bench_function(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        // Calibration: start at one iteration and grow until a sample is
        // long enough for the Instant resolution not to dominate.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let s = summarize(&per_iter_ns);
        println!(
            "{}/{label}: {:>12.1} ns/iter ± {:>8.1} (min {:.1} .. max {:.1}, {} samples × {} iters)",
            self.name, s.mean, s.stddev, s.min, s.max, self.samples, iters
        );
        self
    }

    /// No-op kept for criterion-API familiarity.
    pub fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_all_iterations() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO || count == 100);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
        );
        assert_eq!(setups, 10);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut g = BenchGroup::new("test");
        g.sample_size(2).bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}

//! Native IPv4/IPv6 forwarding — the Figure 2 baselines.
//!
//! These are the "forwarding times of IPv4 and IPv6 packets" the paper
//! measures against: parse the legacy header, decrement TTL/hop limit
//! (updating the IPv4 checksum), and look up the destination — no DIP
//! machinery involved.

use dip_tables::fib::{Ipv4Fib, Ipv6Fib};
use dip_tables::Port;
use dip_wire::checksum;
use dip_wire::ipv4::{Ipv4Addr, Ipv4Repr, IPV4_HEADER_LEN};
use dip_wire::ipv6::{Ipv6Addr, Ipv6Repr};

/// One native IPv4 forwarding step. Returns the egress port, or `None` on
/// drop (bad packet, TTL expiry, no route).
pub fn native_ipv4_forward(buf: &mut [u8], fib: &Ipv4Fib) -> Option<Port> {
    let repr = Ipv4Repr::parse(buf).ok()?;
    if repr.ttl <= 1 {
        return None;
    }
    buf[8] = repr.ttl - 1;
    // Recompute the header checksum after the TTL change.
    buf[10..12].fill(0);
    let ck = checksum::internet_checksum(&buf[..IPV4_HEADER_LEN]);
    buf[10..12].copy_from_slice(&ck.to_be_bytes());
    fib.lookup(repr.dst).map(|nh| nh.port)
}

/// One native IPv6 forwarding step.
pub fn native_ipv6_forward(buf: &mut [u8], fib: &Ipv6Fib) -> Option<Port> {
    let repr = Ipv6Repr::parse(buf).ok()?;
    if repr.hop_limit <= 1 {
        return None;
    }
    buf[7] = repr.hop_limit - 1;
    fib.lookup(repr.dst).map(|nh| nh.port)
}

/// Builds a native IPv4 packet of exactly `total_len` bytes to `dst`.
pub fn ipv4_packet(dst: Ipv4Addr, src: Ipv4Addr, total_len: usize) -> Vec<u8> {
    assert!(total_len >= IPV4_HEADER_LEN);
    let payload = vec![0u8; total_len - IPV4_HEADER_LEN];
    Ipv4Repr { src, dst, protocol: 17, ttl: 64, payload_len: payload.len() }
        .to_bytes(&payload)
        .expect("ipv4 construction")
}

/// Builds a native IPv6 packet of exactly `total_len` bytes to `dst`.
pub fn ipv6_packet(dst: Ipv6Addr, src: Ipv6Addr, total_len: usize) -> Vec<u8> {
    assert!(total_len >= dip_wire::ipv6::IPV6_HEADER_LEN);
    let payload = vec![0u8; total_len - dip_wire::ipv6::IPV6_HEADER_LEN];
    Ipv6Repr { src, dst, next_header: 17, hop_limit: 64, payload_len: payload.len() }
        .to_bytes(&payload)
        .expect("ipv6 construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;

    #[test]
    fn v4_forwarding_decrements_ttl_and_fixes_checksum() {
        let mut fib = Ipv4Fib::new();
        fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));
        let mut pkt = ipv4_packet(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 1), 128);
        assert_eq!(native_ipv4_forward(&mut pkt, &fib), Some(3));
        assert_eq!(pkt[8], 63);
        // The packet remains valid for the next hop.
        assert!(Ipv4Repr::parse(&pkt).is_ok());
    }

    #[test]
    fn v4_ttl_expiry_drops() {
        let fib = Ipv4Fib::new();
        let mut pkt = ipv4_packet(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 1), 64);
        pkt[8] = 1;
        // Fix checksum for the modified TTL.
        pkt[10..12].fill(0);
        let ck = checksum::internet_checksum(&pkt[..20]);
        pkt[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(native_ipv4_forward(&mut pkt, &fib), None);
    }

    #[test]
    fn v6_forwarding() {
        let mut fib = Ipv6Fib::new();
        let prefix = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]);
        fib.add_route(prefix, 16, NextHop::port(9));
        let mut pkt = ipv6_packet(
            Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 7]),
            Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 1]),
            128,
        );
        assert_eq!(native_ipv6_forward(&mut pkt, &fib), Some(9));
        assert_eq!(pkt[7], 63);
    }

    #[test]
    fn no_route_drops() {
        let fib = Ipv4Fib::new();
        let mut pkt = ipv4_packet(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(1, 1, 1, 1), 64);
        assert_eq!(native_ipv4_forward(&mut pkt, &fib), None);
    }
}

//! Wall-clock worker-scaling sweep: protocol × workers → measured MST.
//!
//! Unlike `workload_slo` (virtual-time queue model over the Tofino
//! service costs — every worker count reports the same modeled MST by
//! construction), this sweep *measures*: real-time paced injection into
//! the threaded dataplane, real worker threads, drops counted at real
//! rings. Per `(protocol, workers)` point it runs
//!
//! 1. a saturation probe (`measure_capacity`): inject as fast as the
//!    rings accept, read each worker's throughput against its thread CPU
//!    time — `capacity_pps`, the statistic that stays meaningful when
//!    the host has fewer cores than threads (DESIGN.md §15);
//! 2. a wall MST bisection (`find_mst_wallclock`): highest offered rate
//!    whose measured window keeps drops under the SLO — `wall_mst_pps`,
//!    authoritative only when every thread owns a core.
//!
//! The committed `mst_pps` is whichever of the two the host can vouch
//! for (`authority` says which); `host_cpus` and `oversubscribed` let a
//! reader on different hardware re-judge the numbers. One main line per
//! point plus one `wallclock_scaling_worker` line per worker with the
//! batch-fill / ring-occupancy telemetry.
//!
//! Env knobs (smoke runs): `DIP_SCALING_PROTOS` (comma list),
//! `DIP_SCALING_WORKERS` (comma list), `DIP_SCALING_WARMUP_MS`,
//! `DIP_SCALING_MEASURE_MS`, `DIP_SCALING_MST_ITERS`.

use dip_bench::JsonLine;
use dip_workload::{
    find_mst_wallclock, host_cpus, measure_capacity, Mix, TrafficClass, WallClockConfig,
    WallMstConfig, WorkloadSpec,
};
use std::time::Duration;

const SEED: u64 = 7;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &str) -> Vec<String> {
    std::env::var(name)
        .unwrap_or_else(|_| default.to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn main() {
    // OPT and NDN+OPT are excluded by default: their packets are
    // MAC-verified (no nonce restamp on pool recycling) and NDN+OPT data
    // consumes pre-seeded PIT state, so neither survives the cycled
    // packet pool the paced driver uses.
    let protos = env_list("DIP_SCALING_PROTOS", "ipv4,ipv6,ndn,xia");
    let workers: Vec<usize> =
        env_list("DIP_SCALING_WORKERS", "1,2,3,4").iter().filter_map(|w| w.parse().ok()).collect();
    let warmup = Duration::from_millis(env_u64("DIP_SCALING_WARMUP_MS", 50));
    let measure = Duration::from_millis(env_u64("DIP_SCALING_MEASURE_MS", 200));
    let mst_iters = env_u64("DIP_SCALING_MST_ITERS", 8) as usize;

    for proto in &protos {
        let class =
            TrafficClass::parse(proto).unwrap_or_else(|| panic!("unknown protocol {proto}"));
        for &w in &workers {
            let spec = WorkloadSpec { seed: SEED, mix: Mix::single(class), ..Default::default() };
            let wallclock = WallClockConfig { workers: w, warmup, measure, ..Default::default() };
            let cap = measure_capacity(&spec, &wallclock);
            // Bracket the wall MST around the saturation probe's measured
            // wall rate: lo is safely sustainable, hi safely not, so a
            // handful of bisection steps converges instead of crawling
            // down from a blind upper bound.
            let lo_pps = ((cap.wall_pps / 16.0) as u64).max(10_000);
            let hi_pps = ((cap.wall_pps * 2.5) as u64).max(lo_pps + 1);
            let mst = find_mst_wallclock(
                &spec,
                &WallMstConfig {
                    wallclock: wallclock.clone(),
                    lo_pps,
                    hi_pps,
                    max_iters: mst_iters,
                    ..Default::default()
                },
            );
            let mst_trial = mst.trials.iter().rfind(|t| t.offered_pps == mst.mst_pps);
            let drop_frac = mst_trial.map_or(1.0, |t| t.drop_frac());
            // The committed number: capacity when threads outnumber
            // cores, the bisected wall MST when they don't.
            let authority = cap.authority();
            let mst_pps =
                if authority == "capacity" { cap.capacity_pps } else { mst.mst_pps as f64 };
            JsonLine::new("wallclock_scaling")
                .str("protocol", proto)
                .u64("workers", w as u64)
                .u64("seed", SEED)
                .u64("mst_pps", mst_pps as u64)
                .str("authority", authority)
                .f64p("capacity_pps", cap.capacity_pps, 0)
                .f64p("wall_pps", cap.wall_pps, 0)
                .u64("wall_mst_pps", mst.mst_pps)
                .f64p("mst_drop_frac", drop_frac, 6)
                .u64("host_cpus", host_cpus() as u64)
                .str("oversubscribed", if cap.oversubscribed() { "true" } else { "false" })
                .str("cpu_time", if cap.cpu_time { "true" } else { "false" })
                .u64("measure_ms", measure.as_millis() as u64)
                .u64("processed", cap.processed)
                .u64("pool_misses", cap.pool_misses)
                .emit();
            for (i, ww) in cap.per_worker.iter().enumerate() {
                JsonLine::new("wallclock_scaling_worker")
                    .str("protocol", proto)
                    .u64("workers", w as u64)
                    .u64("worker", i as u64)
                    .u64("processed", ww.processed)
                    .u64("cpu_ns", ww.cpu_ns.unwrap_or(0))
                    .f64p("capacity_pps", ww.capacity_pps, 0)
                    .f64p("mean_batch_fill", ww.mean_batch_fill, 2)
                    .u64("ring_occupancy", ww.ring_occupancy as u64)
                    .emit();
            }
        }
    }
}

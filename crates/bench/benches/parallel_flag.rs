//! Ablation E5 — the modular-parallelism flag (§2.2).
//!
//! Two measurements: (a) the cost of computing the parallel execution plan
//! itself (the price a router pays to honor the flag), and (b) the
//! model-level speedup it buys — printed as auxiliary output since plan
//! *benefit* is a pipeline-occupancy effect, not a software wall-clock one.

use dip_bench::BenchGroup;
use dip_fnops::parallel::plan;
use dip_fnops::FnRegistry;
use dip_wire::opt::triple_bits;
use dip_wire::triple::{FnKey, FnTriple};

fn ndn_opt_router_chain() -> Vec<FnTriple> {
    vec![
        FnTriple::router(0, 32, FnKey::Pit),
        FnTriple::router(32 + triple_bits::PARM.0, triple_bits::PARM.1, FnKey::Parm),
        FnTriple::router(32 + triple_bits::MAC.0, triple_bits::MAC.1, FnKey::Mac),
        FnTriple::router(32 + triple_bits::MARK.0, triple_bits::MARK.1, FnKey::Mark),
    ]
}

fn wide_independent_chain(n: u16) -> Vec<FnTriple> {
    (0..n).map(|i| FnTriple::router(32 * i, 32, FnKey::Source)).collect()
}

fn main() {
    let registry = FnRegistry::standard();
    let ndn_opt = ndn_opt_router_chain();
    let wide = wide_independent_chain(16);

    let mut group = BenchGroup::new("parallel_flag/planner");
    group.sample_size(100);
    group.bench_function("ndn_opt_4fns", |b| {
        b.iter(|| std::hint::black_box(plan(&ndn_opt, &registry)))
    });
    group.bench_function("independent_16fns", |b| {
        b.iter(|| std::hint::black_box(plan(&wide, &registry)))
    });
    group.finish();

    // Auxiliary: report the depth reduction the flag buys (the PISA model
    // converts this to time; see fig2_processing_time).
    let p1 = plan(&ndn_opt, &registry);
    let p2 = plan(&wide, &registry);
    eprintln!(
        "parallel_flag: NDN+OPT chain 4 FNs -> depth {} | 16 independent FNs -> depth {}",
        p1.depth(),
        p2.depth()
    );
}

//! Internet-scale scenario bench: the partition-length sweep and the
//! ≥128-router fat-tree point, regenerating `BENCH_scenarios.json`.
//!
//! Part 1 sweeps the partition window on a k=4 fat-tree (fresh network
//! per point, fixed outage-phase duration, so the only variable is how
//! long the producer island stays dark) and emits one line per window
//! with the NDN-vs-IPv4 delivery fractions — the paper's
//! disruption-tolerance divergence, measured through the real control
//! plane. NDN must out-deliver IPv4 at every nonzero window.
//!
//! Part 2 runs the no-fault `fat_tree(k=12)` scenario: 180 routers
//! converge from a cold start (HELLO → LSA flood → SPF, no hand-written
//! FIBs) and carry all six traffic classes end to end. The network-wide
//! accounting identity is asserted on every run, partitions included.
//!
//! ```text
//! {"bench":"scenario_partition","window_ns":...,"ndn_delivery_fraction":...,
//!  "ipv4_delivery_fraction":...,"reconvergence_ns":...,...}
//! {"bench":"scenario_fat_tree","routers":180,...,"identity_ok":1,...}
//! ```
//!
//! Env knobs (smoke runs): `DIP_SCENARIO_WINDOWS` (comma list, ns),
//! `DIP_SCENARIO_K` (fat-tree arity of the large point).

use dip_bench::JsonLine;
use dip_scenario::{partition_sweep, run_scenario, ScenarioProtocol, ScenarioSpec};

const SEED: u64 = 7;
const REQUESTS: usize = 24;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let windows: Vec<u64> = std::env::var("DIP_SCENARIO_WINDOWS")
        .map(|v| v.split(',').filter_map(|w| w.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![0, 200_000, 400_000, 800_000, 1_200_000]);

    // Part 1: delivery fraction vs partition length, IPv4 vs NDN.
    for point in partition_sweep(4, &windows, REQUESTS, SEED) {
        let report = &point.report;
        assert!(report.converged, "window {}: control plane must converge", point.window);
        assert!(report.identity_ok, "window {}: accounting identity", point.window);
        let outage = report.phase("outage").expect("outage phase");
        let ndn = outage.delivery_fraction("ndn").expect("ndn injected");
        let ipv4 = outage.delivery_fraction("ipv4").expect("ipv4 injected");
        if point.window > 0 {
            assert!(
                ndn > ipv4,
                "window {}: NDN must out-deliver IPv4 through a partition ({ndn} vs {ipv4})",
                point.window
            );
        }
        JsonLine::new("scenario_partition")
            .str("topology", &report.topology)
            .u64("routers", report.routers as u64)
            .u64("seed", report.seed)
            .u64("window_ns", point.window)
            .f64p("ndn_delivery_fraction", ndn, 4)
            .f64p("ipv4_delivery_fraction", ipv4, 4)
            .u64("cache_hits", outage.cache_hits)
            .u64("link_dropped", outage.link_dropped)
            .u64("pit_expired_evictions", outage.pit_expired_evictions)
            .u64("reconvergence_ns", outage.reconvergence_ns.unwrap_or(0))
            .u64("identity_ok", report.identity_ok as u64)
            .str("fingerprint", &format!("{:016x}", report.fingerprint))
            .emit();
    }

    // Part 2: the ≥128-router point — every protocol through a cold-start
    // converged 180-router fat-tree.
    let k = env_usize("DIP_SCENARIO_K", 12);
    let report = run_scenario(&ScenarioSpec::fat_tree(k, 12, SEED));
    assert!(report.converged, "k={k}: every LSDB must hold every origin");
    assert!(report.identity_ok, "k={k}: accounting identity network-wide");
    if k == 12 {
        assert!(report.routers >= 128, "k=12 fat-tree is the >=128-router point");
    }
    let steady = report.phase("steady").expect("steady phase");
    let mut line = JsonLine::new("scenario_fat_tree")
        .str("topology", &report.topology)
        .u64("routers", report.routers as u64)
        .u64("links", report.links as u64)
        .u64("seed", report.seed)
        .u64("spf_runs", report.spf_runs)
        .u64("convergence_samples", report.convergence_samples);
    for proto in ScenarioProtocol::ALL {
        let fraction = steady.delivery_fraction(proto.label()).expect("protocol injected");
        assert!(
            (fraction - 1.0).abs() < f64::EPSILON,
            "k={k}: {} must deliver end to end through the converged core (got {fraction})",
            proto.label()
        );
        line = line.f64p(&format!("{}_delivery_fraction", proto.label()), fraction, 4);
    }
    line.u64("cache_hits", steady.cache_hits)
        .u64("accounted", report.accounted)
        .u64("sent", report.sent)
        .u64("link_dropped", report.link_dropped)
        .u64("identity_ok", report.identity_ok as u64)
        .str("fingerprint", &format!("{:016x}", report.fingerprint))
        .emit();
}

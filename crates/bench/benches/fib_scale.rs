//! Ablation E8 — FIB lookup latency vs table size.
//!
//! `F_32_match`/`F_128_match`/`F_FIB` lookups at 1k–1M installed routes.
//! On real PISA hardware lookups are constant-time TCAM/SRAM; in software
//! the trie depth shows — this bench documents the substrate's scaling.

use dip_bench::{BenchGroup, DetRng};
use dip_tables::fib::{Ipv4Fib, NameFib, NextHop};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ndn::Name;

fn v4_fib_with(n: usize, rng: &mut DetRng) -> (Ipv4Fib, Vec<Ipv4Addr>) {
    let mut fib = Ipv4Fib::new();
    let mut probes = Vec::with_capacity(1024);
    for i in 0..n {
        let addr = Ipv4Addr::from_u32(rng.next_u32());
        let len = rng.gen_range_inclusive(8, 24) as u8;
        fib.add_route(addr, len, NextHop::port((i % 64) as u32));
        if probes.len() < 1024 {
            probes.push(addr);
        }
    }
    (fib, probes)
}

fn main() {
    let mut group = BenchGroup::new("fib_scale/ipv4_lpm");
    group.sample_size(30);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let mut rng = DetRng::seed_from_u64(n as u64);
        let (fib, probes) = v4_fib_with(n, &mut rng);
        group.bench_function(&n.to_string(), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                std::hint::black_box(fib.lookup(probes[i]))
            });
        });
    }
    group.finish();

    let mut group = BenchGroup::new("fib_scale/name_lpm");
    group.sample_size(30);
    for n in [1_000usize, 10_000, 100_000] {
        let mut fib = NameFib::new();
        let mut probes = Vec::new();
        for i in 0..n {
            let name = Name::parse(&format!("/provider{}/site{}/item{}", i % 100, i % 1000, i));
            fib.add_route(&name, NextHop::port((i % 64) as u32));
            if probes.len() < 1024 {
                probes.push(name.child(b"segment0"));
            }
        }
        group.bench_function(&n.to_string(), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                std::hint::black_box(fib.lookup(&probes[i]))
            });
        });
    }
    group.finish();
}

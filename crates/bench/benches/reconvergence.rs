//! Control-plane reconvergence scaling: ring topologies of increasing
//! size converge from a cold start, lose one link mid-run, and reroute a
//! probe packet the long way around. One JSON line per topology size:
//!
//! ```text
//! {"bench":"reconvergence","nodes":8,"cold_floods":...,"fail_floods":...,
//!  "hellos":...,"spf_runs":...,"cold_convergence_ns_mean":...,
//!  "fail_convergence_ns_mean":...,"probe_delivered":1,"elapsed_ns":...}
//! ```
//!
//! Convergence time is virtual (simulator) time from the first
//! unprocessed topology change to snapshot publication, read back from
//! the `dip_ctrl_convergence_ns` histogram; `elapsed_ns` is host wall
//! time for the whole scenario. The accounting identity is asserted on
//! every run.
//!
//! `DIP_BENCH_SAMPLES` overrides the sample rounds (best wall time
//! reported).

use dip_bench::JsonLine;
use dip_controlplane::{AgentConfig, ControlAgent, ControlNode};
use dip_core::DipRouter;
use dip_protocols::ip;
use dip_sim::engine::{Host, Network, NodeId};
use dip_telemetry::Snapshot;
use dip_wire::ipv4::Ipv4Addr;
use std::time::Instant;

/// Ring sizes: LSA age (hop count) caps at 16, so the worst-case flood
/// radius N/2 must stay below it.
const SIZES: [usize; 3] = [4, 8, 16];

struct Scenario {
    net: Network,
    routers: Vec<NodeId>,
    consumer: NodeId,
}

/// N routers in a ring (port 0 → next, port 1 → previous), a consumer
/// host off router 0 and the announced prefix off the antipodal router —
/// so cutting the ring next to router 0 forces the long way around.
fn build(n: usize) -> Scenario {
    let mut net = Network::new(0x5eed);
    let routers: Vec<NodeId> = (0..n)
        .map(|i| {
            let mut node = ControlNode::new(
                DipRouter::new(i as u64 + 1, [i as u8 + 1; 16]),
                ControlAgent::new(i as u64 + 1, vec![0, 1, 2], AgentConfig::default()),
            );
            if i == n / 2 {
                node.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 2);
            }
            net.add_router_node(Box::new(node))
        })
        .collect();
    for i in 0..n {
        net.connect(routers[i], 0, routers[(i + 1) % n], 1, 1_000);
    }
    let consumer = net.add_host(Host::consumer(1_000));
    net.connect(consumer, 0, routers[0], 2, 1_000);
    let sink = net.add_host(Host::consumer(2_000));
    net.connect(sink, 0, routers[n / 2], 2, 1_000);
    Scenario { net, routers, consumer }
}

fn convergence_stats(snap: &Snapshot) -> (u64, u64) {
    (snap.get("dip_ctrl_convergence_ns_count"), snap.get("dip_ctrl_convergence_ns_sum"))
}

fn mean(count: u64, sum: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

struct RunResult {
    elapsed_ns: u64,
    cold_floods: u64,
    fail_floods: u64,
    hellos: u64,
    spf_runs: u64,
    cold_mean_ns: f64,
    fail_mean_ns: f64,
    probe_delivered: u64,
}

fn run_once(n: usize) -> RunResult {
    let Scenario { mut net, routers, consumer } = build(n);
    let t0 = Instant::now();

    // Cold start: converge and verify a probe crosses the short arc.
    for &r in &routers {
        net.schedule_control_ticks(r, 0, 50_000, 1_500_000);
    }
    let probe = |phase: u8| {
        ip::dip32_packet(Ipv4Addr::new(10, 0, 0, phase), Ipv4Addr::new(192, 168, 0, 1), 64)
            .to_bytes(&[phase])
            .unwrap()
    };
    net.send(consumer, 0, probe(1), 1_400_000);
    net.run();
    let cold = net.metrics_snapshot();
    let (cold_count, cold_sum) = convergence_stats(&cold);
    let cold_floods = cold.get("dip_ctrl_lsa_flood_total");

    // Cut the ring right next to router 0: the short arc dies and
    // traffic must go the long way around.
    dip_scenario::sever_link(&mut net, routers[0], 0);
    for &r in &routers {
        net.schedule_control_ticks(r, 1_600_000, 50_000, 3_500_000);
    }
    net.send(consumer, 0, probe(2), 4_000_000);
    net.run();
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let snap = net.metrics_snapshot();
    let (count, sum) = convergence_stats(&snap);
    assert_eq!(
        snap.get("dip_packets_total"),
        snap.get("dip_node_sent_total") - snap.get("dip_link_dropped_total"),
        "accounting identity"
    );
    let probe_delivered = (net.trace().delivered(false) + net.trace().delivered(true)) as u64;

    RunResult {
        elapsed_ns,
        cold_floods,
        fail_floods: snap.get("dip_ctrl_lsa_flood_total") - cold_floods,
        hellos: snap.get("dip_ctrl_hello_total"),
        spf_runs: snap.get("dip_ctrl_spf_runs_total"),
        cold_mean_ns: mean(cold_count, cold_sum),
        fail_mean_ns: mean(count - cold_count, sum - cold_sum),
        probe_delivered,
    }
}

fn main() {
    let samples: usize =
        std::env::var("DIP_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1);

    // Warm-up.
    run_once(SIZES[0]);

    for &n in &SIZES {
        let mut best: Option<RunResult> = None;
        for _ in 0..samples {
            let r = run_once(n);
            if best.as_ref().is_none_or(|b| r.elapsed_ns < b.elapsed_ns) {
                best = Some(r);
            }
        }
        let r = best.expect("at least one sample");
        assert!(
            r.probe_delivered >= 2,
            "both probes must be delivered (got {})",
            r.probe_delivered
        );
        JsonLine::new("reconvergence")
            .u64("nodes", n as u64)
            .u64("cold_floods", r.cold_floods)
            .u64("fail_floods", r.fail_floods)
            .u64("hellos", r.hellos)
            .u64("spf_runs", r.spf_runs)
            .f64("cold_convergence_ns_mean", r.cold_mean_ns)
            .f64("fail_convergence_ns_mean", r.fail_mean_ns)
            .u64("probe_delivered", r.probe_delivered)
            .u64("elapsed_ns", r.elapsed_ns)
            .emit();
    }
}

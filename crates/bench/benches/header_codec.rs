//! Codec micro-bench: DIP header parse/emit for every paper protocol —
//! the zero-copy wire layer's cost floor (relevant to the "DIP ≈ IP"
//! Figure 2 claim: header handling must stay cheap).

use dip_bench::BenchGroup;
use dip_protocols::opt::OptSession;
use dip_protocols::{ip, ndn, ndn_opt};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ndn::Name;
use dip_wire::packet::{DipPacket, DipRepr};

fn protocol_packets() -> Vec<(&'static str, Vec<u8>)> {
    let name = Name::parse("hotnets.org");
    let session = OptSession::establish([1; 16], &[2; 16], &[[3; 16]]);
    vec![
        (
            "dip32",
            ip::dip32_packet(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64)
                .to_bytes(&[0u8; 64])
                .unwrap(),
        ),
        ("ndn_interest", ndn::interest(&name, 64).to_bytes(&[0u8; 64]).unwrap()),
        ("opt", session.packet(&[0u8; 64], 1, 64).to_bytes(&[0u8; 64]).unwrap()),
        (
            "ndn_opt_data",
            ndn_opt::data(&session, &name, &[0u8; 64], 1, 64).to_bytes(&[0u8; 64]).unwrap(),
        ),
    ]
}

fn parse() {
    let mut group = BenchGroup::new("header_codec/parse");
    group.sample_size(100);
    for (label, bytes) in protocol_packets() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
                std::hint::black_box(DipRepr::parse(&pkt).unwrap())
            })
        });
    }
    group.finish();
}

fn emit() {
    let mut group = BenchGroup::new("header_codec/emit");
    group.sample_size(100);
    for (label, bytes) in protocol_packets() {
        let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
        let repr = DipRepr::parse(&pkt).unwrap();
        let mut out = vec![0u8; repr.header_len()];
        group.bench_function(label, |b| {
            b.iter(|| {
                repr.emit(&mut out).unwrap();
                std::hint::black_box(&out);
            })
        });
    }
    group.finish();
}

fn main() {
    parse();
    emit();
}

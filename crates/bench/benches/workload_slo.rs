//! Max-sustainable-throughput sweep: protocol mix × workers → MST.
//!
//! Runs the `dip-workload` open-loop MST search for every single-protocol
//! mix (the five paper protocols + NDN+OPT) and the equal-weight all-mix,
//! against the threaded dataplane at 1 and 2 workers, and reports one
//! JSON line per `(mix, workers)` point:
//!
//! ```text
//! {"bench":"workload_slo","mix":"ndn:1","workers":2,"mst_pps":...,
//!  "p50_ns":...,"p99_ns":...,"drop_frac":...,"content_hash":"..."}
//! ```
//!
//! The search is fully deterministic (virtual-time queue model over the
//! Tofino service times), so these numbers are comparable across runs
//! and machines — they move only when the pipeline's modeled cost or the
//! workload generator changes. `DIP_WORKLOAD_PKTS` overrides the
//! per-trial packet count for smoke runs.

use dip_bench::JsonLine;
use dip_workload::{
    find_mst, EngineKind, Mix, MstConfig, OpenLoopConfig, TrafficClass, WorkloadSpec,
};

const SEED: u64 = 7;
const WORKERS: [usize; 2] = [1, 2];

fn mixes() -> Vec<Mix> {
    let mut all: Vec<Mix> = TrafficClass::ALL.iter().map(|c| Mix::single(*c)).collect();
    all.push(Mix::all());
    all
}

fn main() {
    let packets: usize =
        std::env::var("DIP_WORKLOAD_PKTS").ok().and_then(|v| v.parse().ok()).unwrap_or(1024);
    for mix in mixes() {
        for workers in WORKERS {
            let spec = WorkloadSpec { seed: SEED, mix: mix.clone(), ..Default::default() };
            let cfg = MstConfig {
                open_loop: OpenLoopConfig {
                    engine: EngineKind::Dataplane { workers, batch_size: 32 },
                    queue_capacity: 256,
                    ..Default::default()
                },
                packets_per_trial: packets,
                max_iters: 12,
                ..Default::default()
            };
            let result = find_mst(&spec, &cfg);
            let (p50, p99, drop_frac, queue_full) = result
                .mst_trial()
                .map(|t| (t.p50_ns, t.p99_ns, t.drop_frac, t.queue_full))
                .unwrap_or((0, 0, 1.0, 0));
            JsonLine::new("workload_slo")
                .str("mix", &mix.label())
                .u64("workers", workers as u64)
                .u64("seed", SEED)
                .u64("trials", result.trials.len() as u64)
                .u64("mst_pps", result.mst_pps)
                .u64("p50_ns", p50)
                .u64("p99_ns", p99)
                .f64p("drop_frac", drop_frac, 6)
                .u64("queue_full", queue_full)
                .str("content_hash", &format!("{:016x}", result.content_hash))
                .emit();
        }
    }
}

//! Ablation E3 — the §4.1 cipher choice: 2EM vs AES for `F_MAC`.
//!
//! Measures (a) the raw CBC-MAC over OPT's 52-byte coverage under both
//! ciphers, and (b) a full OPT packet through the router pipeline with
//! each cipher configured. On Tofino, AES additionally costs a packet
//! resubmission — that penalty lives in the PISA model
//! (`dip_sim::TofinoModel`), which the `fig2_processing_time` harness
//! reports; here we quantify the pure computation gap.

use dip_bench::{BenchGroup, Protocol, Workload};
use dip_crypto::{CbcMac, MacAlgorithm};
use dip_fnops::context::MacChoice;

fn raw_mac() {
    let key = [7u8; 16];
    let coverage = [0xabu8; 52]; // OPT F_MAC coverage
    let em = CbcMac::new_2em(&key);
    let aes = CbcMac::new_aes(&key);

    let mut group = BenchGroup::new("mac_ablation/raw");
    group.sample_size(60);
    group.bench_function("2em_52B", |b| b.iter(|| std::hint::black_box(em.mac(&coverage))));
    group.bench_function("aes_52B", |b| b.iter(|| std::hint::black_box(aes.mac(&coverage))));
    group.finish();
}

fn opt_pipeline() {
    let mut group = BenchGroup::new("mac_ablation/opt_pipeline");
    group.sample_size(60);
    for (label, choice) in [("2em", MacChoice::TwoRoundEm), ("aes", MacChoice::Aes)] {
        let mut w = Workload::new(Protocol::Opt, 768);
        w.set_mac_choice(choice);
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let mut pkt = w.next_packet();
                    let t0 = std::time::Instant::now();
                    std::hint::black_box(w.process(&mut pkt));
                    total += t0.elapsed();
                }
                total
            });
        });
    }
    group.finish();
}

fn main() {
    raw_mac();
    opt_pipeline();
}

//! Forwarding-state churn: MST under a BGP-style route-update storm.
//!
//! Runs the open-loop max-sustainable-throughput search against the
//! threaded dataplane twice — once quiescent, once while a seeded
//! 10k-updates/sec storm commits `dip-routes` deltas and publishes
//! tables-only snapshots through the epoch cell — and reports one JSON
//! line per mode:
//!
//! ```text
//! {"bench":"churn","mode":"storm","workers":4,"churn_ups":10000,
//!  "mst_pps":...,"p50_ns":...,"p99_ns":...,"churn_deltas":...,
//!  "churn_epoch_swaps":...,"degradation_pct":...}
//! ```
//!
//! The storm flaps only synthetic pools disjoint from trace traffic, so
//! outcome classes are identical across modes and the delta is purely
//! the cost of delta application and epoch pickup. The bench enforces
//! the ISSUE acceptance bound: storm MST within 25% of quiescent MST.
//! Everything runs in deterministic virtual time; `DIP_WORKLOAD_PKTS`
//! overrides the per-trial packet count for smoke runs.

use dip_bench::JsonLine;
use dip_workload::{
    find_mst, ChurnSpec, EngineKind, Mix, MstConfig, MstResult, OpenLoopConfig, WorkloadSpec,
};

const SEED: u64 = 7;
const WORKERS: usize = 4;
const CHURN_UPS: u64 = 10_000;

fn run(packets: usize, churn: Option<ChurnSpec>) -> MstResult {
    let spec = WorkloadSpec { seed: SEED, mix: Mix::all(), ..Default::default() };
    let cfg = MstConfig {
        open_loop: OpenLoopConfig {
            engine: EngineKind::Dataplane { workers: WORKERS, batch_size: 32 },
            queue_capacity: 256,
            churn,
            ..Default::default()
        },
        packets_per_trial: packets,
        max_iters: 12,
        ..Default::default()
    };
    find_mst(&spec, &cfg)
}

fn emit(mode: &str, churn_ups: u64, result: &MstResult, degradation_pct: f64) {
    let (p50, p99, drop_frac, deltas, swaps) = result
        .mst_trial()
        .map(|t| (t.p50_ns, t.p99_ns, t.drop_frac, t.churn_deltas, t.churn_epoch_swaps))
        .unwrap_or((0, 0, 1.0, 0, 0));
    JsonLine::new("churn")
        .str("mode", mode)
        .u64("seed", SEED)
        .u64("workers", WORKERS as u64)
        .u64("churn_ups", churn_ups)
        .u64("trials", result.trials.len() as u64)
        .u64("mst_pps", result.mst_pps)
        .u64("p50_ns", p50)
        .u64("p99_ns", p99)
        .f64p("drop_frac", drop_frac, 6)
        .u64("churn_deltas", deltas)
        .u64("churn_epoch_swaps", swaps)
        .f64p("degradation_pct", degradation_pct, 2)
        .str("content_hash", &format!("{:016x}", result.content_hash))
        .emit();
}

fn main() {
    let packets: usize =
        std::env::var("DIP_WORKLOAD_PKTS").ok().and_then(|v| v.parse().ok()).unwrap_or(2048);
    let quiet = run(packets, None);
    // batch=1 keeps the delta interval at 100 µs virtual, so even short
    // high-rate trials see the storm fire mid-trace.
    let storm_spec = ChurnSpec { rate_ups: CHURN_UPS, batch: 1, ..Default::default() };
    let storm = run(packets, Some(storm_spec));

    let degradation_pct = if quiet.mst_pps > 0 {
        (quiet.mst_pps.saturating_sub(storm.mst_pps)) as f64 * 100.0 / quiet.mst_pps as f64
    } else {
        0.0
    };
    emit("quiescent", 0, &quiet, 0.0);
    emit("storm", CHURN_UPS, &storm, degradation_pct);

    assert!(quiet.mst_pps > 0, "quiescent search must find a sustainable rate");
    let storm_trial = storm.mst_trial().expect("storm search found a sustainable rate");
    assert!(
        storm_trial.churn_deltas > 0 && storm_trial.churn_epoch_swaps > 0,
        "the storm must actually commit deltas during the MST trial \
         (deltas {}, swaps {})",
        storm_trial.churn_deltas,
        storm_trial.churn_epoch_swaps
    );
    assert!(
        degradation_pct <= 25.0,
        "storm MST {} degraded more than 25% from quiescent {}",
        storm.mst_pps,
        quiet.mst_pps
    );
}

//! Ablation E4 — processing time vs FN-chain length.
//!
//! §4.1: the prototype replaces the FN loop with an if-else chain over
//! `FN_Num`. This bench sweeps 1–16 FNs per packet (cheap `F_source` ops
//! on disjoint fields, so the op cost itself is flat) and shows how
//! dispatch overhead scales with chain length in the software dataplane.

use dip_bench::BenchGroup;
use dip_core::DipRouter;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

fn packet_with_n_fns(n: u16) -> Vec<u8> {
    let fns = (0..n).map(|i| FnTriple::router(32 * i, 32, FnKey::Source)).collect();
    DipRepr { fns, locations: vec![0u8; usize::from(n) * 4], ..Default::default() }
        .to_bytes(&[0u8; 64])
        .unwrap()
}

fn main() {
    let mut group = BenchGroup::new("fn_chain");
    group.sample_size(60);
    for n in [1u16, 2, 4, 8, 16] {
        let mut router = DipRouter::new(1, [0; 16]);
        router.config_mut().default_port = Some(1);
        let template = packet_with_n_fns(n);
        group.bench_function(&n.to_string(), |b| {
            b.iter_batched(
                || template.clone(),
                |mut pkt| {
                    std::hint::black_box(router.process(&mut pkt, 0, 0));
                },
            );
        });
    }
    group.finish();
}

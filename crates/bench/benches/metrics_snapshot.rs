//! Telemetry accounting under load: drives the threaded dataplane over a
//! mixed workload (routed, unrouted, malformed) and emits one JSON line
//! of end-of-run counters per configuration:
//!
//! ```text
//! {"bench":"metrics_snapshot","workers":2,"pkts":16384,"forwarded":...,
//!  "consumed":0,"dropped_no_route":...,"dropped_malformed_field":...,
//!  "ring_drops":0,"cache_hits":...,"fns_executed":...,"elapsed_ns":...,
//!  "pkts_per_sec":...}
//! ```
//!
//! Every run asserts the tentpole accounting identity — forwarded +
//! consumed + all per-reason drops == injected — so the benchmark doubles
//! as a stress test of the counter plumbing, and it measures what the
//! instrumentation costs while it's at it (the counters are always on in
//! the dataplane).
//!
//! `DIP_METRICS_PKTS` overrides the per-run packet count;
//! `DIP_BENCH_SAMPLES` the sample rounds (best-of reported).

use dip_bench::JsonLine;
use dip_core::DipRouter;
use dip_dataplane::{Backpressure, Dataplane, DataplaneConfig};
use dip_protocols::ip;
use dip_tables::fib::NextHop;
use dip_telemetry::Snapshot;
use dip_wire::ipv4::Ipv4Addr;
use std::time::Instant;

const WORKERS: [usize; 3] = [1, 2, 4];

fn factory(i: usize) -> DipRouter {
    let mut r = DipRouter::new(i as u64, [0x42; 16]);
    r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    r
}

/// Mixed workload: ~80% routed, ~15% unrouted (drop: no_route), ~5%
/// malformed garbage (drop: malformed_field), across many flows.
fn workload(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| match i % 20 {
            19 => vec![0xff; 6],
            16..=18 => ip::dip32_packet(
                Ipv4Addr::new(172, (i >> 8) as u8, i as u8, 1),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            )
            .to_bytes(&[0u8; 32])
            .unwrap(),
            _ => ip::dip32_packet(
                Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            )
            .to_bytes(&[0u8; 32])
            .unwrap(),
        })
        .collect()
}

fn run_once(workers: usize, packets: &[Vec<u8>]) -> (u64, Snapshot) {
    let config = DataplaneConfig {
        workers,
        batch_size: 32,
        ring_capacity: 1024,
        backpressure: Backpressure::Block,
        ..Default::default()
    };
    let mut dp = Dataplane::start(config, factory);
    let t0 = Instant::now();
    for (i, p) in packets.iter().enumerate() {
        dp.submit(p.clone(), 0, i as u64);
    }
    let report = dp.shutdown();
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let snap = report.registry.snapshot();

    // The accounting identity must hold on every single run.
    let forwarded = snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]);
    let consumed = snap.sum_where("dip_packets_total", &[("outcome", "consumed")]);
    let drops = snap.get("dip_drops_total");
    assert_eq!(
        forwarded + consumed + drops,
        packets.len() as u64,
        "telemetry must account for every injected packet"
    );
    (elapsed_ns, snap)
}

fn main() {
    let pkts: usize =
        std::env::var("DIP_METRICS_PKTS").ok().and_then(|s| s.parse().ok()).unwrap_or(16_384);
    let samples: usize =
        std::env::var("DIP_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(5).max(1);
    let packets = workload(pkts);

    // Warm-up.
    run_once(1, &packets[..pkts.min(1024)]);

    for &workers in &WORKERS {
        let mut best: Option<(u64, Snapshot)> = None;
        for _ in 0..samples {
            let (ns, snap) = run_once(workers, &packets);
            if best.as_ref().is_none_or(|(b, _)| ns < *b) {
                best = Some((ns, snap));
            }
        }
        let (elapsed_ns, snap) = best.expect("at least one sample");
        let pps = packets.len() as f64 * 1e9 / elapsed_ns as f64;
        JsonLine::new("metrics_snapshot")
            .u64("workers", workers as u64)
            .u64("pkts", packets.len() as u64)
            .u64("forwarded", snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]))
            .u64("consumed", snap.sum_where("dip_packets_total", &[("outcome", "consumed")]))
            .u64("dropped_no_route", snap.sum_where("dip_drops_total", &[("reason", "no_route")]))
            .u64(
                "dropped_malformed_field",
                snap.sum_where("dip_drops_total", &[("reason", "malformed_field")]),
            )
            .u64("ring_drops", snap.sum_where("dip_drops_total", &[("reason", "queue_full")]))
            .u64("cache_hits", snap.get("dip_program_cache_hits_total"))
            .u64("fns_executed", snap.get("dip_worker_fns_executed_total"))
            .u64("pit_evictions", snap.get("dip_pit_expired_evictions_total"))
            .u64("elapsed_ns", elapsed_ns)
            .f64("pkts_per_sec", pps)
            .emit();
    }
}

//! Criterion version of the Figure 2 experiment: per-packet forwarding
//! time through the software dataplane for every protocol × size point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dip_bench::{Protocol, Workload, FIG2_SIZES};
use std::time::{Duration, Instant};

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    for proto in Protocol::ALL {
        for size in FIG2_SIZES {
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::new(proto.label(), size), &size, |b, &size| {
                let mut w = Workload::new(proto, size);
                // Packet preparation (and PIT seeding for data packets) is
                // excluded from the measurement, mirroring a hardware
                // traffic generator feeding the switch.
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let mut pkt = w.next_packet();
                        let t0 = Instant::now();
                        std::hint::black_box(w.process(&mut pkt));
                        total += t0.elapsed();
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = fig2
}
criterion_main!(benches);

//! The Figure 2 experiment: per-packet forwarding time through the
//! software dataplane for every protocol × size point.

use dip_bench::{BenchGroup, Protocol, Workload, FIG2_SIZES};
use std::time::{Duration, Instant};

fn main() {
    let mut group = BenchGroup::new("fig2");
    group.sample_size(50);
    for proto in Protocol::ALL {
        for size in FIG2_SIZES {
            let mut w = Workload::new(proto, size);
            // Packet preparation (and PIT seeding for data packets) is
            // excluded from the measurement, mirroring a hardware
            // traffic generator feeding the switch.
            group.bench_function(&format!("{}/{size}", proto.label()), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let mut pkt = w.next_packet();
                        let t0 = Instant::now();
                        std::hint::black_box(w.process(&mut pkt));
                        total += t0.elapsed();
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

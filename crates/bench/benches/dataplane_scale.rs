//! Dataplane scaling sweep: workers × batch size → packets/second.
//!
//! Drives the threaded [`dip_dataplane::Dataplane`] (SPSC rings, per-worker
//! routers and program caches) over a many-flow DIP-32 workload, sweeping
//! worker counts 1/2/4 against batch sizes 1/8/32/128 under lossless
//! backpressure. Each configuration is run `DIP_BENCH_SAMPLES` times
//! (default 5) and reported best-of — the minimum is the stable statistic
//! on a shared box — as one JSON line per configuration:
//!
//! ```text
//! {"bench":"dataplane_scale","workers":2,"batch":32,"pkts":32768,
//!  "elapsed_ns":...,"pkts_per_sec":...,"ring_drops":0}
//! ```
//!
//! The sweep asserts the acceptance floor for this subsystem: the best
//! batched multi-worker configuration must beat the unbatched single
//! worker (workers=1, batch=1). On a single-core host that margin comes
//! from batching — the two-phase drain resolves a whole batch through
//! the program-cache memo and executes back-to-back — rather than
//! parallel execution; on multi-core hosts worker scaling adds on top.
//! `DIP_DATAPLANE_PKTS` overrides the per-run packet count for smoke
//! tests; `DIP_DATAPLANE_RING` overrides the per-worker ring capacity.

use dip_bench::JsonLine;
use dip_core::DipRouter;
use dip_dataplane::{Backpressure, Dataplane, DataplaneConfig};
use dip_protocols::ip;
use dip_tables::fib::NextHop;
use dip_wire::ipv4::Ipv4Addr;
use std::time::Instant;

const WORKERS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 4] = [1, 8, 32, 128];

fn factory(i: usize) -> DipRouter {
    let mut r = DipRouter::new(i as u64, [0x42; 16]);
    r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    r
}

/// Many distinct flows (source addresses) so the flow hash spreads load
/// across every worker instead of serializing on one shard.
fn dip32_packets(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            ip::dip32_packet(
                Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            )
            .to_bytes(&[0u8; 64])
            .unwrap()
        })
        .collect()
}

/// One timed run: submit every packet, drain, and report wall time and
/// ring drops. Worker-thread spawn is outside the timed region; the
/// drain-and-join in `shutdown` is inside (the pipeline isn't done until
/// every packet is executed).
fn run_once(workers: usize, batch: usize, packets: &[Vec<u8>]) -> (u64, u64) {
    let config = DataplaneConfig {
        workers,
        batch_size: batch,
        ring_capacity: std::env::var("DIP_DATAPLANE_RING")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1024),
        backpressure: Backpressure::Block,
        ..Default::default()
    };
    let mut dp = Dataplane::start(config, factory);
    let t0 = Instant::now();
    for (i, p) in packets.iter().enumerate() {
        dp.submit(p.clone(), 0, i as u64);
    }
    let report = dp.shutdown();
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(report.total_processed(), packets.len() as u64, "lossless run lost packets");
    (elapsed_ns, report.total_ring_drops())
}

fn main() {
    let pkts: usize =
        std::env::var("DIP_DATAPLANE_PKTS").ok().and_then(|s| s.parse().ok()).unwrap_or(32_768);
    let samples: usize =
        std::env::var("DIP_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(5).max(1);
    let packets = dip32_packets(pkts);

    // Warm-up: fault in code paths and allocator arenas before measuring.
    run_once(1, 32, &packets[..pkts.min(1024)]);

    // Sample rounds are interleaved across configurations (round-robin)
    // rather than config-by-config, so load drift on a shared box hits
    // every configuration equally instead of biasing whichever config
    // happened to run during a quiet spell; best-of then cancels it.
    let configs: Vec<(usize, usize)> =
        WORKERS.iter().flat_map(|&w| BATCHES.iter().map(move |&b| (w, b))).collect();
    let mut best_ns = vec![u64::MAX; configs.len()];
    let mut drops = vec![0u64; configs.len()];
    for _ in 0..samples {
        for (i, &(workers, batch)) in configs.iter().enumerate() {
            let (ns, d) = run_once(workers, batch, &packets);
            best_ns[i] = best_ns[i].min(ns);
            drops[i] = drops[i].max(d);
        }
    }

    let mut results: Vec<(usize, usize, f64)> = Vec::new();
    for (i, &(workers, batch)) in configs.iter().enumerate() {
        let pps = packets.len() as f64 * 1e9 / best_ns[i] as f64;
        JsonLine::new("dataplane_scale")
            .u64("workers", workers as u64)
            .u64("batch", batch as u64)
            .u64("pkts", packets.len() as u64)
            .u64("elapsed_ns", best_ns[i])
            .f64("pkts_per_sec", pps)
            .u64("ring_drops", drops[i])
            .emit();
        results.push((workers, batch, pps));
    }

    let baseline = results
        .iter()
        .find(|(w, b, _)| *w == 1 && *b == 1)
        .map(|(_, _, pps)| *pps)
        .expect("baseline config in sweep");
    let (bw, bb, best) = results
        .iter()
        .filter(|(w, b, _)| *w > 1 && *b > 1)
        .cloned()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("batched multi-worker configs in sweep");
    println!(
        "dataplane_scale: baseline(w=1,b=1) {baseline:.0} pkts/s; \
         best batched multi-worker (w={bw},b={bb}) {best:.0} pkts/s ({:.2}x)",
        best / baseline
    );
    assert!(
        best > baseline,
        "batched multi-worker ({bw}w/{bb}b = {best:.0} pkts/s) must beat the \
         unbatched single worker ({baseline:.0} pkts/s)"
    );
}

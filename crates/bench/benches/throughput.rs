//! Software-dataplane throughput scaling: packets/second through the
//! RSS-style [`dip_sim::ShardedRouter`] at 1/2/4/8 shards, for a cheap
//! workload (DIP-32) and an expensive one (OPT with its MAC chain).
//!
//! On PISA hardware the pipeline is inherently parallel; this bench
//! documents how far the *software* substrate scales, which bounds every
//! wall-clock number reported in EXPERIMENTS.md.

use dip_bench::BenchGroup;
use dip_core::DipRouter;
use dip_protocols::{ip, opt::OptSession};
use dip_sim::{Job, ShardedRouter};
use dip_tables::fib::NextHop;
use dip_wire::ipv4::Ipv4Addr;

fn dip32_packets(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            ip::dip32_packet(
                Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            )
            .to_bytes(&[0u8; 64])
            .unwrap()
        })
        .collect()
}

fn opt_packets(n: usize) -> Vec<Vec<u8>> {
    let session = OptSession::establish([5; 16], &[6; 16], &[[0x42; 16]]);
    (0..n)
        .map(|i| {
            let payload = (i as u64).to_be_bytes();
            session.packet(&payload, i as u32, 64).to_bytes(&payload).unwrap()
        })
        .collect()
}

fn factory(i: usize) -> DipRouter {
    let mut r = DipRouter::new(i as u64, [0x42; 16]);
    r.config_mut().default_port = Some(1);
    r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
    r
}

fn run(shards: usize, packets: &[Vec<u8>]) {
    let driver = ShardedRouter::start(shards, factory);
    for (i, p) in packets.iter().enumerate() {
        driver.submit(Job { packet: p.clone(), in_port: 0, now: i as u64 });
    }
    let stats = driver.shutdown();
    assert_eq!(stats.total(), packets.len() as u64);
    assert_eq!(stats.dropped, 0);
}

fn main() {
    const BATCH: usize = 4_000;
    for (label, packets) in [("dip32", dip32_packets(BATCH)), ("opt", opt_packets(BATCH))] {
        let mut group = BenchGroup::new(format!("throughput/{label}"));
        group.sample_size(10);
        for shards in [1usize, 2, 4, 8] {
            group.bench_function(&shards.to_string(), |b| {
                b.iter(|| run(shards, &packets));
            });
        }
        group.finish();
    }
}

//! [`ControlNode`]: a router node with a control plane bolted on.
//!
//! Wraps any dataplane implementation that can install a
//! [`RouteSnapshot`] (the classic [`DipRouter`], the sharded
//! [`DataplaneRouter`]) together with a [`ControlAgent`]. Control packets
//! (`Hello` / LSA / ack under [`CONTROL_NEXT_HEADER`]) are intercepted
//! and consumed before the wrapped dataplane sees them; everything else
//! passes straight through. Snapshots the agent compiles are published
//! atomically through an [`EpochCell`] — the same cell can be mirrored
//! into a threaded [`Dataplane`](dip_dataplane::runtime::Dataplane) so
//! its workers pick the routes up at their next batch boundary.

use crate::agent::{ControlAgent, TickOutput};
use dip_core::control::{ControlMessage, CONTROL_NEXT_HEADER};
use dip_core::{DipRouter, ProcessStats, Verdict};
use dip_dataplane::router::DataplaneRouter;
use dip_dataplane::snapshot::{EpochCell, EpochReader, RouteSnapshot};
use dip_fnops::context::MacChoice;
use dip_fnops::{DropReason, FnRegistry};
use dip_sim::engine::RouterNode;
use dip_sim::SimTime;
use dip_telemetry::{Counter, Gauge, Histogram, Registry};
use dip_wire::DipPacket;
use std::sync::Arc;

/// A dataplane that can atomically adopt a published route snapshot.
pub trait SnapshotTarget: RouterNode {
    /// Replaces the route tables with `snapshot` (flow state preserved,
    /// as [`RouteSnapshot::apply`] specifies).
    fn install(&mut self, snapshot: &RouteSnapshot);
}

impl SnapshotTarget for DipRouter {
    fn install(&mut self, snapshot: &RouteSnapshot) {
        snapshot.apply(self.state_mut());
    }
}

impl SnapshotTarget for DataplaneRouter {
    fn install(&mut self, snapshot: &RouteSnapshot) {
        for i in 0..self.shards() {
            snapshot.apply(self.shard_router_mut(i).state_mut());
        }
    }
}

/// Convergence-time histogram bounds (virtual ns).
const CONVERGENCE_BOUNDS: [u64; 7] =
    [50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000];

struct Metrics {
    hellos: Arc<Counter>,
    floods: Arc<Counter>,
    spf_runs: Arc<Counter>,
    epoch: Arc<Gauge>,
    convergence: Arc<Histogram>,
    retransmit_depth: Arc<Gauge>,
}

/// A router node running both a dataplane and a control-plane agent.
pub struct ControlNode<R: SnapshotTarget> {
    inner: R,
    agent: ControlAgent,
    routes: Arc<EpochCell<RouteSnapshot>>,
    reader: EpochReader<RouteSnapshot>,
    /// Extra cells the same snapshots are published into (e.g. a
    /// threaded [`Dataplane`](dip_dataplane::runtime::Dataplane)'s cell).
    mirrors: Vec<Arc<EpochCell<RouteSnapshot>>>,
    outbox: Vec<(u32, Vec<u8>)>,
    metrics: Option<Metrics>,
}

impl<R: SnapshotTarget + 'static> ControlNode<R> {
    /// Couples `inner` with `agent`.
    pub fn new(inner: R, agent: ControlAgent) -> Self {
        let routes = Arc::new(EpochCell::new(RouteSnapshot::default()));
        let reader = routes.reader();
        ControlNode {
            inner,
            agent,
            routes,
            reader,
            mirrors: Vec::new(),
            outbox: Vec::new(),
            metrics: None,
        }
    }

    /// The cell this node publishes route snapshots into.
    pub fn routes(&self) -> Arc<EpochCell<RouteSnapshot>> {
        Arc::clone(&self.routes)
    }

    /// Also publish every snapshot into `cell` (e.g. the cell a threaded
    /// dataplane's workers read — see
    /// [`Dataplane::routes_cell`](dip_dataplane::runtime::Dataplane::routes_cell)).
    pub fn mirror_into(&mut self, cell: Arc<EpochCell<RouteSnapshot>>) {
        self.mirrors.push(cell);
    }

    /// The control agent (announcements, adjacency inspection).
    pub fn agent(&self) -> &ControlAgent {
        &self.agent
    }

    /// Mutable agent access (to add announcements after construction).
    pub fn agent_mut(&mut self) -> &mut ControlAgent {
        &mut self.agent
    }

    /// The wrapped dataplane.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the wrapped dataplane.
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Pulls the latest published snapshot into the wrapped dataplane
    /// (one atomic load on the fast path).
    fn sync_routes(&mut self) {
        if self.reader.refresh() {
            self.inner.install(self.reader.get());
        }
    }

    fn publish(&mut self, tick: &mut TickOutput) {
        let Some(snapshot) = tick.snapshot.take() else { return };
        for mirror in &self.mirrors {
            mirror.publish(snapshot.clone());
        }
        self.routes.publish(snapshot);
        self.agent.note_epoch_swap();
        self.sync_routes();
        if let Some(m) = &self.metrics {
            m.spf_runs.inc();
            m.epoch.set(self.routes.epoch() as i64);
            if let Some(ns) = tick.convergence_ns {
                m.convergence.observe(ns);
            }
        }
    }
}

impl<R: SnapshotTarget + 'static> RouterNode for ControlNode<R> {
    fn process_packet(
        &mut self,
        buf: &mut [u8],
        in_port: u32,
        now: SimTime,
    ) -> (Verdict, ProcessStats) {
        self.sync_routes();
        let is_control = DipPacket::new_checked(&buf[..])
            .ok()
            .and_then(|p| p.basic_header().ok())
            .is_some_and(|h| h.next_header == CONTROL_NEXT_HEADER);
        if is_control {
            let pkt = DipPacket::new_unchecked(&buf[..]);
            return match ControlMessage::decode(pkt.payload()) {
                Ok(
                    msg @ (ControlMessage::Hello { .. }
                    | ControlMessage::LinkStateAdvertisement(_)
                    | ControlMessage::LsaAck { .. }),
                ) => {
                    let out = self.agent.on_control(&msg, in_port, now);
                    if let Some(m) = &self.metrics {
                        m.floods.add(out.floods);
                    }
                    self.outbox.extend(out.emits);
                    (Verdict::Consumed, ProcessStats::default())
                }
                // Notification types (FnUnsupported, …) are host-bound:
                // let the wrapped dataplane forward them.
                Ok(_) => self.inner.process_packet(buf, in_port, now),
                // A mangled control payload is a counted drop, never a
                // panic — the adversarial-input suite pins this.
                Err(_) => (Verdict::Drop(DropReason::MalformedField), ProcessStats::default()),
            };
        }
        self.inner.process_packet(buf, in_port, now)
    }

    fn mac_choice(&self) -> MacChoice {
        self.inner.mac_choice()
    }

    fn registry(&self) -> &FnRegistry {
        self.inner.registry()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn attach_metrics(&mut self, registry: &Registry, node: usize) {
        self.inner.attach_metrics(registry, node);
        let n = node.to_string();
        let labels = [("node", n.as_str())];
        self.agent.attach_route_metrics(registry, &labels);
        self.metrics = Some(Metrics {
            hellos: registry.counter("dip_ctrl_hello_total", "HELLO messages sent", &labels),
            floods: registry.counter(
                "dip_ctrl_lsa_flood_total",
                "LSA messages sent (floods, syncs, retransmissions)",
                &labels,
            ),
            spf_runs: registry.counter(
                "dip_ctrl_spf_runs_total",
                "SPF recomputations published",
                &labels,
            ),
            epoch: registry.gauge(
                "dip_ctrl_route_epoch",
                "Epoch of the currently published route snapshot",
                &labels,
            ),
            convergence: registry.histogram(
                "dip_ctrl_convergence_ns",
                "Topology change to snapshot publication (virtual ns)",
                &labels,
                &CONVERGENCE_BOUNDS,
            ),
            retransmit_depth: registry.gauge(
                "dip_ctrl_retransmit_queue_depth",
                "Unacknowledged-LSA retransmit entries across all neighbors",
                &labels,
            ),
        });
    }

    fn control_tick(&mut self, now: SimTime) -> Vec<(u32, Vec<u8>)> {
        let mut tick = self.agent.tick(now);
        if let Some(m) = &self.metrics {
            m.hellos.add(tick.hellos);
            m.floods.add(tick.floods);
            m.retransmit_depth.set(self.agent.retransmit_queue_depth() as i64);
        }
        self.publish(&mut tick);
        let mut emits = std::mem::take(&mut self.outbox);
        emits.append(&mut tick.emits);
        emits
    }

    fn drain_control(&mut self) -> Vec<(u32, Vec<u8>)> {
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{control_packet, AgentConfig};
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;

    fn node(id: u64, ports: Vec<u32>) -> ControlNode<DipRouter> {
        ControlNode::new(
            DipRouter::new(id, [id as u8; 16]),
            ControlAgent::new(id, ports, AgentConfig::default()),
        )
    }

    #[test]
    fn malformed_control_payload_is_a_counted_drop() {
        let mut n = node(1, vec![0]);
        let mut bytes = control_packet(&ControlMessage::Hello { node_id: 2 });
        let len = bytes.len();
        bytes.truncate(len - 4); // cut into the payload
        let (verdict, _) = n.process_packet(&mut bytes, 0, 0);
        assert_eq!(verdict, Verdict::Drop(DropReason::MalformedField));
    }

    #[test]
    fn hello_is_consumed_and_answered_from_the_outbox() {
        let mut n = node(1, vec![0]);
        let mut bytes = control_packet(&ControlMessage::Hello { node_id: 2 });
        let (verdict, _) = n.process_packet(&mut bytes, 0, 0);
        assert_eq!(verdict, Verdict::Consumed);
        assert!(!n.drain_control().is_empty(), "adjacency change floods our LSA");
        assert!(n.drain_control().is_empty(), "outbox drains once");
    }

    #[test]
    fn tick_publishes_into_mirrors_and_installs_into_inner() {
        let mut n = node(1, vec![0]);
        n.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 3);
        let mirror = Arc::new(EpochCell::new(RouteSnapshot::default()));
        n.mirror_into(Arc::clone(&mirror));
        let emits = n.control_tick(50_000);
        assert!(!emits.is_empty(), "hellos go out");
        assert_eq!(
            n.inner().state().lookup_v4(Ipv4Addr::new(10, 1, 1, 1)),
            Some(NextHop::port(3)),
            "snapshot installed into the wrapped router"
        );
        assert_eq!(mirror.epoch(), 1, "mirror cell published");
        assert!(mirror.reader().get().lookup_v4(Ipv4Addr::new(10, 1, 1, 1)).is_some());
    }

    #[test]
    fn non_control_traffic_passes_through() {
        let mut n = node(1, vec![0]);
        n.agent_mut().announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 2);
        n.control_tick(1); // install the snapshot
        let repr = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(10, 0, 0, 7),
            Ipv4Addr::new(1, 1, 1, 1),
            64,
        );
        let mut bytes = repr.to_bytes(b"x").unwrap();
        let (verdict, _) = n.process_packet(&mut bytes, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![2]));
    }
}

//! # dip-controlplane — distributed routing over the DIP dataplane
//!
//! The paper's routers share one protocol-independent L3 core; this
//! crate gives each of them the missing other half: a control-plane
//! agent that *computes* the tables the core executes. The division of
//! labor mirrors P4's — a control plane installs entries, the pipeline
//! forwards — but the control traffic itself rides the DIP dataplane as
//! control messages under `CONTROL_NEXT_HEADER`:
//!
//! 1. **Adjacency**: periodic `Hello` beacons per port; a silent
//!    dead-interval tears the adjacency down ([`agent`]).
//! 2. **Flooding**: sequence-numbered LSAs with hop-count aging and
//!    hop-by-hop acks carry every node's links *and* its IPv4/IPv6
//!    prefixes, NDN name prefixes, and XIA principals ([`agent`]).
//! 3. **SPF**: deterministic Dijkstra with the OSPF two-way check
//!    ([`spf`]).
//! 4. **Publication**: SPF output is compiled into one five-protocol
//!    [`RouteSnapshot`](dip_dataplane::snapshot::RouteSnapshot) and
//!    published atomically through an
//!    [`EpochCell`](dip_dataplane::snapshot::EpochCell) into the wrapped
//!    dataplane — and, via mirroring, into a threaded
//!    [`Dataplane`](dip_dataplane::runtime::Dataplane) ([`node`]).
//!
//! Telemetry (HELLOs, LSA floods, SPF runs, route epoch, convergence
//! time) lands in the shared [`Registry`](dip_telemetry::Registry) under
//! `dip_ctrl_*`.

pub mod agent;
pub mod node;
pub mod spf;

pub use agent::{AgentConfig, ControlAgent, ControlOutput, TickOutput};
pub use node::{ControlNode, SnapshotTarget};
pub use spf::{shortest_paths, SpfRoute};

//! Dijkstra shortest-path-first over the link-state database.
//!
//! Edges count only when *both* endpoints advertise them (the OSPF
//! two-way check): after a link failure one side's re-originated LSA is
//! enough to remove the edge network-wide, even before the far side
//! notices. Iteration is over `BTreeMap`s and ties break on the smaller
//! node id, so the routing produced from identical LSDBs is identical on
//! every node and across runs.

use dip_core::control::Lsa;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One SPF result entry for a destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpfRoute {
    /// Total path cost from the root.
    pub cost: u64,
    /// The root's neighbor on the shortest path (first hop).
    pub first_hop: u64,
}

/// Runs Dijkstra from `root` over `lsdb`, returning the first hop and
/// cost for every reachable node other than the root.
pub fn shortest_paths(lsdb: &BTreeMap<u64, Lsa>, root: u64) -> BTreeMap<u64, SpfRoute> {
    // Adjacency with the two-way check: a→b exists only when b also
    // advertises a.
    let advertises = |from: u64, to: u64| -> Option<u64> {
        lsdb.get(&from)?.links.iter().find(|l| l.neighbor == to).map(|l| u64::from(l.cost))
    };

    let mut routes: BTreeMap<u64, SpfRoute> = BTreeMap::new();
    let mut done: BTreeMap<u64, u64> = BTreeMap::new();
    // (cost, node, first_hop): ties resolve to the smallest node id,
    // then the smallest first-hop id — fully deterministic.
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    heap.push(Reverse((0, root, root)));

    while let Some(Reverse((cost, node, first_hop))) = heap.pop() {
        if done.contains_key(&node) {
            continue;
        }
        done.insert(node, cost);
        if node != root {
            routes.insert(node, SpfRoute { cost, first_hop });
        }
        let Some(lsa) = lsdb.get(&node) else { continue };
        for link in &lsa.links {
            if done.contains_key(&link.neighbor) {
                continue;
            }
            // Two-way check: the neighbor must advertise `node` back.
            if advertises(link.neighbor, node).is_none() {
                continue;
            }
            let next_cost = cost.saturating_add(u64::from(link.cost));
            let hop = if node == root { link.neighbor } else { first_hop };
            heap.push(Reverse((next_cost, link.neighbor, hop)));
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::control::{Announcements, LsaLink};

    fn lsa(origin: u64, links: &[(u64, u32)]) -> Lsa {
        Lsa {
            origin,
            seq: 1,
            age: 0,
            links: links.iter().map(|&(neighbor, cost)| LsaLink { neighbor, cost }).collect(),
            announce: Announcements::default(),
        }
    }

    fn symmetric(edges: &[(u64, u64, u32)]) -> BTreeMap<u64, Lsa> {
        let mut adj: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
        for &(a, b, cost) in edges {
            adj.entry(a).or_default().push((b, cost));
            adj.entry(b).or_default().push((a, cost));
        }
        adj.into_iter().map(|(n, links)| (n, lsa(n, &links))).collect()
    }

    #[test]
    fn picks_the_cheaper_path() {
        // 0—1 costs 10; 0—2—1 costs 2.
        let lsdb = symmetric(&[(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        let routes = shortest_paths(&lsdb, 0);
        assert_eq!(routes[&1], SpfRoute { cost: 2, first_hop: 2 });
        assert_eq!(routes[&2], SpfRoute { cost: 1, first_hop: 2 });
    }

    #[test]
    fn one_sided_edges_are_ignored() {
        // 1 advertises 0, but 0 does not advertise 1: no edge.
        let mut lsdb = BTreeMap::new();
        lsdb.insert(0, lsa(0, &[]));
        lsdb.insert(1, lsa(1, &[(0, 1)]));
        assert!(shortest_paths(&lsdb, 0).is_empty());
    }

    #[test]
    fn equal_cost_ties_break_on_smaller_first_hop() {
        // Diamond: 0—1—3 and 0—2—3, all cost 1. First hop to 3 must be
        // the deterministic choice, node 1.
        let lsdb = symmetric(&[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let routes = shortest_paths(&lsdb, 0);
        assert_eq!(routes[&3], SpfRoute { cost: 2, first_hop: 1 });
    }

    #[test]
    fn unreachable_nodes_are_absent() {
        let mut lsdb = symmetric(&[(0, 1, 1)]);
        lsdb.insert(9, lsa(9, &[(8, 1)]));
        let routes = shortest_paths(&lsdb, 0);
        assert_eq!(routes.len(), 1);
        assert!(!routes.contains_key(&9));
    }

    #[test]
    fn removing_an_edge_reroutes() {
        let full = symmetric(&[(0, 1, 1), (0, 2, 1), (2, 3, 1), (3, 1, 1)]);
        assert_eq!(shortest_paths(&full, 0)[&1].first_hop, 1);
        // Drop 0—1 from node 0's LSA only: the two-way check kills the
        // edge and traffic shifts to the 2—3 detour.
        let mut partial = full.clone();
        partial.insert(0, lsa(0, &[(2, 1)]));
        assert_eq!(shortest_paths(&partial, 0)[&1], SpfRoute { cost: 3, first_hop: 2 });
    }
}

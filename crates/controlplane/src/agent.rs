//! The per-node control-plane agent: HELLO adjacencies, LSA flooding
//! with sequence numbers and hop-count aging, and SPF-driven compilation
//! of the five-protocol [`RouteSnapshot`].
//!
//! The agent is deliberately pure: it never touches the network or the
//! clock itself. [`ControlAgent::on_control`] and [`ControlAgent::tick`]
//! take the current virtual time and return the packets to transmit plus
//! (from `tick`) an optional freshly compiled snapshot; the
//! [`ControlNode`](crate::node::ControlNode) wrapper owns publication and
//! telemetry. All internal state lives in `BTreeMap`s so behaviour is
//! identical across runs and nodes — a requirement for the simulator's
//! determinism gate.

use crate::spf::{shortest_paths, SpfRoute};
use dip_core::control::{Announcements, ControlMessage, Lsa, LsaLink, CONTROL_NEXT_HEADER};
use dip_dataplane::snapshot::RouteSnapshot;
use dip_routes::{RouteDelta, RouteStore, StoreStats};
use dip_sim::SimTime;
use dip_tables::fib::NextHop;
use dip_tables::xia_table::XiaNextHop;
use dip_tables::Port;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::packet::DipRepr;
use dip_wire::xia::{Xid, XidType};
use std::collections::{BTreeMap, BTreeSet};

/// SPF outcomes whose diff against the previous compile exceeds this many
/// route changes are installed by full rebuild instead of a delta commit
/// (a rebuild walks every prefix once; a huge delta walks the same slots
/// *plus* pays per-op bookkeeping). Reconvergence events in sane
/// topologies are far below this, so the common path stays incremental.
const FULL_REBUILD_DELTA_LIMIT: usize = 4096;

/// Timer and protocol constants for one agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// HELLO period; [`ControlAgent::tick`] is expected to fire at this
    /// interval (`Network::schedule_control_ticks` arms it).
    pub hello_interval: SimTime,
    /// Silence on an adjacency longer than this declares the neighbor
    /// dead (conventionally a small multiple of `hello_interval`).
    pub dead_interval: SimTime,
    /// Unacknowledged LSAs retransmit after this long.
    pub retransmit_interval: SimTime,
    /// Own-LSA refresh period (anti-expiry re-origination).
    pub lsa_refresh: SimTime,
    /// LSAs whose hop-count age reaches this stop propagating.
    pub max_age: u32,
    /// Cost advertised for every adjacency (uniform-metric SPF).
    pub link_cost: u32,
    /// Hard cap on unacknowledged-LSA retransmit state *per neighbor*.
    /// On 100+-node graphs a slow or partitioned neighbor would
    /// otherwise accumulate one pending entry per origin — O(nodes) per
    /// port, O(nodes²) per agent. When a new origin would exceed the
    /// cap, the entry with the oldest `last_sent` is evicted
    /// deterministically; recovery rides the periodic LSA refresh and
    /// the Hello database sync, both of which re-offer evicted origins.
    pub retransmit_queue_limit: usize,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            hello_interval: 50_000,
            dead_interval: 160_000,
            retransmit_interval: 120_000,
            lsa_refresh: 50_000_000,
            max_age: 16,
            link_cost: 1,
            retransmit_queue_limit: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Neighbor {
    id: u64,
    last_hello: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u32,
    last_sent: SimTime,
}

/// One SPF compile's desired route set, keyed for diffing against the
/// previous compile. Names keep the parsed [`Name`] alongside so a
/// withdrawal can be expressed without re-parsing.
#[derive(Debug, Default)]
struct Desired {
    v4: BTreeMap<(u32, u8), NextHop>,
    v6: BTreeMap<(u128, u8), NextHop>,
    names: BTreeMap<Vec<Vec<u8>>, (Name, NextHop)>,
    xia: BTreeMap<(u32, Xid), XiaNextHop>,
    xia_types: BTreeSet<u32>,
}

impl Desired {
    fn route_count(&self) -> usize {
        self.v4.len() + self.v6.len() + self.names.len() + self.xia.len()
    }

    /// The route changes turning `prev` into `self`.
    fn diff(&self, prev: &Desired) -> RouteDelta {
        let mut delta = RouteDelta::new();
        for (&(addr, len), &nh) in &self.v4 {
            if prev.v4.get(&(addr, len)) != Some(&nh) {
                delta.announce_v4(Ipv4Addr::from_u32(addr), len, nh);
            }
        }
        for &(addr, len) in prev.v4.keys() {
            if !self.v4.contains_key(&(addr, len)) {
                delta.withdraw_v4(Ipv4Addr::from_u32(addr), len);
            }
        }
        for (&(addr, len), &nh) in &self.v6 {
            if prev.v6.get(&(addr, len)) != Some(&nh) {
                delta.announce_v6(Ipv6Addr::from_u128(addr), len, nh);
            }
        }
        for &(addr, len) in prev.v6.keys() {
            if !self.v6.contains_key(&(addr, len)) {
                delta.withdraw_v6(Ipv6Addr::from_u128(addr), len);
            }
        }
        for (key, (name, nh)) in &self.names {
            if prev.names.get(key).map(|(_, p)| p) != Some(nh) {
                delta.announce_name(name.clone(), *nh);
            }
        }
        for (key, (name, _)) in &prev.names {
            if !self.names.contains_key(key) {
                delta.withdraw_name(name.clone());
            }
        }
        for (&(ty, xid), &nh) in &self.xia {
            if prev.xia.get(&(ty, xid)) != Some(&nh) {
                delta.announce_xia(XidType::from_wire(ty), xid, nh);
            }
        }
        for &(ty, xid) in prev.xia.keys() {
            if !self.xia.contains_key(&(ty, xid)) {
                delta.withdraw_xia(XidType::from_wire(ty), xid);
            }
        }
        delta
    }
}

/// What [`ControlAgent::on_control`] asks the node to do.
#[derive(Debug, Default)]
pub struct ControlOutput {
    /// Packets to transmit, `(port, wire bytes)`.
    pub emits: Vec<(Port, Vec<u8>)>,
    /// LSA messages among `emits` (flood-overhead accounting).
    pub floods: u64,
}

/// What one timer tick produced.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Packets to transmit, `(port, wire bytes)`.
    pub emits: Vec<(Port, Vec<u8>)>,
    /// A freshly compiled snapshot when the topology view changed.
    pub snapshot: Option<RouteSnapshot>,
    /// HELLO messages among `emits`.
    pub hellos: u64,
    /// LSA messages among `emits`.
    pub floods: u64,
    /// Virtual nanoseconds from the first unprocessed topology change to
    /// this tick's snapshot (the convergence-time observation).
    pub convergence_ns: Option<u64>,
}

/// The link-state agent for one node.
pub struct ControlAgent {
    node_id: u64,
    config: AgentConfig,
    /// Ports HELLOs go out on (all router ports; adjacencies only form
    /// where another agent answers).
    ports: Vec<Port>,
    local: Announcements,
    neighbors: BTreeMap<Port, Neighbor>,
    lsdb: BTreeMap<u64, Lsa>,
    /// LSAs sent but not yet acknowledged, keyed `(port, origin)`.
    pending: BTreeMap<(Port, u64), Pending>,
    my_seq: u32,
    dirty: bool,
    dirty_since: Option<SimTime>,
    last_originated: SimTime,
    /// Local announcements changed since the last origination: the next
    /// tick re-originates and floods.
    reannounce: bool,
    /// Compiled forwarding state, updated incrementally: each SPF run
    /// diffs its desired routes against `desired` and commits the delta
    /// (full rebuild only on the first compile or past
    /// [`FULL_REBUILD_DELTA_LIMIT`]).
    store: RouteStore,
    /// The previous compile's desired route set (diff baseline).
    desired: Desired,
}

/// Wraps a control message into a transmittable DIP packet.
pub fn control_packet(msg: &ControlMessage) -> Vec<u8> {
    DipRepr { next_header: CONTROL_NEXT_HEADER, hop_limit: 16, ..Default::default() }
        .to_bytes(&msg.encode())
        .expect("control packet construction")
}

impl ControlAgent {
    /// An agent for `node_id` speaking on `ports`.
    pub fn new(node_id: u64, ports: Vec<Port>, config: AgentConfig) -> Self {
        let mut agent = ControlAgent {
            node_id,
            config,
            ports,
            local: Announcements::default(),
            neighbors: BTreeMap::new(),
            lsdb: BTreeMap::new(),
            pending: BTreeMap::new(),
            my_seq: 0,
            dirty: false,
            dirty_since: None,
            last_originated: 0,
            reannounce: false,
            store: RouteStore::new(),
            desired: Desired::default(),
        };
        // Install the initial (link-less) own LSA so the first tick
        // publishes the node's local announcements.
        agent.originate(0);
        agent.mark_dirty(0);
        agent
    }

    /// The node id this agent speaks for.
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// Announces a locally attached IPv4 prefix delivered via `port`.
    pub fn announce_v4(&mut self, addr: Ipv4Addr, len: u8, port: Port) {
        self.local.v4.push((addr, len, port));
        self.announcements_changed();
    }

    /// Announces a locally attached IPv6 prefix delivered via `port`.
    pub fn announce_v6(&mut self, addr: Ipv6Addr, len: u8, port: Port) {
        self.local.v6.push((addr, len, port));
        self.announcements_changed();
    }

    /// Announces a locally served NDN name prefix delivered via `port`.
    pub fn announce_name(&mut self, name: Name, port: Port) {
        self.local.names.push((name, port));
        self.announcements_changed();
    }

    /// Announces a locally known XIA principal.
    pub fn announce_xia(&mut self, ty: XidType, xid: Xid, next_hop: XiaNextHop) {
        self.local.xia.push((ty, xid, next_hop));
        self.announcements_changed();
    }

    fn announcements_changed(&mut self) {
        self.reannounce = true;
        self.mark_dirty(self.last_originated);
    }

    /// Live adjacencies as `(port, neighbor id)`.
    pub fn neighbors(&self) -> Vec<(Port, u64)> {
        self.neighbors.iter().map(|(&p, n)| (p, n.id)).collect()
    }

    /// Number of distinct origins in the link-state database.
    pub fn lsdb_len(&self) -> usize {
        self.lsdb.len()
    }

    /// The agent's current view of the shortest paths (for inspection).
    pub fn spf(&self) -> BTreeMap<u64, SpfRoute> {
        shortest_paths(&self.lsdb, self.node_id)
    }

    fn mark_dirty(&mut self, now: SimTime) {
        self.dirty = true;
        if self.dirty_since.is_none() {
            self.dirty_since = Some(now);
        }
    }

    /// Records retransmit state for an LSA offered to `port`, enforcing
    /// [`AgentConfig::retransmit_queue_limit`] per neighbor: when a new
    /// origin would exceed the cap, the stalest entry on that port (oldest
    /// `last_sent`, ties to the smallest origin — `BTreeMap` order makes
    /// both deterministic) is evicted to make room.
    fn note_pending(&mut self, port: Port, origin: u64, seq: u32, now: SimTime) {
        let replacing = self.pending.contains_key(&(port, origin));
        if !replacing {
            let on_port = self.pending.keys().filter(|&&(p, _)| p == port).count();
            if on_port >= self.config.retransmit_queue_limit {
                let stalest = self
                    .pending
                    .iter()
                    .filter(|(&(p, _), _)| p == port)
                    .min_by_key(|(&(_, o), pend)| (pend.last_sent, o))
                    .map(|(&k, _)| k);
                if let Some(k) = stalest {
                    self.pending.remove(&k);
                }
            }
        }
        self.pending.insert((port, origin), Pending { seq, last_sent: now });
    }

    /// Total unacknowledged-LSA retransmit entries across all neighbors
    /// (the `dip_ctrl_retransmit_queue_depth` observation). Bounded by
    /// `ports × retransmit_queue_limit`.
    pub fn retransmit_queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// The deepest single neighbor's retransmit queue — never exceeds
    /// [`AgentConfig::retransmit_queue_limit`].
    pub fn retransmit_queue_max_per_neighbor(&self) -> usize {
        let mut per_port: BTreeMap<Port, usize> = BTreeMap::new();
        for &(port, _) in self.pending.keys() {
            *per_port.entry(port).or_insert(0) += 1;
        }
        per_port.values().copied().max().unwrap_or(0)
    }

    /// Rebuilds and installs this node's own LSA from the live adjacency
    /// set (does not flood — callers flood the returned copy).
    fn originate(&mut self, now: SimTime) -> Lsa {
        self.my_seq += 1;
        let mut seen = Vec::new();
        let mut links = Vec::new();
        for n in self.neighbors.values() {
            if !seen.contains(&n.id) {
                seen.push(n.id);
                links.push(LsaLink { neighbor: n.id, cost: self.config.link_cost });
            }
        }
        let lsa = Lsa {
            origin: self.node_id,
            seq: self.my_seq,
            age: 0,
            links,
            announce: self.local.clone(),
        };
        self.lsdb.insert(self.node_id, lsa.clone());
        self.last_originated = now;
        lsa
    }

    /// Floods `lsa` (age bumped by one hop) to every adjacency except
    /// `except`, recording retransmission state. Returns the number of
    /// LSA messages emitted.
    fn flood(
        &mut self,
        lsa: &Lsa,
        except: Option<Port>,
        now: SimTime,
        emits: &mut Vec<(Port, Vec<u8>)>,
    ) -> u64 {
        let aged = Lsa { age: lsa.age + 1, ..lsa.clone() };
        if aged.age >= self.config.max_age {
            return 0;
        }
        let msg = control_packet(&ControlMessage::LinkStateAdvertisement(aged));
        let mut sent = 0;
        let ports: Vec<Port> = self.neighbors.keys().copied().collect();
        for port in ports {
            if Some(port) == except {
                continue;
            }
            emits.push((port, msg.clone()));
            self.note_pending(port, lsa.origin, lsa.seq, now);
            sent += 1;
        }
        sent
    }

    /// Handles one received control message. `Hello`/`LSA`/`LsaAck` are
    /// the only types routed here by the node wrapper.
    pub fn on_control(
        &mut self,
        msg: &ControlMessage,
        in_port: Port,
        now: SimTime,
    ) -> ControlOutput {
        let mut out = ControlOutput::default();
        match msg {
            ControlMessage::Hello { node_id } => {
                let known = self.neighbors.get(&in_port).map(|n| n.id);
                self.neighbors.insert(in_port, Neighbor { id: *node_id, last_hello: now });
                if known != Some(*node_id) {
                    // New adjacency (or the port changed hands): re-advertise
                    // our links, flood the update, and sync our database to
                    // the newcomer.
                    let own = self.originate(now);
                    out.floods += self.flood(&own, None, now, &mut out.emits);
                    let others: Vec<Lsa> = self
                        .lsdb
                        .values()
                        .filter(|l| l.origin != self.node_id && l.age + 1 < self.config.max_age)
                        .cloned()
                        .collect();
                    for lsa in others {
                        let aged = Lsa { age: lsa.age + 1, ..lsa };
                        out.emits.push((
                            in_port,
                            control_packet(&ControlMessage::LinkStateAdvertisement(aged)),
                        ));
                        self.note_pending(in_port, lsa.origin, lsa.seq, now);
                        out.floods += 1;
                    }
                    self.mark_dirty(now);
                }
            }
            ControlMessage::LinkStateAdvertisement(lsa) => {
                out.emits.push((
                    in_port,
                    control_packet(&ControlMessage::LsaAck { origin: lsa.origin, seq: lsa.seq }),
                ));
                if lsa.age >= self.config.max_age {
                    return out;
                }
                if lsa.origin == self.node_id {
                    // A stale incarnation of our own LSA is circulating:
                    // out-sequence it.
                    if lsa.seq >= self.my_seq {
                        self.my_seq = lsa.seq;
                        let own = self.originate(now);
                        out.floods += self.flood(&own, None, now, &mut out.emits);
                        self.mark_dirty(now);
                    }
                    return out;
                }
                let known_seq = self.lsdb.get(&lsa.origin).map(|l| l.seq);
                match known_seq {
                    Some(seq) if seq > lsa.seq => {
                        // We hold something newer: push it back so the
                        // sender catches up.
                        let newer = self.lsdb[&lsa.origin].clone();
                        let aged = Lsa { age: newer.age + 1, ..newer.clone() };
                        if aged.age < self.config.max_age {
                            out.emits.push((
                                in_port,
                                control_packet(&ControlMessage::LinkStateAdvertisement(aged)),
                            ));
                            self.note_pending(in_port, newer.origin, newer.seq, now);
                            out.floods += 1;
                        }
                    }
                    Some(seq) if seq == lsa.seq => {
                        // Duplicate: the peer evidently has it — treat as
                        // an implicit ack.
                        self.pending.remove(&(in_port, lsa.origin));
                    }
                    _ => {
                        self.lsdb.insert(lsa.origin, lsa.clone());
                        self.mark_dirty(now);
                        out.floods += self.flood(lsa, Some(in_port), now, &mut out.emits);
                    }
                }
            }
            ControlMessage::LsaAck { origin, seq } => {
                if let Some(p) = self.pending.get(&(in_port, *origin)) {
                    if p.seq <= *seq {
                        self.pending.remove(&(in_port, *origin));
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// One periodic timer firing: HELLOs out, dead-interval scan,
    /// refresh, retransmissions, and — when the topology view changed —
    /// an SPF run compiled into a publishable snapshot.
    pub fn tick(&mut self, now: SimTime) -> TickOutput {
        let mut out = TickOutput::default();

        // HELLOs on every configured port (discovery and keepalive).
        let hello = control_packet(&ControlMessage::Hello { node_id: self.node_id });
        for &port in &self.ports {
            out.emits.push((port, hello.clone()));
            out.hellos += 1;
        }

        // Dead-interval scan.
        let dead: Vec<Port> = self
            .neighbors
            .iter()
            .filter(|(_, n)| now.saturating_sub(n.last_hello) > self.config.dead_interval)
            .map(|(&p, _)| p)
            .collect();
        if !dead.is_empty() {
            for port in dead {
                self.neighbors.remove(&port);
                self.pending.retain(|&(p, _), _| p != port);
            }
            let own = self.originate(now);
            out.floods += self.flood(&own, None, now, &mut out.emits);
            self.mark_dirty(now);
        }

        // Announcement changes and periodic refresh both re-originate.
        if self.reannounce || now.saturating_sub(self.last_originated) >= self.config.lsa_refresh {
            self.reannounce = false;
            let own = self.originate(now);
            out.floods += self.flood(&own, None, now, &mut out.emits);
        }

        // Retransmit unacknowledged LSAs.
        let due: Vec<(Port, u64)> = self
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.last_sent) >= self.config.retransmit_interval)
            .map(|(&k, _)| k)
            .collect();
        for (port, origin) in due {
            if !self.neighbors.contains_key(&port) {
                self.pending.remove(&(port, origin));
                continue;
            }
            match self.lsdb.get(&origin) {
                Some(lsa) if lsa.age + 1 < self.config.max_age => {
                    let aged = Lsa { age: lsa.age + 1, ..lsa.clone() };
                    let seq = lsa.seq;
                    out.emits.push((
                        port,
                        control_packet(&ControlMessage::LinkStateAdvertisement(aged)),
                    ));
                    self.note_pending(port, origin, seq, now);
                    out.floods += 1;
                }
                _ => {
                    self.pending.remove(&(port, origin));
                }
            }
        }

        // SPF + snapshot compilation when the view changed.
        if self.dirty {
            let routes = shortest_paths(&self.lsdb, self.node_id);
            out.snapshot = Some(self.compile(&routes));
            out.convergence_ns = self.dirty_since.map(|t| now.saturating_sub(t));
            self.dirty = false;
            self.dirty_since = None;
        }
        out
    }

    /// Compiles SPF results plus per-origin announcements into the
    /// desired five-protocol route set, installs it into the compiled
    /// store (delta commit on the common path, full rebuild on the first
    /// compile or oversized diffs), and wraps the resulting tables into
    /// a tables-only snapshot whose publication cost is a few `Arc`
    /// bumps regardless of table size.
    fn compile(&mut self, routes: &BTreeMap<u64, SpfRoute>) -> RouteSnapshot {
        // First-hop node id → egress port (smallest port wins when
        // parallel links exist; BTreeMap order makes this deterministic).
        let mut toward: BTreeMap<u64, Port> = BTreeMap::new();
        for (&port, n) in &self.neighbors {
            toward.entry(n.id).or_insert(port);
        }

        let mut want = Desired::default();
        for (origin, lsa) in &self.lsdb {
            let egress: Option<Port> = if *origin == self.node_id {
                None // local announcements carry their own port
            } else {
                match routes.get(origin).and_then(|r| toward.get(&r.first_hop)) {
                    Some(&p) => Some(p),
                    None => continue, // unreachable origin
                }
            };
            let a = &lsa.announce;
            for &(addr, len, port) in &a.v4 {
                want.v4.insert((addr.to_u32(), len), NextHop::port(egress.unwrap_or(port)));
            }
            for &(addr, len, port) in &a.v6 {
                want.v6.insert((addr.to_u128(), len), NextHop::port(egress.unwrap_or(port)));
            }
            for (name, port) in &a.names {
                want.names.insert(
                    name.components().to_vec(),
                    (name.clone(), NextHop::port(egress.unwrap_or(*port))),
                );
            }
            for &(ty, xid, nh) in &a.xia {
                want.xia_types.insert(ty.to_wire());
                let nh = match egress {
                    // Remote principals route toward the origin.
                    Some(p) => XiaNextHop::Port(p),
                    None => nh,
                };
                want.xia.insert((ty.to_wire(), xid), nh);
            }
        }

        let delta = want.diff(&self.desired);
        let tables = if self.store.route_count() == 0 || delta.len() > FULL_REBUILD_DELTA_LIMIT {
            // First compile, or a diff so large the incremental path
            // would cost more than compiling from scratch.
            self.store.clear();
            for (&(addr, len), &nh) in &want.v4 {
                self.store.insert_v4(Ipv4Addr::from_u32(addr), len, nh);
            }
            for (&(addr, len), &nh) in &want.v6 {
                self.store.insert_v6(Ipv6Addr::from_u128(addr), len, nh);
            }
            for (name, nh) in want.names.values() {
                self.store.insert_name(name, *nh);
            }
            for &ty in &want.xia_types {
                self.store.declare_xia_type(XidType::from_wire(ty));
            }
            for (&(ty, xid), &nh) in &want.xia {
                self.store.insert_xia(XidType::from_wire(ty), xid, nh);
            }
            self.store.rebuild()
        } else {
            for &ty in want.xia_types.difference(&self.desired.xia_types) {
                self.store.declare_xia_type(XidType::from_wire(ty));
            }
            self.store.commit(&delta)
        };
        self.desired = want;
        RouteSnapshot::from_tables(tables)
    }

    /// Delta/rebuild/swap counters of the compiled route store.
    pub fn route_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Number of routes currently compiled.
    pub fn route_count(&self) -> usize {
        self.desired.route_count()
    }

    /// Exports the compiled store's `dip_routes_*` metrics into
    /// `registry` (call once, from the owning node's metric attach).
    pub fn attach_route_metrics(
        &mut self,
        registry: &dip_telemetry::Registry,
        labels: &[(&str, &str)],
    ) {
        self.store.attach_metrics(registry, labels);
    }

    /// Records that a compiled snapshot was picked up by the dataplane
    /// (`dip_routes_epoch_swaps_total`).
    pub fn note_epoch_swap(&mut self) {
        self.store.note_epoch_swap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello_from(id: u64) -> ControlMessage {
        ControlMessage::Hello { node_id: id }
    }

    /// Drives `a` and `b` to full adjacency over one virtual link
    /// (a.port_a ↔ b.port_b) by exchanging all control traffic.
    fn converge_pair(
        a: &mut ControlAgent,
        b: &mut ControlAgent,
        port_a: Port,
        port_b: Port,
        now: SimTime,
    ) {
        let mut inflight: Vec<(bool, Vec<u8>)> = Vec::new(); // (to_b, bytes)
        let ta = a.tick(now);
        for (p, bytes) in ta.emits {
            if p == port_a {
                inflight.push((true, bytes));
            }
        }
        let tb = b.tick(now);
        for (p, bytes) in tb.emits {
            if p == port_b {
                inflight.push((false, bytes));
            }
        }
        let mut guard = 0;
        while let Some((to_b, bytes)) = inflight.pop() {
            guard += 1;
            assert!(guard < 1000, "control exchange does not converge");
            let pkt = dip_wire::DipPacket::new_checked(&bytes[..]).unwrap();
            let msg = ControlMessage::decode(pkt.payload()).unwrap();
            let out = if to_b {
                b.on_control(&msg, port_b, now)
            } else {
                a.on_control(&msg, port_a, now)
            };
            for (p, reply) in out.emits {
                if to_b && p == port_b {
                    inflight.push((false, reply));
                } else if !to_b && p == port_a {
                    inflight.push((true, reply));
                }
            }
        }
    }

    #[test]
    fn adjacency_forms_and_databases_sync() {
        let mut a = ControlAgent::new(1, vec![0], AgentConfig::default());
        let mut b = ControlAgent::new(2, vec![0], AgentConfig::default());
        b.announce_v4(Ipv4Addr::new(10, 0, 0, 0), 8, 1);
        converge_pair(&mut a, &mut b, 0, 0, 1);
        assert_eq!(a.neighbors(), vec![(0, 2)]);
        assert_eq!(b.neighbors(), vec![(0, 1)]);
        assert_eq!(a.lsdb_len(), 2);
        assert_eq!(b.lsdb_len(), 2);

        // a's next tick compiles a snapshot routing 10/8 toward b.
        let tick = a.tick(100_000);
        let snap = tick.snapshot.expect("dirty after adjacency change");
        assert_eq!(
            snap.lookup_v4(Ipv4Addr::new(10, 9, 9, 9)),
            Some(NextHop::port(0)),
            "remote prefix routes out the adjacency port"
        );
    }

    #[test]
    fn local_announcements_use_their_own_port() {
        let mut a = ControlAgent::new(1, vec![0, 1], AgentConfig::default());
        a.announce_v4(Ipv4Addr::new(192, 168, 0, 0), 16, 7);
        let tick = a.tick(1);
        let snap = tick.snapshot.expect("initially dirty");
        assert_eq!(snap.lookup_v4(Ipv4Addr::new(192, 168, 1, 1)), Some(NextHop::port(7)));
    }

    #[test]
    fn reconvergence_commits_deltas_not_rebuilds() {
        let mut a = ControlAgent::new(1, vec![0], AgentConfig::default());
        a.announce_v4(Ipv4Addr::new(192, 168, 0, 0), 16, 7);
        let first = a.tick(1);
        assert!(first.snapshot.is_some());
        assert_eq!(a.route_stats().full_rebuilds, 1, "first compile builds from scratch");

        // Every later announcement-driven recompile is an incremental
        // commit: the changed-prefix set is tiny.
        for i in 0..5u8 {
            a.announce_v4(Ipv4Addr::new(172, 16 + i, 0, 0), 16, 2);
            let tick = a.tick(50_000 * (u64::from(i) + 1) + 1);
            let snap = tick.snapshot.expect("announcement dirties the view");
            assert_eq!(snap.lookup_v4(Ipv4Addr::new(172, 16 + i, 1, 1)), Some(NextHop::port(2)));
            assert!(snap.ipv4_fib.is_empty(), "compiled snapshots leave legacy FIBs empty");
        }
        let stats = a.route_stats();
        assert_eq!(stats.full_rebuilds, 1, "no recompile fell back to a rebuild");
        assert_eq!(stats.deltas_applied, 5);
        assert_eq!(a.route_count(), 6);
    }

    #[test]
    fn dead_interval_tears_down_the_adjacency() {
        let cfg = AgentConfig::default();
        let dead_after = cfg.dead_interval;
        let mut a = ControlAgent::new(1, vec![0], cfg);
        let out = a.on_control(&hello_from(2), 0, 1_000);
        assert!(!out.emits.is_empty(), "new adjacency floods");
        assert_eq!(a.neighbors().len(), 1);

        // Silence past the dead interval: the next tick removes it and
        // re-originates.
        let tick = a.tick(1_000 + dead_after + 1);
        assert!(a.neighbors().is_empty());
        assert!(tick.snapshot.is_some(), "topology change recompiles");
        assert!(tick.convergence_ns.is_some());
    }

    #[test]
    fn older_lsa_is_answered_with_the_newer_copy() {
        let mut a = ControlAgent::new(1, vec![0], AgentConfig::default());
        a.on_control(&hello_from(2), 0, 1);
        let newer =
            Lsa { origin: 5, seq: 9, age: 0, links: vec![], announce: Announcements::default() };
        a.on_control(&ControlMessage::LinkStateAdvertisement(newer.clone()), 0, 2);
        let older = Lsa { seq: 3, ..newer };
        let out = a.on_control(&ControlMessage::LinkStateAdvertisement(older), 0, 3);
        // First emit is the ack, second pushes back seq 9.
        let replies: Vec<ControlMessage> = out
            .emits
            .iter()
            .map(|(_, b)| {
                ControlMessage::decode(dip_wire::DipPacket::new_checked(&b[..]).unwrap().payload())
                    .unwrap()
            })
            .collect();
        assert!(replies.iter().any(|m| matches!(m, ControlMessage::LsaAck { origin: 5, seq: 3 })));
        assert!(replies
            .iter()
            .any(|m| matches!(m, ControlMessage::LinkStateAdvertisement(l) if l.seq == 9)));
    }

    #[test]
    fn unacked_lsas_retransmit_until_acked() {
        let cfg = AgentConfig::default();
        let retransmit = cfg.retransmit_interval;
        let mut a = ControlAgent::new(1, vec![0], cfg);
        a.on_control(&hello_from(2), 0, 1);
        // The adjacency flood left a pending entry; a tick past the
        // retransmission interval re-sends the own LSA.
        let tick = a.tick(retransmit + 10);
        assert!(tick.floods >= 1, "retransmission fired");
        // Ack it: no further retransmissions.
        a.on_control(&ControlMessage::LsaAck { origin: 1, seq: 2 }, 0, retransmit + 20);
        // Keep the hello fresh so the dead scan doesn't re-originate.
        a.on_control(&hello_from(2), 0, 2 * retransmit);
        let tick = a.tick(2 * retransmit + 20);
        assert_eq!(tick.floods, 0, "acked LSA stays quiet");
    }

    #[test]
    fn retransmit_queue_is_bounded_per_neighbor() {
        // Port 1's neighbor never acks: flood far more origins through
        // than the cap and check the pending state saturates instead of
        // growing O(origins).
        let cfg = AgentConfig { retransmit_queue_limit: 8, ..AgentConfig::default() };
        let mut a = ControlAgent::new(1, vec![0, 1], cfg);
        a.on_control(&hello_from(2), 0, 1);
        a.on_control(&hello_from(3), 1, 1);
        for origin in 10..200u64 {
            let lsa =
                Lsa { origin, seq: 1, age: 0, links: vec![], announce: Announcements::default() };
            // Arrives on port 0, floods out port 1, recording pending
            // retransmit state toward the silent neighbor there.
            a.on_control(&ControlMessage::LinkStateAdvertisement(lsa), 0, 2);
        }
        assert!(a.lsdb_len() > 100, "LSAs themselves are all installed");
        assert_eq!(a.retransmit_queue_max_per_neighbor(), 8, "pending state saturates at the cap");
        assert!(
            a.retransmit_queue_depth() <= 2 * 8,
            "total depth bounded by ports x cap, got {}",
            a.retransmit_queue_depth()
        );
        // An ack for an evicted origin is harmless; one for a retained
        // origin (the latest insert survives eviction) shrinks the queue.
        let before = a.retransmit_queue_depth();
        a.on_control(&ControlMessage::LsaAck { origin: 199, seq: 1 }, 1, 3);
        assert_eq!(a.retransmit_queue_depth(), before - 1);
    }

    #[test]
    fn max_age_stops_propagation() {
        let cfg = AgentConfig { max_age: 2, ..AgentConfig::default() };
        let mut a = ControlAgent::new(1, vec![0, 1], cfg);
        a.on_control(&hello_from(2), 0, 1);
        a.on_control(&hello_from(3), 1, 1);
        let tired =
            Lsa { origin: 9, seq: 1, age: 1, links: vec![], announce: Announcements::default() };
        let out = a.on_control(&ControlMessage::LinkStateAdvertisement(tired), 0, 2);
        // Installed (age 1 < 2) but the re-flood would be age 2 == max:
        // only the ack goes out.
        assert_eq!(out.floods, 0);
        assert_eq!(out.emits.len(), 1);
    }
}

//! Small deterministic PRNGs for simulations, benchmarks and tests.
//!
//! The repo must build and test fully offline, so instead of the `rand`
//! crate the workspace uses these two classic generators: [`SplitMix64`]
//! (Steele, Lea & Flood — a one-word state mixer, also the recommended
//! seeder for other generators) and [`XorShift64Star`] (Marsaglia xorshift
//! with a multiplicative output scramble). Both are deterministic given a
//! seed, which is exactly what reproducible experiments need.
//!
//! **Not cryptographic.** Fault injection, workload generation and property
//! tests only.

/// The SplitMix64 generator: one 64-bit word of state, passes BigCrush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Marsaglia's xorshift64, scrambled with a final multiplication
/// (`xorshift64*`). State must be non-zero; the constructor runs the seed
/// through [`SplitMix64`] so every seed — including 0 — is usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// A generator seeded via one SplitMix64 step (never yields state 0).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut state = sm.next_u64();
        if state == 0 {
            state = 0x9e37_79b9_7f4a_7c15;
        }
        XorShift64Star { state }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The workspace's default deterministic RNG with the convenience methods
/// the old `rand` call sites used (`gen_bool`, `gen_range`, `fill_bytes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    inner: XorShift64Star,
}

impl DetRng {
    /// A deterministic generator for `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { inner: XorShift64Star::new(seed) }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// The next 32 uniformly distributed bits (upper half of a 64-bit draw,
    /// which has the better-scrambled bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, negligible for every workload in this repo.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "gen_index bound must be non-zero");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniform value in `[lo, hi]` (inclusive on both ends).
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + ((u128::from(self.next_u64()) * (u128::from(span) + 1)) >> 64) as u64
    }

    /// Fills `dst` with uniformly distributed bytes.
    pub fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_is_stable() {
        // Reference values from the public-domain splitmix64.c test vector.
        let mut r = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = SplitMix64::new(1234567);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn xorshift_survives_zero_seed() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0u64.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let draws: std::collections::HashSet<u64> = (0..64).map(|_| r.next_u64()).collect();
        assert_eq!(draws.len(), 64, "no short cycle near zero seed");
    }

    #[test]
    fn det_rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = DetRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} of 10000 at p=0.25");
        let mut r = DetRng::seed_from_u64(8);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_index_stays_in_bounds_and_covers() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_inclusive_covers_both_ends() {
        let mut r = DetRng::seed_from_u64(10);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.gen_range_inclusive(8, 24) {
                8 => lo_seen = true,
                24 => hi_seen = true,
                v => assert!((8..=24).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut r = DetRng::seed_from_u64(11);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 37];
        DetRng::seed_from_u64(11).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}

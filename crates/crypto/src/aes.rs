//! AES-128, straight from FIPS-197.
//!
//! Table-based, byte-oriented implementation. AES plays two roles here:
//! it is the MAC baseline the paper compares 2EM against (§4.1: AES needs a
//! resubmission on Tofino), and its round function — with fixed, public
//! round keys — supplies the public permutations of the 2EM construction.

use crate::Block;

/// The AES S-box.
pub(crate) const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Multiplication by x in GF(2^8) mod x^8 + x^4 + x^3 + x + 1.
#[inline]
pub(crate) const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// General GF(2^8) multiplication (only small constants are ever used).
#[inline]
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

#[inline]
fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout: column-major as in FIPS-197 — state[r + 4c] is row r, col c,
// i.e. the block bytes are laid down the columns. With the flat `[u8;16]`
// representation in block order, row r of column c is byte 4c + r.
#[inline]
fn shift_rows(state: &mut Block) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut Block) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (= left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut Block) {
    for c in 0..4 {
        let i = 4 * c;
        let (a0, a1, a2, a3) = (state[i], state[i + 1], state[i + 2], state[i + 3]);
        state[i] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        state[i + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        state[i + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        state[i + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }
}

#[inline]
fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let i = 4 * c;
        let (a0, a1, a2, a3) = (state[i], state[i + 1], state[i + 2], state[i + 3]);
        state[i] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        state[i + 1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        state[i + 2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        state[i + 3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

#[inline]
fn add_round_key(state: &mut Block, rk: &Block) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [Block; 11],
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &Block) -> Self {
        const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one block in place.
    pub fn encrypt_block(&self, block: &mut Block) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one block in place.
    pub fn decrypt_block(&self, block: &mut Block) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts and returns a copy.
    pub fn encrypt(&self, block: &Block) -> Block {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

/// One unkeyed AES round (SubBytes + ShiftRows + MixColumns) — the public
/// permutation building block used by [`crate::even_mansour`].
pub fn aes_round(block: &mut Block) {
    sub_bytes(block);
    shift_rows(block);
    mix_columns(block);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn block(s: &str) -> Block {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B.
        let key = block("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = block("3243f6a8885a308d313198a2e0370734");
        let ct = block("3925841d02dc09fbdc118597196a0b32");
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&pt), ct);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1.
        let key = block("000102030405060708090a0b0c0d0e0f");
        let pt = block("00112233445566778899aabbccddeeff");
        let ct = block("69c4e0d86a7b0430d8cdb78070b4c55a");
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&pt), ct);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        for seed in 0u8..16 {
            let mut b: Block =
                core::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add(i as u8));
            let orig = b;
            aes.encrypt_block(&mut b);
            assert_ne!(b, orig);
            aes.decrypt_block(&mut b);
            assert_eq!(b, orig);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let pt = [42u8; 16];
        assert_ne!(a.encrypt(&pt), b.encrypt(&pt));
    }

    #[test]
    fn gf_multiplication_identities() {
        assert_eq!(gmul(0x57, 0x01), 0x57);
        assert_eq!(gmul(0x57, 0x02), xtime(0x57));
        // FIPS-197 §4.2 example: {57} . {13} = {fe}
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn shift_rows_inverse() {
        let mut s: Block = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut s: Block = core::array::from_fn(|i| (i * 7 + 3) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn aes_round_is_a_permutation_fragment() {
        // Not a full test of bijectivity, but the round must be
        // deterministic and change the input.
        let mut a = [7u8; 16];
        let mut b = [7u8; 16];
        aes_round(&mut a);
        aes_round(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [7u8; 16]);
    }
}

//! 2EM — the two-round key-alternating (iterated Even–Mansour) cipher.
//!
//! Bogdanov et al. \[2\] prove security bounds for ciphers of the form
//!
//! ```text
//! E(x) = k2 ⊕ P2( k1 ⊕ P1( k0 ⊕ x ) )
//! ```
//!
//! where `P1`, `P2` are *fixed, public* permutations. The DIP prototype uses
//! 2EM for `F_MAC` because, unlike AES (ten data-dependent keyed rounds),
//! 2EM's two public permutations can be baked into match-action stages and
//! the whole cipher finishes in a single pass through a Tofino pipeline —
//! no packet resubmission (§4.1). We reproduce that trade-off in
//! `dip-sim`'s pipeline timing model.
//!
//! We instantiate `P1` and `P2` as four unkeyed AES rounds each with
//! distinct round constants mixed in — fixed, public, and cheap. (Any fixed
//! permutation satisfies the 2EM contract; AES rounds are the standard
//! choice in the literature.)

use crate::aes::aes_round;
use crate::{Aes128, Block};

/// Number of unkeyed AES rounds in each public permutation.
const ROUNDS_PER_PERM: usize = 4;

/// Round constants mixed into the public permutations so P1 ≠ P2 and
/// neither has the all-zero fixed point of raw AES rounds.
const P1_CONST: Block = *b"DIP 2EM perm #1\x01";
const P2_CONST: Block = *b"DIP 2EM perm #2\x02";

#[inline]
fn xor_into(dst: &mut Block, src: &Block) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// The first public permutation.
pub fn p1(block: &mut Block) {
    xor_into(block, &P1_CONST);
    for _ in 0..ROUNDS_PER_PERM {
        aes_round(block);
    }
}

/// The second public permutation.
pub fn p2(block: &mut Block) {
    xor_into(block, &P2_CONST);
    for _ in 0..ROUNDS_PER_PERM {
        aes_round(block);
    }
}

/// A 2EM instance with its three subkeys.
#[derive(Clone)]
pub struct TwoRoundEm {
    k0: Block,
    k1: Block,
    k2: Block,
}

impl TwoRoundEm {
    /// Derives the three subkeys from a single 128-bit master key.
    ///
    /// Subkeys are produced by encrypting distinct constants under the master
    /// key with AES — a standard KDF-by-PRP construction, so related master
    /// keys do not yield related subkeys.
    pub fn new(master: &Block) -> Self {
        let aes = Aes128::new(master);
        TwoRoundEm {
            k0: aes.encrypt(&[0u8; 16]),
            k1: aes.encrypt(&[1u8; 16]),
            k2: aes.encrypt(&[2u8; 16]),
        }
    }

    /// Builds an instance from explicit subkeys (used by tests and by the
    /// known-answer fixtures).
    pub fn from_subkeys(k0: Block, k1: Block, k2: Block) -> Self {
        TwoRoundEm { k0, k1, k2 }
    }

    /// Encrypts one block in place: `k2 ⊕ P2(k1 ⊕ P1(k0 ⊕ x))`.
    pub fn encrypt_block(&self, block: &mut Block) {
        xor_into(block, &self.k0);
        p1(block);
        xor_into(block, &self.k1);
        p2(block);
        xor_into(block, &self.k2);
    }

    /// Encrypts and returns a copy.
    pub fn encrypt(&self, block: &Block) -> Block {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_dependent() {
        let a = TwoRoundEm::new(&[7u8; 16]);
        let b = TwoRoundEm::new(&[8u8; 16]);
        let pt = [3u8; 16];
        assert_eq!(a.encrypt(&pt), a.encrypt(&pt));
        assert_ne!(a.encrypt(&pt), b.encrypt(&pt));
        assert_ne!(a.encrypt(&pt), pt);
    }

    #[test]
    fn public_permutations_differ() {
        let mut x = [0u8; 16];
        let mut y = [0u8; 16];
        p1(&mut x);
        p2(&mut y);
        assert_ne!(x, y);
        assert_ne!(x, [0u8; 16]);
        assert_ne!(y, [0u8; 16]);
    }

    #[test]
    fn zero_subkeys_reduce_to_public_permutation() {
        // With all-zero keys 2EM is P2∘P1 — still a fixed permutation, and
        // our construction must match composing the parts manually.
        let em = TwoRoundEm::from_subkeys([0; 16], [0; 16], [0; 16]);
        let pt = [0x5au8; 16];
        let mut manual = pt;
        p1(&mut manual);
        p2(&mut manual);
        assert_eq!(em.encrypt(&pt), manual);
    }

    #[test]
    fn input_sensitivity() {
        // Flipping one input bit must change the output (trivially true for
        // a permutation, but guards against state-handling bugs).
        let em = TwoRoundEm::new(&[9u8; 16]);
        let a = em.encrypt(&[0u8; 16]);
        let mut flipped = [0u8; 16];
        flipped[0] = 1;
        let b = em.encrypt(&flipped);
        assert_ne!(a, b);
        // Diffusion: a 1-bit flip should change many output bytes.
        let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert!(differing >= 8, "weak diffusion: only {differing} bytes differ");
    }

    #[test]
    fn no_trivial_collisions_over_counter_inputs() {
        let em = TwoRoundEm::new(&[1u8; 16]);
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..512 {
            let mut pt = [0u8; 16];
            pt[..8].copy_from_slice(&i.to_be_bytes());
            assert!(seen.insert(em.encrypt(&pt)), "collision at {i}");
        }
    }
}

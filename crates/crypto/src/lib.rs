//! # dip-crypto — self-contained crypto substrate for DIP/OPT
//!
//! OPT \[16\] requires every on-path router to compute keyed MACs over packet
//! fields, and the DIP prototype (§4.1) chose **2EM** — a two-round
//! key-alternating (Even–Mansour) cipher \[2\] — because it completes in one
//! pass through a Tofino pipeline, whereas AES needs a packet resubmission.
//!
//! This crate implements, from scratch and without unsafe code:
//!
//! * [`aes::Aes128`] — FIPS-197 AES-128 (the comparison baseline, and the
//!   source of the fixed public permutations used by 2EM);
//! * [`even_mansour::TwoRoundEm`] — the 2EM cipher: `E(x) = P2(P1(x ⊕ k0) ⊕ k1) ⊕ k2`
//!   with fixed, publicly known AES permutations `P1`, `P2`;
//! * [`mac`] — length-prefixed CBC-MAC over either block cipher;
//! * [`kdf`] — the PRF/key-derivation used for OPT's per-session router keys
//!   (DRKey style: `K_i = PRF(secret_i, session_id)`);
//! * [`hash`] — a 128-bit Matyas–Meyer–Oseas hash for OPT's DataHash field;
//! * [`ct_eq`] — constant-time comparison for verifying authentication tags.
//!
//! These primitives are faithful algorithmic reproductions suitable for a
//! research prototype; they are **not** hardened against side channels
//! beyond tag comparison and must not guard real traffic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aes;
pub mod even_mansour;
pub mod hash;
pub mod kdf;
pub mod mac;
pub mod rng;

pub use aes::Aes128;
pub use even_mansour::TwoRoundEm;
pub use hash::mmo_hash;
pub use kdf::{derive_session_key, prf, SessionKdf};
pub use mac::{BlockCipher, CbcMac, MacAlgorithm};
pub use rng::DetRng;

/// A 128-bit block / key / tag.
pub type Block = [u8; 16];

/// Constant-time equality of two byte strings. Returns `false` for length
/// mismatch without early exit on content.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }
}

//! Length-prefixed CBC-MAC over a 128-bit block cipher.
//!
//! OPT's `F_MAC` and `F_mark` operations are keyed MACs over packet fields.
//! The classic CBC-MAC is only secure for fixed-length messages; prefixing
//! the message length in the first block restores security for variable
//! lengths (the standard "prepend length" fix), which is what routers need
//! since FN triples select variable-width target fields.

use crate::{Aes128, Block, TwoRoundEm};

/// Anything that can encrypt a 128-bit block with an already-scheduled key.
pub trait BlockCipher {
    /// Encrypts one block in place.
    fn encrypt_block(&self, block: &mut Block);
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut Block) {
        Aes128::encrypt_block(self, block)
    }
}

impl BlockCipher for TwoRoundEm {
    fn encrypt_block(&self, block: &mut Block) {
        TwoRoundEm::encrypt_block(self, block)
    }
}

/// A MAC algorithm producing 128-bit tags.
pub trait MacAlgorithm {
    /// Computes the tag of `data`.
    fn mac(&self, data: &[u8]) -> Block;

    /// Verifies a tag in constant time.
    fn verify(&self, data: &[u8], tag: &Block) -> bool {
        crate::ct_eq(&self.mac(data), tag)
    }
}

/// Length-prefixed CBC-MAC over any [`BlockCipher`].
///
/// ```
/// use dip_crypto::{CbcMac, MacAlgorithm};
///
/// let mac = CbcMac::new_2em(&[7u8; 16]); // the paper's 2EM choice (§4.1)
/// let tag = mac.mac(b"field bytes");
/// assert!(mac.verify(b"field bytes", &tag));
/// assert!(!mac.verify(b"tampered bytes", &tag));
/// ```
pub struct CbcMac<C: BlockCipher> {
    cipher: C,
}

impl<C: BlockCipher> CbcMac<C> {
    /// Wraps a scheduled cipher.
    pub fn new(cipher: C) -> Self {
        CbcMac { cipher }
    }
}

impl CbcMac<TwoRoundEm> {
    /// Convenience constructor: 2EM CBC-MAC from a 128-bit key. This is the
    /// MAC the DIP prototype runs on routers (§4.1).
    pub fn new_2em(key: &Block) -> Self {
        CbcMac::new(TwoRoundEm::new(key))
    }
}

impl CbcMac<Aes128> {
    /// Convenience constructor: AES CBC-MAC from a 128-bit key (the
    /// comparison baseline that would require packet resubmission on
    /// Tofino).
    pub fn new_aes(key: &Block) -> Self {
        CbcMac::new(Aes128::new(key))
    }
}

impl<C: BlockCipher> MacAlgorithm for CbcMac<C> {
    fn mac(&self, data: &[u8]) -> Block {
        // First block: the message length in bits, big-endian, padded.
        let mut state: Block = [0u8; 16];
        state[8..16].copy_from_slice(&(data.len() as u64 * 8).to_be_bytes());
        self.cipher.encrypt_block(&mut state);

        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            for (s, d) in state.iter_mut().zip(chunk.iter()) {
                *s ^= d;
            }
            self.cipher.encrypt_block(&mut state);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // 10* padding on the final partial block.
            let mut last = [0u8; 16];
            last[..rem.len()].copy_from_slice(rem);
            last[rem.len()] = 0x80;
            for (s, d) in state.iter_mut().zip(last.iter()) {
                *s ^= d;
            }
            self.cipher.encrypt_block(&mut state);
        }
        state
    }
}

/// Number of block-cipher invocations a CBC-MAC over `len` bytes performs —
/// used by the PISA timing model to cost `F_MAC` by field width.
pub fn cbc_mac_blocks(len: usize) -> usize {
    1 + len / 16 + usize::from(!len.is_multiple_of(16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_deterministic_and_key_dependent() {
        let m1 = CbcMac::new_2em(&[1u8; 16]);
        let m2 = CbcMac::new_2em(&[2u8; 16]);
        let data = b"hotnets.org";
        assert_eq!(m1.mac(data), m1.mac(data));
        assert_ne!(m1.mac(data), m2.mac(data));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let m = CbcMac::new_2em(&[3u8; 16]);
        let tag = m.mac(b"payload");
        assert!(m.verify(b"payload", &tag));
        assert!(!m.verify(b"payloae", &tag));
        let mut bad = tag;
        bad[15] ^= 1;
        assert!(!m.verify(b"payload", &bad));
    }

    #[test]
    fn length_prefix_separates_lengths() {
        // Without the length prefix, mac(m) and mac(m || pad-looking-bytes)
        // could relate; with it, messages of different lengths that share a
        // padded form must differ.
        let m = CbcMac::new_2em(&[4u8; 16]);
        let a = m.mac(&[0x80]);
        let b = m.mac(&[]);
        assert_ne!(a, b);
        let c = m.mac(&[1, 0x80]);
        let d = m.mac(&[1]);
        assert_ne!(c, d);
    }

    #[test]
    fn aes_and_2em_variants_differ() {
        let key = [5u8; 16];
        let a = CbcMac::new_aes(&key).mac(b"same input");
        let b = CbcMac::new_2em(&key).mac(b"same input");
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_messages() {
        let m = CbcMac::new_aes(&[6u8; 16]);
        let long = vec![0xabu8; 52]; // OPT's F_MAC coverage is 52 bytes
        let tag = m.mac(&long);
        assert!(m.verify(&long, &tag));
        let mut tampered = long.clone();
        tampered[20] ^= 1;
        assert!(!m.verify(&tampered, &tag));
        // Exactly 3 message blocks + length block.
        assert_eq!(cbc_mac_blocks(52), 1 + 4);
    }

    #[test]
    fn block_count_formula() {
        assert_eq!(cbc_mac_blocks(0), 1);
        assert_eq!(cbc_mac_blocks(1), 2);
        assert_eq!(cbc_mac_blocks(16), 2);
        assert_eq!(cbc_mac_blocks(17), 3);
        assert_eq!(cbc_mac_blocks(32), 3);
    }

    #[test]
    fn exact_block_boundary_no_padding_confusion() {
        let m = CbcMac::new_2em(&[7u8; 16]);
        let sixteen = [9u8; 16];
        let mut seventeen = [9u8; 17];
        seventeen[16] = 0x80;
        // m(16 bytes) must differ from m(17 bytes whose last byte is the pad
        // byte) — guaranteed by the length prefix.
        assert_ne!(m.mac(&sixteen), m.mac(&seventeen));
    }
}

//! Key derivation for OPT sessions.
//!
//! OPT's key model (following DRKey): every router `i` owns a local secret
//! `S_i`; for a session identified by `session_id` it derives the *dynamic
//! key* `K_i = PRF(S_i, session_id)` **on the fly** — no per-flow state.
//! The source and destination learn every `K_i` during session setup
//! (§3: "the router will derive a dynamic key from session ID in the packet
//! header with its local key ... the dynamic key ... is shared with the
//! host"), so they can predict and verify the PVF/OPV chains.
//!
//! `F_parm` (key 6) is exactly this derivation performed per packet.

use crate::mac::{CbcMac, MacAlgorithm};
use crate::Block;

/// A PRF with 128-bit output: 2EM-CBC-MAC of `label || data` under `key`.
///
/// The label provides domain separation between the different uses of a
/// router secret (session keys, source labels, bootstrap cookies, ...).
pub fn prf(key: &Block, label: &str, data: &[u8]) -> Block {
    let mac = CbcMac::new_2em(key);
    let mut msg = Vec::with_capacity(1 + label.len() + data.len());
    msg.push(label.len() as u8);
    msg.extend_from_slice(label.as_bytes());
    msg.extend_from_slice(data);
    mac.mac(&msg)
}

/// Derives router `i`'s dynamic key for a session:
/// `K_i = PRF(local_secret, "opt-session", session_id)`.
pub fn derive_session_key(local_secret: &Block, session_id: &Block) -> Block {
    prf(local_secret, "opt-session", session_id)
}

/// Derives the AS-level key used by `F_pass` source labels (§2.4):
/// `K_pass = PRF(as_secret, "pass-label", source_id)`.
pub fn derive_pass_key(as_secret: &Block, source_id: &[u8]) -> Block {
    prf(as_secret, "pass-label", source_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_is_deterministic() {
        let k = [1u8; 16];
        assert_eq!(prf(&k, "a", b"x"), prf(&k, "a", b"x"));
    }

    #[test]
    fn labels_are_domain_separating() {
        let k = [1u8; 16];
        assert_ne!(prf(&k, "a", b"x"), prf(&k, "b", b"x"));
        // Label/data boundary matters: ("ab", "c") != ("a", "bc").
        assert_ne!(prf(&k, "ab", b"c"), prf(&k, "a", b"bc"));
    }

    #[test]
    fn session_keys_differ_per_router_and_session() {
        let s1 = [1u8; 16];
        let s2 = [2u8; 16];
        let sid_a = [0xaau8; 16];
        let sid_b = [0xbbu8; 16];
        assert_ne!(derive_session_key(&s1, &sid_a), derive_session_key(&s2, &sid_a));
        assert_ne!(derive_session_key(&s1, &sid_a), derive_session_key(&s1, &sid_b));
        // Host-side recomputation matches (the property OPT relies on).
        assert_eq!(derive_session_key(&s1, &sid_a), derive_session_key(&s1, &sid_a));
    }

    #[test]
    fn pass_key_distinct_from_session_key() {
        let secret = [3u8; 16];
        let id = [4u8; 16];
        assert_ne!(derive_pass_key(&secret, &id), derive_session_key(&secret, &id));
    }
}

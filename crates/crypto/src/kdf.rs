//! Key derivation for OPT sessions.
//!
//! OPT's key model (following DRKey): every router `i` owns a local secret
//! `S_i`; for a session identified by `session_id` it derives the *dynamic
//! key* `K_i = PRF(S_i, session_id)` **on the fly** — no per-flow state.
//! The source and destination learn every `K_i` during session setup
//! (§3: "the router will derive a dynamic key from session ID in the packet
//! header with its local key ... the dynamic key ... is shared with the
//! host"), so they can predict and verify the PVF/OPV chains.
//!
//! `F_parm` (key 6) is exactly this derivation performed per packet.

use crate::mac::{CbcMac, MacAlgorithm};
use crate::Block;

/// A PRF with 128-bit output: 2EM-CBC-MAC of `label || data` under `key`.
///
/// The label provides domain separation between the different uses of a
/// router secret (session keys, source labels, bootstrap cookies, ...).
pub fn prf(key: &Block, label: &str, data: &[u8]) -> Block {
    let mac = CbcMac::new_2em(key);
    let mut msg = Vec::with_capacity(1 + label.len() + data.len());
    msg.push(label.len() as u8);
    msg.extend_from_slice(label.as_bytes());
    msg.extend_from_slice(data);
    mac.mac(&msg)
}

/// Derives router `i`'s dynamic key for a session:
/// `K_i = PRF(local_secret, "opt-session", session_id)`.
pub fn derive_session_key(local_secret: &Block, session_id: &Block) -> Block {
    prf(local_secret, "opt-session", session_id)
}

/// A precomputed schedule for [`derive_session_key`].
///
/// The per-packet work of `F_parm` is `PRF(S_i, "opt-session", sid)` — a
/// CBC-MAC over the 28-byte message `len(label) || label || sid`. Everything
/// except the 16 session-id bytes is a program constant, so the length-prefix
/// block and the label prefix of the first message block can be folded into a
/// single chaining value once per router. A schedule built here performs two
/// block encryptions per derivation instead of three, and is what `dipopt`
/// hoists to once-per-`ProgramCache`-entry setup.
#[derive(Clone)]
pub struct SessionKdf {
    cipher: crate::TwoRoundEm,
    /// `E(len_block)` with the constant first 12 message bytes
    /// (`0x0b || "opt-session"`) already XOR-folded in.
    prefix: Block,
}

impl SessionKdf {
    /// Folds the session-independent CBC-MAC state for `local_secret`.
    pub fn new(local_secret: &Block) -> Self {
        let cipher = crate::TwoRoundEm::new(local_secret);
        let label = b"opt-session";
        // Message layout: 1 length byte + 11 label bytes + 16 sid bytes.
        let msg_len = 1 + label.len() + 16;
        let mut prefix: Block = [0u8; 16];
        prefix[8..16].copy_from_slice(&(msg_len as u64 * 8).to_be_bytes());
        cipher.encrypt_block(&mut prefix);
        prefix[0] ^= label.len() as u8;
        for (p, l) in prefix[1..12].iter_mut().zip(label.iter()) {
            *p ^= l;
        }
        SessionKdf { cipher, prefix }
    }

    /// Derives the dynamic key for `session_id`; byte-identical to
    /// [`derive_session_key`] with the secret this schedule was built from.
    pub fn derive(&self, session_id: &Block) -> Block {
        let mut state = self.prefix;
        // First message block: constant prefix (already folded) + sid[0..4].
        for (s, d) in state[12..16].iter_mut().zip(session_id[..4].iter()) {
            *s ^= d;
        }
        self.cipher.encrypt_block(&mut state);
        // Final partial block: sid[4..16] with 10* padding.
        for (s, d) in state[..12].iter_mut().zip(session_id[4..].iter()) {
            *s ^= d;
        }
        state[12] ^= 0x80;
        self.cipher.encrypt_block(&mut state);
        state
    }
}

impl core::fmt::Debug for SessionKdf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SessionKdf").finish_non_exhaustive()
    }
}

/// Derives the AS-level key used by `F_pass` source labels (§2.4):
/// `K_pass = PRF(as_secret, "pass-label", source_id)`.
pub fn derive_pass_key(as_secret: &Block, source_id: &[u8]) -> Block {
    prf(as_secret, "pass-label", source_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_is_deterministic() {
        let k = [1u8; 16];
        assert_eq!(prf(&k, "a", b"x"), prf(&k, "a", b"x"));
    }

    #[test]
    fn labels_are_domain_separating() {
        let k = [1u8; 16];
        assert_ne!(prf(&k, "a", b"x"), prf(&k, "b", b"x"));
        // Label/data boundary matters: ("ab", "c") != ("a", "bc").
        assert_ne!(prf(&k, "ab", b"c"), prf(&k, "a", b"bc"));
    }

    #[test]
    fn session_keys_differ_per_router_and_session() {
        let s1 = [1u8; 16];
        let s2 = [2u8; 16];
        let sid_a = [0xaau8; 16];
        let sid_b = [0xbbu8; 16];
        assert_ne!(derive_session_key(&s1, &sid_a), derive_session_key(&s2, &sid_a));
        assert_ne!(derive_session_key(&s1, &sid_a), derive_session_key(&s1, &sid_b));
        // Host-side recomputation matches (the property OPT relies on).
        assert_eq!(derive_session_key(&s1, &sid_a), derive_session_key(&s1, &sid_a));
    }

    #[test]
    fn session_kdf_matches_per_packet_derivation() {
        // The hoisted schedule must be byte-identical to the interpreted
        // path for every (secret, sid) pair — this is the property the
        // dipopt equivalence gate leans on.
        for secret_byte in [0u8, 1, 0x42, 0xff] {
            let secret = [secret_byte; 16];
            let kdf = SessionKdf::new(&secret);
            for sid_seed in 0u8..8 {
                let mut sid = [0u8; 16];
                for (i, b) in sid.iter_mut().enumerate() {
                    *b = sid_seed.wrapping_mul(31).wrapping_add(i as u8);
                }
                assert_eq!(kdf.derive(&sid), derive_session_key(&secret, &sid));
            }
        }
    }

    #[test]
    fn pass_key_distinct_from_session_key() {
        let secret = [3u8; 16];
        let id = [4u8; 16];
        assert_ne!(derive_pass_key(&secret, &id), derive_session_key(&secret, &id));
    }
}

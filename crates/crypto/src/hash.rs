//! A 128-bit unkeyed hash for OPT's DataHash field.
//!
//! Matyas–Meyer–Oseas construction over AES-128 with a fixed IV:
//!
//! ```text
//! H_0 = IV;   H_i = E_{H_{i-1}}(m_i) ⊕ m_i
//! ```
//!
//! with Merkle–Damgård strengthening (length in the final block). 128-bit
//! MMO is what resource-constrained packet processors (e.g. Zigbee/802.15.4
//! hardware) actually deploy; for this reproduction it binds the OPT OPV/PVF
//! tags to the payload exactly as the paper's DataHash does.

use crate::{Aes128, Block};

const IV: Block = *b"DIP MMO hash IV!";

/// Hashes `data` to 128 bits.
pub fn mmo_hash(data: &[u8]) -> Block {
    let mut state = IV;
    let mut compress = |block: &Block| {
        let aes = Aes128::new(&state);
        let mut out = *block;
        aes.encrypt_block(&mut out);
        for (o, m) in out.iter_mut().zip(block.iter()) {
            *o ^= m;
        }
        state = out;
    };

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let mut b = [0u8; 16];
        b.copy_from_slice(chunk);
        compress(&b);
    }
    let rem = chunks.remainder();
    // Final block: 10* padding, then a strengthening block with the bit
    // length (merged into the pad block when it fits).
    let mut last = [0u8; 16];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] = 0x80;
    let bitlen = (data.len() as u64).wrapping_mul(8).to_be_bytes();
    if rem.len() < 8 {
        last[8..16].copy_from_slice(&bitlen);
        compress(&last);
    } else {
        compress(&last);
        let mut strengthening = [0u8; 16];
        strengthening[8..16].copy_from_slice(&bitlen);
        compress(&strengthening);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mmo_hash(b"content"), mmo_hash(b"content"));
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        assert_ne!(mmo_hash(b"a"), mmo_hash(b"b"));
        assert_ne!(mmo_hash(b""), mmo_hash(b"\0"));
        // Padding must not collide a message with its padded form.
        let mut padded = b"hello".to_vec();
        padded.push(0x80);
        assert_ne!(mmo_hash(b"hello"), mmo_hash(&padded));
    }

    #[test]
    fn length_extension_blocked_by_strengthening() {
        // Same 16-byte prefix, different total lengths.
        let a = mmo_hash(&[7u8; 16]);
        let b = mmo_hash(&[7u8; 17]);
        let c = mmo_hash(&[7u8; 32]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn no_collisions_over_small_corpus() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..2000 {
            assert!(seen.insert(mmo_hash(&i.to_be_bytes())), "collision at {i}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise both padding paths: rem <= 7 (merged) and rem >= 8
        // (separate strengthening block), plus exact block multiples.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 52] {
            let data = vec![0x5au8; len];
            let h = mmo_hash(&data);
            assert_eq!(h, mmo_hash(&data), "len {len}");
        }
    }
}

//! Router state, per-packet context, and the action/verdict types.

use dip_crypto::Block;
use dip_routes::RouteTables;
use dip_tables::fib::NextHop;
use dip_tables::{
    ContentStore, Ipv4Fib, Ipv6Fib, NameFib, Pit, Port, Ticks, XiaNextHop, XiaRouteTable,
};
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Dag, Xid, XidType};

/// Which block cipher backs `F_MAC` / `F_mark` (§4.1: the prototype uses
/// 2EM because AES would need a packet resubmission on Tofino).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MacChoice {
    /// Two-round Even–Mansour (the paper's choice).
    #[default]
    TwoRoundEm,
    /// AES-128 (the baseline; costs a resubmission in the pipeline model).
    Aes,
}

/// The forwarding state of one DIP-capable node that operation modules act
/// on. One instance per router; the router pipeline passes it to every op.
pub struct RouterState {
    /// Stable node identifier (used in traces and control messages).
    pub node_id: u64,
    /// This router's local secret (DRKey-style root for session keys).
    pub local_secret: Block,
    /// The AS-level secret used by `F_pass` source labels.
    pub as_secret: Block,
    /// 32-bit address FIB (`F_32_match`).
    pub ipv4_fib: Ipv4Fib,
    /// 128-bit address FIB (`F_128_match`).
    pub ipv6_fib: Ipv6Fib,
    /// Name FIB (`F_FIB`).
    pub name_fib: NameFib,
    /// Pending interest table (`F_PIT`), keyed by compact 32-bit names as in
    /// the prototype dataplane.
    pub pit: Pit<u32>,
    /// Optional content store (footnote 2); `None` reproduces the paper's
    /// prototype ("the router has no cached data").
    pub content_store: Option<ContentStore<u32, Vec<u8>>>,
    /// XIA per-principal routing tables (`F_DAG`/`F_intent`).
    pub xia: XiaRouteTable,
    /// Compiled forwarding tables (`dip-routes`). When present, every
    /// lookup op prefers these over the per-family FIBs above — this is
    /// how the dataplane swaps a million-route table in one epoch
    /// without rebuilding the legacy structures.
    pub compiled: Option<RouteTables>,
    /// Cipher backing the authentication operations.
    pub mac_choice: MacChoice,
    /// When `true`, `F_PIT` refuses to cache data that does not carry a
    /// verified source label — the dynamic defense of §2.4 (experiment E6).
    pub require_pass_for_cache: bool,
    /// Typed state for *custom* operation modules (§5: "network providers
    /// can support new services by only upgrading FNs"). An out-of-tree
    /// `FieldOp` keeps its tables here without touching this struct.
    pub ext: Extensions,
}

/// A typed, heterogeneous map holding the private state of custom
/// operation modules (one slot per Rust type).
#[derive(Default)]
pub struct Extensions {
    slots: std::collections::HashMap<std::any::TypeId, Box<dyn std::any::Any + Send>>,
}

impl Extensions {
    /// Gets the extension state of type `T`, inserting `T::default()` on
    /// first use.
    pub fn get_or_default<T: Default + Send + 'static>(&mut self) -> &mut T {
        self.slots
            .entry(std::any::TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("slot keyed by TypeId")
    }

    /// Read-only access to the extension state of type `T`, if present.
    pub fn get<T: Send + 'static>(&self) -> Option<&T> {
        self.slots.get(&std::any::TypeId::of::<T>())?.downcast_ref::<T>()
    }

    /// Replaces the extension state of type `T`, returning the old value.
    pub fn insert<T: Send + 'static>(&mut self, value: T) -> Option<T> {
        self.slots
            .insert(std::any::TypeId::of::<T>(), Box::new(value))
            .and_then(|old| old.downcast::<T>().ok().map(|b| *b))
    }

    /// Number of occupied extension slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no extension state exists.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl RouterState {
    /// A router with empty tables and the given identity/secret.
    pub fn new(node_id: u64, local_secret: Block) -> Self {
        RouterState {
            node_id,
            local_secret,
            as_secret: local_secret,
            ipv4_fib: Ipv4Fib::new(),
            ipv6_fib: Ipv6Fib::new(),
            name_fib: NameFib::new(),
            pit: Pit::new(65_536, 4_000_000_000), // 4s at ns ticks
            content_store: None,
            xia: XiaRouteTable::new(),
            compiled: None,
            mac_choice: MacChoice::TwoRoundEm,
            require_pass_for_cache: false,
            ext: Extensions::default(),
        }
    }

    /// Enables a content store of `capacity` entries.
    pub fn enable_content_store(&mut self, capacity: usize) {
        self.content_store = Some(ContentStore::new(capacity));
    }

    /// IPv4 LPM: compiled tables when installed, else the legacy FIB.
    pub fn lookup_v4(&self, addr: Ipv4Addr) -> Option<NextHop> {
        match &self.compiled {
            Some(t) => t.lookup_v4(addr),
            None => self.ipv4_fib.lookup(addr),
        }
    }

    /// IPv6 LPM: compiled tables when installed, else the legacy FIB.
    pub fn lookup_v6(&self, addr: Ipv6Addr) -> Option<NextHop> {
        match &self.compiled {
            Some(t) => t.lookup_v6(addr),
            None => self.ipv6_fib.lookup(addr),
        }
    }

    /// Hierarchical name LPM: compiled tables when installed, else the
    /// legacy name FIB.
    pub fn lookup_name(&self, name: &Name) -> Option<NextHop> {
        match &self.compiled {
            Some(t) => t.lookup_name(name),
            None => self.name_fib.lookup(name),
        }
    }

    /// Compact 32-bit name match: compiled tables when installed, else
    /// the legacy name FIB.
    pub fn lookup_name_compact(&self, compact: u32) -> Option<NextHop> {
        match &self.compiled {
            Some(t) => t.lookup_name_compact(compact),
            None => self.name_fib.lookup_compact(compact),
        }
    }

    /// XIA per-principal lookup: compiled tables when installed, else
    /// the legacy route table.
    pub fn lookup_xia(&self, ty: XidType, xid: &Xid) -> Option<XiaNextHop> {
        match &self.compiled {
            Some(t) => t.lookup_xia(ty, xid),
            None => self.xia.lookup(ty, xid),
        }
    }
}

impl std::fmt::Debug for RouterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterState")
            .field("node_id", &self.node_id)
            .field("ipv4_routes", &self.ipv4_fib.len())
            .field("ipv6_routes", &self.ipv6_fib.len())
            .field("name_routes", &self.name_fib.len())
            .field("pit_entries", &self.pit.len())
            .field("compiled_version", &self.compiled.as_ref().map(|t| t.version))
            .field("mac_choice", &self.mac_choice)
            .finish_non_exhaustive()
    }
}

/// Per-packet scratch context threaded through the FN chain.
///
/// Operations communicate *only* through this context and the locations
/// area — e.g. `F_parm` deposits the dynamic key that `F_MAC` and `F_mark`
/// consume (§3), which is also the dependency the parallel planner tracks.
pub struct PacketCtx<'a> {
    /// The packet's FN locations area (mutable: authentication ops update
    /// tags in place).
    pub locations: &'a mut [u8],
    /// The packet payload (read-only; used for data hashing and caching).
    pub payload: &'a [u8],
    /// Ingress port the packet arrived on (recorded in the PIT).
    pub in_port: Port,
    /// Virtual arrival time.
    pub now: Ticks,
    /// Lazily computed dedup nonce (see [`PacketCtx::nonce`]).
    nonce_cache: Option<u64>,
    /// Dynamic key derived by `F_parm`, consumed by `F_MAC`/`F_mark`.
    pub dynamic_key: Option<Block>,
    /// DAG parsed by `F_DAG`, consumed by `F_intent`.
    pub dag: Option<Dag>,
    /// Host-side verification context: per-hop session keys, in path order
    /// (populated by the destination before running tagged host FNs).
    pub path_keys: Vec<Block>,
    /// Host-side: the source↔destination session key that seeds the PVF
    /// chain.
    pub source_key: Option<Block>,
    /// Set by `F_pass` on success; `F_PIT` may require it before caching.
    pub pass_verified: bool,
    /// Source address recorded by `F_source` (32- or 128-bit, left-aligned).
    pub source_addr: Option<Vec<u8>>,
}

impl<'a> PacketCtx<'a> {
    /// A fresh context for a packet arriving on `in_port` at `now`.
    pub fn new(locations: &'a mut [u8], payload: &'a [u8], in_port: Port, now: Ticks) -> Self {
        PacketCtx {
            locations,
            payload,
            in_port,
            now,
            nonce_cache: None,
            dynamic_key: None,
            dag: None,
            path_keys: Vec::new(),
            source_key: None,
            pass_verified: false,
            source_addr: None,
        }
    }

    /// Deduplication nonce for interests, derived from the packet bytes
    /// (identical duplicates — loops — collide, distinct requests don't).
    ///
    /// Computed lazily so protocols with no PIT operation never pay for it,
    /// and over at most the locations plus the first 128 payload bytes so
    /// interest processing stays size-independent (real NDN carries an
    /// explicit small nonce; a loop returns the *identical* packet, which
    /// still collides under the capped hash).
    pub fn nonce(&mut self) -> u64 {
        *self.nonce_cache.get_or_insert_with(|| {
            let cap = self.payload.len().min(128);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (self.payload.len() as u64);
            for &b in self.locations.iter().chain(self.payload[..cap].iter()) {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        })
    }

    /// Reads the target field of `triple` (left-aligned bytes).
    pub fn read_field(
        &self,
        triple: &dip_wire::triple::FnTriple,
    ) -> Result<Vec<u8>, dip_wire::WireError> {
        dip_wire::bits::read_bits(
            self.locations,
            usize::from(triple.field_loc),
            usize::from(triple.field_len),
        )
    }

    /// Writes the target field of `triple`.
    pub fn write_field(
        &mut self,
        triple: &dip_wire::triple::FnTriple,
        value: &[u8],
    ) -> Result<(), dip_wire::WireError> {
        dip_wire::bits::write_bits(
            self.locations,
            usize::from(triple.field_loc),
            usize::from(triple.field_len),
            value,
        )
    }
}

// The drop taxonomy lives in `dip-telemetry` (the workspace-wide outcome
// accounting crate); re-exported here so `dip_fnops::DropReason` — the
// path every op module and downstream crate uses — keeps working.
pub use dip_telemetry::DropReason;

/// What an operation decided about the packet.
///
/// Forwarding decisions are *sticky*: the pipeline records the first
/// `Forward`/`ForwardMulti`/`Deliver` and later operations keep running
/// (e.g. NDN+OPT: `F_PIT` picks the faces, then the MAC ops update tags).
/// `Drop` aborts the chain immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Operation completed; no routing decision from this op.
    Continue,
    /// Forward on one egress port.
    Forward(Port),
    /// Forward copies on several ports (PIT fan-out).
    ForwardMulti(Vec<Port>),
    /// Deliver to the local host stack.
    Deliver,
    /// The interest was aggregated into an existing PIT entry; no copy
    /// should be forwarded, but the packet is *not* an error.
    Consumed,
    /// Answer the interest from the content store with this payload,
    /// back out the ingress port.
    RespondCached(Vec<u8>),
    /// Discard the packet.
    Drop(DropReason),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonce_is_content_addressed() {
        let mut loc_a = vec![1, 2, 3, 4];
        let mut loc_a2 = vec![1, 2, 3, 4];
        let mut loc_b = vec![1, 2, 3, 5];
        let a = PacketCtx::new(&mut loc_a, b"x", 0, 0).nonce();
        let a2 = PacketCtx::new(&mut loc_a2, b"x", 5, 99).nonce(); // port/time irrelevant
        let b = PacketCtx::new(&mut loc_b, b"x", 0, 0).nonce();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn field_read_write_through_ctx() {
        use dip_wire::triple::{FnKey, FnTriple};
        let mut locs = vec![0u8; 8];
        let mut ctx = PacketCtx::new(&mut locs, &[], 0, 0);
        let t = FnTriple::router(16, 32, FnKey::Match32);
        ctx.write_field(&t, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
        assert_eq!(ctx.read_field(&t).unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(&ctx.locations[2..6], &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn router_state_debug_is_compact() {
        let s = RouterState::new(7, [0u8; 16]);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("node_id: 7"));
    }

    #[test]
    fn compiled_tables_override_legacy_fibs() {
        let mut s = RouterState::new(1, [0u8; 16]);
        let dst = Ipv4Addr::new(10, 1, 2, 3);
        s.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        assert_eq!(s.lookup_v4(dst), Some(NextHop::port(1)));

        // Install a compiled table that routes the same prefix elsewhere:
        // it must win, and uninstalling must fall back.
        let mut store = dip_routes::RouteStore::new();
        store.insert_v4(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(7));
        s.compiled = Some(store.rebuild());
        assert_eq!(s.lookup_v4(dst), Some(NextHop::port(7)));
        // An empty compiled family means "no route", not "ask legacy".
        assert_eq!(s.lookup_name_compact(42), None);
        s.compiled = None;
        assert_eq!(s.lookup_v4(dst), Some(NextHop::port(1)));
    }
}

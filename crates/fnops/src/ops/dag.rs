//! `F_DAG` (key 10): parse the XIA directed acyclic graph.
//!
//! §3 (XIA): "We set the header of XIA in the FN locations and use these
//! two operation modules to parse the directed acyclic graph and handle the
//! intent." `F_DAG` is the parsing half: it decodes and validates the DAG
//! and leaves it in the packet context for `F_intent`.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::xia::Dag;

/// DAG-parsing op.
#[derive(Debug, Default, Clone, Copy)]
pub struct DagOp;

impl FieldOp for DagOp {
    fn key(&self) -> FnKey {
        FnKey::Dag
    }

    fn execute(
        &self,
        triple: &FnTriple,
        _state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        match Dag::decode(&bytes) {
            Ok((dag, _)) => {
                ctx.dag = Some(dag);
                Action::Continue
            }
            Err(_) => Action::Drop(DropReason::MalformedField),
        }
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        // Parsing cost grows with the number of nodes (28B each).
        let nodes = (usize::from(field_bits) / 8).saturating_sub(6) / 28;
        OpCost::stages(1 + nodes as u32)
    }

    fn writes_parsed_dag(&self) -> bool {
        // F_DAG's only effect is publishing the parsed DAG into ctx.dag (or
        // dropping on a malformed field) — the contract dipopt's redundant-
        // parse elimination relies on.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::xia::{DagNode, Xid, XidType};

    fn sample_dag() -> Dag {
        Dag::direct_with_fallback(
            DagNode::sink(XidType::Sid, Xid::derive(b"svc")),
            Xid::derive(b"ad"),
            Xid::derive(b"hid"),
        )
        .unwrap()
    }

    #[test]
    fn parses_into_ctx() {
        let mut st = state();
        let dag = sample_dag();
        let mut locs = dag.encode();
        let bits = (locs.len() * 8) as u16;
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, bits, FnKey::Dag);
        assert_eq!(DagOp.execute(&t, &mut st, &mut c), Action::Continue);
        assert_eq!(c.dag, Some(dag));
    }

    #[test]
    fn garbage_rejected() {
        let mut st = state();
        let mut locs = vec![0xffu8; 40];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 320, FnKey::Dag);
        assert_eq!(DagOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }

    #[test]
    fn truncated_field_rejected() {
        let mut st = state();
        let dag = sample_dag();
        let mut locs = dag.encode();
        locs.truncate(20);
        let bits = (locs.len() * 8) as u16;
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, bits, FnKey::Dag);
        assert_eq!(DagOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_ver` (key 9): destination verification (host-tagged).
//!
//! §3 (OPT): "we use the triple (loc: 0, len: 544, key: 9) to instruct the
//! destination host to verify the packet source and path". Routers skip
//! this FN (tag bit = 1, Algorithm 1 line 5); the destination host executes
//! it with the session's key material in the packet context:
//!
//! * `ctx.source_key` — the source↔destination session key `K_S` that
//!   seeds the PVF chain (`PVF_0 = MAC_{K_S}(DataHash)`);
//! * `ctx.path_keys` — the dynamic keys `K_1..K_n` of the on-path routers,
//!   in path order (the destination can derive them, §3: the dynamic key
//!   "is shared with the host").
//!
//! Verification recomputes (1) the payload hash, (2) the full PVF chain,
//! and (3) the final hop's OPV, comparing in constant time.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::ops::mac_op::mac_bytes;
use crate::FieldOp;
use dip_crypto::{ct_eq, mmo_hash};
use dip_wire::opt::OptRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// Destination verification op.
#[derive(Debug, Default, Clone, Copy)]
pub struct VerOp;

impl FieldOp for VerOp {
    fn key(&self) -> FnKey {
        FnKey::Ver
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != dip_wire::opt::OPT_BLOCK_BITS {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let Ok(block) = OptRepr::parse(&bytes) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let Some(source_key) = ctx.source_key else {
            return Action::Drop(DropReason::MissingDynamicKey);
        };

        // (1) Source authentication: payload hash must match DataHash.
        let payload_hash = mmo_hash(ctx.payload);
        if !ct_eq(&payload_hash, &block.data_hash) {
            return Action::Drop(DropReason::AuthenticationFailed);
        }

        // (2) Path validation: recompute the PVF chain, remembering the
        // next-to-last value — each router computes its OPV (F_MAC) *before*
        // chaining the PVF (F_mark), per the §3 triple order.
        let mut pvf = mac_bytes(state.mac_choice, &source_key, &block.data_hash);
        let mut pvf_before_last_hop = pvf;
        for k in &ctx.path_keys {
            pvf_before_last_hop = pvf;
            pvf = mac_bytes(state.mac_choice, k, &pvf);
        }
        if !ct_eq(&pvf, &block.pvf) {
            return Action::Drop(DropReason::AuthenticationFailed);
        }

        // (3) Last-hop OPV over the MAC coverage (first 52 bytes), with the
        // PVF field as the last hop saw it (pre-mark).
        if let Some(last_key) = ctx.path_keys.last() {
            let mut coverage = bytes[..52].to_vec();
            coverage[dip_wire::opt::field::PVF].copy_from_slice(&pvf_before_last_hop);
            let expected_opv = mac_bytes(state.mac_choice, last_key, &coverage);
            if !ct_eq(&expected_opv, &block.opv) {
                return Action::Drop(DropReason::AuthenticationFailed);
            }
        }

        Action::Deliver
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        // Host-side; charged per path hop. The pipeline model never runs
        // this on routers, but report a representative cost.
        OpCost::cipher(2, u32::from(field_bits / 128) + 2, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MacChoice;
    use crate::ops::testutil::state;
    use crate::PacketCtx;
    use dip_wire::opt::{OptRepr, OPT_BLOCK_BITS};

    /// Builds a block exactly as the source + two honest routers would.
    fn honest_block(payload: &[u8], source_key: [u8; 16], path: &[[u8; 16]]) -> Vec<u8> {
        let data_hash = mmo_hash(payload);
        let mut pvf = mac_bytes(MacChoice::TwoRoundEm, &source_key, &data_hash);
        let mut block =
            OptRepr { data_hash, session_id: [0xab; 16], timestamp: 42, pvf, opv: [0; 16] };
        for k in path {
            // Router order (§3): F_MAC (OPV over pre-mark coverage), then
            // F_mark (PVF chain).
            let bytes = block.to_bytes();
            block.opv = mac_bytes(MacChoice::TwoRoundEm, k, &bytes[..52]);
            pvf = mac_bytes(MacChoice::TwoRoundEm, k, &pvf);
            block.pvf = pvf;
        }
        block.to_bytes().to_vec()
    }

    fn ver_triple() -> FnTriple {
        FnTriple::host(0, OPT_BLOCK_BITS, FnKey::Ver)
    }

    #[test]
    fn honest_path_verifies() {
        let mut st = state();
        let source_key = [1u8; 16];
        let path = [[2u8; 16], [3u8; 16]];
        let mut locs = honest_block(b"payload", source_key, &path);
        let mut c = PacketCtx::new(&mut locs, b"payload", 0, 0);
        c.source_key = Some(source_key);
        c.path_keys = path.to_vec();
        assert_eq!(VerOp.execute(&ver_triple(), &mut st, &mut c), Action::Deliver);
    }

    #[test]
    fn tampered_payload_detected() {
        let mut st = state();
        let source_key = [1u8; 16];
        let path = [[2u8; 16]];
        let mut locs = honest_block(b"payload", source_key, &path);
        let mut c = PacketCtx::new(&mut locs, b"tampered", 0, 0);
        c.source_key = Some(source_key);
        c.path_keys = path.to_vec();
        assert_eq!(
            VerOp.execute(&ver_triple(), &mut st, &mut c),
            Action::Drop(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn skipped_hop_detected() {
        let mut st = state();
        let source_key = [1u8; 16];
        // Packet only traversed router 2, but the path should include 2 and 3.
        let mut locs = honest_block(b"p", source_key, &[[2u8; 16]]);
        let mut c = PacketCtx::new(&mut locs, b"p", 0, 0);
        c.source_key = Some(source_key);
        c.path_keys = vec![[2u8; 16], [3u8; 16]];
        assert_eq!(
            VerOp.execute(&ver_triple(), &mut st, &mut c),
            Action::Drop(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn reordered_path_detected() {
        let mut st = state();
        let source_key = [1u8; 16];
        let mut locs = honest_block(b"p", source_key, &[[3u8; 16], [2u8; 16]]);
        let mut c = PacketCtx::new(&mut locs, b"p", 0, 0);
        c.source_key = Some(source_key);
        c.path_keys = vec![[2u8; 16], [3u8; 16]];
        assert_eq!(
            VerOp.execute(&ver_triple(), &mut st, &mut c),
            Action::Drop(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn forged_opv_detected() {
        let mut st = state();
        let source_key = [1u8; 16];
        let path = [[2u8; 16]];
        let mut locs = honest_block(b"p", source_key, &path);
        locs[60] ^= 0xff; // corrupt the OPV
        let mut c = PacketCtx::new(&mut locs, b"p", 0, 0);
        c.source_key = Some(source_key);
        c.path_keys = path.to_vec();
        assert_eq!(
            VerOp.execute(&ver_triple(), &mut st, &mut c),
            Action::Drop(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn missing_session_material_rejected() {
        let mut st = state();
        let mut locs = honest_block(b"p", [1; 16], &[[2; 16]]);
        let mut c = PacketCtx::new(&mut locs, b"p", 0, 0);
        assert_eq!(
            VerOp.execute(&ver_triple(), &mut st, &mut c),
            Action::Drop(DropReason::MissingDynamicKey)
        );
    }

    #[test]
    fn empty_path_source_only_verifies() {
        // Degenerate but legal: direct delivery, no on-path routers.
        let mut st = state();
        let source_key = [1u8; 16];
        let mut locs = honest_block(b"p", source_key, &[]);
        let mut c = PacketCtx::new(&mut locs, b"p", 0, 0);
        c.source_key = Some(source_key);
        assert_eq!(VerOp.execute(&ver_triple(), &mut st, &mut c), Action::Deliver);
    }
}

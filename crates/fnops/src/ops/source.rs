//! `F_source` (key 3): source address handling.
//!
//! §3: IP forwarding "uses F_source to specify the source address" — the
//! triple marks which bits of the locations area carry the source. The
//! router records it in the packet context (for control messages such as
//! FN-unsupported notifications, §2.4) and, when a reverse route exists,
//! performs a unicast reverse-path sanity check (drop-free: a failed check
//! is only recorded, matching IP's permissive default; strict uRPF is the
//! operator's policy choice).

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_wire::triple::{FnKey, FnTriple};

/// Source-address recording op.
#[derive(Debug, Default, Clone, Copy)]
pub struct SourceOp;

impl FieldOp for SourceOp {
    fn key(&self) -> FnKey {
        FnKey::Source
    }

    fn execute(
        &self,
        triple: &FnTriple,
        _state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != 32 && triple.field_len != 128 {
            return Action::Drop(DropReason::MalformedField);
        }
        match ctx.read_field(triple) {
            Ok(bytes) => {
                ctx.source_addr = Some(bytes);
                Action::Continue
            }
            Err(_) => Action::Drop(DropReason::MalformedField),
        }
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        OpCost::stages(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};

    #[test]
    fn records_source_in_ctx() {
        let mut st = state();
        // DIP-32 layout (§3): dst at bits [0,32), src at bits [32,64).
        let mut locs = vec![192, 168, 0, 1, 10, 0, 0, 9];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(32, 32, FnKey::Source);
        assert_eq!(SourceOp.execute(&t, &mut st, &mut c), Action::Continue);
        assert_eq!(c.source_addr, Some(vec![10, 0, 0, 9]));
    }

    #[test]
    fn records_128bit_source() {
        let mut st = state();
        let mut locs = vec![0u8; 32];
        locs[16] = 0xfd;
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(128, 128, FnKey::Source);
        assert_eq!(SourceOp.execute(&t, &mut st, &mut c), Action::Continue);
        assert_eq!(c.source_addr.as_ref().unwrap()[0], 0xfd);
    }

    #[test]
    fn rejects_odd_widths() {
        let mut st = state();
        let mut locs = vec![0u8; 8];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 48, FnKey::Source);
        assert_eq!(SourceOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_MAC` (key 7): keyed MAC over the target field.
//!
//! §3 (OPT): the triple `(loc: 0, len: 416, key: 7)` instructs the router to
//! "recalculate and update the tags". The op computes a CBC-MAC (over 2EM
//! by default, §4.1; AES as the resubmission-costing baseline) of the
//! target field under the dynamic key from `F_parm` and deposits the
//! 128-bit tag **immediately after the target field** — for OPT's layout
//! that is exactly the OPV slot.

use crate::context::MacChoice;
use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_crypto::mac::cbc_mac_blocks;
use dip_crypto::{Block, CbcMac, MacAlgorithm};
use dip_wire::triple::{FnKey, FnTriple};

/// Computes a MAC under the router's configured cipher choice.
pub(crate) fn mac_bytes(choice: MacChoice, key: &Block, data: &[u8]) -> Block {
    match choice {
        MacChoice::TwoRoundEm => CbcMac::new_2em(key).mac(data),
        MacChoice::Aes => CbcMac::new_aes(key).mac(data),
    }
}

/// Tag-computation op.
#[derive(Debug, Default, Clone, Copy)]
pub struct MacOp;

/// Width of the deposited tag, in bits.
pub const TAG_BITS: u16 = 128;

impl FieldOp for MacOp {
    fn key(&self) -> FnKey {
        FnKey::Mac
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Some(key) = ctx.dynamic_key else {
            return Action::Drop(DropReason::MissingDynamicKey);
        };
        let Ok(coverage) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let tag = mac_bytes(state.mac_choice, &key, &coverage);
        // Deposit after the covered field.
        let tag_triple = FnTriple::router(
            triple.field_loc.saturating_add(triple.field_len),
            TAG_BITS,
            FnKey::Mac,
        );
        if usize::from(tag_triple.field_loc) + usize::from(TAG_BITS) > ctx.locations.len() * 8 {
            return Action::Drop(DropReason::MalformedField);
        }
        match ctx.write_field(&tag_triple, &tag) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Drop(DropReason::MalformedField),
        }
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        let blocks = cbc_mac_blocks(usize::from(field_bits) / 8) as u32;
        // Resubmission cost is applied by the pipeline model per the
        // router's cipher choice; report blocks here.
        OpCost::cipher(2, blocks, 0)
    }

    fn requires_participation(&self) -> bool {
        true
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        let start = usize::from(triple.field_loc) + usize::from(triple.field_len);
        Some((start, start + usize::from(TAG_BITS)))
    }

    fn reads_dynamic_key(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::opt::{field, triple_bits};

    #[test]
    fn writes_tag_into_opv_slot() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        locs[..52].iter_mut().enumerate().for_each(|(i, b)| *b = i as u8);
        let coverage: Vec<u8> = locs[..52].to_vec();
        let mut c = ctx(&mut locs, &[]);
        let key = [7u8; 16];
        c.dynamic_key = Some(key);
        let t = FnTriple::router(triple_bits::MAC.0, triple_bits::MAC.1, FnKey::Mac);
        assert_eq!(MacOp.execute(&t, &mut st, &mut c), Action::Continue);
        let expected = mac_bytes(MacChoice::TwoRoundEm, &key, &coverage);
        assert_eq!(&c.locations[field::OPV], &expected);
        // Coverage bytes untouched.
        assert_eq!(&c.locations[..52], &coverage[..]);
    }

    #[test]
    fn missing_key_is_an_error() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 416, FnKey::Mac);
        assert_eq!(MacOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MissingDynamicKey));
    }

    #[test]
    fn tag_slot_must_fit() {
        let mut st = state();
        let mut locs = vec![0u8; 52]; // no room for the tag
        let mut c = ctx(&mut locs, &[]);
        c.dynamic_key = Some([1; 16]);
        let t = FnTriple::router(0, 416, FnKey::Mac);
        assert_eq!(MacOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }

    #[test]
    fn aes_choice_changes_tag() {
        let mut st = state();
        let key = [7u8; 16];
        let run = |st: &mut crate::RouterState| {
            let mut locs = vec![0u8; 68];
            let mut c = ctx(&mut locs, &[]);
            c.dynamic_key = Some(key);
            let t = FnTriple::router(0, 416, FnKey::Mac);
            MacOp.execute(&t, st, &mut c);
            locs[52..68].to_vec()
        };
        let em = run(&mut st);
        st.mac_choice = MacChoice::Aes;
        let aes = run(&mut st);
        assert_ne!(em, aes);
    }

    #[test]
    fn write_range_is_after_field() {
        let t = FnTriple::router(32, 416, FnKey::Mac);
        assert_eq!(MacOp.write_range(&t), Some((448, 576)));
    }

    #[test]
    fn cost_scales_with_coverage() {
        let small = MacOp.cost(128);
        let large = MacOp.cost(416);
        assert!(large.cipher_blocks > small.cipher_blocks);
    }
}

//! `F_32_match` (key 1) and `F_128_match` (key 2): address matching and
//! forwarding.
//!
//! §3, IP forwarding: "we use F_128_match and F_32_match to instruct the
//! router to perform 128-bit/32-bit address matching and forwarding". The
//! target field is the destination address; the op performs a
//! longest-prefix match in the corresponding FIB and decides the egress.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::triple::{FnKey, FnTriple};

/// 32-bit destination address match.
#[derive(Debug, Default, Clone, Copy)]
pub struct Match32Op;

impl FieldOp for Match32Op {
    fn key(&self) -> FnKey {
        FnKey::Match32
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != 32 {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let addr = Ipv4Addr([bytes[0], bytes[1], bytes[2], bytes[3]]);
        match state.lookup_v4(addr) {
            Some(nh) => Action::Forward(nh.port),
            None => Action::Drop(DropReason::NoRoute),
        }
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        OpCost::lookup(1, 1)
    }
}

/// 128-bit destination address match.
#[derive(Debug, Default, Clone, Copy)]
pub struct Match128Op;

impl FieldOp for Match128Op {
    fn key(&self) -> FnKey {
        FnKey::Match128
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != 128 {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let mut a = [0u8; 16];
        a.copy_from_slice(&bytes);
        match state.lookup_v6(Ipv6Addr(a)) {
            Some(nh) => Action::Forward(nh.port),
            None => Action::Drop(DropReason::NoRoute),
        }
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // Wider key: costs an extra stage on PISA (two 64-bit slices).
        OpCost::lookup(2, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_tables::fib::NextHop;

    #[test]
    fn match32_forwards_on_lpm_hit() {
        let mut st = state();
        st.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(4));
        let mut locs = vec![10, 1, 2, 3, 0, 0, 0, 0];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Match32);
        assert_eq!(Match32Op.execute(&t, &mut st, &mut c), Action::Forward(4));
    }

    #[test]
    fn match32_drops_on_miss() {
        let mut st = state();
        let mut locs = vec![10, 1, 2, 3];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Match32);
        assert_eq!(Match32Op.execute(&t, &mut st, &mut c), Action::Drop(DropReason::NoRoute));
    }

    #[test]
    fn match32_rejects_wrong_width() {
        let mut st = state();
        let mut locs = vec![0u8; 16];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 64, FnKey::Match32);
        assert_eq!(
            Match32Op.execute(&t, &mut st, &mut c),
            Action::Drop(DropReason::MalformedField)
        );
    }

    #[test]
    fn match32_rejects_field_past_end() {
        let mut st = state();
        let mut locs = vec![0u8; 2];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Match32);
        assert_eq!(
            Match32Op.execute(&t, &mut st, &mut c),
            Action::Drop(DropReason::MalformedField)
        );
    }

    #[test]
    fn match128_forwards() {
        let mut st = state();
        let dst = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0x100]);
        st.ipv6_fib.add_route(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]), 16, NextHop::port(9));
        let mut locs = dst.0.to_vec();
        locs.extend_from_slice(&[0u8; 16]);
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 128, FnKey::Match128);
        assert_eq!(Match128Op.execute(&t, &mut st, &mut c), Action::Forward(9));
    }

    #[test]
    fn paper_triples_for_ip_forwarding() {
        // §3: DIP-32 = (loc:0,len:32,key F_32_match) with dst in the low 32
        // bits of the locations; DIP-128 = (loc:0,len:128,key F_128_match).
        let mut st = state();
        st.ipv4_fib.add_route(Ipv4Addr::new(192, 168, 69, 0), 24, NextHop::port(2));
        // locations = dst(4B) || src(4B)
        let mut locs = vec![192, 168, 69, 100, 10, 0, 0, 1];
        let mut c = ctx(&mut locs, &[]);
        assert_eq!(
            Match32Op.execute(&FnTriple::router(0, 32, FnKey::Match32), &mut st, &mut c),
            Action::Forward(2)
        );
    }
}

//! `F_FIB` (key 4): interest processing — PIT record + FIB match.
//!
//! §3 (NDN): "the router records its receiving port in the PIT and matches
//! it in the FIB with the content name to determine the forwarding port."
//! Footnote 2: with caching enabled, "the FIB matching module can be
//! slightly modified to first match the local content store and then match
//! the FIB" — implemented here behind `RouterState::content_store`.
//!
//! The target field is the content name: 32 bits = the prototype's compact
//! name; wider fields carry a TLV-encoded hierarchical name, matched by
//! component-wise longest prefix.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_tables::pit::{PitError, PitOutcome};
use dip_wire::ndn::Name;
use dip_wire::triple::{FnKey, FnTriple};

/// Interest-side NDN op.
#[derive(Debug, Default, Clone, Copy)]
pub struct FibOp;

/// Extracts the compact name from a field: a 32-bit field is the compact
/// name itself; a wider field is TLV-decoded and hashed.
///
/// Returns `None` (callers drop with `MalformedField`) instead of
/// panicking on short input: `read_field` guarantees 4 bytes for a 32-bit
/// field today, but a packet-reachable path must not rely on a caller
/// invariant for memory safety.
pub(crate) fn field_to_names(bytes: &[u8], field_len: u16) -> Option<(u32, Option<Name>)> {
    if field_len == 32 {
        let b = bytes.get(..4)?;
        Some((u32::from_be_bytes([b[0], b[1], b[2], b[3]]), None))
    } else {
        let (name, _) = Name::decode_tlv(bytes).ok()?;
        Some((name.compact32(), Some(name)))
    }
}

impl FieldOp for FibOp {
    fn key(&self) -> FnKey {
        FnKey::Fib
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let Some((compact, full)) = field_to_names(&bytes, triple.field_len) else {
            return Action::Drop(DropReason::MalformedField);
        };

        // Footnote 2: content store first.
        if let Some(cs) = state.content_store.as_mut() {
            if let Some(data) = cs.get(&compact) {
                return Action::RespondCached(data.clone());
            }
        }

        // PIT record (receiving port) ...
        let nonce = ctx.nonce();
        match state.pit.record_interest(compact, ctx.in_port, nonce, ctx.now) {
            Ok(PitOutcome::Forward) => {}
            Ok(PitOutcome::Aggregated) => return Action::Consumed,
            Ok(PitOutcome::DuplicateNonce) => return Action::Drop(DropReason::DuplicateInterest),
            Err(PitError::CapacityExhausted) => {
                return Action::Drop(DropReason::StateBudgetExhausted)
            }
        }

        // ... then FIB match.
        let hit = match &full {
            Some(name) => state.lookup_name(name),
            None => state.lookup_name_compact(compact),
        };
        match hit {
            Some(nh) => Action::Forward(nh.port),
            None => {
                // Undo the PIT entry: an unroutable interest must not
                // occupy state (§2.4 budget hygiene).
                state.pit.consume(&compact, ctx.now);
                Action::Drop(DropReason::NoRoute)
            }
        }
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        // One PIT write + one FIB lookup; hierarchical names burn an extra
        // stage for TLV parsing.
        let parse_stages = if field_bits > 32 { 2 } else { 1 };
        OpCost::lookup(parse_stages, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_tables::fib::NextHop;

    fn interest_locs(name: &Name) -> Vec<u8> {
        name.compact32().to_be_bytes().to_vec()
    }

    #[test]
    fn interest_records_pit_and_forwards() {
        let mut st = state();
        let name = Name::parse("hotnets.org");
        st.name_fib.add_route(&name, NextHop::port(5));
        let mut locs = interest_locs(&name);
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Fib);
        assert_eq!(FibOp.execute(&t, &mut st, &mut c), Action::Forward(5));
        assert!(st.pit.contains(&name.compact32(), 1_000));
    }

    #[test]
    fn unroutable_interest_leaves_no_pit_state() {
        let mut st = state();
        let name = Name::parse("/nowhere");
        let mut locs = interest_locs(&name);
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Fib);
        assert_eq!(FibOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::NoRoute));
        assert!(!st.pit.contains(&name.compact32(), 1_000));
    }

    #[test]
    fn second_interest_aggregates() {
        let mut st = state();
        let name = Name::parse("/a");
        st.name_fib.add_route(&name, NextHop::port(5));
        let t = FnTriple::router(0, 32, FnKey::Fib);
        let mut locs1 = interest_locs(&name);
        let mut c1 = ctx(&mut locs1, b"req1");
        assert_eq!(FibOp.execute(&t, &mut st, &mut c1), Action::Forward(5));
        // Different requester (different payload -> different nonce).
        let mut locs2 = interest_locs(&name);
        let mut c2 = ctx(&mut locs2, b"req2");
        c2.in_port = 9;
        assert_eq!(FibOp.execute(&t, &mut st, &mut c2), Action::Consumed);
    }

    #[test]
    fn looped_interest_dropped_as_duplicate() {
        let mut st = state();
        let name = Name::parse("/a");
        st.name_fib.add_route(&name, NextHop::port(5));
        let t = FnTriple::router(0, 32, FnKey::Fib);
        let mut locs1 = interest_locs(&name);
        let mut c1 = ctx(&mut locs1, b"same");
        FibOp.execute(&t, &mut st, &mut c1);
        // Identical bytes loop back: same nonce.
        let mut locs2 = interest_locs(&name);
        let mut c2 = ctx(&mut locs2, b"same");
        assert_eq!(
            FibOp.execute(&t, &mut st, &mut c2),
            Action::Drop(DropReason::DuplicateInterest)
        );
    }

    #[test]
    fn content_store_answers_before_fib() {
        let mut st = state();
        let name = Name::parse("/cached");
        st.enable_content_store(8);
        st.content_store.as_mut().unwrap().insert(name.compact32(), b"data!".to_vec(), 0);
        // No FIB route at all — the cache must still answer.
        let mut locs = interest_locs(&name);
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Fib);
        assert_eq!(FibOp.execute(&t, &mut st, &mut c), Action::RespondCached(b"data!".to_vec()));
        assert!(st.pit.is_empty());
    }

    #[test]
    fn hierarchical_name_lpm() {
        let mut st = state();
        st.name_fib.add_route(&Name::parse("/hotnets"), NextHop::port(3));
        let full = Name::parse("/hotnets/org/paper7");
        let tlv = full.encode_tlv().unwrap();
        let bits = (tlv.len() * 8) as u16;
        let mut locs = tlv;
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, bits, FnKey::Fib);
        assert_eq!(FibOp.execute(&t, &mut st, &mut c), Action::Forward(3));
    }

    #[test]
    fn pit_exhaustion_is_reported() {
        let mut st = state();
        st.pit = dip_tables::Pit::new(1, 1_000_000);
        st.name_fib.add_route(&Name::parse("/a"), NextHop::port(1));
        st.name_fib.add_route(&Name::parse("/b"), NextHop::port(1));
        let t = FnTriple::router(0, 32, FnKey::Fib);
        let mut l1 = interest_locs(&Name::parse("/a"));
        let mut c1 = ctx(&mut l1, &[]);
        assert_eq!(FibOp.execute(&t, &mut st, &mut c1), Action::Forward(1));
        let mut l2 = interest_locs(&Name::parse("/b"));
        let mut c2 = ctx(&mut l2, &[]);
        assert_eq!(
            FibOp.execute(&t, &mut st, &mut c2),
            Action::Drop(DropReason::StateBudgetExhausted)
        );
    }

    #[test]
    fn garbage_tlv_is_malformed() {
        let mut st = state();
        let mut locs = vec![0xff; 8];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 64, FnKey::Fib);
        assert_eq!(FibOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_mark` (key 8): in-place mark/tag chaining.
//!
//! §3 (OPT): the triple `(loc: 288, len: 128, key: 8)` updates the Path
//! Verification Field. Each on-path router folds itself into the chain:
//!
//! ```text
//! PVF_i = MAC_{K_i}(PVF_{i-1})
//! ```
//!
//! so the destination, knowing every `K_i`, can recompute the chain and
//! detect any skipped, reordered, or injected hop (path validation).

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::ops::mac_op::mac_bytes;
use crate::FieldOp;
use dip_wire::triple::{FnKey, FnTriple};

/// Mark-update op.
#[derive(Debug, Default, Clone, Copy)]
pub struct MarkOp;

impl FieldOp for MarkOp {
    fn key(&self) -> FnKey {
        FnKey::Mark
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Some(key) = ctx.dynamic_key else {
            return Action::Drop(DropReason::MissingDynamicKey);
        };
        if triple.field_len != 128 {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(current) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let next = mac_bytes(state.mac_choice, &key, &current);
        match ctx.write_field(triple, &next) {
            Ok(()) => Action::Continue,
            Err(_) => Action::Drop(DropReason::MalformedField),
        }
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // One 16-byte CBC-MAC: 2 cipher blocks.
        OpCost::cipher(1, 2, 0)
    }

    fn requires_participation(&self) -> bool {
        true
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        Some((usize::from(triple.field_loc), triple.field_end()))
    }

    fn reads_dynamic_key(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MacChoice;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::opt::{field, triple_bits};

    #[test]
    fn chains_pvf_in_place() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        locs[field::PVF].fill(0x55);
        let key = [9u8; 16];
        let expected = mac_bytes(MacChoice::TwoRoundEm, &key, &[0x55u8; 16]);
        let mut c = ctx(&mut locs, &[]);
        c.dynamic_key = Some(key);
        let t = FnTriple::router(triple_bits::MARK.0, triple_bits::MARK.1, FnKey::Mark);
        assert_eq!(MarkOp.execute(&t, &mut st, &mut c), Action::Continue);
        assert_eq!(&c.locations[field::PVF], &expected);
        // Neighbouring fields untouched.
        assert_eq!(&c.locations[field::TIMESTAMP], &[0u8; 4]);
        assert_eq!(&c.locations[field::OPV], &[0u8; 16]);
    }

    #[test]
    fn two_hops_compose() {
        let k1 = [1u8; 16];
        let k2 = [2u8; 16];
        let mut st = state();
        let mut locs = vec![0u8; 68];
        let t = FnTriple::router(288, 128, FnKey::Mark);
        let pvf0 = locs[field::PVF].to_vec();
        {
            let mut c = ctx(&mut locs, &[]);
            c.dynamic_key = Some(k1);
            MarkOp.execute(&t, &mut st, &mut c);
        }
        {
            let mut c = ctx(&mut locs, &[]);
            c.dynamic_key = Some(k2);
            MarkOp.execute(&t, &mut st, &mut c);
        }
        let step1 = mac_bytes(MacChoice::TwoRoundEm, &k1, &pvf0);
        let step2 = mac_bytes(MacChoice::TwoRoundEm, &k2, &step1);
        assert_eq!(&locs[field::PVF], &step2);
    }

    #[test]
    fn missing_key_rejected() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(288, 128, FnKey::Mark);
        assert_eq!(
            MarkOp.execute(&t, &mut st, &mut c),
            Action::Drop(DropReason::MissingDynamicKey)
        );
    }

    #[test]
    fn wrong_width_rejected() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        let mut c = ctx(&mut locs, &[]);
        c.dynamic_key = Some([1; 16]);
        let t = FnTriple::router(288, 64, FnKey::Mark);
        assert_eq!(MarkOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

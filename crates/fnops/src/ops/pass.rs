//! `F_pass` (key 12): source label verification (§2.4).
//!
//! The paper's defense against strategically combined FNs — e.g. an
//! attacker carrying both `F_FIB` and `F_PIT` with "maliciously constructed
//! data to pollute the node's content cache". Producers obtain a *source
//! label* from their AS (a MAC over their identity under the AS secret,
//! following the NDN cached-content defenses of \[15\]); `F_pass` recomputes
//! and checks it. "Although enabling F_pass all the time is expensive, DIP
//! allows the network operators to dynamically adjust security policies" —
//! that dynamic toggle is `RouterState::require_pass_for_cache` plus
//! inserting/removing this FN from the chain (experiment E6).
//!
//! Target field layout (256 bits): `[0,128)` source identifier, `[128,256)`
//! label = `PRF(as_secret, "pass-label", source_id)`.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_crypto::ct_eq;
use dip_crypto::kdf::derive_pass_key;
use dip_wire::triple::{FnKey, FnTriple};

/// Source-label verification op.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassOp;

/// Bit width of the `F_pass` target field.
pub const PASS_FIELD_BITS: u16 = 256;

/// Computes the label an AS issues to `source_id` — used by producers when
/// constructing packets, and by this op when checking them.
pub fn issue_label(as_secret: &dip_crypto::Block, source_id: &[u8; 16]) -> dip_crypto::Block {
    derive_pass_key(as_secret, source_id)
}

impl FieldOp for PassOp {
    fn key(&self) -> FnKey {
        FnKey::Pass
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != PASS_FIELD_BITS {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let mut source_id = [0u8; 16];
        source_id.copy_from_slice(&bytes[..16]);
        let expected = issue_label(&state.as_secret, &source_id);
        if ct_eq(&expected, &bytes[16..32]) {
            ctx.pass_verified = true;
            Action::Continue
        } else {
            Action::Drop(DropReason::BadSourceLabel)
        }
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // One PRF over ~32 bytes: expensive relative to a match, which is
        // why the paper gates it behind dynamic policy.
        OpCost::cipher(2, 4, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};

    fn pass_field(as_secret: &[u8; 16], source_id: [u8; 16]) -> Vec<u8> {
        let mut f = source_id.to_vec();
        f.extend_from_slice(&issue_label(as_secret, &source_id));
        f
    }

    #[test]
    fn valid_label_passes_and_marks_ctx() {
        let mut st = state();
        let mut locs = pass_field(&st.as_secret.clone(), [5u8; 16]);
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, PASS_FIELD_BITS, FnKey::Pass);
        assert_eq!(PassOp.execute(&t, &mut st, &mut c), Action::Continue);
        assert!(c.pass_verified);
    }

    #[test]
    fn forged_label_dropped() {
        let mut st = state();
        let mut locs = pass_field(&[0x99u8; 16], [5u8; 16]); // wrong AS secret
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, PASS_FIELD_BITS, FnKey::Pass);
        assert_eq!(PassOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::BadSourceLabel));
        assert!(!c.pass_verified);
    }

    #[test]
    fn label_is_bound_to_source_id() {
        let mut st = state();
        let secret = st.as_secret;
        let mut field = pass_field(&secret, [5u8; 16]);
        field[0] ^= 1; // claim a different source with the old label
        let mut c = ctx(&mut field, &[]);
        let t = FnTriple::router(0, PASS_FIELD_BITS, FnKey::Pass);
        assert_eq!(PassOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::BadSourceLabel));
    }

    #[test]
    fn wrong_width_rejected() {
        let mut st = state();
        let mut locs = vec![0u8; 32];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 128, FnKey::Pass);
        assert_eq!(PassOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_parm` (key 6): load parameters / derive the dynamic key.
//!
//! §3 (OPT): "the router will derive a dynamic key from session ID in the
//! packet header with its local key" — the DRKey-style stateless derivation
//! `K_i = PRF(S_i, session_id)`. The key is deposited in the packet context
//! for `F_MAC` and `F_mark` to consume; no per-flow state is created.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_crypto::derive_session_key;
use dip_wire::triple::{FnKey, FnTriple};

/// Parameter-loading / key-derivation op.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParmOp;

impl FieldOp for ParmOp {
    fn key(&self) -> FnKey {
        FnKey::Parm
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != 128 {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let mut session_id = [0u8; 16];
        session_id.copy_from_slice(&bytes);
        ctx.dynamic_key = Some(derive_session_key(&state.local_secret, &session_id));
        Action::Continue
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // One PRF = one short CBC-MAC: ~3 cipher blocks.
        OpCost::cipher(1, 3, 0)
    }

    fn requires_participation(&self) -> bool {
        true // path authentication needs every on-path AS (§2.4)
    }

    fn writes_dynamic_key(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::opt::triple_bits;

    #[test]
    fn derives_key_matching_host_computation() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        locs[16..32].copy_from_slice(&[0xaa; 16]); // SessionID field
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(triple_bits::PARM.0, triple_bits::PARM.1, FnKey::Parm);
        assert_eq!(ParmOp.execute(&t, &mut st, &mut c), Action::Continue);
        let expected = derive_session_key(&st.local_secret, &[0xaa; 16]);
        assert_eq!(c.dynamic_key, Some(expected));
    }

    #[test]
    fn different_sessions_different_keys() {
        let mut st = state();
        let t = FnTriple::router(128, 128, FnKey::Parm);
        let mut locs_a = vec![0u8; 68];
        locs_a[16..32].fill(0xaa);
        let mut ca = ctx(&mut locs_a, &[]);
        ParmOp.execute(&t, &mut st, &mut ca);
        let ka = ca.dynamic_key;
        let mut locs_b = vec![0u8; 68];
        locs_b[16..32].fill(0xbb);
        let mut cb = ctx(&mut locs_b, &[]);
        ParmOp.execute(&t, &mut st, &mut cb);
        assert_ne!(ka, cb.dynamic_key);
    }

    #[test]
    fn wrong_width_rejected() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(128, 64, FnKey::Parm);
        assert_eq!(ParmOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_parm` (key 6): load parameters / derive the dynamic key.
//!
//! §3 (OPT): "the router will derive a dynamic key from session ID in the
//! packet header with its local key" — the DRKey-style stateless derivation
//! `K_i = PRF(S_i, session_id)`. The key is deposited in the packet context
//! for `F_MAC` and `F_mark` to consume; no per-flow state is created.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::{FieldOp, HoistState};
use dip_crypto::{derive_session_key, SessionKdf};
use dip_wire::triple::{FnKey, FnTriple};

/// Parameter-loading / key-derivation op.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParmOp;

impl FieldOp for ParmOp {
    fn key(&self) -> FnKey {
        FnKey::Parm
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != 128 {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let mut session_id = [0u8; 16];
        session_id.copy_from_slice(&bytes);
        ctx.dynamic_key = Some(derive_session_key(&state.local_secret, &session_id));
        Action::Continue
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // One PRF = one short CBC-MAC: ~3 cipher blocks.
        OpCost::cipher(1, 3, 0)
    }

    fn requires_participation(&self) -> bool {
        true // path authentication needs every on-path AS (§2.4)
    }

    fn writes_dynamic_key(&self) -> bool {
        true
    }

    fn infallible_for(&self, triple: &FnTriple) -> bool {
        // With a 128-bit field and the span in bounds, execute() cannot take
        // either MalformedField path: it always derives and continues.
        triple.field_len == 128
    }

    fn hoistable(&self) -> bool {
        true
    }

    fn hoist(&self, state: &RouterState) -> Option<HoistState> {
        Some(HoistState::SessionKdf(SessionKdf::new(&state.local_secret)))
    }

    fn execute_hoisted(
        &self,
        triple: &FnTriple,
        _state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
        hoisted: &HoistState,
    ) -> Action {
        let HoistState::SessionKdf(kdf) = hoisted;
        if triple.field_len != 128 {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let mut session_id = [0u8; 16];
        session_id.copy_from_slice(&bytes);
        ctx.dynamic_key = Some(kdf.derive(&session_id));
        Action::Continue
    }

    fn hoisted_cost(&self, _field_bits: u16) -> OpCost {
        // The length-prefix block of the CBC-MAC PRF is folded at hoist
        // time: 2 cipher blocks per packet instead of 3.
        OpCost::cipher(1, 2, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::opt::triple_bits;

    #[test]
    fn derives_key_matching_host_computation() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        locs[16..32].copy_from_slice(&[0xaa; 16]); // SessionID field
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(triple_bits::PARM.0, triple_bits::PARM.1, FnKey::Parm);
        assert_eq!(ParmOp.execute(&t, &mut st, &mut c), Action::Continue);
        let expected = derive_session_key(&st.local_secret, &[0xaa; 16]);
        assert_eq!(c.dynamic_key, Some(expected));
    }

    #[test]
    fn different_sessions_different_keys() {
        let mut st = state();
        let t = FnTriple::router(128, 128, FnKey::Parm);
        let mut locs_a = vec![0u8; 68];
        locs_a[16..32].fill(0xaa);
        let mut ca = ctx(&mut locs_a, &[]);
        ParmOp.execute(&t, &mut st, &mut ca);
        let ka = ca.dynamic_key;
        let mut locs_b = vec![0u8; 68];
        locs_b[16..32].fill(0xbb);
        let mut cb = ctx(&mut locs_b, &[]);
        ParmOp.execute(&t, &mut st, &mut cb);
        assert_ne!(ka, cb.dynamic_key);
    }

    #[test]
    fn hoisted_execution_is_byte_identical() {
        let mut st = state();
        let hoisted = ParmOp.hoist(&st).expect("parm is hoistable");
        let t = FnTriple::router(128, 128, FnKey::Parm);
        for fill in [0x00u8, 0x5a, 0xaa, 0xff] {
            let mut locs_a = vec![0u8; 68];
            locs_a[16..32].fill(fill);
            let mut locs_b = locs_a.clone();
            let mut ca = ctx(&mut locs_a, &[]);
            let plain = ParmOp.execute(&t, &mut st, &mut ca);
            let key_plain = ca.dynamic_key;
            let mut cb = ctx(&mut locs_b, &[]);
            let fast = ParmOp.execute_hoisted(&t, &mut st, &mut cb, &hoisted);
            assert_eq!(plain, fast);
            assert_eq!(key_plain, cb.dynamic_key);
        }
        // And the hoisted model is strictly cheaper in cipher blocks.
        assert!(ParmOp.hoisted_cost(128).cipher_blocks < ParmOp.cost(128).cipher_blocks);
    }

    #[test]
    fn wrong_width_rejected() {
        let mut st = state();
        let mut locs = vec![0u8; 68];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(128, 64, FnKey::Parm);
        assert_eq!(ParmOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_PIT` (key 5): data-packet processing — PIT consume + fan-out.
//!
//! §3 (NDN): "For the data packets, the router looks up the content name in
//! the PIT and forwards it to the recorded request port (match hit) or
//! discards the packet (match miss)."
//!
//! With a content store enabled the data is also cached on the way through
//! — which is the §2.4 content-poisoning vector: a malicious producer can
//! seed the cache with bogus bytes. When
//! `RouterState::require_pass_for_cache` is set (the dynamically enabled
//! `F_pass` policy), only packets whose source label has been verified in
//! this FN chain are cached.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::ops::fib::field_to_names;
use crate::FieldOp;
use dip_tables::PitConsume;
use dip_wire::triple::{FnKey, FnTriple};

/// Data-side NDN op.
#[derive(Debug, Default, Clone, Copy)]
pub struct PitOp;

impl FieldOp for PitOp {
    fn key(&self) -> FnKey {
        FnKey::Pit
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Ok(bytes) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let Some((compact, _)) = field_to_names(&bytes, triple.field_len) else {
            return Action::Drop(DropReason::MalformedField);
        };
        match state.pit.consume_classified(&compact, ctx.now) {
            PitConsume::Hit(faces) => {
                if let Some(cs) = state.content_store.as_mut() {
                    if !state.require_pass_for_cache || ctx.pass_verified {
                        cs.insert(compact, ctx.payload.to_vec(), ctx.now);
                    }
                }
                Action::ForwardMulti(faces)
            }
            // The interest existed but lapsed under virtual time — the
            // long-partition case. Accounted distinctly so aged-out
            // entries are never mistaken for unsolicited data.
            PitConsume::Expired => Action::Drop(DropReason::PitExpired),
            PitConsume::Miss => Action::Drop(DropReason::PitMiss),
        }
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        let parse_stages = if field_bits > 32 { 2 } else { 1 };
        OpCost::lookup(parse_stages, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::ndn::Name;

    fn data_locs(name: &Name) -> Vec<u8> {
        name.compact32().to_be_bytes().to_vec()
    }

    #[test]
    fn data_follows_pit_faces() {
        let mut st = state();
        let name = Name::parse("/a");
        st.pit.record_interest(name.compact32(), 3, 1, 0).unwrap();
        st.pit.record_interest(name.compact32(), 8, 2, 0).unwrap();
        let mut locs = data_locs(&name);
        let mut c = ctx(&mut locs, b"the data");
        let t = FnTriple::router(0, 32, FnKey::Pit);
        assert_eq!(PitOp.execute(&t, &mut st, &mut c), Action::ForwardMulti(vec![3, 8]));
        // Entry consumed: a second data packet misses.
        let mut locs2 = data_locs(&name);
        let mut c2 = ctx(&mut locs2, b"the data");
        assert_eq!(PitOp.execute(&t, &mut st, &mut c2), Action::Drop(DropReason::PitMiss));
    }

    #[test]
    fn late_data_for_expired_interest_is_pit_expired() {
        let mut st = state();
        // A tight TTL so the pending interest ages out under virtual time
        // (the mid-partition case): the data is late, not unsolicited.
        st.pit = dip_tables::Pit::new(16, 100);
        let name = Name::parse("/a");
        st.pit.record_interest(name.compact32(), 3, 1, 0).unwrap();
        let mut locs = data_locs(&name);
        let mut c = ctx(&mut locs, b"too late");
        c.now = 5_000;
        let t = FnTriple::router(0, 32, FnKey::Pit);
        assert_eq!(PitOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::PitExpired));
        assert_eq!(st.pit.expired_evictions(), 1, "the lapse is a counted eviction");
    }

    #[test]
    fn unsolicited_data_dropped() {
        let mut st = state();
        let mut locs = data_locs(&Name::parse("/nobody/asked"));
        let mut c = ctx(&mut locs, b"spam");
        let t = FnTriple::router(0, 32, FnKey::Pit);
        assert_eq!(PitOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::PitMiss));
    }

    #[test]
    fn data_populates_content_store() {
        let mut st = state();
        st.enable_content_store(8);
        let name = Name::parse("/a");
        st.pit.record_interest(name.compact32(), 3, 1, 0).unwrap();
        let mut locs = data_locs(&name);
        let mut c = ctx(&mut locs, b"cache me");
        let t = FnTriple::router(0, 32, FnKey::Pit);
        PitOp.execute(&t, &mut st, &mut c);
        assert_eq!(
            st.content_store.as_ref().unwrap().peek(&name.compact32()),
            Some(&b"cache me".to_vec())
        );
    }

    #[test]
    fn pass_policy_gates_caching() {
        let mut st = state();
        st.enable_content_store(8);
        st.require_pass_for_cache = true;
        let name = Name::parse("/a");
        let t = FnTriple::router(0, 32, FnKey::Pit);

        // Unverified data: forwarded but NOT cached.
        st.pit.record_interest(name.compact32(), 3, 1, 0).unwrap();
        let mut locs = data_locs(&name);
        let mut c = ctx(&mut locs, b"bogus");
        assert!(matches!(PitOp.execute(&t, &mut st, &mut c), Action::ForwardMulti(_)));
        assert!(st.content_store.as_ref().unwrap().peek(&name.compact32()).is_none());

        // Verified data: cached.
        st.pit.record_interest(name.compact32(), 3, 2, 10).unwrap();
        let mut locs2 = data_locs(&name);
        let mut c2 = ctx(&mut locs2, b"genuine");
        c2.pass_verified = true;
        assert!(matches!(PitOp.execute(&t, &mut st, &mut c2), Action::ForwardMulti(_)));
        assert_eq!(
            st.content_store.as_ref().unwrap().peek(&name.compact32()),
            Some(&b"genuine".to_vec())
        );
    }

    #[test]
    fn short_field_is_malformed() {
        let mut st = state();
        let mut locs = vec![0u8; 1];
        let mut c = ctx(&mut locs, &[]);
        let t = FnTriple::router(0, 32, FnKey::Pit);
        assert_eq!(PitOp.execute(&t, &mut st, &mut c), Action::Drop(DropReason::MalformedField));
    }
}

//! `F_intent` (key 11): XIA intent handling with fallback.
//!
//! The routing half of XIA (§3). Starting from the DAG position recorded in
//! the packet (`last_visited`), try the out-edges in priority order:
//!
//! * a node this router can forward towards → `Forward(port)`;
//! * a node that is *local* (this router/host is responsible for it) →
//!   advance `last_visited` (persisted back into the packet header, so the
//!   next hop resumes from there) and keep walking; reaching a local sink
//!   delivers the packet;
//! * an unroutable node → try the next (fallback) edge — this is XIA's
//!   evolvability mechanism: routers that don't understand a new principal
//!   type simply fall back.

use crate::context::{Action, DropReason, PacketCtx, RouterState};
use crate::cost::OpCost;
use crate::FieldOp;
use dip_tables::XiaNextHop;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::xia::Dag;

/// Intent-handling op.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntentOp;

impl FieldOp for IntentOp {
    fn key(&self) -> FnKey {
        FnKey::Intent
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        // Use the DAG parsed by F_DAG, or parse it ourselves (the op pair
        // is composable but F_intent alone must still work).
        let mut dag = match ctx.dag.take() {
            Some(d) => d,
            None => {
                let Ok(bytes) = ctx.read_field(triple) else {
                    return Action::Drop(DropReason::MalformedField);
                };
                match Dag::decode(&bytes) {
                    Ok((d, _)) => d,
                    Err(_) => return Action::Drop(DropReason::MalformedField),
                }
            }
        };

        let mut moved = false;
        let result = 'walk: loop {
            let edges = dag.current_edges();
            if edges.is_empty() {
                // At a sink we already own: the packet has arrived.
                break 'walk Action::Deliver;
            }
            for e in edges {
                let node = &dag.nodes[usize::from(e)];
                match state.lookup_xia(node.ty, &node.xid) {
                    Some(XiaNextHop::Port(p)) => break 'walk Action::Forward(p),
                    Some(XiaNextHop::Local) => {
                        dag.last_visited = e;
                        moved = true;
                        if node.is_sink() {
                            break 'walk Action::Deliver;
                        }
                        continue 'walk;
                    }
                    None => { /* fallback: try the next edge */ }
                }
            }
            break 'walk Action::Drop(DropReason::DagUnroutable);
        };

        // Persist navigation progress into the packet so downstream hops
        // resume from the right node.
        if moved {
            let encoded = dag.encode();
            if ctx.write_field(triple, &encoded).is_err() {
                ctx.dag = Some(dag);
                return Action::Drop(DropReason::MalformedField);
            }
        }
        ctx.dag = Some(dag);
        result
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        // Up to one route lookup per candidate edge.
        let nodes = ((usize::from(field_bits) / 8).saturating_sub(6) / 28).max(1);
        OpCost::lookup(2, nodes as u32)
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        Some((usize::from(triple.field_loc), triple.field_end()))
    }

    fn consumes_parsed_dag_with_fallback(&self) -> bool {
        // On a ctx.dag miss, F_intent parses its own span with the same
        // decode and the same MalformedField drop as F_DAG — eliminating a
        // same-span F_DAG immediately before it is an exact rewrite.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{ctx, state};
    use dip_wire::xia::{DagNode, Xid, XidType, NO_EDGE};

    fn xid(s: &str) -> Xid {
        Xid::derive(s.as_bytes())
    }

    fn dag() -> Dag {
        Dag::direct_with_fallback(
            DagNode::sink(XidType::Cid, xid("content")),
            xid("ad"),
            xid("hid"),
        )
        .unwrap()
    }

    fn run(st: &mut crate::RouterState, d: &Dag) -> (Action, Dag) {
        let mut locs = d.encode();
        let bits = (locs.len() * 8) as u16;
        let t = FnTriple::router(0, bits, FnKey::Intent);
        let action = {
            let mut c = ctx(&mut locs, &[]);
            IntentOp.execute(&t, st, &mut c)
        };
        let (reparsed, _) = Dag::decode(&locs).unwrap();
        (action, reparsed)
    }

    #[test]
    fn intent_route_wins_over_fallback() {
        let mut st = state();
        st.xia.add_route(XidType::Cid, xid("content"), XiaNextHop::Port(5));
        st.xia.add_route(XidType::Ad, xid("ad"), XiaNextHop::Port(9));
        let (action, d) = run(&mut st, &dag());
        assert_eq!(action, Action::Forward(5));
        assert_eq!(d.last_visited, NO_EDGE); // no local advance happened
    }

    #[test]
    fn falls_back_to_ad_when_intent_unknown() {
        let mut st = state();
        st.xia.add_route(XidType::Ad, xid("ad"), XiaNextHop::Port(9));
        let (action, _) = run(&mut st, &dag());
        assert_eq!(action, Action::Forward(9));
    }

    #[test]
    fn local_ad_advances_and_persists() {
        let mut st = state();
        // We are the AD; the HID is reachable via port 2.
        st.xia.add_route(XidType::Ad, xid("ad"), XiaNextHop::Local);
        st.xia.add_route(XidType::Hid, xid("hid"), XiaNextHop::Port(2));
        let (action, d) = run(&mut st, &dag());
        assert_eq!(action, Action::Forward(2));
        // last_visited advanced to the AD node (index 1) and was persisted.
        assert_eq!(d.last_visited, 1);
    }

    #[test]
    fn local_sink_delivers() {
        let mut st = state();
        st.xia.add_route(XidType::Cid, xid("content"), XiaNextHop::Local);
        let (action, d) = run(&mut st, &dag());
        assert_eq!(action, Action::Deliver);
        assert_eq!(d.last_visited, 0);
    }

    #[test]
    fn multi_step_local_walk() {
        let mut st = state();
        // We are both the AD and the HID; content is local too: the whole
        // walk happens here and the packet is delivered.
        st.xia.add_route(XidType::Ad, xid("ad"), XiaNextHop::Local);
        st.xia.add_route(XidType::Hid, xid("hid"), XiaNextHop::Local);
        st.xia.add_route(XidType::Cid, xid("content"), XiaNextHop::Local);
        let (action, d) = run(&mut st, &dag());
        assert_eq!(action, Action::Deliver);
        assert_eq!(d.last_visited, 0); // ended at the intent node
    }

    #[test]
    fn unroutable_everywhere_drops() {
        let mut st = state();
        let (action, _) = run(&mut st, &dag());
        assert_eq!(action, Action::Drop(DropReason::DagUnroutable));
    }

    #[test]
    fn resumes_from_last_visited() {
        let mut st = state();
        st.xia.add_route(XidType::Hid, xid("hid"), XiaNextHop::Port(4));
        let mut d = dag();
        d.last_visited = 1; // already at the AD
        let (action, _) = run(&mut st, &d);
        assert_eq!(action, Action::Forward(4));
    }

    #[test]
    fn uses_ctx_dag_when_present() {
        let mut st = state();
        st.xia.add_route(XidType::Cid, xid("content"), XiaNextHop::Port(1));
        let d = dag();
        let mut locs = d.encode();
        let bits = (locs.len() * 8) as u16;
        let t = FnTriple::router(0, bits, FnKey::Intent);
        let mut c = ctx(&mut locs, &[]);
        c.dag = Some(d);
        assert_eq!(IntentOp.execute(&t, &mut st, &mut c), Action::Forward(1));
    }
}

//! The bundled operation modules (Table 1 + `F_pass`).

pub mod dag;
pub mod fib;
pub mod intent;
pub mod mac_op;
pub mod mark;
pub mod match_addr;
pub mod parm;
pub mod pass;
pub mod pit;
pub mod source;
pub mod ver;

pub use dag::DagOp;
pub use fib::FibOp;
pub use intent::IntentOp;
pub use mac_op::MacOp;
pub use mark::MarkOp;
pub use match_addr::{Match128Op, Match32Op};
pub use parm::ParmOp;
pub use pass::PassOp;
pub use pit::PitOp;
pub use source::SourceOp;
pub use ver::VerOp;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for op tests.
    use crate::context::{PacketCtx, RouterState};

    pub fn state() -> RouterState {
        RouterState::new(1, [0x11u8; 16])
    }

    pub fn ctx<'a>(locations: &'a mut [u8], payload: &'a [u8]) -> PacketCtx<'a> {
        PacketCtx::new(locations, payload, 7, 1_000)
    }
}

//! Hardware cost descriptors for the PISA pipeline timing model.
//!
//! §4.1 describes the prototype's Tofino constraints: operation modules are
//! pre-written match-action stages selected by the operation key; field
//! slices are preset; a loop over FNs is unrolled into an if-else chain; AES
//! would need a *resubmission* (a second pass through the pipeline) while
//! 2EM does not. Each [`FieldOp`](crate::FieldOp) reports its cost in these
//! units; `dip-sim`'s Tofino model converts them to time.

/// Cost of one operation invocation, in pipeline-architecture units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Match-action stages occupied.
    pub stages: u32,
    /// Table lookups performed (FIB/PIT/route tables).
    pub table_lookups: u32,
    /// 128-bit block-cipher invocations.
    pub cipher_blocks: u32,
    /// Extra full passes through the pipeline (packet resubmissions).
    pub resubmits: u32,
}

impl OpCost {
    /// A pure header-rewrite op occupying `stages` stages.
    pub const fn stages(stages: u32) -> Self {
        OpCost { stages, table_lookups: 0, cipher_blocks: 0, resubmits: 0 }
    }

    /// A table-lookup op.
    pub const fn lookup(stages: u32, table_lookups: u32) -> Self {
        OpCost { stages, table_lookups, cipher_blocks: 0, resubmits: 0 }
    }

    /// A cryptographic op.
    pub const fn cipher(stages: u32, cipher_blocks: u32, resubmits: u32) -> Self {
        OpCost { stages, table_lookups: 0, cipher_blocks, resubmits }
    }

    /// Cost of this op fused into the same stage wave as `other` (§2.2's
    /// modular parallelism applied at compile time by dipopt): the two share
    /// stage occupancy — stages is the max — while lookups, cipher blocks
    /// and resubmits are physical resources and still sum.
    pub const fn fuse(self, other: OpCost) -> OpCost {
        OpCost {
            stages: if self.stages > other.stages { self.stages } else { other.stages },
            table_lookups: self.table_lookups + other.table_lookups,
            cipher_blocks: self.cipher_blocks + other.cipher_blocks,
            resubmits: self.resubmits + other.resubmits,
        }
    }
}

impl core::ops::Add for OpCost {
    type Output = OpCost;

    fn add(self, other: OpCost) -> OpCost {
        OpCost {
            stages: self.stages + other.stages,
            table_lookups: self.table_lookups + other.table_lookups,
            cipher_blocks: self.cipher_blocks + other.cipher_blocks,
            resubmits: self.resubmits + other.resubmits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_add() {
        let a = OpCost::lookup(1, 2);
        let b = OpCost::cipher(2, 4, 1);
        let s = a + b;
        assert_eq!(s, OpCost { stages: 3, table_lookups: 2, cipher_blocks: 4, resubmits: 1 });
        assert_eq!(OpCost::stages(5).stages, 5);
    }

    #[test]
    fn fuse_shares_stages_and_sums_resources() {
        let a = OpCost::lookup(1, 1);
        let b = OpCost::stages(1);
        assert_eq!(a.fuse(b), OpCost::lookup(1, 1));
        let c = OpCost::cipher(2, 4, 1).fuse(OpCost::lookup(1, 3));
        assert_eq!(c, OpCost { stages: 2, table_lookups: 3, cipher_blocks: 4, resubmits: 1 });
        // Commutative.
        assert_eq!(a.fuse(b), b.fuse(a));
    }
}

//! The modular-parallelism planner (§2.2).
//!
//! The lowest bit of the packet parameter "indicates whether the operation
//! modules can be executed in parallel ... to improve packet processing
//! speed when the modular parallelism technique \[31, 32\] is used". This
//! module computes *which* operations may overlap: it partitions the FN
//! chain into sequential **waves** such that within a wave no two
//! operations conflict. Two operations conflict when
//!
//! * one writes a bit range the other reads or writes (the read range is
//!   the triple's target field, write ranges come from
//!   [`crate::FieldOp::write_range`]); or
//! * one writes the per-packet dynamic key and the other reads or writes
//!   it (the `F_parm` → `F_MAC`/`F_mark` dependency of §3).
//!
//! Program order is preserved across conflicting pairs, so executing the
//! waves in order is observably equivalent to sequential execution. The
//! PISA timing model charges a wave the *maximum* of its members' costs
//! instead of the sum (experiment E5).

use crate::registry::FnRegistry;
use dip_wire::triple::FnTriple;

/// Read/write footprint of one FN in the chain.
///
/// This is the *single* definition of "what bits does this operation
/// touch" shared by the planner here and by the static verifier in
/// `dip-verify` — exporting it keeps the two analyses provably aligned
/// (a hazard the verifier reports is exactly an edge the planner
/// serializes, and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Bits read: the triple's target field, as a half-open bit range
    /// `[start, end)` in the FN-locations area.
    pub read: (usize, usize),
    /// Bits written, from [`crate::FieldOp::write_range`]; `None` for pure
    /// readers.
    pub write: Option<(usize, usize)>,
    /// Reads the per-packet dynamic key (e.g. `F_MAC`, `F_mark`).
    pub reads_key: bool,
    /// Writes the per-packet dynamic key (e.g. `F_parm`).
    pub writes_key: bool,
}

/// The footprint of `triple` under `registry`, or `None` when the key has
/// no installed operation (callers treat that as a total barrier).
pub fn footprint(triple: &FnTriple, registry: &FnRegistry) -> Option<Footprint> {
    registry.get(triple.key).map(|op| Footprint {
        read: (usize::from(triple.field_loc), triple.field_end()),
        write: op.write_range(triple),
        reads_key: op.reads_dynamic_key(),
        writes_key: op.writes_dynamic_key(),
    })
}

/// Whether two half-open bit ranges `[start, end)` share at least one bit.
///
/// Zero-length (empty) ranges overlap **nothing** — including when an
/// empty range sits strictly inside a non-empty one. Without the explicit
/// emptiness guards the pure interval test `a.0 < b.1 && b.0 < a.1` would
/// claim `(5, 5)` overlaps `(0, 10)`. An op with a zero-length field
/// touches no bits, so it cannot be part of a field-level data hazard.
pub fn ranges_overlap(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1 && a.0 != a.1 && b.0 != b.1
}

/// Whether two footprints conflict — i.e. must execute sequentially, in
/// program order. True when one writes bits the other reads or writes, or
/// when one writes the dynamic key the other reads or writes.
pub fn conflicts(a: &Footprint, b: &Footprint) -> bool {
    // Field-level: write/read, read/write, write/write.
    if let Some(wa) = a.write {
        if ranges_overlap(wa, b.read) {
            return true;
        }
        if let Some(wb) = b.write {
            if ranges_overlap(wa, wb) {
                return true;
            }
        }
    }
    if let Some(wb) = b.write {
        if ranges_overlap(wb, a.read) {
            return true;
        }
    }
    // Dynamic-key dependency.
    if a.writes_key && (b.reads_key || b.writes_key) {
        return true;
    }
    if b.writes_key && a.reads_key {
        return true;
    }
    false
}

/// An execution plan: triple indices grouped into sequential waves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Waves, each a list of indices into the original triple slice; all
    /// members of a wave may execute concurrently.
    pub waves: Vec<Vec<usize>>,
}

impl Plan {
    /// A fully sequential plan (one wave per op) — what routers run when
    /// the parallel flag is clear.
    pub fn sequential(n: usize) -> Plan {
        Plan { waves: (0..n).map(|i| vec![i]).collect() }
    }

    /// Number of sequential steps.
    pub fn depth(&self) -> usize {
        self.waves.len()
    }
}

/// Computes the parallel execution plan for a chain of router-executed
/// triples. Host-tagged triples should be filtered out by the caller (the
/// router skips them anyway). Unknown keys are treated as full-barrier
/// operations (conservatively conflicting with everything).
pub fn plan(triples: &[FnTriple], registry: &FnRegistry) -> Plan {
    let feet: Vec<Option<Footprint>> = triples.iter().map(|t| footprint(t, registry)).collect();

    // Greedy list scheduling: place each op in the earliest wave after all
    // conflicting predecessors.
    let mut wave_of: Vec<usize> = Vec::with_capacity(triples.len());
    for i in 0..triples.len() {
        let mut earliest = 0;
        for j in 0..i {
            let conflict = match (&feet[i], &feet[j]) {
                (Some(a), Some(b)) => conflicts(b, a),
                // Unknown op: total barrier.
                _ => true,
            };
            if conflict {
                earliest = earliest.max(wave_of[j] + 1);
            }
        }
        wave_of.push(earliest);
    }
    let depth = wave_of.iter().map(|w| w + 1).max().unwrap_or(0);
    let mut waves = vec![Vec::new(); depth];
    for (i, w) in wave_of.iter().enumerate() {
        waves[*w].push(i);
    }
    Plan { waves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::opt::triple_bits;
    use dip_wire::triple::FnKey;

    fn registry() -> FnRegistry {
        FnRegistry::standard()
    }

    fn opt_chain() -> Vec<FnTriple> {
        vec![
            FnTriple::router(triple_bits::PARM.0, triple_bits::PARM.1, FnKey::Parm),
            FnTriple::router(triple_bits::MAC.0, triple_bits::MAC.1, FnKey::Mac),
            FnTriple::router(triple_bits::MARK.0, triple_bits::MARK.1, FnKey::Mark),
        ]
    }

    #[test]
    fn opt_auth_chain_is_mostly_sequential() {
        // parm -> mac (key dep), parm -> mark (key dep),
        // mark writes PVF ⊂ mac's read range -> mac/mark conflict too.
        let p = plan(&opt_chain(), &registry());
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn ndn_opt_lets_pit_run_with_parm() {
        // NDN+OPT data chain: PIT reads the name at [0,32); parm reads the
        // session id; neither writes fields others touch except the
        // key-dependency chain — so PIT joins the first wave.
        let triples = vec![
            FnTriple::router(0, 32, FnKey::Pit),
            FnTriple::router(32 + 128, 128, FnKey::Parm),
            FnTriple::router(32, 416, FnKey::Mac),
            FnTriple::router(32 + 288, 128, FnKey::Mark),
        ];
        let p = plan(&triples, &registry());
        assert_eq!(p.waves[0], vec![0, 1], "PIT and parm should share wave 0");
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn disjoint_reads_share_a_wave() {
        let triples =
            vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)];
        let p = plan(&triples, &registry());
        assert_eq!(p.depth(), 1);
        assert_eq!(p.waves[0], vec![0, 1]);
    }

    #[test]
    fn unknown_key_is_a_barrier() {
        let triples = vec![
            FnTriple::router(0, 32, FnKey::Match32),
            FnTriple::router(64, 32, FnKey::Other(0x300)),
            FnTriple::router(32, 32, FnKey::Source),
        ];
        let p = plan(&triples, &registry());
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn sequential_plan_helper() {
        let p = Plan::sequential(3);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.waves, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn empty_chain() {
        let p = plan(&[], &registry());
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn ranges_overlap_zero_length_semantics() {
        // Non-empty overlapping.
        assert!(ranges_overlap((0, 10), (5, 15)));
        assert!(ranges_overlap((5, 15), (0, 10)));
        assert!(ranges_overlap((0, 10), (0, 10)));
        // Touching-but-disjoint half-open ranges.
        assert!(!ranges_overlap((0, 10), (10, 20)));
        // Empty ranges overlap nothing — even strictly inside the other.
        assert!(!ranges_overlap((5, 5), (0, 10)));
        assert!(!ranges_overlap((0, 10), (5, 5)));
        assert!(!ranges_overlap((5, 5), (5, 5)));
        assert!(!ranges_overlap((0, 0), (0, 10)));
    }

    #[test]
    fn zero_length_field_never_conflicts_at_field_level() {
        // A zero-length Source write inside another op's field must not
        // serialize: it touches no bits.
        let a =
            Footprint { read: (5, 5), write: Some((5, 5)), reads_key: false, writes_key: false };
        let b =
            Footprint { read: (0, 32), write: Some((0, 32)), reads_key: false, writes_key: false };
        assert!(!conflicts(&a, &b));
        assert!(!conflicts(&b, &a));
    }

    #[test]
    fn footprint_helper_matches_registry_ops() {
        let reg = registry();
        let t = FnTriple::router(32, 416, FnKey::Mac);
        let f = footprint(&t, &reg).expect("Mac installed in standard registry");
        assert_eq!(f.read, (32, 32 + 416));
        // F_MAC deposits its 128-bit tag immediately after the covered field.
        assert_eq!(f.write, Some((32 + 416, 32 + 416 + 128)));
        assert!(f.reads_key && !f.writes_key);
        assert!(footprint(&FnTriple::router(0, 8, FnKey::Other(0x300)), &reg).is_none());
    }

    #[test]
    fn waves_preserve_program_order_for_conflicts() {
        // Two marks on the same field must stay ordered.
        let triples =
            vec![FnTriple::router(0, 128, FnKey::Mark), FnTriple::router(0, 128, FnKey::Mark)];
        // Give them a key so they'd otherwise be runnable.
        let p = plan(&triples, &registry());
        assert_eq!(p.depth(), 2);
        assert_eq!(p.waves[0], vec![0]);
        assert_eq!(p.waves[1], vec![1]);
    }
}

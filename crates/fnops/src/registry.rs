//! The FN registry: operation key → operation module.
//!
//! §4.1: "we pre-write the required operation modules on the data plane and
//! use the operation key to match these operation modules" — this registry
//! is that match table. Its contents are what the bootstrap mechanism of
//! §2.3 advertises to hosts, and per-AS registries may differ
//! (heterogeneous configuration, §2.4).

use crate::ops;
use crate::FieldOp;
use dip_wire::triple::FnKey;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A set of installed operation modules.
///
/// ```
/// use dip_fnops::FnRegistry;
/// use dip_wire::triple::FnKey;
///
/// let mut registry = FnRegistry::standard();
/// assert!(registry.supports(FnKey::Fib));
/// assert_eq!(registry.len(), 12); // Table 1 + F_pass
///
/// // §5: services change by upgrading FNs, not hardware.
/// registry.uninstall(FnKey::Pass);
/// assert!(!registry.supports(FnKey::Pass));
/// ```
#[derive(Clone)]
pub struct FnRegistry {
    ops: BTreeMap<u16, Arc<dyn FieldOp>>,
}

impl FnRegistry {
    /// An empty registry (a DIP-capable node with no functions yet).
    pub fn empty() -> Self {
        FnRegistry { ops: BTreeMap::new() }
    }

    /// The standard registry: all eleven Table-1 operations plus `F_pass`.
    pub fn standard() -> Self {
        let mut r = FnRegistry::empty();
        r.install(Arc::new(ops::Match32Op));
        r.install(Arc::new(ops::Match128Op));
        r.install(Arc::new(ops::SourceOp));
        r.install(Arc::new(ops::FibOp));
        r.install(Arc::new(ops::PitOp));
        r.install(Arc::new(ops::ParmOp));
        r.install(Arc::new(ops::MacOp));
        r.install(Arc::new(ops::MarkOp));
        r.install(Arc::new(ops::VerOp));
        r.install(Arc::new(ops::DagOp));
        r.install(Arc::new(ops::IntentOp));
        r.install(Arc::new(ops::PassOp));
        r
    }

    /// A registry with only the given keys from the standard set — models
    /// an AS with a partial FN configuration (§2.4).
    pub fn with_keys(keys: &[FnKey]) -> Self {
        let std = FnRegistry::standard();
        let mut r = FnRegistry::empty();
        for k in keys {
            if let Some(op) = std.ops.get(&k.to_wire()) {
                r.ops.insert(k.to_wire(), Arc::clone(op));
            }
        }
        r
    }

    /// Installs (or upgrades — "the network providers can now support new
    /// services by only upgrading FNs", §5) an operation module.
    pub fn install(&mut self, op: Arc<dyn FieldOp>) {
        self.ops.insert(op.key().to_wire(), op);
    }

    /// Removes an operation module.
    pub fn uninstall(&mut self, key: FnKey) -> bool {
        self.ops.remove(&key.to_wire()).is_some()
    }

    /// Looks up the module for a key.
    pub fn get(&self, key: FnKey) -> Option<&Arc<dyn FieldOp>> {
        self.ops.get(&key.to_wire())
    }

    /// Whether a key is supported.
    pub fn supports(&self, key: FnKey) -> bool {
        self.ops.contains_key(&key.to_wire())
    }

    /// All supported keys, ascending — the payload of a bootstrap FN-offer
    /// (§2.3).
    pub fn supported_keys(&self) -> Vec<FnKey> {
        self.ops.keys().map(|&k| FnKey::from_wire(k)).collect()
    }

    /// Number of installed modules.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no modules are installed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl std::fmt::Debug for FnRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnRegistry").field("keys", &self.supported_keys()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_all_table1_keys_plus_pass() {
        let r = FnRegistry::standard();
        for k in FnKey::table1() {
            assert!(r.supports(k), "missing {k:?}");
        }
        assert!(r.supports(FnKey::Pass));
        assert_eq!(r.len(), 12);
    }

    #[test]
    fn keys_map_to_matching_modules() {
        let r = FnRegistry::standard();
        for k in FnKey::table1() {
            assert_eq!(r.get(k).unwrap().key(), k);
        }
    }

    #[test]
    fn partial_registry() {
        let r = FnRegistry::with_keys(&[FnKey::Match32, FnKey::Source]);
        assert_eq!(r.len(), 2);
        assert!(r.supports(FnKey::Match32));
        assert!(!r.supports(FnKey::Mac));
        assert_eq!(r.supported_keys(), vec![FnKey::Match32, FnKey::Source]);
    }

    #[test]
    fn uninstall_models_policy_withdrawal() {
        let mut r = FnRegistry::standard();
        assert!(r.uninstall(FnKey::Pass));
        assert!(!r.supports(FnKey::Pass));
        assert!(!r.uninstall(FnKey::Pass));
    }

    #[test]
    fn unknown_keys_unsupported() {
        let r = FnRegistry::standard();
        assert!(!r.supports(FnKey::Other(0x123)));
        assert!(r.get(FnKey::Other(0x123)).is_none());
    }

    #[test]
    fn participation_flags_cover_path_auth_ops() {
        let r = FnRegistry::standard();
        for k in [FnKey::Parm, FnKey::Mac, FnKey::Mark] {
            assert!(r.get(k).unwrap().requires_participation(), "{k:?}");
        }
        for k in [FnKey::Match32, FnKey::Fib, FnKey::Pit] {
            assert!(!r.get(k).unwrap().requires_participation(), "{k:?}");
        }
    }
}

//! # dip-fnops — the Field Operation primitive (§2.1)
//!
//! > "Each FN consists of two elements: a target field and an operation to
//! > be applied on the corresponding target field."
//!
//! This crate supplies the *operations*. Each operation module implements
//! [`FieldOp`]: given the FN triple that selected it, mutable access to the
//! packet's FN locations area, the router's forwarding state and a
//! per-packet scratch context, it performs its calculation/match and returns
//! an [`Action`] — continue, forward, deliver, or discard — exactly the
//! "modify the packet field or determine the packet fate" contract of §2.1.
//!
//! The twelve bundled modules are the eleven of Table 1 plus `F_pass`
//! (§2.4's source-label verification):
//!
//! | key | op | module |
//! |-----|----|--------|
//! | 1 | `F_32_match` | [`ops::match_addr::Match32Op`] |
//! | 2 | `F_128_match` | [`ops::match_addr::Match128Op`] |
//! | 3 | `F_source` | [`ops::source::SourceOp`] |
//! | 4 | `F_FIB` | [`ops::fib::FibOp`] |
//! | 5 | `F_PIT` | [`ops::pit::PitOp`] |
//! | 6 | `F_parm` | [`ops::parm::ParmOp`] |
//! | 7 | `F_MAC` | [`ops::mac_op::MacOp`] |
//! | 8 | `F_mark` | [`ops::mark::MarkOp`] |
//! | 9 | `F_ver` | [`ops::ver::VerOp`] |
//! | 10 | `F_DAG` | [`ops::dag::DagOp`] |
//! | 11 | `F_intent` | [`ops::intent::IntentOp`] |
//! | 12 | `F_pass` | [`ops::pass::PassOp`] |
//!
//! [`registry::FnRegistry`] maps operation keys to modules (the bootstrap
//! mechanism of §2.3 advertises its contents), and [`parallel`] implements
//! the modular-parallelism planner behind the packet parameter's parallel
//! flag (§2.2).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod cost;
pub mod ops;
pub mod parallel;
pub mod registry;

pub use context::{Action, DropReason, PacketCtx, RouterState};
pub use cost::OpCost;
pub use registry::FnRegistry;

use dip_wire::triple::FnTriple;

/// A Field Operation module: the functional half of the FN primitive.
///
/// Implementations must be pure with respect to everything except the
/// explicitly passed state: the same `(triple, locations, state, ctx)`
/// produces the same result, which is what lets the planner reorder
/// non-conflicting operations.
pub trait FieldOp: Send + Sync {
    /// The operation key this module serves.
    fn key(&self) -> dip_wire::triple::FnKey;

    /// Executes the operation on the target field selected by `triple`.
    ///
    /// `ctx.locations` is the packet's FN locations area; the target field
    /// is the bit range `[triple.field_loc, triple.field_loc +
    /// triple.field_len)` within it.
    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action;

    /// Hardware cost of one invocation on a field of `field_bits` bits, for
    /// the PISA pipeline timing model (§4.1 / Figure 2).
    fn cost(&self, field_bits: u16) -> OpCost;

    /// Whether this operation, when unsupported by an AS, requires the
    /// source to be notified rather than silently skipped (§2.4: "if this
    /// FN requires all on-path ASes to participate ... the router should
    /// return an FN unsupported message").
    fn requires_participation(&self) -> bool {
        false
    }

    /// The bit range this operation *writes* in the locations area, given
    /// its triple, or `None` for read-only operations. Used by the parallel
    /// planner for conflict analysis.
    fn write_range(&self, _triple: &FnTriple) -> Option<(usize, usize)> {
        None
    }

    /// Whether this operation reads the per-packet dynamic-key slot.
    fn reads_dynamic_key(&self) -> bool {
        false
    }

    /// Whether this operation writes the per-packet dynamic-key slot.
    fn writes_dynamic_key(&self) -> bool {
        false
    }

    /// Whether this operation's only job is to *publish* a parsed structure
    /// into the per-packet scratch context (e.g. `F_DAG` parsing the packet's
    /// DAG into `ctx.dag`) without touching router tables, the packet, or the
    /// verdict. Such a hop is eliminable when its immediate consumer re-parses
    /// the same span on a scratch miss (see
    /// [`consumes_parsed_dag_with_fallback`](FieldOp::consumes_parsed_dag_with_fallback)).
    fn writes_parsed_dag(&self) -> bool {
        false
    }

    /// Whether this operation consumes the scratch DAG slot and, when it is
    /// empty, falls back to parsing its *own* target span with semantics
    /// identical to the publisher (same decode, same malformed-field drop).
    /// This is the contract that makes `F_DAG → F_intent` elimination an
    /// exact rewrite when — and only when — the two triples select the same
    /// span.
    fn consumes_parsed_dag_with_fallback(&self) -> bool {
        false
    }

    /// Whether, for `triple`, `execute` always returns [`Action::Continue`]
    /// provided the target field is in bounds (which admission's structural
    /// pass and `parse_packet` both guarantee). Operations that can drop,
    /// forward, or deliver must return `false`; dipopt only dead-write
    /// eliminates hops that are infallible in this sense.
    fn infallible_for(&self, _triple: &FnTriple) -> bool {
        false
    }

    /// Whether per-packet-invariant setup of this operation can be hoisted
    /// to once per compiled chain via [`hoist`](FieldOp::hoist).
    fn hoistable(&self) -> bool {
        false
    }

    /// Precomputes the packet-invariant part of this operation from router
    /// state (e.g. the OPT key schedule from `state.local_secret`). Returns
    /// `None` when nothing is hoistable for this router. The result is cached
    /// on the compiled chain, so it must stay valid for as long as the state
    /// it was derived from (the router's secrets) is unchanged.
    fn hoist(&self, _state: &RouterState) -> Option<HoistState> {
        None
    }

    /// Executes with previously hoisted state; must be byte-identical to
    /// [`execute`](FieldOp::execute). The default ignores the hoist.
    fn execute_hoisted(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
        _hoisted: &HoistState,
    ) -> Action {
        self.execute(triple, state, ctx)
    }

    /// Hardware cost of one invocation when the hoisted setup has already
    /// run — the per-packet residue. Defaults to the full cost.
    fn hoisted_cost(&self, field_bits: u16) -> OpCost {
        self.cost(field_bits)
    }
}

/// Packet-invariant state hoisted out of the per-packet path by dipopt,
/// computed once per compiled chain by [`FieldOp::hoist`].
#[derive(Debug, Clone)]
pub enum HoistState {
    /// A precomputed OPT session-key schedule (`F_parm`).
    SessionKdf(dip_crypto::SessionKdf),
}

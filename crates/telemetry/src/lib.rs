//! Zero-dependency metrics substrate for the DIP workspace.
//!
//! Every layer of the reproduction — the batched dataplane, the Algorithm-1
//! router core, the forwarding tables and the discrete-event simulator —
//! used to self-count with private structs and enums, so a packet's fate
//! could not be explained across the shared L3 core the paper is about.
//! This crate unifies that accounting:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free atomic metric
//!   primitives, shared across threads as `Arc`s;
//! * [`Registry`] — a named, labeled collection of metrics rendering both
//!   Prometheus text exposition ([`Registry::render_prometheus`]) and a
//!   flat [`Snapshot`] whose [`Snapshot::to_json`] is one
//!   `dip_bench`-style JSON line;
//! * [`DropReason`] / [`PacketOutcome`] — the single workspace-wide
//!   taxonomy of what happened to a packet (forwarded / consumed /
//!   dropped-with-reason), replacing the per-crate drop enums;
//! * [`OutcomeCounters`] — the canonical per-entity (worker, router,
//!   sim node) counter set over that taxonomy, with the invariant that
//!   `forwarded + consumed + Σ per-reason drops == packets accounted`.
//!
//! The crate has **no dependencies** (not even on `dip-wire`), so any
//! crate in the workspace can use it without cycles.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod outcome;
mod registry;

pub use metrics::{Counter, Gauge, Histogram};
pub use outcome::{DropReason, OutcomeCounters, PacketOutcome};
pub use registry::{Registry, Sample, Snapshot};

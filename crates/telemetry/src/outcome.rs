//! The workspace-wide packet outcome taxonomy.
//!
//! Every packet that enters any DIP component ends in exactly one of
//! three states — forwarded, consumed locally, or dropped for a reason —
//! and every layer (dataplane rings, the Algorithm-1 core, the simulator)
//! accounts against the same [`DropReason`] enum. This is the single
//! definition; `dip_fnops` re-exports it so existing `dip_fnops::DropReason`
//! paths keep working.

use crate::metrics::Counter;
use crate::registry::Registry;
use std::sync::Arc;

/// Why a packet was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No FIB entry matched the destination / name.
    NoRoute,
    /// Data arrived with no pending interest (§3: "discards the packet").
    PitMiss,
    /// Data arrived for an interest whose PIT entry had already aged out
    /// under virtual time — the request existed but lapsed mid-flight
    /// (e.g. during a partition window). Distinct from [`PitMiss`]
    /// (never requested) so disruption scenarios can tell "too late"
    /// from "unsolicited".
    ///
    /// [`PitMiss`]: DropReason::PitMiss
    PitExpired,
    /// Duplicate interest nonce (loop suppression).
    DuplicateInterest,
    /// PIT capacity exhausted (§2.4 state budget).
    StateBudgetExhausted,
    /// An authentication tag failed verification.
    AuthenticationFailed,
    /// A MAC/mark operation ran before `F_parm` provided a key.
    MissingDynamicKey,
    /// A field could not be parsed (bad DAG, short field, ...).
    MalformedField,
    /// Hop limit reached zero.
    HopLimitExceeded,
    /// DAG navigation found no routable node on any fallback.
    DagUnroutable,
    /// A source label failed `F_pass` verification.
    BadSourceLabel,
    /// A policing operation (e.g. a NetFence-style rate limiter) dropped
    /// the packet.
    RateLimited,
    /// The per-packet processing budget was exceeded (§2.4).
    ProcessingBudgetExceeded,
    /// An FN requiring participation is not supported here (§2.4).
    UnsupportedFn,
    /// Static admission (`dipcheck`) refused the packet's FN program
    /// before execution — a dataplane shard never runs a chain with
    /// error-severity diagnostics.
    ProgramRejected,
    /// An ingress queue (SPSC ring) was full under drop backpressure —
    /// the packet never reached a worker.
    QueueFull,
}

impl DropReason {
    /// Every reason, in stable order ([`DropReason::index`] indexes it).
    pub const ALL: [DropReason; 16] = [
        DropReason::NoRoute,
        DropReason::PitMiss,
        DropReason::PitExpired,
        DropReason::DuplicateInterest,
        DropReason::StateBudgetExhausted,
        DropReason::AuthenticationFailed,
        DropReason::MissingDynamicKey,
        DropReason::MalformedField,
        DropReason::HopLimitExceeded,
        DropReason::DagUnroutable,
        DropReason::BadSourceLabel,
        DropReason::RateLimited,
        DropReason::ProcessingBudgetExceeded,
        DropReason::UnsupportedFn,
        DropReason::ProgramRejected,
        DropReason::QueueFull,
    ];

    /// The snake_case metric label for this reason.
    pub fn as_str(&self) -> &'static str {
        match self {
            DropReason::NoRoute => "no_route",
            DropReason::PitMiss => "pit_miss",
            DropReason::PitExpired => "pit_expired",
            DropReason::DuplicateInterest => "duplicate_interest",
            DropReason::StateBudgetExhausted => "state_budget_exhausted",
            DropReason::AuthenticationFailed => "authentication_failed",
            DropReason::MissingDynamicKey => "missing_dynamic_key",
            DropReason::MalformedField => "malformed_field",
            DropReason::HopLimitExceeded => "hop_limit_exceeded",
            DropReason::DagUnroutable => "dag_unroutable",
            DropReason::BadSourceLabel => "bad_source_label",
            DropReason::RateLimited => "rate_limited",
            DropReason::ProcessingBudgetExceeded => "processing_budget_exceeded",
            DropReason::UnsupportedFn => "unsupported_fn",
            DropReason::ProgramRejected => "program_rejected",
            DropReason::QueueFull => "queue_full",
        }
    }

    /// Position of this reason in [`DropReason::ALL`].
    pub fn index(&self) -> usize {
        DropReason::ALL.iter().position(|r| r == self).expect("every reason is in ALL")
    }
}

/// What ultimately happened to one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Sent onward on one or more egress ports.
    Forwarded,
    /// Terminated locally without error (delivered, absorbed into a PIT
    /// entry, answered from a cache, or turned into a control reply).
    Consumed,
    /// Discarded, with the reason.
    Dropped(DropReason),
}

impl PacketOutcome {
    /// The metric label for the outcome class (`forwarded` / `consumed`
    /// / `dropped`).
    pub fn as_str(&self) -> &'static str {
        match self {
            PacketOutcome::Forwarded => "forwarded",
            PacketOutcome::Consumed => "consumed",
            PacketOutcome::Dropped(_) => "dropped",
        }
    }
}

/// The canonical per-entity counter set over the outcome taxonomy.
///
/// Registers `dip_packets_total{outcome=...}` (one instance per outcome
/// class) and `dip_drops_total{reason=...}` (one instance per
/// [`DropReason`]) under the caller's extra labels (`worker=3`,
/// `node=router-0`, ...). [`OutcomeCounters::record`] maintains the
/// accounting invariant the determinism test asserts:
///
/// ```text
/// packets_total{forwarded} + packets_total{consumed} + drops_total{*}
///     == packets accounted
/// ```
///
/// A drop increments `drops_total{reason}` and `packets_total{dropped}`;
/// queue drops counted directly on a ring's [`Counter`] (which *is* the
/// `reason=queue_full` instance) bump only `drops_total`, because those
/// packets never reached the entity's `packets_total` stage.
#[derive(Debug, Clone)]
pub struct OutcomeCounters {
    forwarded: Arc<Counter>,
    consumed: Arc<Counter>,
    dropped: Arc<Counter>,
    drops: Vec<Arc<Counter>>,
}

impl OutcomeCounters {
    /// Registers the counter set in `registry` under `labels`.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        fn with<'a>(
            labels: &[(&'a str, &'a str)],
            extra: (&'a str, &'a str),
        ) -> Vec<(&'a str, &'a str)> {
            let mut all = labels.to_vec();
            all.push(extra);
            all
        }
        let packets_help = "Packets accounted by final outcome class";
        let drops_help = "Packets dropped by reason";
        OutcomeCounters {
            forwarded: registry.counter(
                "dip_packets_total",
                packets_help,
                &with(labels, ("outcome", "forwarded")),
            ),
            consumed: registry.counter(
                "dip_packets_total",
                packets_help,
                &with(labels, ("outcome", "consumed")),
            ),
            dropped: registry.counter(
                "dip_packets_total",
                packets_help,
                &with(labels, ("outcome", "dropped")),
            ),
            drops: DropReason::ALL
                .iter()
                .map(|r| {
                    registry.counter(
                        "dip_drops_total",
                        drops_help,
                        &with(labels, ("reason", r.as_str())),
                    )
                })
                .collect(),
        }
    }

    /// Records one packet's outcome.
    pub fn record(&self, outcome: PacketOutcome) {
        match outcome {
            PacketOutcome::Forwarded => self.forwarded.inc(),
            PacketOutcome::Consumed => self.consumed.inc(),
            PacketOutcome::Dropped(reason) => {
                self.dropped.inc();
                self.drops[reason.index()].inc();
            }
        }
    }

    /// The `dip_drops_total{reason}` counter — e.g. to hand the
    /// `QueueFull` instance to an SPSC ring so ring drops land in the
    /// same ledger with no double counting.
    pub fn drop_counter(&self, reason: DropReason) -> Arc<Counter> {
        Arc::clone(&self.drops[reason.index()])
    }

    /// Packets forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.get()
    }

    /// Packets consumed locally.
    pub fn consumed(&self) -> u64 {
        self.consumed.get()
    }

    /// Packets dropped across all reasons (including direct counts on
    /// [`OutcomeCounters::drop_counter`] handles).
    pub fn dropped(&self) -> u64 {
        self.drops.iter().map(|c| c.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reason_has_a_unique_label_and_index() {
        let mut labels: Vec<&str> = DropReason::ALL.iter().map(|r| r.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DropReason::ALL.len());
        for (i, r) in DropReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn record_keeps_the_accounting_invariant() {
        let registry = Registry::new();
        let oc = OutcomeCounters::register(&registry, &[("worker", "0")]);
        oc.record(PacketOutcome::Forwarded);
        oc.record(PacketOutcome::Forwarded);
        oc.record(PacketOutcome::Consumed);
        oc.record(PacketOutcome::Dropped(DropReason::NoRoute));
        oc.record(PacketOutcome::Dropped(DropReason::PitMiss));
        // A ring counting directly on the queue_full handle.
        oc.drop_counter(DropReason::QueueFull).inc();

        assert_eq!(oc.forwarded(), 2);
        assert_eq!(oc.consumed(), 1);
        assert_eq!(oc.dropped(), 3);

        let snap = registry.snapshot();
        let forwarded = snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]);
        let consumed = snap.sum_where("dip_packets_total", &[("outcome", "consumed")]);
        let drops = snap.get("dip_drops_total");
        assert_eq!(forwarded + consumed + drops, 6, "every packet accounted exactly once");
        assert_eq!(snap.sum_where("dip_drops_total", &[("reason", "queue_full")]), 1);
    }

    #[test]
    fn same_labels_share_instances() {
        let registry = Registry::new();
        let a = OutcomeCounters::register(&registry, &[("node", "7")]);
        let b = OutcomeCounters::register(&registry, &[("node", "7")]);
        a.record(PacketOutcome::Forwarded);
        assert_eq!(b.forwarded(), 1);
    }
}

//! The three metric primitives: counter, gauge, fixed-bucket histogram.
//!
//! All three are plain atomics with `Relaxed` ordering — metrics are
//! monotone evidence, not synchronization — so incrementing one on the
//! dataplane hot path costs a single uncontended atomic add.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A value that can go up and down (occupancy, table size).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A fixed-bucket histogram of `u64` observations (latencies in
/// nanoseconds, batch sizes, packet lengths).
///
/// Buckets are defined by their inclusive upper bounds; an observation
/// lands in the first bucket whose bound is `>= value`, or in the
/// implicit `+Inf` overflow bucket. Bounds are fixed at construction so
/// `observe` is a binary search plus one atomic add.
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (sorted and
    /// deduplicated; an empty slice leaves only the `+Inf` bucket).
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, sum: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (`sum / count`), `0.0` when empty. Exact — unlike
    /// [`Histogram::quantile`] it uses the true sum, not bucket bounds —
    /// so reports like the scaling bench's mean batch fill carry no
    /// bucketing error.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The configured bucket upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, cumulative (Prometheus `le` semantics): element
    /// `i` counts observations `<= bounds[i]`; the final element equals
    /// [`Histogram::count`] (the `+Inf` bucket).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket holding the target rank — the same estimator
    /// Prometheus' `histogram_quantile` uses, so the worst-case relative
    /// error is bounded by the bucket's relative width (for the log-spaced
    /// bounds the workload harness registers, `ratio - 1`).
    ///
    /// Edge behavior, pinned by tests: an empty histogram estimates `0`;
    /// a rank landing in the `+Inf` overflow bucket clamps to the highest
    /// finite bound; a histogram with no finite bounds falls back to the
    /// mean (`sum / count`).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        if self.bounds.is_empty() {
            return self.sum() / count;
        }
        // 1-based rank of the target observation.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let cumulative = self.cumulative_buckets();
        // First bucket whose cumulative count reaches the rank.
        let idx = cumulative.partition_point(|&c| c < rank);
        if idx >= self.bounds.len() {
            return self.bounds[self.bounds.len() - 1];
        }
        let hi = self.bounds[idx];
        let lo = if idx == 0 { 0 } else { self.bounds[idx - 1] };
        let below = if idx == 0 { 0 } else { cumulative[idx - 1] };
        let in_bucket = cumulative[idx] - below;
        let frac = (rank - below) as f64 / in_bucket as f64;
        lo + ((hi - lo) as f64 * frac).round() as u64
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("bounds", &self.bounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_is_exact() {
        let h = Histogram::new(&[1, 10, 100]);
        assert_eq!(h.mean(), 0.0, "empty histogram has zero mean");
        h.observe(3);
        h.observe(7);
        h.observe(50);
        assert!((h.mean() - 20.0).abs() < 1e-12, "mean uses the true sum, not bucket bounds");
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.add(5);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // <= 10
        h.observe(10); // <= 10 (inclusive)
        h.observe(11); // <= 100
        h.observe(1000); // +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5 + 10 + 11 + 1000);
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4]);
    }

    #[test]
    fn histogram_sorts_and_dedups_bounds() {
        let h = Histogram::new(&[100, 10, 100]);
        assert_eq!(h.bounds(), &[10, 100]);
        let empty = Histogram::new(&[]);
        empty.observe(7);
        assert_eq!(empty.cumulative_buckets(), vec![1], "only the +Inf bucket");
    }

    /// Log-spaced bounds with ratio `2^(1/4)` from 1 to ~2^20, the shape
    /// the latency histograms use.
    fn log_bounds() -> Vec<u64> {
        let mut bounds = Vec::new();
        let mut v = 1.0f64;
        while v < (1u64 << 20) as f64 {
            bounds.push(v.round() as u64);
            v *= 2f64.powf(0.25);
        }
        bounds
    }

    /// Exact quantile of a sorted sample at the rank `quantile()` targets.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        // A deterministic heavy-tailed-ish sample: quadratic growth spread
        // over three decades, known exactly.
        let sample: Vec<u64> = (1..=5_000u64).map(|i| 50 + (i * i) / 40).collect();
        let h = Histogram::new(&log_bounds());
        for &v in &sample {
            h.observe(v);
        }
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        // Bucket ratio 2^(1/4): worst-case relative error (ratio - 1) plus
        // integer-rounding slack on the bound values.
        let max_rel = 2f64.powf(0.25) - 1.0 + 0.02;
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q) as f64;
            let exact = exact_quantile(&sorted, q) as f64;
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= max_rel,
                "q={q}: estimate {est} vs exact {exact}, relative error {rel:.4} > {max_rel:.4}"
            );
        }
    }

    #[test]
    fn quantile_is_exact_at_bucket_boundaries() {
        // All mass exactly on a bound: the top of the bucket is the exact
        // answer for every quantile at or above the mass.
        let h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..50 {
            h.observe(100);
        }
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.99), 100, "within (10,100], rank 50 of 50 → top of bucket");
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        // Empty histogram → 0.
        let h = Histogram::new(&[10, 100]);
        assert_eq!(h.quantile(0.5), 0);
        // Overflow bucket clamps to the highest finite bound.
        h.observe(1_000_000);
        assert_eq!(h.quantile(0.99), 100);
        // No finite bounds → mean fallback.
        let inf_only = Histogram::new(&[]);
        inf_only.observe(30);
        inf_only.observe(50);
        assert_eq!(inf_only.quantile(0.9), 40);
        // Out-of-range q clamps.
        let one = Histogram::new(&[8]);
        one.observe(8);
        assert_eq!(one.quantile(-1.0), one.quantile(0.0));
        assert_eq!(one.quantile(2.0), 8);
    }

    #[test]
    fn quantile_interpolates_linearly_within_a_bucket() {
        // 100 observations uniformly inside (0, 100]: the estimator assumes
        // uniform mass, so q=0.25 → 25, q=0.75 → 75 exactly.
        let h = Histogram::new(&[100, 1000]);
        for i in 1..=100 {
            h.observe(i);
        }
        assert_eq!(h.quantile(0.25), 25);
        assert_eq!(h.quantile(0.75), 75);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}

//! The three metric primitives: counter, gauge, fixed-bucket histogram.
//!
//! All three are plain atomics with `Relaxed` ordering — metrics are
//! monotone evidence, not synchronization — so incrementing one on the
//! dataplane hot path costs a single uncontended atomic add.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A value that can go up and down (occupancy, table size).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A fixed-bucket histogram of `u64` observations (latencies in
/// nanoseconds, batch sizes, packet lengths).
///
/// Buckets are defined by their inclusive upper bounds; an observation
/// lands in the first bucket whose bound is `>= value`, or in the
/// implicit `+Inf` overflow bucket. Bounds are fixed at construction so
/// `observe` is a binary search plus one atomic add.
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (sorted and
    /// deduplicated; an empty slice leaves only the `+Inf` bucket).
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, sum: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured bucket upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, cumulative (Prometheus `le` semantics): element
    /// `i` counts observations `<= bounds[i]`; the final element equals
    /// [`Histogram::count`] (the `+Inf` bucket).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0;
        self.buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("bounds", &self.bounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.add(5);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // <= 10
        h.observe(10); // <= 10 (inclusive)
        h.observe(11); // <= 100
        h.observe(1000); // +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5 + 10 + 11 + 1000);
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4]);
    }

    #[test]
    fn histogram_sorts_and_dedups_bounds() {
        let h = Histogram::new(&[100, 10, 100]);
        assert_eq!(h.bounds(), &[10, 100]);
        let empty = Histogram::new(&[]);
        empty.observe(7);
        assert_eq!(empty.cumulative_buckets(), vec![1], "only the +Inf bucket");
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}

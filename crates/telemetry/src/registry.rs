//! The metric registry: named, labeled metric families with two render
//! targets — Prometheus text exposition and a flat JSON-line snapshot.

use crate::metrics::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn prometheus(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Instance {
    /// Sorted by key at registration: label order never distinguishes
    /// instances.
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    instances: Vec<Instance>,
}

/// A named, labeled collection of metrics.
///
/// Cloning is cheap and shares the underlying store, so one registry can
/// be handed to every worker/router/node that contributes metrics.
/// Registration (`counter`/`gauge`/`histogram`) is get-or-create: asking
/// for the same (name, labels) twice returns the same `Arc`, so wiring
/// code never has to thread handles around. Registration takes a lock;
/// the returned handles are lock-free.
#[derive(Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<Vec<Family>>>,
}

fn canonical(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: F,
        extract: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Handle,
        G: Fn(&Handle) -> Option<Arc<T>>,
    {
        let labels = canonical(labels);
        let mut families = self.families.lock().expect("telemetry registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(f.kind == kind, "metric {name} registered as {:?} and {kind:?}", f.kind);
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    instances: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.instances.iter().find(|i| i.labels == labels) {
            return extract(&existing.handle).expect("kind checked above");
        }
        let handle = make();
        let out = extract(&handle).expect("freshly made handle matches kind");
        family.instances.push(Instance { labels, handle });
        out
    }

    /// The counter `name{labels}`, created at zero on first request.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            Kind::Counter,
            || Handle::Counter(Arc::new(Counter::new())),
            |h| match h {
                Handle::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The gauge `name{labels}`, created at zero on first request.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            Kind::Gauge,
            || Handle::Gauge(Arc::new(Gauge::new())),
            |h| match h {
                Handle::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The histogram `name{labels}`, created empty over `bounds` on first
    /// request (later requests reuse the first bounds).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            Kind::Histogram,
            || Handle::Histogram(Arc::new(Histogram::new(bounds))),
            |h| match h {
                Handle::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders the whole registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("telemetry registry poisoned");
        let mut out = String::new();
        for f in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.prometheus()));
            for i in &f.instances {
                match &i.handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            label_block(&i.labels, None),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            label_block(&i.labels, None),
                            g.get()
                        ));
                    }
                    Handle::Histogram(h) => {
                        let cumulative = h.cumulative_buckets();
                        for (bound, cum) in h.bounds().iter().zip(&cumulative) {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                label_block(&i.labels, Some(&bound.to_string())),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            label_block(&i.labels, Some("+Inf")),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            label_block(&i.labels, None),
                            h.sum()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            label_block(&i.labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// A point-in-time flat view of every metric.
    ///
    /// Counters and gauges yield one sample each; histograms yield
    /// `name_count` and `name_sum` plus the interpolated quantile
    /// estimates `name_p50` / `name_p90` / `name_p99` / `name_p999`
    /// ([`Histogram::quantile`]), so consumers (`dipload`, the benches)
    /// read percentiles instead of recomputing them from buckets (full
    /// bucket detail stays in the Prometheus rendering). Gauges clamp at
    /// zero — every gauge in this workspace (occupancy, capacity) is
    /// non-negative.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("telemetry registry poisoned");
        let mut samples = Vec::new();
        for f in families.iter() {
            for i in &f.instances {
                match &i.handle {
                    Handle::Counter(c) => samples.push(Sample {
                        name: f.name.clone(),
                        labels: i.labels.clone(),
                        value: c.get(),
                    }),
                    Handle::Gauge(g) => samples.push(Sample {
                        name: f.name.clone(),
                        labels: i.labels.clone(),
                        value: g.get().max(0) as u64,
                    }),
                    Handle::Histogram(h) => {
                        samples.push(Sample {
                            name: format!("{}_count", f.name),
                            labels: i.labels.clone(),
                            value: h.count(),
                        });
                        samples.push(Sample {
                            name: format!("{}_sum", f.name),
                            labels: i.labels.clone(),
                            value: h.sum(),
                        });
                        for (suffix, q) in
                            [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)]
                        {
                            samples.push(Sample {
                                name: format!("{}_{}", f.name, suffix),
                                labels: i.labels.clone(),
                                value: h.quantile(q),
                            });
                        }
                    }
                }
            }
        }
        Snapshot { samples }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("telemetry registry poisoned");
        f.debug_struct("Registry").field("families", &families.len()).finish()
    }
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// One metric value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (histograms appear as `name_count` / `name_sum`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: u64,
}

impl Sample {
    /// The flat key `name{k=v,...}` (or just `name` without labels) used
    /// by [`Snapshot::to_json`].
    pub fn key(&self) -> String {
        let mut key = self.name.clone();
        if !self.labels.is_empty() {
            key.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    key.push(',');
                }
                key.push_str(&format!("{k}={v}"));
            }
            key.push('}');
        }
        key
    }
}

/// A point-in-time flat view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Every metric instance, in registration order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Sums every instance of `name` across all label sets.
    pub fn get(&self, name: &str) -> u64 {
        self.sum_where(name, &[])
    }

    /// Sums the instances of `name` whose labels include every `(k, v)`
    /// pair in `labels`.
    pub fn sum_where(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter(|s| {
                labels.iter().all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
            .sum()
    }

    /// Renders the snapshot as one JSON object:
    /// `{"dip_packets_total{outcome=forwarded,worker=0}":123,...}` —
    /// the same shape the `dip_bench` JSON-lines tooling consumes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", s.key(), s.value));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("hits", "hits", &[("worker", "0")]);
        // Label order must not matter.
        let b = r.counter("hits", "hits", &[("worker", "0")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        // Different labels: a distinct instance.
        let c = r.counter("hits", "hits", &[("worker", "1")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let r = Registry::new();
        let a = r.counter("x", "x", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x", "x", &[("a", "1"), ("b", "2")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "m", &[]);
        r.gauge("m", "m", &[]);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("dip_packets_total", "Packets seen", &[("worker", "0")]).add(7);
        r.gauge("dip_ring_occupancy", "Queued", &[]).set(3);
        let h = r.histogram("dip_batch_size", "Batch sizes", &[], &[1, 8]);
        h.observe(1);
        h.observe(5);
        h.observe(64);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE dip_packets_total counter"));
        assert!(text.contains("dip_packets_total{worker=\"0\"} 7"));
        assert!(text.contains("dip_ring_occupancy 3"));
        assert!(text.contains("dip_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("dip_batch_size_bucket{le=\"8\"} 2"));
        assert!(text.contains("dip_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dip_batch_size_sum 70"));
        assert!(text.contains("dip_batch_size_count 3"));
    }

    #[test]
    fn snapshot_sums_and_json() {
        let r = Registry::new();
        r.counter("drops", "d", &[("reason", "no_route")]).add(2);
        r.counter("drops", "d", &[("reason", "pit_miss")]).add(3);
        r.histogram("lat", "l", &[], &[10]).observe(4);
        let snap = r.snapshot();
        assert_eq!(snap.get("drops"), 5);
        assert_eq!(snap.sum_where("drops", &[("reason", "pit_miss")]), 3);
        assert_eq!(snap.get("lat_count"), 1);
        assert_eq!(snap.get("lat_sum"), 4);
        // Quantile estimates ride along in the flat snapshot: the single
        // observation fills bucket (0,10], so every quantile interpolates
        // to the top of that bucket.
        assert_eq!(snap.get("lat_p50"), 10);
        assert_eq!(snap.get("lat_p99"), 10);
        assert_eq!(snap.get("absent"), 0);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"drops{reason=no_route}\":2"));
        assert!(json.contains("\"lat_count\":1"));
    }

    #[test]
    fn gauge_snapshot_clamps_at_zero() {
        let r = Registry::new();
        r.gauge("g", "g", &[]).set(-5);
        assert_eq!(r.snapshot().get("g"), 0);
    }
}

//! Per-principal XIA routing tables (`F_DAG` / `F_intent`).
//!
//! An XIA router keeps one routing table per principal type it understands
//! (AD, HID, SID, CID, ...). `F_intent` asks, for each candidate node of the
//! address DAG in priority order: *can I route on this XID?* — a hit on the
//! intent forwards directly; otherwise fallback edges are tried (§3, XIA
//! \[12\]). A router that does not understand a principal type simply has no
//! table for it, which is exactly XIA's evolvability story.

use crate::Port;
use dip_wire::xia::{Xid, XidType};
use std::collections::HashMap;

/// Routing decision for an XID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XiaNextHop {
    /// The XID names this node (or a locally attached service/content):
    /// deliver locally.
    Local,
    /// Forward on a port.
    Port(Port),
}

/// Routing state for an XIA-capable router.
#[derive(Debug, Clone, Default)]
pub struct XiaRouteTable {
    tables: HashMap<u32, HashMap<Xid, XiaNextHop>>,
}

impl XiaRouteTable {
    /// An empty table set.
    pub fn new() -> Self {
        XiaRouteTable::default()
    }

    /// Installs a route for `xid` of `ty`.
    pub fn add_route(&mut self, ty: XidType, xid: Xid, next_hop: XiaNextHop) {
        self.tables.entry(ty.to_wire()).or_default().insert(xid, next_hop);
    }

    /// Removes a route.
    pub fn remove_route(&mut self, ty: XidType, xid: &Xid) -> Option<XiaNextHop> {
        self.tables.get_mut(&ty.to_wire())?.remove(xid)
    }

    /// Whether this router understands principal type `ty` at all.
    pub fn supports_type(&self, ty: XidType) -> bool {
        self.tables.contains_key(&ty.to_wire())
    }

    /// Declares a principal type supported even before any route exists
    /// (so lookups distinguish "unknown type" from "no route").
    pub fn declare_type(&mut self, ty: XidType) {
        self.tables.entry(ty.to_wire()).or_default();
    }

    /// Looks up an XID.
    pub fn lookup(&self, ty: XidType, xid: &Xid) -> Option<XiaNextHop> {
        self.tables.get(&ty.to_wire())?.get(xid).copied()
    }

    /// Every installed route as `(wire type, xid, next_hop)`, in
    /// deterministic order (export path for compiled-table seeding).
    pub fn routes(&self) -> Vec<(u32, Xid, XiaNextHop)> {
        let mut out: Vec<_> = self
            .tables
            .iter()
            .flat_map(|(&ty, t)| t.iter().map(move |(&xid, &nh)| (ty, xid, nh)))
            .collect();
        out.sort_unstable_by_key(|&(ty, xid, _)| (ty, xid));
        out
    }

    /// Every declared principal type (wire form), in deterministic
    /// order — includes types declared without routes.
    pub fn types(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.tables.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Total number of routes across all principal tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Whether no routes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xid(s: &str) -> Xid {
        Xid::derive(s.as_bytes())
    }

    #[test]
    fn add_lookup_remove() {
        let mut t = XiaRouteTable::new();
        t.add_route(XidType::Ad, xid("ad1"), XiaNextHop::Port(2));
        assert_eq!(t.lookup(XidType::Ad, &xid("ad1")), Some(XiaNextHop::Port(2)));
        assert_eq!(t.lookup(XidType::Ad, &xid("ad2")), None);
        assert_eq!(t.remove_route(XidType::Ad, &xid("ad1")), Some(XiaNextHop::Port(2)));
        assert!(t.is_empty());
    }

    #[test]
    fn principal_types_are_separate_namespaces() {
        let mut t = XiaRouteTable::new();
        let same_bits = xid("shared");
        t.add_route(XidType::Hid, same_bits, XiaNextHop::Local);
        assert_eq!(t.lookup(XidType::Hid, &same_bits), Some(XiaNextHop::Local));
        assert_eq!(t.lookup(XidType::Cid, &same_bits), None);
    }

    #[test]
    fn supports_type_vs_no_route() {
        let mut t = XiaRouteTable::new();
        assert!(!t.supports_type(XidType::Cid));
        t.declare_type(XidType::Cid);
        assert!(t.supports_type(XidType::Cid));
        assert_eq!(t.lookup(XidType::Cid, &xid("c")), None);
    }

    #[test]
    fn other_principal_types_roundtrip() {
        let mut t = XiaRouteTable::new();
        let ty = XidType::Other(0x77);
        t.add_route(ty, xid("future"), XiaNextHop::Port(9));
        assert_eq!(t.lookup(ty, &xid("future")), Some(XiaNextHop::Port(9)));
        assert_eq!(t.len(), 1);
    }
}

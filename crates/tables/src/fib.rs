//! Forwarding information bases for the three addressing families DIP
//! routes on: 32-bit addresses, 128-bit addresses, and content names.
//!
//! Each FIB also offers `populate_synthetic(n, seed)` — a deterministic
//! CRAM-style "large database" generator (random prefixes of realistic
//! length mixes, seeded from the in-repo [`DetRng`]) so benchmarks and
//! the workload harness exercise lookup structures at production table
//! sizes without shipping routing dumps.

use crate::bit_trie::{BitTrie, Prefix};
use crate::name_trie::NameTrie;
use crate::Port;
use dip_crypto::DetRng;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use std::collections::HashMap;

/// A routing decision stored in a FIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Egress port to forward on.
    pub port: Port,
}

impl NextHop {
    /// Shorthand constructor.
    pub fn port(port: Port) -> Self {
        NextHop { port }
    }
}

/// FIB over 32-bit addresses (`F_32_match`).
#[derive(Debug, Clone, Default)]
pub struct Ipv4Fib {
    trie: BitTrie<NextHop>,
}

impl Ipv4Fib {
    /// An empty FIB.
    pub fn new() -> Self {
        Ipv4Fib::default()
    }

    /// Installs a route for `addr/len`.
    pub fn add_route(&mut self, addr: Ipv4Addr, len: u8, next_hop: NextHop) {
        self.trie.insert(Prefix::v4(addr.to_u32(), len), next_hop);
    }

    /// Removes the route at exactly `addr/len`.
    pub fn remove_route(&mut self, addr: Ipv4Addr, len: u8) -> Option<NextHop> {
        self.trie.remove(Prefix::v4(addr.to_u32(), len))
    }

    /// Longest-prefix match.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<NextHop> {
        self.trie.lookup(Prefix::v4_host(addr.to_u32())).map(|(_, nh)| *nh)
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Lists every installed route as `(addr, prefix_len, next_hop)`.
    pub fn routes(&self) -> Vec<(Ipv4Addr, u8, NextHop)> {
        self.trie
            .entries(32)
            .into_iter()
            .map(|(p, nh)| (Ipv4Addr::from_u32((p.bits >> 96) as u32), p.len, *nh))
            .collect()
    }

    /// Installs `n` deterministic synthetic routes: random prefixes of
    /// length 8..=28 (the realistic BGP-table band) pointing at ports
    /// 1..=64. Identical `(n, seed)` always produce the identical table;
    /// colliding prefixes overwrite, so [`Ipv4Fib::len`] may end slightly
    /// below `n`.
    pub fn populate_synthetic(&mut self, n: usize, seed: u64) {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x5f32_7537_9e01_a4c1);
        for _ in 0..n {
            let len = rng.gen_range_inclusive(8, 28) as u8;
            let addr = (rng.next_u32()) & prefix_mask32(len);
            let port = rng.gen_range_inclusive(1, 64) as Port;
            self.add_route(Ipv4Addr::from_u32(addr), len, NextHop::port(port));
        }
    }
}

/// The network mask for a /`len` 32-bit prefix.
fn prefix_mask32(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// The network mask for a /`len` 128-bit prefix.
fn prefix_mask128(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len)
    }
}

/// FIB over 128-bit addresses (`F_128_match`).
#[derive(Debug, Clone, Default)]
pub struct Ipv6Fib {
    trie: BitTrie<NextHop>,
}

impl Ipv6Fib {
    /// An empty FIB.
    pub fn new() -> Self {
        Ipv6Fib::default()
    }

    /// Installs a route for `addr/len`.
    pub fn add_route(&mut self, addr: Ipv6Addr, len: u8, next_hop: NextHop) {
        self.trie.insert(Prefix::v6(addr.to_u128(), len), next_hop);
    }

    /// Removes the route at exactly `addr/len`.
    pub fn remove_route(&mut self, addr: Ipv6Addr, len: u8) -> Option<NextHop> {
        self.trie.remove(Prefix::v6(addr.to_u128(), len))
    }

    /// Longest-prefix match.
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<NextHop> {
        self.trie.lookup(Prefix::v6_host(addr.to_u128())).map(|(_, nh)| *nh)
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Lists every installed route as `(addr, prefix_len, next_hop)`.
    pub fn routes(&self) -> Vec<(Ipv6Addr, u8, NextHop)> {
        self.trie
            .entries(128)
            .into_iter()
            .map(|(p, nh)| (Ipv6Addr::from_u128(p.bits), p.len, *nh))
            .collect()
    }

    /// Installs `n` deterministic synthetic routes: random prefixes of
    /// length 16..=64 (the allocated-space band) pointing at ports 1..=64.
    /// Identical `(n, seed)` always produce the identical table.
    pub fn populate_synthetic(&mut self, n: usize, seed: u64) {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x243f_6a88_85a3_08d3);
        for _ in 0..n {
            let len = rng.gen_range_inclusive(16, 64) as u8;
            let bits = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let addr = bits & prefix_mask128(len);
            let port = rng.gen_range_inclusive(1, 64) as Port;
            self.add_route(Ipv6Addr::from_u128(addr), len, NextHop::port(port));
        }
    }
}

/// Name FIB (`F_FIB`): longest-prefix match over hierarchical names plus a
/// compact 32-bit exact-match table mirroring the DIP prototype's dataplane
/// (§4.1 "we take the 32-bit content name for the packet forwarding").
///
/// Routes registered by full name are *also* indexed by their `compact32`
/// hash so the dataplane fast path (`lookup_compact`) and the control-plane
/// path (`lookup`) stay consistent.
#[derive(Debug, Clone, Default)]
pub struct NameFib {
    trie: NameTrie<NextHop>,
    compact: HashMap<u32, NextHop>,
}

impl NameFib {
    /// An empty FIB.
    pub fn new() -> Self {
        NameFib::default()
    }

    /// Installs a route for a name prefix. The compact index stores the
    /// prefix's own hash (exact-match fast path).
    pub fn add_route(&mut self, prefix: &Name, next_hop: NextHop) {
        self.trie.insert(prefix, next_hop);
        self.compact.insert(prefix.compact32(), next_hop);
    }

    /// Removes a route.
    pub fn remove_route(&mut self, prefix: &Name) -> Option<NextHop> {
        self.compact.remove(&prefix.compact32());
        self.trie.remove(prefix)
    }

    /// Longest-prefix match on a full name.
    pub fn lookup(&self, name: &Name) -> Option<NextHop> {
        self.trie.lookup(name).map(|(_, nh)| *nh)
    }

    /// Exact match on a 32-bit compact name (the prototype's dataplane
    /// path).
    pub fn lookup_compact(&self, compact: u32) -> Option<NextHop> {
        self.compact.get(&compact).copied()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the FIB is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Lists every installed route as `(name, next_hop)`.
    pub fn routes(&self) -> Vec<(Name, NextHop)> {
        self.trie.entries().into_iter().map(|(n, nh)| (n, *nh)).collect()
    }

    /// Installs `n` deterministic synthetic name-prefix routes of depth
    /// 2..=4 under `/syn`, pointing at ports 1..=64. Identical `(n, seed)`
    /// always produce the identical table (colliding names overwrite).
    pub fn populate_synthetic(&mut self, n: usize, seed: u64) {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x1319_8a2e_0370_7344);
        for _ in 0..n {
            let depth = rng.gen_range_inclusive(2, 4);
            let mut text = String::from("/syn");
            for _ in 0..depth {
                text.push_str(&format!("/{:04x}", rng.next_u32() & 0xffff));
            }
            let port = rng.gen_range_inclusive(1, 64) as Port;
            self.add_route(&Name::parse(&text), NextHop::port(port));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_lpm() {
        let mut fib = Ipv4Fib::new();
        fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        fib.add_route(Ipv4Addr::new(10, 1, 0, 0), 16, NextHop::port(2));
        assert_eq!(fib.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(NextHop::port(2)));
        assert_eq!(fib.lookup(Ipv4Addr::new(10, 9, 2, 3)), Some(NextHop::port(1)));
        assert_eq!(fib.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.remove_route(Ipv4Addr::new(10, 1, 0, 0), 16), Some(NextHop::port(2)));
        assert_eq!(fib.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(NextHop::port(1)));
    }

    #[test]
    fn v6_lpm() {
        let mut fib = Ipv6Fib::new();
        let site = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]);
        fib.add_route(site, 16, NextHop::port(7));
        assert_eq!(
            fib.lookup(Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0x100])),
            Some(NextHop::port(7))
        );
        assert_eq!(fib.lookup(Ipv6Addr::new([0xfdab, 0, 0, 0, 0, 0, 0, 1])), None);
    }

    #[test]
    fn name_fib_both_paths_agree() {
        let mut fib = NameFib::new();
        let name = Name::parse("hotnets.org");
        fib.add_route(&name, NextHop::port(3));
        assert_eq!(fib.lookup(&name), Some(NextHop::port(3)));
        assert_eq!(fib.lookup_compact(name.compact32()), Some(NextHop::port(3)));
        assert_eq!(fib.lookup_compact(0xdead_beef), None);
    }

    #[test]
    fn name_fib_prefix_covers_children() {
        let mut fib = NameFib::new();
        fib.add_route(&Name::parse("/hotnets"), NextHop::port(1));
        assert_eq!(fib.lookup(&Name::parse("/hotnets/org/p1")), Some(NextHop::port(1)));
        // The compact path is exact-match only — children don't hash-match,
        // mirroring the prototype's 32-bit dataplane restriction.
        assert_eq!(fib.lookup_compact(Name::parse("/hotnets/org/p1").compact32()), None);
    }

    #[test]
    fn route_dumps() {
        let mut v4 = Ipv4Fib::new();
        v4.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        v4.add_route(Ipv4Addr::new(192, 168, 0, 0), 16, NextHop::port(2));
        let mut routes = v4.routes();
        routes.sort_by_key(|(a, l, _)| (a.to_u32(), *l));
        assert_eq!(
            routes,
            vec![
                (Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1)),
                (Ipv4Addr::new(192, 168, 0, 0), 16, NextHop::port(2)),
            ]
        );

        let mut v6 = Ipv6Fib::new();
        let site = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]);
        v6.add_route(site, 16, NextHop::port(7));
        assert_eq!(v6.routes(), vec![(site, 16, NextHop::port(7))]);

        let mut names = NameFib::new();
        names.add_route(&Name::parse("/a"), NextHop::port(3));
        names.add_route(&Name::parse("/a/b"), NextHop::port(4));
        let dump = names.routes();
        assert_eq!(dump.len(), 2);
        assert!(dump.contains(&(Name::parse("/a/b"), NextHop::port(4))));
    }

    #[test]
    fn synthetic_population_is_deterministic() {
        let mut a = Ipv4Fib::new();
        let mut b = Ipv4Fib::new();
        a.populate_synthetic(500, 7);
        b.populate_synthetic(500, 7);
        let (mut ra, mut rb) = (a.routes(), b.routes());
        ra.sort_by_key(|(addr, len, _)| (addr.to_u32(), *len));
        rb.sort_by_key(|(addr, len, _)| (addr.to_u32(), *len));
        assert_eq!(ra, rb);
        assert!(a.len() > 450, "few collisions at n=500: {}", a.len());

        let mut c = Ipv4Fib::new();
        c.populate_synthetic(500, 8);
        assert_ne!(a.len(), 0);
        let mut rc = c.routes();
        rc.sort_by_key(|(addr, len, _)| (addr.to_u32(), *len));
        assert_ne!(ra, rc, "different seeds give different tables");
    }

    /// The CRAM-style gate: at n = 100k synthetic routes, trie LPM must
    /// agree with a brute-force longest-match scan over the route dump on
    /// 1k random lookups.
    #[test]
    fn v4_lpm_matches_linear_scan_oracle_at_100k() {
        let mut fib = Ipv4Fib::new();
        fib.populate_synthetic(100_000, 0xC0FFEE);
        let routes = fib.routes();
        let matches = |addr: u32, p: u32, len: u8| len == 0 || (addr ^ p) >> (32 - len) == 0;
        let mut rng = dip_crypto::DetRng::seed_from_u64(0x10_0c0b);
        for _ in 0..1_000 {
            // Half the probes under a synthetic prefix (guaranteed-ish
            // hits), half uniform (mostly misses).
            let addr = if rng.gen_bool(0.5) {
                let (p, len, _) = routes[rng.gen_index(routes.len())];
                p.to_u32() | (rng.next_u32() & !prefix_mask32(len))
            } else {
                rng.next_u32()
            };
            let oracle = routes
                .iter()
                .filter(|(p, len, _)| matches(addr, p.to_u32(), *len))
                .max_by_key(|(_, len, _)| *len)
                .map(|(_, _, nh)| *nh);
            assert_eq!(fib.lookup(Ipv4Addr::from_u32(addr)), oracle, "addr {addr:#010x}");
        }
    }

    #[test]
    fn v6_lpm_matches_linear_scan_oracle() {
        let mut fib = Ipv6Fib::new();
        fib.populate_synthetic(20_000, 0xC0FFEE);
        let routes = fib.routes();
        let matches = |addr: u128, p: u128, len: u8| len == 0 || (addr ^ p) >> (128 - len) == 0;
        let mut rng = dip_crypto::DetRng::seed_from_u64(0x10_0c0c);
        for _ in 0..500 {
            let addr = if rng.gen_bool(0.5) {
                let (p, len, _) = routes[rng.gen_index(routes.len())];
                let low = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                p.to_u128() | (low & !prefix_mask128(len))
            } else {
                ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
            };
            let oracle = routes
                .iter()
                .filter(|(p, len, _)| matches(addr, p.to_u128(), *len))
                .max_by_key(|(_, len, _)| *len)
                .map(|(_, _, nh)| *nh);
            assert_eq!(fib.lookup(Ipv6Addr::from_u128(addr)), oracle, "addr {addr:#034x}");
        }
    }

    #[test]
    fn name_lpm_matches_linear_scan_oracle() {
        let mut fib = NameFib::new();
        fib.populate_synthetic(5_000, 0xC0FFEE);
        let routes = fib.routes();
        let mut rng = dip_crypto::DetRng::seed_from_u64(0x10_0c0d);
        for _ in 0..500 {
            // Probe a child of an installed prefix, or a random name.
            let name = if rng.gen_bool(0.5) {
                let p = &routes[rng.gen_index(routes.len())].0;
                p.child(format!("{:04x}", rng.next_u32() & 0xffff).as_bytes())
            } else {
                Name::parse(&format!(
                    "/syn/{:04x}/{:04x}",
                    rng.next_u32() & 0xffff,
                    rng.next_u32() & 0xffff
                ))
            };
            let oracle = routes
                .iter()
                .filter(|(p, _)| p.is_prefix_of(&name))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, nh)| *nh);
            assert_eq!(fib.lookup(&name), oracle, "name {name:?}");
        }
    }

    #[test]
    fn name_fib_removal() {
        let mut fib = NameFib::new();
        let n = Name::parse("/a");
        fib.add_route(&n, NextHop::port(1));
        assert_eq!(fib.remove_route(&n), Some(NextHop::port(1)));
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(&n), None);
        assert_eq!(fib.lookup_compact(n.compact32()), None);
    }
}

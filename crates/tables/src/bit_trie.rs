//! A binary trie for longest-prefix matching over fixed-width bit strings.
//!
//! Backs the 32-bit and 128-bit address FIBs (`F_32_match`,
//! `F_128_match`). Keys are stored left-aligned in a `u128` with an explicit
//! width so the same structure serves IPv4, IPv6, and the 32-bit compact
//! content names of the DIP prototype.

/// A prefix: the top `len` bits of `bits` (which is left-aligned within
/// `width` total bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// The key bits, left-aligned: bit 0 of the prefix is the MSB of the
    /// `width`-bit value.
    pub bits: u128,
    /// Prefix length in bits (`0..=width`).
    pub len: u8,
    /// Address family width in bits (32 or 128 here, any `1..=128` works).
    pub width: u8,
}

impl Prefix {
    /// A prefix over 32-bit keys (e.g. `Prefix::v4(0x0a000000, 8)` =
    /// `10.0.0.0/8`).
    pub fn v4(addr: u32, len: u8) -> Self {
        debug_assert!(len <= 32);
        Prefix { bits: (u128::from(addr)) << 96, len, width: 32 }
    }

    /// A prefix over 128-bit keys.
    pub fn v6(addr: u128, len: u8) -> Self {
        debug_assert!(len <= 128);
        Prefix { bits: addr, len, width: 128 }
    }

    /// The full-length key for a 32-bit address (a /32 host route).
    pub fn v4_host(addr: u32) -> Self {
        Prefix::v4(addr, 32)
    }

    /// The full-length key for a 128-bit address.
    pub fn v6_host(addr: u128) -> Self {
        Prefix::v6(addr, 128)
    }

    /// Bit `i` (0 = most significant of the key). `bits` is stored
    /// left-aligned in the u128 (v4 stores `addr << 96`), so bit 0 of any
    /// family is u128 bit 127.
    #[inline]
    fn bit(&self, i: u8) -> bool {
        debug_assert!(i < self.width);
        (self.bits >> (127 - u32::from(i))) & 1 == 1
    }
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node { value: None, children: [None, None] }
    }
}

/// Binary trie with longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct BitTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BitTrie<V> {
    fn default() -> Self {
        BitTrie { root: Node::default(), len: 0 }
    }
}

impl<V> BitTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        BitTrie::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = usize::from(prefix.bit(i));
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value at exactly `prefix`.
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len {
            let b = usize::from(prefix.bit(i));
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match of a full-width `key`, returning the matched
    /// prefix length and value.
    pub fn lookup(&self, key: Prefix) -> Option<(u8, &V)> {
        let mut best: Option<(u8, &V)> = self.root.value.as_ref().map(|v| (0, v));
        let mut node = &self.root;
        for i in 0..key.width {
            let b = usize::from(key.bit(i));
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Collects every stored `(prefix, value)` pair, in depth-first order.
    /// `width` is the address family width used to build the returned
    /// [`Prefix`]es (32 or 128).
    pub fn entries(&self, width: u8) -> Vec<(Prefix, &V)> {
        fn walk<'a, V>(
            node: &'a Node<V>,
            bits: u128,
            depth: u8,
            width: u8,
            out: &mut Vec<(Prefix, &'a V)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix { bits, len: depth, width }, v));
            }
            if depth == 128 {
                return;
            }
            for (b, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    let bit = (b as u128) << (127 - u32::from(depth));
                    walk(child, bits | bit, depth + 1, width, out);
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, 0, 0, width, &mut out);
        out
    }

    /// Exact-match lookup at `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len {
            let b = usize::from(prefix.bit(i));
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_bit_indexing_v4() {
        let p = Prefix::v4(0x8000_0001, 32);
        assert!(p.bit(0));
        assert!(!p.bit(1));
        assert!(!p.bit(30));
        assert!(p.bit(31));
    }

    #[test]
    fn prefix_bit_indexing_v6() {
        let p = Prefix::v6(1u128 << 127 | 1, 128);
        assert!(p.bit(0));
        assert!(!p.bit(64));
        assert!(p.bit(127));
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut t = BitTrie::new();
        t.insert(Prefix::v4(0x0a00_0000, 8), "ten/8");
        t.insert(Prefix::v4(0x0a01_0000, 16), "ten-one/16");
        t.insert(Prefix::v4(0x0a01_0100, 24), "ten-one-one/24");
        assert_eq!(t.lookup(Prefix::v4_host(0x0a01_0105)), Some((24, &"ten-one-one/24")));
        assert_eq!(t.lookup(Prefix::v4_host(0x0a01_0505)), Some((16, &"ten-one/16")));
        assert_eq!(t.lookup(Prefix::v4_host(0x0a05_0505)), Some((8, &"ten/8")));
        assert_eq!(t.lookup(Prefix::v4_host(0x0b00_0000)), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = BitTrie::new();
        t.insert(Prefix::v4(0, 0), "default");
        assert_eq!(t.lookup(Prefix::v4_host(0xffff_ffff)), Some((0, &"default")));
        t.insert(Prefix::v4(0xffff_ff00, 24), "specific");
        assert_eq!(t.lookup(Prefix::v4_host(0xffff_ffff)), Some((24, &"specific")));
    }

    #[test]
    fn insert_replaces_and_remove_deletes() {
        let mut t = BitTrie::new();
        assert_eq!(t.insert(Prefix::v4(0x0a00_0000, 8), 1), None);
        assert_eq!(t.insert(Prefix::v4(0x0a00_0000, 8), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(Prefix::v4(0x0a00_0000, 8)), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(Prefix::v4(0x0a00_0000, 8)), None);
        assert_eq!(t.lookup(Prefix::v4_host(0x0a01_0101)), None);
    }

    #[test]
    fn get_is_exact() {
        let mut t = BitTrie::new();
        t.insert(Prefix::v4(0x0a00_0000, 8), 1);
        assert_eq!(t.get(Prefix::v4(0x0a00_0000, 8)), Some(&1));
        assert_eq!(t.get(Prefix::v4(0x0a00_0000, 16)), None);
        assert_eq!(t.get(Prefix::v4(0x0a00_0000, 7)), None);
    }

    #[test]
    fn v6_lpm() {
        let mut t = BitTrie::new();
        let fdaa = 0xfdaa_u128 << 112;
        t.insert(Prefix::v6(fdaa, 16), "site");
        t.insert(Prefix::v6(fdaa | (1 << 64), 64), "subnet");
        assert_eq!(t.lookup(Prefix::v6_host(fdaa | (1 << 64) | 5)), Some((64, &"subnet")));
        assert_eq!(t.lookup(Prefix::v6_host(fdaa | 5)), Some((16, &"site")));
    }

    #[test]
    fn distinguishes_sibling_branches() {
        let mut t = BitTrie::new();
        t.insert(Prefix::v4(0x0000_0000, 1), "low");
        t.insert(Prefix::v4(0x8000_0000, 1), "high");
        assert_eq!(t.lookup(Prefix::v4_host(0x7fff_ffff)), Some((1, &"low")));
        assert_eq!(t.lookup(Prefix::v4_host(0x8000_0000)), Some((1, &"high")));
    }

    #[test]
    fn entries_enumerates_all_prefixes() {
        let mut t = BitTrie::new();
        t.insert(Prefix::v4(0x0a00_0000, 8), 1);
        t.insert(Prefix::v4(0x0a01_0000, 16), 2);
        t.insert(Prefix::v4(0, 0), 0);
        let entries = t.entries(32);
        assert_eq!(entries.len(), 3);
        // Every entry resolves back through get().
        for (p, v) in &entries {
            assert_eq!(t.get(*p), Some(*v));
        }
        // The /8 is present with its exact bits.
        assert!(entries
            .iter()
            .any(|(p, v)| p.len == 8 && p.bits == (0x0a00_0000u128) << 96 && **v == 1));
    }

    #[test]
    fn many_random_host_routes() {
        use std::collections::HashMap;
        let mut t = BitTrie::new();
        let mut model = HashMap::new();
        let mut x: u32 = 0x1234_5678;
        for _ in 0..2000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            t.insert(Prefix::v4_host(x), x);
            model.insert(x, x);
        }
        assert_eq!(t.len(), model.len());
        for (&k, &v) in &model {
            assert_eq!(t.lookup(Prefix::v4_host(k)), Some((32, &v)));
        }
    }
}

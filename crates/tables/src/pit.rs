//! The Pending Interest Table (`F_PIT`).
//!
//! NDN routers "record the receiving port in the PIT" when forwarding an
//! interest, and on a data packet "look up the content name in the PIT and
//! forward it to the recorded request port (match hit) or discard the
//! packet (match miss)" (§3).
//!
//! This PIT implements the behaviours a real deployment needs and the §2.4
//! security discussion requires:
//!
//! * **aggregation** — multiple faces waiting on the same name share one
//!   entry and all receive the data;
//! * **nonce-based loop suppression** — a re-seen (name, nonce) pair is
//!   reported as a duplicate;
//! * **expiry** — entries lapse after a TTL of virtual ticks;
//! * **a hard capacity** — the per-packet/router state budget that §2.4
//!   prescribes against state-exhaustion attacks (experiment E9).

use crate::{Port, Ticks};
use dip_telemetry::Counter;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Result of recording an interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PitOutcome {
    /// First interest for this name: the router must forward it upstream.
    Forward,
    /// An entry already existed; the face was merely added (aggregated) and
    /// the interest must *not* be forwarded again.
    Aggregated,
    /// Duplicate (name, nonce): a looping or replayed interest; drop it.
    DuplicateNonce,
}

/// Why an interest could not be recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PitError {
    /// The table is at capacity (§2.4 state budget).
    CapacityExhausted,
}

/// Classified result of consuming a PIT entry on a data packet.
///
/// `§3`'s "match miss" covers two situations a disruption-tolerance
/// audit must tell apart: the data was never requested here
/// ([`PitConsume::Miss`]) versus it *was* requested but the entry aged
/// out under virtual time before the data arrived
/// ([`PitConsume::Expired`] — the long-partition case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PitConsume {
    /// A live entry matched; forward the data to these faces.
    Hit(Vec<Port>),
    /// An entry existed but had lapsed; it was evicted (and counted).
    Expired,
    /// No entry for this name at all.
    Miss,
}

#[derive(Debug, Clone)]
struct PitEntry {
    faces: Vec<Port>,
    nonces: HashSet<u64>,
    expires_at: Ticks,
}

/// A pending interest table keyed by `K` (full [`dip_wire::ndn::Name`]s in
/// the library API, compact `u32` names on the prototype dataplane).
#[derive(Debug, Clone)]
pub struct Pit<K: std::hash::Hash + Eq + Clone> {
    entries: HashMap<K, PitEntry>,
    capacity: usize,
    ttl: Ticks,
    /// Expired entries removed (on lookup, revival, capacity sweep, or
    /// explicit GC). Private by default; [`Pit::set_eviction_counter`]
    /// wires it into a telemetry registry.
    evictions: Arc<Counter>,
}

impl<K: std::hash::Hash + Eq + Clone> Pit<K> {
    /// Creates a PIT with a capacity bound and per-entry TTL (virtual
    /// ticks).
    pub fn new(capacity: usize, ttl: Ticks) -> Self {
        Pit { entries: HashMap::new(), capacity, ttl, evictions: Arc::new(Counter::new()) }
    }

    /// Routes expired-entry eviction counts into `counter` (typically a
    /// `dip_pit_expired_evictions_total` instance from a telemetry
    /// registry) instead of the private default counter.
    pub fn set_eviction_counter(&mut self, counter: Arc<Counter>) {
        self.evictions = counter;
    }

    /// Expired entries evicted so far (any path: lookup, revival,
    /// at-capacity sweep, explicit [`Pit::expire`]).
    pub fn expired_evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Number of live entries (including any not yet garbage-collected).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the PIT is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records an interest for `name` arriving on `face` with `nonce` at
    /// virtual time `now`.
    pub fn record_interest(
        &mut self,
        name: K,
        face: Port,
        nonce: u64,
        now: Ticks,
    ) -> Result<PitOutcome, PitError> {
        if let Some(entry) = self.entries.get_mut(&name) {
            if entry.expires_at <= now {
                // Stale entry: evict (counted) and treat as fresh.
                self.evictions.inc();
                *entry = PitEntry {
                    faces: vec![face],
                    nonces: HashSet::from([nonce]),
                    expires_at: now + self.ttl,
                };
                return Ok(PitOutcome::Forward);
            }
            if !entry.nonces.insert(nonce) {
                return Ok(PitOutcome::DuplicateNonce);
            }
            entry.expires_at = now + self.ttl;
            if !entry.faces.contains(&face) {
                entry.faces.push(face);
            }
            return Ok(PitOutcome::Aggregated);
        }
        if self.entries.len() >= self.capacity {
            // At capacity: garbage-collect expired entries before
            // refusing — stale entries must not pin the §2.4 budget until
            // someone calls `expire()` by hand. Only *live* entries count
            // against an attacker's budget.
            if self.expire(now) == 0 {
                return Err(PitError::CapacityExhausted);
            }
        }
        self.entries.insert(
            name,
            PitEntry {
                faces: vec![face],
                nonces: HashSet::from([nonce]),
                expires_at: now + self.ttl,
            },
        );
        Ok(PitOutcome::Forward)
    }

    /// Consumes the entry for `name` on a data packet, returning the faces
    /// to forward the data to, or `None` on a PIT miss (drop the data, §3).
    ///
    /// An expired entry is a miss; it is removed eagerly (and counted as
    /// an eviction) rather than left to consume capacity.
    pub fn consume(&mut self, name: &K, now: Ticks) -> Option<Vec<Port>> {
        match self.consume_classified(name, now) {
            PitConsume::Hit(faces) => Some(faces),
            PitConsume::Expired | PitConsume::Miss => None,
        }
    }

    /// Like [`Pit::consume`] but distinguishes an aged-out entry from one
    /// that never existed, so callers can account the drop as
    /// "pit_expired" rather than "pit_miss". An expired entry is still
    /// evicted eagerly and counted.
    pub fn consume_classified(&mut self, name: &K, now: Ticks) -> PitConsume {
        match self.entries.remove(name) {
            Some(e) if e.expires_at > now => PitConsume::Hit(e.faces),
            Some(_) => {
                // Expired: evicted on lookup, reported distinctly.
                self.evictions.inc();
                PitConsume::Expired
            }
            None => PitConsume::Miss,
        }
    }

    /// Whether a live entry exists (non-consuming peek).
    pub fn contains(&self, name: &K, now: Ticks) -> bool {
        self.entries.get(name).is_some_and(|e| e.expires_at > now)
    }

    /// Garbage-collects expired entries; returns how many were removed
    /// (each one counted as an eviction).
    pub fn expire(&mut self, now: Ticks) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        let removed = before - self.entries.len();
        self.evictions.add(removed as u64);
        removed
    }

    /// Read-only iteration over every entry (diagnostics and state
    /// comparison — e.g. checking that a flow-sharded dataplane's merged
    /// PITs equal a sequential reference's). Iteration order is
    /// unspecified; callers wanting a canonical view should sort.
    pub fn iter(&self) -> impl Iterator<Item = PitEntryView<'_, K>> {
        self.entries.iter().map(|(name, e)| PitEntryView {
            name,
            faces: &e.faces,
            expires_at: e.expires_at,
            nonces: &e.nonces,
        })
    }
}

/// A read-only view of one PIT entry, yielded by [`Pit::iter`].
#[derive(Debug, Clone, Copy)]
pub struct PitEntryView<'a, K> {
    /// The pending content name.
    pub name: &'a K,
    /// Faces waiting for the data, in arrival order.
    pub faces: &'a [Port],
    /// Virtual time at which the entry lapses.
    pub expires_at: Ticks,
    nonces: &'a HashSet<u64>,
}

impl<K> PitEntryView<'_, K> {
    /// The entry's recorded interest nonces, sorted (canonical form).
    pub fn sorted_nonces(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.nonces.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

// The capacity check sweeps expired entries before refusing an insert, so
// only *live* entries can pin the §2.4 budget: an attacker cannot bypass
// the limit (live entries are never evicted early), and a victim's fresh
// interests are never blocked by garbage a lazy collector hasn't visited.

#[cfg(test)]
mod tests {
    use super::*;

    fn pit() -> Pit<u32> {
        Pit::new(4, 100)
    }

    #[test]
    fn interest_then_data_roundtrip() {
        let mut p = pit();
        assert_eq!(p.record_interest(42, 3, 1, 0), Ok(PitOutcome::Forward));
        assert_eq!(p.consume(&42, 50), Some(vec![3]));
        // Consumed: a second data packet misses.
        assert_eq!(p.consume(&42, 51), None);
    }

    #[test]
    fn aggregation_collects_faces() {
        let mut p = pit();
        assert_eq!(p.record_interest(42, 3, 1, 0), Ok(PitOutcome::Forward));
        assert_eq!(p.record_interest(42, 7, 2, 10), Ok(PitOutcome::Aggregated));
        // Same face, new nonce: aggregated but face not duplicated.
        assert_eq!(p.record_interest(42, 3, 3, 20), Ok(PitOutcome::Aggregated));
        assert_eq!(p.consume(&42, 50), Some(vec![3, 7]));
    }

    #[test]
    fn duplicate_nonce_detected() {
        let mut p = pit();
        p.record_interest(42, 3, 99, 0).unwrap();
        assert_eq!(p.record_interest(42, 5, 99, 1), Ok(PitOutcome::DuplicateNonce));
        // The duplicate must not have added the face.
        assert_eq!(p.consume(&42, 50), Some(vec![3]));
    }

    #[test]
    fn expiry_makes_miss() {
        let mut p = pit();
        p.record_interest(42, 3, 1, 0).unwrap();
        assert!(p.contains(&42, 99));
        assert!(!p.contains(&42, 100));
        assert_eq!(p.consume(&42, 100), None);
    }

    #[test]
    fn fresh_interest_revives_expired_entry() {
        let mut p = pit();
        p.record_interest(42, 3, 1, 0).unwrap();
        // After expiry, the same nonce is acceptable again (fresh round).
        assert_eq!(p.record_interest(42, 9, 1, 200), Ok(PitOutcome::Forward));
        assert_eq!(p.consume(&42, 250), Some(vec![9]));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut p = pit();
        for name in 0..4 {
            assert_eq!(p.record_interest(name, 1, 1, 0), Ok(PitOutcome::Forward));
        }
        assert_eq!(p.record_interest(99, 1, 1, 0), Err(PitError::CapacityExhausted));
        // Aggregation on an existing entry still works at capacity.
        assert_eq!(p.record_interest(0, 2, 2, 1), Ok(PitOutcome::Aggregated));
        // Expiry frees room.
        p.expire(1000);
        assert_eq!(p.record_interest(99, 1, 1, 1000), Ok(PitOutcome::Forward));
    }

    #[test]
    fn expired_entries_do_not_block_inserts() {
        // Regression: expired-but-resident entries used to consume
        // capacity until an explicit expire() call.
        let mut p = pit();
        for name in 0..4 {
            p.record_interest(name, 1, 1, 0).unwrap();
        }
        // All four entries lapse at t=100. A fresh name at t=150 must
        // sweep them and succeed rather than err.
        assert_eq!(p.record_interest(99, 1, 1, 150), Ok(PitOutcome::Forward));
        assert_eq!(p.len(), 1, "expired entries swept at capacity");
        assert_eq!(p.expired_evictions(), 4);
    }

    #[test]
    fn live_entries_still_enforce_capacity() {
        let mut p = pit();
        for name in 0..4 {
            p.record_interest(name, 1, 1, 50).unwrap();
        }
        // All live at t=60: the budget holds and nothing is evicted.
        assert_eq!(p.record_interest(99, 1, 1, 60), Err(PitError::CapacityExhausted));
        assert_eq!(p.len(), 4);
        assert_eq!(p.expired_evictions(), 0);
    }

    #[test]
    fn consume_evicts_expired_entry_and_counts_it() {
        let mut p = pit();
        p.record_interest(42, 3, 1, 0).unwrap();
        assert_eq!(p.consume(&42, 100), None, "expired entry is a miss");
        assert_eq!(p.len(), 0, "miss evicted the entry");
        assert_eq!(p.expired_evictions(), 1);
        // Revival after expiry is also a counted eviction.
        p.record_interest(7, 1, 1, 0).unwrap();
        p.record_interest(7, 2, 2, 500).unwrap();
        assert_eq!(p.expired_evictions(), 2);
    }

    #[test]
    fn consume_classified_separates_expired_from_absent() {
        let mut p = pit();
        p.record_interest(42, 3, 1, 0).unwrap();
        // Live entry: a hit with the recorded face.
        assert_eq!(p.consume_classified(&42, 50), PitConsume::Hit(vec![3]));
        // Consumed already: a plain miss, not an expiry.
        assert_eq!(p.consume_classified(&42, 51), PitConsume::Miss);
        // Aged-out entry: reported as expired and counted as an eviction.
        p.record_interest(7, 4, 9, 0).unwrap();
        assert_eq!(p.consume_classified(&7, 100), PitConsume::Expired);
        assert_eq!(p.expired_evictions(), 1);
        // Never requested at all: a miss.
        assert_eq!(p.consume_classified(&99, 100), PitConsume::Miss);
    }

    #[test]
    fn eviction_counter_can_be_shared() {
        use dip_telemetry::Counter;
        use std::sync::Arc;
        let shared = Arc::new(Counter::new());
        let mut p = pit();
        p.set_eviction_counter(Arc::clone(&shared));
        p.record_interest(1, 1, 1, 0).unwrap();
        p.expire(1000);
        assert_eq!(shared.get(), 1);
    }

    #[test]
    fn expire_counts_removals() {
        let mut p = pit();
        p.record_interest(1, 1, 1, 0).unwrap();
        p.record_interest(2, 1, 1, 50).unwrap();
        assert_eq!(p.expire(120), 1);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&2, 120));
    }

    #[test]
    fn works_with_name_keys() {
        use dip_wire::ndn::Name;
        let mut p: Pit<Name> = Pit::new(16, 100);
        let n = Name::parse("/hotnets/org");
        p.record_interest(n.clone(), 4, 7, 0).unwrap();
        assert_eq!(p.consume(&n, 10), Some(vec![4]));
    }
}

//! The NDN content store — an LRU cache of named data.
//!
//! The paper's prototype router "has no cached data, so there is no matching
//! content store", but footnote 2 notes the FIB module "can be slightly
//! modified to first match the local content store and then match the FIB".
//! This store provides that option, and is the attack surface exercised by
//! the §2.4 content-poisoning experiment (E6): without `F_pass`, a malicious
//! data packet can pollute it.

use crate::Ticks;
use dip_telemetry::Counter;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct CsEntry<V> {
    value: V,
    last_used: u64,
    inserted_at: Ticks,
}

/// An LRU content store keyed by `K` with a capacity bound.
#[derive(Debug, Clone)]
pub struct ContentStore<K: std::hash::Hash + Eq + Clone, V> {
    entries: HashMap<K, CsEntry<V>>,
    capacity: usize,
    clock: u64,
    /// LRU entries displaced by at-capacity inserts. Private by default;
    /// [`ContentStore::set_eviction_counter`] wires it into a telemetry
    /// registry so soaks can watch the cache hold its memory bound.
    evictions: Arc<Counter>,
}

impl<K: std::hash::Hash + Eq + Clone, V> ContentStore<K, V> {
    /// Creates a store holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        ContentStore {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            evictions: Arc::new(Counter::new()),
        }
    }

    /// Routes LRU-eviction counts into `counter` (typically a
    /// `dip_cs_evictions_total` instance from a telemetry registry)
    /// instead of the private default counter.
    pub fn set_eviction_counter(&mut self, counter: Arc<Counter>) {
        self.evictions = counter;
    }

    /// Items evicted so far to hold the capacity bound.
    pub fn lru_evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or refreshes) a cached item, evicting the least recently
    /// used item when full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V, now: Ticks) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions.inc();
                evicted = Some(lru);
            }
        }
        self.entries.insert(key, CsEntry { value, last_used: self.clock, inserted_at: now });
        evicted
    }

    /// Looks up a cached item, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_used = clock;
            &e.value
        })
    }

    /// Non-refreshing peek (for inspection in tests/experiments).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|e| &e.value)
    }

    /// Removes an item (e.g. after detecting poisoning).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|e| e.value)
    }

    /// Purges every item inserted at or after `since` — the operator
    /// response to a detected poisoning attack (E6). Returns how many items
    /// were purged.
    pub fn purge_since(&mut self, since: Ticks) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.inserted_at < since);
        before - self.entries.len()
    }

    /// Clears the store.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Read-only iteration over `(key, value, inserted_at)` in unspecified
    /// order (diagnostics and state comparison).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V, Ticks)> {
        self.entries.iter().map(|(k, e)| (k, &e.value, e.inserted_at))
    }

    /// Keys ordered least- to most-recently used — the exact eviction
    /// order the store would follow if filled to capacity right now.
    pub fn lru_order(&self) -> Vec<K> {
        let mut pairs: Vec<(u64, &K)> =
            self.entries.iter().map(|(k, e)| (e.last_used, k)).collect();
        pairs.sort_unstable_by_key(|(used, _)| *used);
        pairs.into_iter().map(|(_, k)| k.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut cs: ContentStore<u32, &str> = ContentStore::new(4);
        cs.insert(1, "one", 0);
        assert_eq!(cs.get(&1), Some(&"one"));
        assert_eq!(cs.get(&2), None);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(2);
        cs.insert(1, 10, 0);
        cs.insert(2, 20, 0);
        cs.get(&1); // 2 is now LRU
        let evicted = cs.insert(3, 30, 0);
        assert_eq!(evicted, Some(2));
        assert!(cs.peek(&1).is_some());
        assert!(cs.peek(&3).is_some());
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(2);
        cs.insert(1, 10, 0);
        cs.insert(2, 20, 0);
        assert_eq!(cs.insert(1, 11, 5), None); // update, no eviction
        assert_eq!(cs.peek(&1), Some(&11));
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn purge_since_removes_recent_insertions() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(8);
        cs.insert(1, 10, 0);
        cs.insert(2, 20, 100);
        cs.insert(3, 30, 200);
        assert_eq!(cs.purge_since(100), 2);
        assert!(cs.peek(&1).is_some());
        assert!(cs.peek(&2).is_none());
    }

    #[test]
    fn purge_then_reinsert_preserves_lru_and_capacity() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(3);
        cs.insert(1, 10, 0);
        cs.insert(2, 20, 10);
        cs.insert(3, 30, 20);
        cs.get(&1); // recency now: 2 (LRU), 3, 1 (MRU)
        assert_eq!(cs.lru_order(), vec![2, 3, 1]);

        // Operator response to poisoning at t=15: entry 3 goes.
        assert_eq!(cs.purge_since(15), 1);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.lru_order(), vec![2, 1], "purge must not disturb survivors' recency");

        // Reinsertions fill the freed slot before any eviction happens.
        assert_eq!(cs.insert(4, 40, 30), None);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.lru_order(), vec![2, 1, 4]);

        // At capacity again, eviction resumes from the true LRU (2), not
        // from any stale bookkeeping left by the purge.
        assert_eq!(cs.insert(5, 50, 40), Some(2));
        assert_eq!(cs.lru_order(), vec![1, 4, 5]);

        // A purged key reinserted is a fresh entry: MRU recency and a new
        // insertion time, so a later purge window catches it again.
        assert_eq!(cs.insert(3, 31, 50), Some(1));
        assert_eq!(cs.lru_order(), vec![4, 5, 3]);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.purge_since(45), 1);
        assert!(cs.peek(&3).is_none());
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn evictions_are_counted_and_routable() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(2);
        cs.insert(1, 10, 0);
        cs.insert(2, 20, 0);
        assert_eq!(cs.lru_evictions(), 0);
        cs.insert(3, 30, 0); // displaces 1
        cs.insert(4, 40, 0); // displaces 2
        assert_eq!(cs.lru_evictions(), 2);
        // Refreshing an existing key never evicts.
        cs.insert(3, 31, 1);
        assert_eq!(cs.lru_evictions(), 2);
        // An external counter picks up where the private one left off.
        let shared = Arc::new(Counter::new());
        cs.set_eviction_counter(shared.clone());
        cs.insert(5, 50, 2);
        assert_eq!(shared.get(), 1);
        assert_eq!(cs.lru_evictions(), 1);
        assert_eq!(cs.len(), 2, "capacity bound holds across all of it");
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(0);
        assert_eq!(cs.insert(1, 10, 0), None);
        assert!(cs.is_empty());
        assert_eq!(cs.get(&1), None);
    }

    #[test]
    fn remove_and_clear() {
        let mut cs: ContentStore<u32, u32> = ContentStore::new(4);
        cs.insert(1, 10, 0);
        assert_eq!(cs.remove(&1), Some(10));
        cs.insert(2, 20, 0);
        cs.clear();
        assert!(cs.is_empty());
    }
}

//! # dip-tables — forwarding state for DIP routers
//!
//! The operation modules of Table 1 consult per-router state:
//!
//! * `F_32_match` / `F_128_match` — longest-prefix match over 32/128-bit
//!   addresses ([`fib::Ipv4Fib`], [`fib::Ipv6Fib`], built on
//!   [`bit_trie::BitTrie`]);
//! * `F_FIB` — name-based FIB, longest-prefix match over hierarchical NDN
//!   names ([`fib::NameFib`] on [`name_trie::NameTrie`]) with a compact
//!   32-bit fast path matching the DIP prototype (§4.1);
//! * `F_PIT` — the pending interest table ([`pit::Pit`]) with per-entry
//!   faces, nonces and expiry, plus the state budget of §2.4;
//! * the optional NDN content store ([`content_store::ContentStore`],
//!   footnote 2 of the paper);
//! * `F_DAG` / `F_intent` — per-principal XIA routing tables
//!   ([`xia_table::XiaRouteTable`]).
//!
//! All time is *virtual*: methods that expire state take a `now` tick so the
//! tables work identically under the discrete-event simulator and in
//! benchmarks (no wall-clock reads on the datapath).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bit_trie;
pub mod content_store;
pub mod fib;
pub mod name_trie;
pub mod pit;
pub mod xia_table;

pub use bit_trie::{BitTrie, Prefix};
pub use content_store::ContentStore;
pub use fib::{Ipv4Fib, Ipv6Fib, NameFib};
pub use name_trie::NameTrie;
pub use pit::{Pit, PitConsume, PitError, PitOutcome};
pub use xia_table::{XiaNextHop, XiaRouteTable};

/// A router port / face identifier.
pub type Port = u32;

/// Virtual time in nanoseconds, as driven by the simulator or benchmarks.
pub type Ticks = u64;

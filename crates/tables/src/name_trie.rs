//! A component-wise trie over hierarchical NDN names.
//!
//! `F_FIB` performs "the longest prefix match with the content name" (§2.3);
//! for full hierarchical names that means component-granular LPM: the FIB
//! entry `/hotnets` covers `/hotnets/org/paper`, and `/hotnets/org` wins
//! over it.

use dip_wire::ndn::Name;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: HashMap<Vec<u8>, Node<V>>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node { value: None, children: HashMap::new() }
    }
}

/// Trie keyed by name components with longest-prefix lookup.
#[derive(Debug, Clone)]
pub struct NameTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for NameTrie<V> {
    fn default() -> Self {
        NameTrie { root: Node::default(), len: 0 }
    }
}

impl<V> NameTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        NameTrie::default()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value.
    pub fn insert(&mut self, prefix: &Name, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for c in prefix.components() {
            node = node.children.entry(c.clone()).or_default();
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value stored at exactly `prefix`.
    pub fn remove(&mut self, prefix: &Name) -> Option<V> {
        let mut node = &mut self.root;
        for c in prefix.components() {
            node = node.children.get_mut(c)?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match: the deepest stored prefix of `name`, returning
    /// the matched depth (number of components) and value.
    pub fn lookup(&self, name: &Name) -> Option<(usize, &V)> {
        let mut best = self.root.value.as_ref().map(|v| (0, v));
        let mut node = &self.root;
        for (depth, c) in name.components().iter().enumerate() {
            match node.children.get(c) {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Collects every stored `(name, value)` pair, in depth-first order.
    pub fn entries(&self) -> Vec<(Name, &V)> {
        fn walk<'a, V>(node: &'a Node<V>, path: &mut Vec<Vec<u8>>, out: &mut Vec<(Name, &'a V)>) {
            if let Some(v) = node.value.as_ref() {
                out.push((Name::from_components(path.clone()), v));
            }
            let mut keys: Vec<&Vec<u8>> = node.children.keys().collect();
            keys.sort();
            for k in keys {
                path.push(k.clone());
                walk(&node.children[k], path, out);
                path.pop();
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut Vec::new(), &mut out);
        out
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Name) -> Option<&V> {
        let mut node = &self.root;
        for c in prefix.components() {
            node = node.children.get(c)?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s)
    }

    #[test]
    fn lpm_by_component() {
        let mut t = NameTrie::new();
        t.insert(&n("/hotnets"), 1);
        t.insert(&n("/hotnets/org"), 2);
        assert_eq!(t.lookup(&n("/hotnets/org/paper")), Some((2, &2)));
        assert_eq!(t.lookup(&n("/hotnets/com")), Some((1, &1)));
        assert_eq!(t.lookup(&n("/sigcomm")), None);
    }

    #[test]
    fn component_boundaries_matter() {
        let mut t = NameTrie::new();
        t.insert(&n("/hot"), 1);
        // "/hotnets" is NOT covered by "/hot" — components are atoms.
        assert_eq!(t.lookup(&n("/hotnets")), None);
        assert_eq!(t.lookup(&n("/hot/nets")), Some((1, &1)));
    }

    #[test]
    fn root_entry_is_default_route() {
        let mut t = NameTrie::new();
        t.insert(&Name::root(), 0);
        assert_eq!(t.lookup(&n("/anything/at/all")), Some((0, &0)));
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = NameTrie::new();
        assert_eq!(t.insert(&n("/a"), 1), None);
        assert_eq!(t.insert(&n("/a"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&n("/a")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.lookup(&n("/a/b")), None);
    }

    #[test]
    fn exact_get() {
        let mut t = NameTrie::new();
        t.insert(&n("/a/b"), 9);
        assert_eq!(t.get(&n("/a/b")), Some(&9));
        assert_eq!(t.get(&n("/a")), None);
        assert_eq!(t.get(&n("/a/b/c")), None);
    }

    #[test]
    fn entries_lists_stored_names_in_order() {
        let mut t = NameTrie::new();
        t.insert(&n("/b"), 2);
        t.insert(&n("/a/x"), 1);
        t.insert(&n("/a"), 0);
        let entries = t.entries();
        let names: Vec<String> = entries.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["/a", "/a/x", "/b"]);
        assert_eq!(*entries[0].1, 0);
    }

    #[test]
    fn binary_components() {
        let mut t = NameTrie::new();
        let name = Name::from_components(vec![vec![0, 255], vec![128]]);
        t.insert(&name, "bin");
        assert_eq!(t.lookup(&name.child(b"x")), Some((2, &"bin")));
    }
}

//! Exhaustive-interleaving model check of the dataplane's two lock-free
//! protocols: the Lamport SPSC ring (`ring.rs`) and the epoch-swap
//! publication cell (`snapshot.rs`).
//!
//! Each protocol is abstracted into a small state machine whose steps are
//! exactly the shared-memory accesses of the real implementation (one
//! atomic load/store or one slot access per step; purely thread-local
//! work is folded into the adjacent step, which removes no interleavings).
//! A memoized depth-first search then drives **every** schedule of the
//! two threads up to a bounded operation count and asserts the protocol
//! invariants in every reachable state:
//!
//! * the consumer never reads an unwritten/already-consumed slot (the
//!   memory-safety claim behind ring.rs's `SAFETY` comments);
//! * the producer never overwrites a slot the consumer has not taken;
//! * delivery is FIFO (popped sequence numbers strictly increase);
//! * conservation at quiescence: `pushed = delivered + drops + occupancy`
//!   — the drop/delivery/occupancy balance the telemetry ledger pins;
//! * epoch-swap visibility: a reader that observes epoch `k` and then
//!   refreshes never receives a value older than publication `k`.
//!
//! The search explores sequentially consistent interleavings. The real
//! code uses Release/Acquire, which is sufficient here because each
//! protocol synchronizes through a single publication edge per direction:
//! the ring's slot write happens-before the Release tail store, whose
//! Acquire load happens-before the slot read (and symmetrically for
//! head); the cell's slot swap happens-before the Release epoch bump,
//! whose Acquire load happens-before the locked slot clone. Weaker-than-SC
//! executions can only delay *when* a flag value becomes visible — every
//! such delayed observation is equivalent to an SC schedule in which the
//! load simply ran earlier, which the exhaustive search already covers.
//! What Release/Acquire must not permit is observing the flag *without*
//! the payload — exactly the reordering the two `_bug` models inject, and
//! the search proves those are caught.

use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Lamport SPSC ring
// ---------------------------------------------------------------------------

/// Ring capacity (power of two, as in `spsc`). Two slots keeps the state
/// space tight while still exercising wraparound (4 pushes cross the
/// slot array twice).
const CAP: usize = 2;
const MASK: u8 = (CAP as u8) - 1;
/// Pushes the producer attempts (`push_or_drop` semantics: full ring
/// drops and counts).
const PUSHES: u8 = 4;
/// Pop attempts the consumer makes (empty attempts count, as in a worker
/// polling its ring).
const POPS: u8 = 5;

/// Which store order the producer's hot path uses.
#[derive(Clone, Copy, PartialEq)]
enum RingVariant {
    /// slot write, then Release tail store — the real protocol.
    Correct,
    /// tail store before the slot write — the torn-publication bug the
    /// Release/Acquire pair exists to prevent. The checker must catch it.
    PublishBeforeWrite,
}

/// One interleaving point per shared-memory access; everything else is
/// thread-local and folded into the neighboring step.
#[derive(Clone, PartialEq, Eq, Hash)]
struct RingState {
    // Shared memory.
    slots: [Option<u8>; CAP],
    head: u8,
    tail: u8,
    // Producer thread: pc 0 = deciding/full-checking, 1 = first hot-path
    // store, 2 = second hot-path store, 3 = done.
    ppc: u8,
    cached_head: u8,
    next_seq: u8,
    pushed: u8,
    drops: u8,
    // Consumer thread: pc 0 = deciding/empty-checking, 1 = slot read,
    // 2 = head publish, 3 = done.
    cpc: u8,
    cached_tail: u8,
    pops: u8,
    delivered: u8,
    /// Last delivered sequence number plus one (0 = nothing yet), for the
    /// FIFO check.
    watermark: u8,
}

impl RingState {
    fn initial() -> Self {
        RingState {
            slots: [None; CAP],
            head: 0,
            tail: 0,
            ppc: 0,
            cached_head: 0,
            next_seq: 0,
            pushed: 0,
            drops: 0,
            cpc: 0,
            cached_tail: 0,
            pops: 0,
            delivered: 0,
            watermark: 0,
        }
    }

    fn producer_done(&self) -> bool {
        self.ppc == 3
    }

    fn consumer_done(&self) -> bool {
        self.cpc == 3
    }

    /// Advances the producer by one shared-memory access.
    fn step_producer(&self, variant: RingVariant) -> Result<RingState, String> {
        let mut s = self.clone();
        match self.ppc {
            0 => {
                if s.pushed == PUSHES {
                    s.ppc = 3;
                    return Ok(s);
                }
                // try_push's fast full-check reads only producer-owned
                // state (tail, cached_head): no interleaving point. When
                // it looks full, the *one* shared access is the Acquire
                // refresh of head, with the local re-check folded in.
                if s.tail.wrapping_sub(s.cached_head) > MASK {
                    s.cached_head = s.head;
                    if s.tail.wrapping_sub(s.cached_head) > MASK {
                        // Still full: drop and count, value lost.
                        s.drops += 1;
                        s.next_seq += 1;
                        s.pushed += 1;
                        return Ok(s);
                    }
                }
                s.ppc = 1;
                Ok(s)
            }
            1 => {
                match variant {
                    RingVariant::Correct => {
                        let slot = &mut s.slots[(s.tail & MASK) as usize];
                        if slot.is_some() {
                            return Err(format!(
                                "producer overwrote unconsumed slot {}",
                                s.tail & MASK
                            ));
                        }
                        *slot = Some(s.next_seq);
                    }
                    RingVariant::PublishBeforeWrite => s.tail = s.tail.wrapping_add(1),
                }
                s.ppc = 2;
                Ok(s)
            }
            2 => {
                match variant {
                    RingVariant::Correct => s.tail = s.tail.wrapping_add(1),
                    RingVariant::PublishBeforeWrite => {
                        let idx = (s.tail.wrapping_sub(1) & MASK) as usize;
                        if s.slots[idx].is_some() {
                            return Err(format!("producer overwrote unconsumed slot {idx}"));
                        }
                        s.slots[idx] = Some(s.next_seq);
                    }
                }
                s.next_seq += 1;
                s.pushed += 1;
                s.ppc = 0;
                Ok(s)
            }
            _ => unreachable!("producer stepped after done"),
        }
    }

    /// Advances the consumer by one shared-memory access.
    fn step_consumer(&self) -> Result<RingState, String> {
        let mut s = self.clone();
        match self.cpc {
            0 => {
                if s.pops == POPS {
                    s.cpc = 3;
                    return Ok(s);
                }
                // Mirror of the producer: the fast empty-check is local
                // (head is consumer-owned); the shared access is the
                // Acquire refresh of tail.
                if s.head == s.cached_tail {
                    s.cached_tail = s.tail;
                    if s.head == s.cached_tail {
                        s.pops += 1; // empty poll
                        return Ok(s);
                    }
                }
                s.cpc = 1;
                Ok(s)
            }
            1 => {
                let slot = &mut s.slots[(s.head & MASK) as usize];
                let Some(v) = slot.take() else {
                    return Err(format!(
                        "consumer read unwritten slot {} (head={}, tail published)",
                        s.head & MASK,
                        s.head
                    ));
                };
                if v < s.watermark {
                    return Err(format!("FIFO violated: got {v} after watermark {}", s.watermark));
                }
                s.watermark = v + 1;
                s.delivered += 1;
                s.cpc = 2;
                Ok(s)
            }
            2 => {
                s.head = s.head.wrapping_add(1);
                s.pops += 1;
                s.cpc = 0;
                Ok(s)
            }
            _ => unreachable!("consumer stepped after done"),
        }
    }

    /// Invariants asserted in terminal states (both threads finished).
    fn check_quiescent(&self) -> Result<(), String> {
        let occupancy = self.tail.wrapping_sub(self.head);
        if self.pushed != self.delivered + self.drops + occupancy {
            return Err(format!(
                "conservation violated: pushed {} != delivered {} + drops {} + occupancy {}",
                self.pushed, self.delivered, self.drops, occupancy
            ));
        }
        for pos in self.head..self.tail {
            if self.slots[(pos & MASK) as usize].is_none() {
                return Err(format!("queued position {pos} holds no value"));
            }
        }
        Ok(())
    }
}

/// Explores every 2-thread schedule from the initial state; returns the
/// number of distinct states visited, or the first invariant violation.
fn explore_ring(variant: RingVariant) -> Result<usize, String> {
    let mut seen: HashSet<RingState> = HashSet::new();
    let mut stack = vec![RingState::initial()];
    seen.insert(stack[0].clone());
    let mut terminals = 0usize;
    while let Some(state) = stack.pop() {
        if state.producer_done() && state.consumer_done() {
            state.check_quiescent()?;
            terminals += 1;
            continue;
        }
        if !state.producer_done() {
            let next = state.step_producer(variant)?;
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
        if !state.consumer_done() {
            let next = state.step_consumer()?;
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
    }
    assert!(terminals > 0, "exploration reached no terminal state");
    Ok(seen.len())
}

#[test]
fn ring_protocol_holds_under_every_interleaving() {
    let states = explore_ring(RingVariant::Correct).expect("ring invariant violated");
    // The bound must be large enough that the search is actually doing
    // work: full/empty refreshes, drops, and wraparound all reachable.
    assert!(states > 500, "suspiciously small state space: {states}");
}

#[test]
fn ring_checker_catches_publish_before_write() {
    // Teeth: publishing tail ahead of the slot write must be caught as a
    // consumer read of an unwritten slot in *some* schedule.
    let err = explore_ring(RingVariant::PublishBeforeWrite)
        .expect_err("reordered publication must violate an invariant");
    assert!(err.contains("unwritten slot"), "unexpected violation: {err}");
}

// ---------------------------------------------------------------------------
// EpochCell swap publication
// ---------------------------------------------------------------------------

/// Publications the writer performs (values 1..=PUBLISHES; 0 is initial).
const PUBLISHES: u8 = 3;
/// Refresh attempts the reader makes.
const REFRESHES: u8 = 4;

#[derive(Clone, Copy, PartialEq)]
enum CellVariant {
    /// slot swap, then Release epoch bump — the real `EpochCell::publish`.
    Correct,
    /// epoch bump before the slot swap: a reader can observe the new
    /// epoch yet clone the old value. The checker must catch it.
    BumpBeforeSwap,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CellState {
    // Shared: the published value (slot, mutex-guarded in the real code,
    // so one access = one step) and the epoch counter.
    slot: u8,
    epoch: u8,
    // Publisher: pc 0 = first store, 1 = second store, 2 = done.
    published: u8,
    ppc: u8,
    // Reader: pc 0 = epoch load, 1 = conditional slot clone, 2 = done.
    seen: u8,
    cached: u8,
    loaded_epoch: u8,
    attempts: u8,
    rpc: u8,
}

impl CellState {
    fn initial() -> Self {
        CellState {
            slot: 0,
            epoch: 0,
            published: 0,
            ppc: 0,
            seen: 0,
            cached: 0,
            loaded_epoch: 0,
            attempts: 0,
            rpc: 0,
        }
    }

    fn step_publisher(&self, variant: CellVariant) -> CellState {
        let mut s = self.clone();
        let value = s.published + 1;
        match (self.ppc, variant) {
            (0, CellVariant::Correct) | (1, CellVariant::BumpBeforeSwap) => {
                s.slot = value;
                s.ppc = if self.ppc == 0 { 1 } else { 0 };
            }
            (0, CellVariant::BumpBeforeSwap) | (1, CellVariant::Correct) => {
                s.epoch = value;
                s.ppc = if self.ppc == 0 { 1 } else { 0 };
            }
            _ => unreachable!(),
        }
        if s.ppc == 0 {
            s.published += 1;
            if s.published == PUBLISHES {
                s.ppc = 2;
            }
        }
        s
    }

    fn step_reader(&self) -> Result<CellState, String> {
        let mut s = self.clone();
        match self.rpc {
            0 => {
                // `EpochReader::refresh`: the Acquire epoch load.
                s.loaded_epoch = s.epoch;
                s.rpc = 1;
                Ok(s)
            }
            1 => {
                if s.loaded_epoch != s.seen {
                    // The locked slot clone. Visibility invariant: having
                    // observed epoch k, the value must be from
                    // publication k or newer (the publisher may have
                    // advanced in between — never regressed).
                    s.cached = s.slot;
                    if s.cached < s.loaded_epoch {
                        return Err(format!(
                            "snapshot visibility violated: epoch {} delivered value {}",
                            s.loaded_epoch, s.cached
                        ));
                    }
                    s.seen = s.loaded_epoch;
                }
                s.attempts += 1;
                s.rpc = if s.attempts == REFRESHES { 2 } else { 0 };
                Ok(s)
            }
            _ => unreachable!("reader stepped after done"),
        }
    }
}

fn explore_cell(variant: CellVariant) -> Result<usize, String> {
    let mut seen: HashSet<CellState> = HashSet::new();
    let mut stack = vec![CellState::initial()];
    seen.insert(stack[0].clone());
    while let Some(state) = stack.pop() {
        if state.ppc != 2 {
            let next = state.step_publisher(variant);
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
        if state.rpc != 2 {
            let next = state.step_reader()?;
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
    }
    Ok(seen.len())
}

#[test]
fn epoch_swap_visibility_holds_under_every_interleaving() {
    let states = explore_cell(CellVariant::Correct).expect("epoch-cell invariant violated");
    assert!(states > 100, "suspiciously small state space: {states}");
}

#[test]
fn epoch_checker_catches_bump_before_swap() {
    let err = explore_cell(CellVariant::BumpBeforeSwap)
        .expect_err("reordered publication must violate visibility");
    assert!(err.contains("visibility violated"), "unexpected violation: {err}");
}

//! Read-mostly table snapshots with epoch-swap publication.
//!
//! Control-plane updates (route announcements, cache preloads) and the
//! packet hot path must never contend on a lock: a worker that blocks on
//! a FIB mutex mid-batch stalls its whole ring. The dataplane instead
//! keeps the control-plane-owned tables in a [`RouteSnapshot`] published
//! through an [`EpochCell`]: writers build a complete new snapshot
//! off-path and swap it in with one atomic epoch bump; each worker holds
//! an [`EpochReader`] that compares a cached epoch against the cell's
//! epoch at batch boundaries — one relaxed-ordering load per batch — and
//! only when the epoch moved does it take the (cold) publication lock to
//! clone out the new `Arc`.
//!
//! Flow state (PIT, and the content store once data traffic has run) is
//! deliberately *not* snapshotted on the normal path: it is owned and
//! mutated by exactly one worker per flow (see
//! [`FlowShard`](crate::shard::FlowShard)), so replacing it from the
//! control plane would discard in-flight interests. The optional `pit` /
//! `content_store` fields exist for explicit resets and preloads.

use dip_fnops::RouterState;
use dip_routes::RouteTables;
use dip_tables::content_store::ContentStore;
use dip_tables::fib::{Ipv4Fib, Ipv6Fib, NameFib};
use dip_tables::pit::Pit;
use dip_tables::xia_table::XiaRouteTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A complete control-plane view of one router's tables.
#[derive(Debug, Clone, Default)]
pub struct RouteSnapshot {
    /// 32-bit address FIB.
    pub ipv4_fib: Ipv4Fib,
    /// 128-bit address FIB.
    pub ipv6_fib: Ipv6Fib,
    /// Name FIB (the NDN name trie).
    pub name_fib: NameFib,
    /// XIA per-principal routing tables.
    pub xia: XiaRouteTable,
    /// When set, *replaces* the worker's content store (cache preload or
    /// post-poisoning reset). `None` preserves the worker's cache.
    pub content_store: Option<ContentStore<u32, Vec<u8>>>,
    /// When set, *replaces* the worker's PIT (explicit reset only —
    /// discards in-flight interests). `None` preserves flow state.
    pub pit: Option<Pit<u32>>,
    /// Compiled forwarding tables (`dip-routes`). `Some` installs them
    /// (lookup ops then prefer the compiled tables over the legacy FIBs
    /// above); `None` uninstalls, falling back to the legacy FIBs.
    /// Cloning is `Arc` bumps, so delta-produced snapshots share every
    /// untouched chunk with their predecessor.
    pub tables: Option<RouteTables>,
}

impl RouteSnapshot {
    /// Captures the route tables of `state` (flow state left out).
    pub fn capture(state: &RouterState) -> Self {
        RouteSnapshot {
            ipv4_fib: state.ipv4_fib.clone(),
            ipv6_fib: state.ipv6_fib.clone(),
            name_fib: state.name_fib.clone(),
            xia: state.xia.clone(),
            content_store: None,
            pit: None,
            tables: state.compiled.clone(),
        }
    }

    /// A snapshot carrying *only* compiled tables: the legacy FIB fields
    /// stay empty (lookups never reach them while compiled tables are
    /// installed), so publication cost is a handful of `Arc` bumps no
    /// matter how many routes the tables hold.
    pub fn from_tables(tables: RouteTables) -> Self {
        RouteSnapshot { tables: Some(tables), ..RouteSnapshot::default() }
    }

    /// IPv4 LPM over whichever view this snapshot carries (compiled
    /// tables win; legacy FIB otherwise) — mirrors what a worker state
    /// answers after [`RouteSnapshot::apply`].
    pub fn lookup_v4(&self, addr: dip_wire::ipv4::Ipv4Addr) -> Option<dip_tables::fib::NextHop> {
        match &self.tables {
            Some(t) => t.lookup_v4(addr),
            None => self.ipv4_fib.lookup(addr),
        }
    }

    /// IPv6 LPM (compiled tables win; legacy FIB otherwise).
    pub fn lookup_v6(&self, addr: dip_wire::ipv6::Ipv6Addr) -> Option<dip_tables::fib::NextHop> {
        match &self.tables {
            Some(t) => t.lookup_v6(addr),
            None => self.ipv6_fib.lookup(addr),
        }
    }

    /// Name LPM (compiled tables win; legacy FIB otherwise).
    pub fn lookup_name(&self, name: &dip_wire::ndn::Name) -> Option<dip_tables::fib::NextHop> {
        match &self.tables {
            Some(t) => t.lookup_name(name),
            None => self.name_fib.lookup(name),
        }
    }

    /// XIA lookup (compiled tables win; legacy tables otherwise).
    pub fn lookup_xia(
        &self,
        ty: dip_wire::xia::XidType,
        xid: &dip_wire::xia::Xid,
    ) -> Option<dip_tables::xia_table::XiaNextHop> {
        match &self.tables {
            Some(t) => t.lookup_xia(ty, xid),
            None => self.xia.lookup(ty, xid),
        }
    }

    /// Installs this snapshot into a worker's state: route tables are
    /// replaced; PIT/content-store only when explicitly carried.
    pub fn apply(&self, state: &mut RouterState) {
        state.ipv4_fib = self.ipv4_fib.clone();
        state.ipv6_fib = self.ipv6_fib.clone();
        state.name_fib = self.name_fib.clone();
        state.xia = self.xia.clone();
        state.compiled = self.tables.clone();
        if let Some(cs) = &self.content_store {
            state.content_store = Some(cs.clone());
        }
        if let Some(pit) = &self.pit {
            state.pit = pit.clone();
        }
    }
}

/// A published value with an epoch counter: readers detect staleness with
/// one atomic load and touch the lock only across an actual update.
#[derive(Debug)]
pub struct EpochCell<T> {
    epoch: AtomicU64,
    /// Cold path only: held for the duration of an `Arc` clone/swap,
    /// never during packet processing.
    slot: Mutex<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell at epoch 0 holding `value`.
    pub fn new(value: T) -> Self {
        EpochCell { epoch: AtomicU64::new(0), slot: Mutex::new(Arc::new(value)) }
    }

    /// Publishes a new value: swap first, then bump the epoch (Release),
    /// so any reader observing the new epoch finds the new value.
    pub fn publish(&self, value: T) {
        *self.slot.lock().expect("epoch cell poisoned") = Arc::new(value);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A reader primed with the current value.
    pub fn reader(self: &Arc<Self>) -> EpochReader<T> {
        let seen = self.epoch();
        let cached = Arc::clone(&self.slot.lock().expect("epoch cell poisoned"));
        EpochReader { cell: Arc::clone(self), seen, cached }
    }
}

/// One worker's cached view of an [`EpochCell`].
#[derive(Debug)]
pub struct EpochReader<T> {
    cell: Arc<EpochCell<T>>,
    seen: u64,
    cached: Arc<T>,
}

impl<T> EpochReader<T> {
    /// Refreshes the cached value if the cell moved. Returns `true` when a
    /// new value was picked up. The fast path (no publication since the
    /// last call) is a single atomic load.
    pub fn refresh(&mut self) -> bool {
        let epoch = self.cell.epoch.load(Ordering::Acquire);
        if epoch == self.seen {
            return false;
        }
        self.cached = Arc::clone(&self.cell.slot.lock().expect("epoch cell poisoned"));
        self.seen = epoch;
        true
    }

    /// The cached value (never blocks).
    pub fn get(&self) -> &T {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;

    #[test]
    fn reader_sees_updates_only_after_refresh() {
        let cell = Arc::new(EpochCell::new(1u32));
        let mut reader = cell.reader();
        assert_eq!(*reader.get(), 1);
        assert!(!reader.refresh(), "no publication yet");
        cell.publish(2);
        assert_eq!(*reader.get(), 1, "stale until refresh");
        assert!(reader.refresh());
        assert_eq!(*reader.get(), 2);
        assert!(!reader.refresh(), "refresh is idempotent");
    }

    #[test]
    fn publish_while_reader_holds_value_does_not_block() {
        let cell = Arc::new(EpochCell::new(vec![0u8; 8]));
        let reader = cell.reader();
        let held = reader.get(); // hot path holds a reference...
        cell.publish(vec![1u8; 8]); // ...while the control plane swaps
        assert_eq!(held, &vec![0u8; 8]);
    }

    #[test]
    fn snapshot_apply_preserves_flow_state_by_default() {
        let mut state = RouterState::new(7, [1; 16]);
        state.pit.record_interest(42, 3, 9, 0).unwrap();
        let mut snap = RouteSnapshot::default();
        snap.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(5));
        snap.apply(&mut state);
        assert_eq!(state.ipv4_fib.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(NextHop::port(5)));
        assert!(state.pit.contains(&42, 10), "route swap must not drop in-flight interests");

        // An explicit PIT reset does replace flow state.
        snap.pit = Some(Pit::new(16, 100));
        snap.apply(&mut state);
        assert!(!state.pit.contains(&42, 10));
    }

    #[test]
    fn tables_only_snapshot_installs_and_uninstalls() {
        let mut store = dip_routes::RouteStore::new();
        store.insert_v4(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(7));
        let snap = RouteSnapshot::from_tables(store.rebuild());
        assert!(snap.ipv4_fib.is_empty(), "tables-only snapshots leave legacy FIBs empty");

        let mut state = RouterState::new(3, [0; 16]);
        state.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        snap.apply(&mut state);
        assert_eq!(state.lookup_v4(Ipv4Addr::new(10, 1, 2, 3)), Some(NextHop::port(7)));

        // A legacy (tables: None) snapshot uninstalls the compiled view.
        let mut legacy = RouteSnapshot::default();
        legacy.ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(2));
        legacy.apply(&mut state);
        assert_eq!(state.lookup_v4(Ipv4Addr::new(10, 1, 2, 3)), Some(NextHop::port(2)));
    }

    #[test]
    fn capture_round_trips_route_tables() {
        let mut state = RouterState::new(1, [2; 16]);
        state.ipv4_fib.add_route(Ipv4Addr::new(192, 168, 0, 0), 16, NextHop::port(2));
        let snap = RouteSnapshot::capture(&state);
        let mut fresh = RouterState::new(2, [3; 16]);
        snap.apply(&mut fresh);
        assert_eq!(fresh.ipv4_fib.lookup(Ipv4Addr::new(192, 168, 9, 9)), Some(NextHop::port(2)));
    }
}

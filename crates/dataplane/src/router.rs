//! `DataplaneRouter` — the dataplane behind the simulator's router trait.
//!
//! The discrete-event simulator is single-threaded and deterministic, so
//! plugging the dataplane into [`dip_sim::engine::Network`] uses *logical*
//! shards: the same flow-hash dispatch, per-shard routers and program
//! caches as the threaded runtime, driven synchronously one packet at a
//! time by the event loop. Every five-protocol experiment runs unchanged
//! on it (`Network::add_router_node`), which is what pins the claim that
//! the sharded pipeline is behavior-equivalent to a single [`DipRouter`].

use crate::program::{Admission, CacheStats, ProgramCache};
use crate::shard::FlowShard;
use dip_core::{parse_packet, DipRouter, ProcessStats, Verdict};
use dip_fnops::context::MacChoice;
use dip_fnops::{DropReason, FnRegistry};
use dip_sim::engine::RouterNode;
use dip_sim::SimTime;
use dip_tables::{Port, Ticks};
use dip_telemetry::Registry;

struct Shard {
    router: DipRouter,
    cache: ProgramCache,
}

/// A flow-sharded, program-caching router node for the simulator.
pub struct DataplaneRouter {
    shards: Vec<Shard>,
    dispatch: FlowShard,
}

impl DataplaneRouter {
    /// Builds `shards` logical shards; `factory(i)` supplies shard `i`'s
    /// router (identical tables across shards for route lookups; per-flow
    /// state partitions naturally by the flow hash).
    pub fn new(shards: usize, admission: Admission, factory: impl Fn(usize) -> DipRouter) -> Self {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|i| {
                let router = factory(i);
                let cache = ProgramCache::new(
                    router.registry().clone(),
                    router.config().clone(),
                    admission,
                );
                Shard { router, cache }
            })
            .collect();
        DataplaneRouter { shards, dispatch: FlowShard::new(n) }
    }

    /// Number of logical shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to shard `i`'s router (state inspection).
    pub fn shard_router(&self, i: usize) -> &DipRouter {
        &self.shards[i].router
    }

    /// Mutable access to shard `i`'s router (table programming).
    pub fn shard_router_mut(&mut self, i: usize) -> &mut DipRouter {
        &mut self.shards[i].router
    }

    /// Summed program-cache counters across shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, s| {
            let c = s.cache.stats();
            CacheStats {
                hits: acc.hits + c.hits,
                misses: acc.misses + c.misses,
                rejected: acc.rejected + c.rejected,
                programs_optimized: acc.programs_optimized + c.programs_optimized,
                ops_eliminated: acc.ops_eliminated + c.ops_eliminated,
                fusions: acc.fusions + c.fusions,
                hoists: acc.hoists + c.hoists,
            }
        })
    }

    /// Dispatches one packet to its flow's shard and executes it through
    /// that shard's program cache (parse → cached compile → execute).
    pub fn process_one(
        &mut self,
        buf: &mut [u8],
        in_port: Port,
        now: Ticks,
    ) -> (Verdict, ProcessStats) {
        let idx = self.dispatch.shard_of(buf);
        let shard = &mut self.shards[idx];
        let Some(parsed) = parse_packet(buf) else {
            return (Verdict::Drop(DropReason::MalformedField), ProcessStats::default());
        };
        let program = shard.cache.lookup(&parsed, buf);
        if !program.admitted {
            return (Verdict::Drop(DropReason::ProgramRejected), ProcessStats::default());
        }
        shard.router.process_parsed(buf, &parsed, &program.chain, in_port, now)
    }
}

impl RouterNode for DataplaneRouter {
    fn process_packet(
        &mut self,
        buf: &mut [u8],
        in_port: u32,
        now: SimTime,
    ) -> (Verdict, ProcessStats) {
        self.process_one(buf, in_port, now)
    }

    fn mac_choice(&self) -> MacChoice {
        self.shards[0].router.state().mac_choice
    }

    fn registry(&self) -> &FnRegistry {
        self.shards[0].router.registry()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn attach_metrics(&mut self, registry: &Registry, node: usize) {
        let n = node.to_string();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let s = i.to_string();
            shard.router.attach_metrics(registry, &[("node", n.as_str()), ("shard", s.as_str())]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;

    fn factory(i: usize) -> DipRouter {
        let mut r = DipRouter::new(0, [7; 16]); // identical identity per shard
        let _ = i;
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(3));
        r
    }

    #[test]
    fn matches_single_router_verdicts() {
        let mut reference = factory(0);
        let mut dp = DataplaneRouter::new(4, Admission::Lint, factory);
        for i in 0..64u8 {
            let repr = dip_protocols::ip::dip32_packet(
                Ipv4Addr::new(10, 0, 0, i),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            );
            let mut a = repr.to_bytes(b"payload").unwrap();
            let mut b = a.clone();
            let (va, sa) = reference.process(&mut a, 0, 0);
            let (vb, sb) = dp.process_one(&mut b, 0, 0);
            assert_eq!(va, vb);
            assert_eq!(a, b, "post-execution bytes must match");
            assert_eq!(sa.fns_executed, sb.fns_executed);
        }
        let cs = dp.cache_stats();
        assert!(cs.misses <= 4, "one compile per shard at most");
    }

    #[test]
    fn runs_inside_the_simulator() {
        use dip_sim::engine::{Host, Network};
        use dip_wire::ndn::Name;
        use std::collections::HashMap;

        let name = Name::parse("/dataplane/demo");
        let mut net = Network::new(42);
        let node = DataplaneRouter::new(4, Admission::Lint, |_| {
            let mut r = DipRouter::new(0, [9; 16]);
            r.state_mut().name_fib.add_route(&name, NextHop::port(1));
            r
        });
        let r0 = net.add_router_node(Box::new(node));
        let consumer = net.add_host(Host::consumer(10));
        let producer = net.add_host(Host::producer(
            11,
            HashMap::from([(name.compact32(), b"batched content".to_vec())]),
        ));
        net.connect(consumer, 0, r0, 0, 1_000);
        net.connect(producer, 0, r0, 1, 1_000);
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(consumer, 0, interest, 0);
        net.run();
        let delivered = &net.host(consumer).unwrap().delivered;
        assert_eq!(delivered.len(), 1, "NDN retrieval through the sharded node");
        assert_eq!(delivered[0].payload, b"batched content");
        // The typed accessor correctly refuses to treat it as a DipRouter.
        assert!(net.router_mut(r0).is_err());
        assert!(net.router_node_mut(r0).is_ok());
    }
}

//! The per-worker program cache with static admission.
//!
//! Real traffic is a handful of *programs* (one FN chain per protocol)
//! carried by millions of packets. A worker therefore compiles each
//! distinct program once — registry lookups pinned to `Arc<dyn FieldOp>`s,
//! per-op costs, the §2.2 parallel-plan hazard analysis — and reuses the
//! [`CompiledChain`] for every packet of the batch that carries the same
//! triple-region bytes. The cache key is exactly what
//! [`ParsedPacket::program_bytes`] identifies: the FN triple region plus
//! the locations length and parallel flag.
//!
//! Admission runs `dipcheck` (the [`dip_verify::Checker`]) on first sight
//! of a program: a shard never accepts a chain with error-severity
//! diagnostics — structurally broken programs are refused at the door
//! instead of faulting per packet in the hot loop. The checker uses the
//! worker's own registry as semantics (so custom operation modules lint
//! with their real footprints) and the software resource budget (a
//! software dataplane has no PISA stage limits).
//!
//! When the worker's [`RouterConfig`] has `optimize` set, admission is
//! followed by the dipopt pass ([`dip_verify::analyze`] via
//! [`CompiledChain::compile_optimized`]): admitted programs get an
//! optimized execution plan attached, [`CacheStats`] counts what was
//! rewritten, and — in debug builds — the plan must survive a seeded
//! differential-equivalence smoke ([`dip_core::differential_smoke`])
//! before it is cached.

use dip_core::router::RouterConfig;
use dip_core::{CompiledChain, ParsedPacket};
use dip_fnops::FnRegistry;
use dip_verify::{Checker, FnProgram, ResourceBudget};
use std::collections::HashMap;

/// Whether a worker statically verifies programs before accepting them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Run `dipcheck` on first sight; refuse programs with errors.
    #[default]
    Lint,
    /// Accept everything (byte-exact parity with a bare `DipRouter`).
    Open,
}

/// A compiled, admission-checked program.
#[derive(Debug)]
pub struct CachedProgram {
    /// The resolved chain (valid for the owning worker's registry+config).
    pub chain: CompiledChain,
    /// `false` when `dipcheck` refused the program — the worker drops its
    /// packets without executing.
    pub admitted: bool,
    /// The cache key (program bytes + parallel flag + locations length),
    /// kept on the entry so a batch-local memo can revalidate a candidate
    /// index with one `memcmp` instead of a map probe.
    key: Vec<u8>,
}

/// Cache statistics (amortization evidence for the benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Programs compiled (first sight).
    pub misses: u64,
    /// Programs refused by admission.
    pub rejected: u64,
    /// Programs for which dipopt attached an optimized plan.
    pub programs_optimized: u64,
    /// Chain steps eliminated across optimized programs (dead key writes,
    /// redundant parses).
    pub ops_eliminated: u64,
    /// Adjacent-op fusions applied across optimized programs.
    pub fusions: u64,
    /// Key schedules hoisted to once-per-program across optimized programs.
    pub hoists: u64,
}

/// A per-worker map from program bytes to [`CachedProgram`].
///
/// Entries live in a dense `Vec` addressed by the small indexes
/// [`ProgramCache::resolve`] hands out, so a worker's batch loop can
/// resolve every packet first (phase 1) and execute against `&self`
/// borrows later (phase 2) without re-hashing anything.
pub struct ProgramCache {
    entries: HashMap<Vec<u8>, usize>,
    programs: Vec<CachedProgram>,
    checker: Checker,
    admission: Admission,
    registry: FnRegistry,
    config: RouterConfig,
    stats: CacheStats,
    /// Reused key buffer: cache hits allocate nothing.
    scratch: Vec<u8>,
}

impl ProgramCache {
    /// A cache compiling against `registry`/`config` (the owning worker's
    /// copies) under the given admission policy.
    pub fn new(registry: FnRegistry, config: RouterConfig, admission: Admission) -> Self {
        let checker =
            Checker::new().with_semantics(registry.clone()).with_budget(ResourceBudget::software());
        ProgramCache {
            entries: HashMap::new(),
            programs: Vec::new(),
            checker,
            admission,
            registry,
            config,
            stats: CacheStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Resolves `parsed` (from `buf`) to the dense index of its compiled
    /// program, compiling and admission-checking on first sight.
    ///
    /// `memo` is the batch-local fast path: callers pass the index of the
    /// previously resolved program (starting each batch from `None`) and
    /// a run of same-program packets — the common case, since real
    /// traffic is a handful of programs — revalidates with one byte
    /// comparison instead of a map probe per packet. This is where
    /// batching amortizes program resolution per *program run* rather
    /// than per packet.
    pub fn resolve(
        &mut self,
        parsed: &ParsedPacket,
        buf: &[u8],
        memo: &mut Option<usize>,
    ) -> usize {
        let program_bytes = parsed.program_bytes(buf);
        if let Some(idx) = *memo {
            // Memo hit: compare against the entry's stored key in place —
            // no key build, no hash, just one short memcmp.
            let key = &self.programs[idx].key;
            if key.len() == program_bytes.len() + 5
                && key[..program_bytes.len()] == *program_bytes
                && key[program_bytes.len()] == u8::from(parsed.parallel)
                && key[program_bytes.len() + 1..] == (parsed.loc_len as u32).to_be_bytes()
            {
                self.stats.hits += 1;
                return idx;
            }
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(program_bytes);
        self.scratch.push(u8::from(parsed.parallel));
        self.scratch.extend_from_slice(&(parsed.loc_len as u32).to_be_bytes());
        let idx = match self.entries.get(self.scratch.as_slice()) {
            Some(&idx) => {
                self.stats.hits += 1;
                idx
            }
            None => {
                self.stats.misses += 1;
                let admitted = match self.admission {
                    Admission::Open => true,
                    Admission::Lint => {
                        let program =
                            FnProgram::new(parsed.triples.clone(), parsed.loc_len, parsed.parallel);
                        !self.checker.check(&program).has_errors()
                    }
                };
                if !admitted {
                    self.stats.rejected += 1;
                }
                let compute_plan = parsed.parallel && self.config.parallel_enabled;
                let chain = if self.config.optimize && admitted {
                    let (chain, _facts) = CompiledChain::compile_optimized(
                        &parsed.triples,
                        &self.registry,
                        &self.config,
                        compute_plan,
                        parsed.loc_len,
                        parsed.parallel,
                    );
                    if let Some(summary) = chain.opt_summary() {
                        self.stats.programs_optimized += 1;
                        self.stats.ops_eliminated += u64::from(summary.ops_eliminated);
                        self.stats.fusions += u64::from(summary.fusions);
                        self.stats.hoists += u64::from(summary.hoists);
                        // Debug-build admission gate: before an optimized
                        // plan enters the cache, prove it byte-equivalent
                        // to the interpreted chain on a seeded corpus.
                        #[cfg(debug_assertions)]
                        if let Err(e) = dip_core::differential_smoke(
                            &parsed.triples,
                            parsed.loc_len,
                            parsed.parallel,
                            &self.registry,
                            0xd1f0 + self.stats.misses,
                        ) {
                            panic!("dipopt equivalence smoke failed at admission: {e}");
                        }
                    }
                    chain
                } else {
                    CompiledChain::compile(
                        &parsed.triples,
                        &self.registry,
                        &self.config,
                        compute_plan,
                    )
                };
                let idx = self.programs.len();
                self.programs.push(CachedProgram { chain, admitted, key: self.scratch.clone() });
                self.entries.insert(self.scratch.clone(), idx);
                idx
            }
        };
        *memo = Some(idx);
        idx
    }

    /// The program at a dense index handed out by [`ProgramCache::resolve`].
    pub fn get(&self, idx: usize) -> &CachedProgram {
        &self.programs[idx]
    }

    /// Resolves `parsed` (from `buf`) to its compiled program, compiling
    /// and admission-checking on first sight (single-packet front ends).
    pub fn lookup(&mut self, parsed: &ParsedPacket, buf: &[u8]) -> &CachedProgram {
        let mut memo = None;
        let idx = self.resolve(parsed, buf, &mut memo);
        &self.programs[idx]
    }

    /// Hit/miss/rejection counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct programs seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no program has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("programs", &self.entries.len())
            .field("stats", &self.stats)
            .field("admission", &self.admission)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::parse_packet;
    use dip_wire::ipv4::Ipv4Addr;

    fn cache(admission: Admission) -> ProgramCache {
        ProgramCache::new(FnRegistry::standard(), RouterConfig::default(), admission)
    }

    #[test]
    fn same_program_compiles_once() {
        let mut c = cache(Admission::Lint);
        for i in 0..10u8 {
            let buf = dip_protocols::ip::dip32_packet(
                Ipv4Addr::new(10, 0, 0, i),
                Ipv4Addr::new(1, 1, 1, 1),
                64,
            )
            .to_bytes(&[])
            .unwrap();
            let parsed = parse_packet(&buf).unwrap();
            let prog = c.lookup(&parsed, &buf);
            assert!(prog.admitted);
        }
        assert_eq!(c.stats(), CacheStats { hits: 9, misses: 1, ..Default::default() });
        assert_eq!(c.len(), 1, "ten flows, one program");
    }

    #[test]
    fn broken_program_is_refused_once() {
        use dip_wire::packet::DipRepr;
        use dip_wire::triple::{FnKey, FnTriple};
        // F_MAC before F_parm: a data-flow error dipcheck catches.
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(128, 128, FnKey::Parm),
            ],
            locations: vec![0; 68],
            ..Default::default()
        };
        let buf = repr.to_bytes(&[]).unwrap();
        let parsed = parse_packet(&buf).unwrap();

        let mut lint = cache(Admission::Lint);
        assert!(!lint.lookup(&parsed, &buf).admitted);
        assert!(!lint.lookup(&parsed, &buf).admitted, "cached refusal");
        assert_eq!(
            lint.stats(),
            CacheStats { hits: 1, misses: 1, rejected: 1, ..Default::default() }
        );

        let mut open = cache(Admission::Open);
        assert!(open.lookup(&parsed, &buf).admitted, "open admission accepts");
    }

    #[test]
    fn memo_short_circuits_same_program_runs() {
        let mut c = cache(Admission::Lint);
        let v4 = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(1, 1, 1, 1),
            64,
        )
        .to_bytes(&[])
        .unwrap();
        let v6 = dip_protocols::ip::dip128_packet(
            dip_wire::ipv6::Ipv6Addr::new([0xfd, 0, 0, 0, 0, 0, 0, 1]),
            dip_wire::ipv6::Ipv6Addr::new([0xfd, 0, 0, 0, 0, 0, 0, 2]),
            64,
        )
        .to_bytes(&[])
        .unwrap();
        let p4 = parse_packet(&v4).unwrap();
        let p6 = parse_packet(&v6).unwrap();

        let mut memo = None;
        let a = c.resolve(&p4, &v4, &mut memo);
        assert_eq!(memo, Some(a));
        // Same program again: memo revalidates, same index.
        assert_eq!(c.resolve(&p4, &v4, &mut memo), a);
        // Different program: memo mismatch falls back to the map/compile
        // path and repoints the memo.
        let b = c.resolve(&p6, &v6, &mut memo);
        assert_ne!(a, b);
        assert_eq!(memo, Some(b));
        assert_eq!(c.resolve(&p6, &v6, &mut memo), b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2, ..Default::default() });
        // The single-packet front end still works against the same store.
        assert!(c.lookup(&p4, &v4).admitted);
    }

    #[test]
    fn optimizing_cache_attaches_plans_and_counts_rewrites() {
        use dip_wire::xia::{Dag, DagNode, Xid, XidType};
        let mut config = RouterConfig::default();
        config.optimize = true;
        let mut c = ProgramCache::new(FnRegistry::standard(), config, Admission::Lint);

        // IPv4 chain: Match32 + Source fuse into one stage group.
        let v4 = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(1, 1, 1, 1),
            64,
        )
        .to_bytes(&[])
        .unwrap();
        let prog = c.lookup(&parse_packet(&v4).unwrap(), &v4);
        assert!(prog.admitted && prog.chain.is_optimized());

        // XIA chain: the redundant standalone DAG parse is eliminated.
        let dag = Dag::direct_with_fallback(
            DagNode::sink(XidType::Cid, Xid::derive(b"cid")),
            Xid::derive(b"ad"),
            Xid::derive(b"hid"),
        )
        .unwrap();
        let xia = dip_protocols::xia::packet(&dag, 64).to_bytes(&[]).unwrap();
        let prog = c.lookup(&parse_packet(&xia).unwrap(), &xia);
        assert!(prog.admitted && prog.chain.is_optimized());

        let stats = c.stats();
        assert_eq!(stats.programs_optimized, 2);
        assert_eq!(stats.fusions, 1, "ipv4 match+source fuse");
        assert_eq!(stats.ops_eliminated, 1, "xia dag parse eliminated");
    }

    #[test]
    fn parallel_flag_is_part_of_the_key() {
        use dip_wire::packet::DipRepr;
        use dip_wire::triple::{FnKey, FnTriple};
        let base = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations: vec![0; 8],
            ..Default::default()
        };
        let seq = base.to_bytes(&[]).unwrap();
        let par = DipRepr { parallel: true, ..base }.to_bytes(&[]).unwrap();
        let mut c = cache(Admission::Lint);
        c.lookup(&parse_packet(&seq).unwrap(), &seq);
        c.lookup(&parse_packet(&par).unwrap(), &par);
        assert_eq!(c.len(), 2, "sequential and parallel variants compile separately");
    }
}

//! A fixed-size lock-free single-producer/single-consumer ring.
//!
//! This is the NIC→worker queue of the dataplane: the dispatcher thread is
//! the single producer for each worker's ring and the worker is its single
//! consumer, so the classic Lamport queue applies — two monotonically
//! increasing positions, each written by exactly one side, synchronized
//! with acquire/release pairs and no locks or CAS loops on the hot path.
//!
//! Backpressure is explicit: [`RingProducer::try_push`] hands the value
//! back when the ring is full (the lossless caller spins), while
//! [`RingProducer::push_or_drop`] discards and counts in one step (NIC
//! drop semantics) — counting is not a separate call the caller can
//! forget. The drop counter is a [`dip_telemetry::Counter`] the caller
//! may share (see [`spsc_counted`]), so ring drops land directly in a
//! metrics registry; occupancy is exported per ring so the benchmark can
//! report where packets died.
//!
//! This module is the only place in the workspace that uses `unsafe`; the
//! invariants are spelled out on each block.

#![allow(unsafe_code)]

use dip_telemetry::Counter;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a hot atomic to its own cache line so the producer and consumer
/// positions never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// `capacity - 1`; capacity is a power of two so positions wrap by mask.
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring is shared between exactly one producer and one consumer
// thread (enforced by the non-Clone handle types below). Every slot is
// written by the producer strictly before the tail increment that makes it
// visible (Release) and read by the consumer strictly after observing that
// increment (Acquire), so no slot is ever accessed from two threads at
// once. `T: Send` is required because values cross threads.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Exclusive access (last Arc): drop any items still queued.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for pos in head..tail {
            let slot = &self.slots[pos & self.mask];
            // SAFETY: positions in [head, tail) hold initialized values the
            // consumer never popped; we have `&mut self`.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// Whether [`RingProducer::push_or_drop`] queued or discarded the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Dropped outcome usually changes what the caller returns"]
pub enum PushOutcome {
    /// The value was enqueued.
    Queued,
    /// The ring was full: the value was dropped and the drop counted.
    Dropped,
}

/// The producing half of an SPSC ring. Not cloneable: exactly one producer.
pub struct RingProducer<T> {
    shared: Arc<Shared<T>>,
    /// Cached copy of the consumer's head, refreshed only when the ring
    /// looks full — most pushes touch no shared cache line but the tail.
    cached_head: usize,
    /// Values discarded on backpressure; possibly shared with a registry.
    drops: Arc<Counter>,
}

/// The consuming half of an SPSC ring. Not cloneable: exactly one consumer.
pub struct RingConsumer<T> {
    shared: Arc<Shared<T>>,
    /// Cached copy of the producer's tail (same trick as `cached_head`).
    cached_tail: usize,
}

/// Creates a ring holding at most `capacity` items (rounded up to a power
/// of two, minimum 2) with a private drop counter.
pub fn spsc<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    spsc_counted(capacity, Arc::new(Counter::new()))
}

/// Like [`spsc`], but drops are counted on the caller's `drops` counter —
/// typically a `dip_drops_total{reason="queue_full"}` instance from a
/// telemetry registry, so ring drops appear in the unified ledger without
/// a second bookkeeping path.
pub fn spsc_counted<T: Send>(
    capacity: usize,
    drops: Arc<Counter>,
) -> (RingProducer<T>, RingConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(Shared {
        mask: cap - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        RingProducer { shared: Arc::clone(&shared), cached_head: 0, drops },
        RingConsumer { shared, cached_tail: 0 },
    )
}

impl<T> RingProducer<T> {
    /// Enqueues `value`, or hands it back when the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if tail - self.cached_head > self.shared.mask {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if tail - self.cached_head > self.shared.mask {
                return Err(value);
            }
        }
        let slot = &self.shared.slots[tail & self.shared.mask];
        // SAFETY: `tail - head <= mask` proves the consumer is done with
        // this slot (it was popped, or never written); only this producer
        // writes slots.
        unsafe { (*slot.get()).write(value) };
        // Release publishes the slot write to the consumer's Acquire load.
        self.shared.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Enqueues `value`, or — when the ring is full — drops it and counts
    /// the drop, in one step. Replaces the old `try_push` +
    /// `record_drop` pair, which let callers silently forget the count.
    pub fn push_or_drop(&mut self, value: T) -> PushOutcome {
        match self.try_push(value) {
            Ok(()) => PushOutcome::Queued,
            Err(rejected) => {
                drop(rejected);
                self.drops.inc();
                PushOutcome::Dropped
            }
        }
    }

    /// Counts one backpressure drop without consuming a value — for
    /// callers that recover the rejected value's allocation (buffer
    /// pools) instead of letting [`RingProducer::push_or_drop`] free it.
    /// The packet is still gone; only the buffer survives.
    pub fn note_drop(&self) {
        self.drops.inc();
    }

    /// Total packets discarded under backpressure on this ring.
    pub fn drops(&self) -> u64 {
        self.drops.get()
    }

    /// Items currently queued (racy snapshot; exact when quiescent).
    pub fn occupancy(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Acquire);
        tail - head
    }

    /// Usable slot count.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

impl<T> RingConsumer<T> {
    /// Dequeues the oldest item, or `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let slot = &self.shared.slots[head & self.shared.mask];
        // SAFETY: `head < tail` (Acquire above) proves the producer
        // published this slot; only this consumer reads slots, and the
        // head increment below is what lets the producer reuse it.
        let value = unsafe { (*slot.get()).assume_init_read() };
        // Release hands the slot back to the producer's Acquire load.
        self.shared.head.0.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Whether the ring has no queued items (racy snapshot).
    pub fn is_empty(&self) -> bool {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        head == self.shared.tail.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "full ring rejects");
        assert_eq!(tx.occupancy(), 4);
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn push_or_drop_counts_atomically() {
        let (mut tx, _rx) = spsc::<u8>(2);
        assert_eq!(tx.push_or_drop(1), PushOutcome::Queued);
        assert_eq!(tx.push_or_drop(2), PushOutcome::Queued);
        assert_eq!(tx.push_or_drop(3), PushOutcome::Dropped);
        assert_eq!(tx.drops(), 1, "the failed push counted its own drop");
    }

    #[test]
    fn shared_drop_counter_feeds_a_registry() {
        let counter = Arc::new(Counter::new());
        let (mut tx, _rx) = spsc_counted::<u8>(2, Arc::clone(&counter));
        let _ = tx.push_or_drop(1);
        let _ = tx.push_or_drop(2);
        let _ = tx.push_or_drop(3);
        let _ = tx.push_or_drop(4);
        assert_eq!(counter.get(), 2, "drops land on the caller's counter");
        assert_eq!(tx.drops(), 2);
    }

    #[test]
    fn drops_plus_deliveries_plus_occupancy_balance() {
        // The conservation law behind the unified accounting: every value
        // handed to the producer is delivered, still queued, or counted as
        // a drop — no silent loss, no double counting.
        let (mut tx, mut rx) = spsc::<u32>(4);
        let mut pushed = 0u64;
        let mut queued = 0u64;
        let mut popped = 0u64;
        for i in 0..10 {
            pushed += 1;
            if tx.push_or_drop(i) == PushOutcome::Queued {
                queued += 1;
            }
        }
        for _ in 0..2 {
            assert!(rx.try_pop().is_some());
            popped += 1;
        }
        for i in 10..13 {
            pushed += 1;
            if tx.push_or_drop(i) == PushOutcome::Queued {
                queued += 1;
            }
        }
        assert_eq!(queued, popped + tx.occupancy() as u64);
        assert_eq!(pushed, tx.drops() + popped + tx.occupancy() as u64);
        // Drain fully and re-check the balance at quiescence.
        while rx.try_pop().is_some() {
            popped += 1;
        }
        assert_eq!(tx.occupancy(), 0);
        assert_eq!(pushed, tx.drops() + popped);
    }

    #[test]
    fn cross_thread_balance_under_drop_pressure() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        const N: u64 = 10_000;
        let consumer = std::thread::spawn(move || {
            let mut popped = 0u64;
            let mut empty_streak = 0;
            loop {
                if rx.try_pop().is_some() {
                    popped += 1;
                    empty_streak = 0;
                } else {
                    empty_streak += 1;
                    if empty_streak > 10_000 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            popped
        });
        let mut queued = 0u64;
        for i in 0..N {
            if tx.push_or_drop(i) == PushOutcome::Queued {
                queued += 1;
            }
        }
        let popped = consumer.join().unwrap();
        assert_eq!(queued + tx.drops(), N, "every push queued or counted");
        assert_eq!(popped + tx.occupancy() as u64, queued, "every queued item accounted");
    }

    #[test]
    fn queued_items_dropped_with_ring() {
        use std::sync::atomic::AtomicUsize;
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc::<Counted>(4);
        tx.try_push(Counted::new()).unwrap();
        tx.try_push(Counted::new()).unwrap();
        drop(rx.try_pop());
        drop((tx, rx));
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "no leaks, no double drops");
    }

    #[test]
    fn drain_on_drop_with_heap_owning_items_after_wraparound() {
        // Non-trivial T: each item owns a heap allocation and holds an Arc
        // whose strong count proves exactly-once destruction. Push/pop past
        // the capacity boundary first so the queued range wraps the slot
        // array, then drop the ring with items still queued.
        let token = Arc::new(());
        {
            let (mut tx, mut rx) = spsc::<(Vec<u8>, Arc<()>)>(4);
            for i in 0..6u8 {
                // 6 pushes with interleaved pops: positions wrap the mask.
                tx.try_push((vec![i; 64], Arc::clone(&token))).unwrap();
                if i % 2 == 0 {
                    let (buf, _t) = rx.try_pop().unwrap();
                    assert_eq!(buf.len(), 64);
                }
            }
            assert_eq!(tx.occupancy(), 3, "items left queued across the wrap point");
            // Ring dropped here with 3 queued items.
        }
        assert_eq!(Arc::strong_count(&token), 1, "queued items dropped exactly once");
    }

    #[test]
    fn cross_thread_transfer_is_lossless() {
        const N: u64 = 20_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            // Single-core boxes need the consumer scheduled.
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        let mut sum = 0u64;
        while expected < N {
            if let Some(v) = rx.try_pop() {
                assert_eq!(v, expected, "FIFO order violated");
                sum = sum.wrapping_add(v);
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }
}

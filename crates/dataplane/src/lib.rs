//! # dip-dataplane — a multi-worker batched software dataplane runtime
//!
//! The paper's prototype forwards at line rate because a PISA pipeline is
//! hardware-parallel; a software reproduction gets its throughput the way
//! DPDK-class frameworks do, with exactly two ideas (DESIGN.md §8):
//!
//! * **flow sharding** — [`shard::FlowShard`] hashes the FN *locations
//!   area* (DIP's protocol-agnostic flow identity: IP address pairs, NDN
//!   names, XIA DAGs all live there) to one of N run-to-completion
//!   workers, each owning a private [`dip_core::DipRouter`]. Per-flow
//!   state (PIT entries, content-store lines) never crosses a shard
//!   boundary, so workers share nothing mutable;
//! * **batching** — each worker drains its [`ring`] into a
//!   [`batch::PacketBatch`] (a fixed-capacity, index-recycling buffer
//!   arena) and executes up to `batch_size` packets back-to-back. The
//!   per-worker [`program::ProgramCache`] compiles each distinct FN
//!   program once — registry lookups, per-op costs, the §2.2
//!   parallel-plan hazard analysis — and `dipcheck`-lints it before the
//!   shard accepts it, so the per-packet hot path is parse + execute.
//!
//! Control-plane updates ride [`snapshot::EpochCell`]: complete
//! [`snapshot::RouteSnapshot`]s swapped in with an atomic epoch bump and
//! picked up by workers at batch boundaries — the hot path never takes a
//! lock.
//!
//! Two front ends share those pieces:
//!
//! * [`runtime::Dataplane`] — real worker threads fed over lock-free SPSC
//!   rings with explicit backpressure ([`runtime::Backpressure`]) and
//!   per-ring drop/occupancy counters (the `dataplane_scale` benchmark);
//! * [`router::DataplaneRouter`] — the same sharding and program caches
//!   driven synchronously behind [`dip_sim::engine::RouterNode`], so all
//!   five paper protocols run unchanged inside the simulator.
//!
//! The determinism property — sharded batched execution produces
//! byte-identical results and identical PIT/CS state to a sequential
//! single-router run — is pinned by `tests/dataplane_determinism.rs` at
//! the workspace root for all five paper protocols.

#![deny(unsafe_code)] // `ring` opts back in locally, with safety comments.
#![deny(missing_docs)]

pub mod batch;
pub mod cputime;
pub mod program;
pub mod ring;
pub mod router;
pub mod runtime;
pub mod shard;
pub mod snapshot;

pub use batch::{PacketBatch, PacketSlot};
pub use cputime::ThreadCpuProbe;
pub use program::{Admission, CacheStats, ProgramCache};
pub use router::DataplaneRouter;
pub use runtime::{
    Backpressure, Dataplane, DataplaneConfig, DataplaneReport, PacketRecord, WorkerReport,
    WorkerStats,
};
pub use shard::FlowShard;
pub use snapshot::{EpochCell, EpochReader, RouteSnapshot};

//! `PacketBatch` — a fixed-capacity, index-recycling arena of packet
//! buffers.
//!
//! Batching is the second throughput lever of software dataplanes (after
//! sharding): a worker drains up to `capacity` packets from its ring,
//! executes them back-to-back so program compilation, route-snapshot
//! refresh, and cache-warm table state amortize across the whole batch,
//! then recycles every slot *without freeing the buffers*. A slot's
//! `Vec<u8>` keeps its allocation across batches, so the steady state
//! performs no per-packet allocation at all on the copy path.

use dip_tables::{Port, Ticks};

/// One occupied slot of a [`PacketBatch`].
#[derive(Debug, Default)]
pub struct PacketSlot {
    /// The packet bytes (mutated in place by FN execution).
    pub buf: Vec<u8>,
    /// Global admission sequence number (set by the dispatcher; total
    /// order across all workers for deterministic result merging).
    pub seq: u64,
    /// Ingress port.
    pub in_port: Port,
    /// Virtual arrival time.
    pub now: Ticks,
}

/// A fixed-capacity arena of packet slots with index recycling.
#[derive(Debug)]
pub struct PacketBatch {
    slots: Vec<PacketSlot>,
    /// Recycled slot indexes available for the next admission.
    free: Vec<usize>,
    /// Occupied slot indexes, in admission order.
    live: Vec<usize>,
}

impl PacketBatch {
    /// An empty batch of `capacity` slots (buffers allocated lazily on
    /// first use, then recycled forever).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, PacketSlot::default);
        PacketBatch {
            slots,
            free: (0..capacity).rev().collect(),
            live: Vec::with_capacity(capacity),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Whether every slot is occupied (time to execute the batch).
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Admits a packet by copying `bytes` into a recycled buffer. Returns
    /// the slot index, or `None` when the batch is full.
    pub fn push_bytes(
        &mut self,
        bytes: &[u8],
        seq: u64,
        in_port: Port,
        now: Ticks,
    ) -> Option<usize> {
        let idx = self.free.pop()?;
        let slot = &mut self.slots[idx];
        slot.buf.clear();
        slot.buf.extend_from_slice(bytes);
        slot.seq = seq;
        slot.in_port = in_port;
        slot.now = now;
        self.live.push(idx);
        Some(idx)
    }

    /// Admits an already-owned buffer (zero-copy handoff from a ring job).
    /// The displaced recycled buffer is returned so the caller can reuse
    /// its allocation. `None` when the batch is full.
    pub fn adopt(&mut self, buf: Vec<u8>, seq: u64, in_port: Port, now: Ticks) -> Option<Vec<u8>> {
        let idx = self.free.pop()?;
        let slot = &mut self.slots[idx];
        let old = std::mem::replace(&mut slot.buf, buf);
        slot.seq = seq;
        slot.in_port = in_port;
        slot.now = now;
        self.live.push(idx);
        Some(old)
    }

    /// The occupied slot indexes in admission order.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// Read access to a slot.
    pub fn slot(&self, idx: usize) -> &PacketSlot {
        &self.slots[idx]
    }

    /// Write access to a slot (FN execution mutates the buffer in place).
    pub fn slot_mut(&mut self, idx: usize) -> &mut PacketSlot {
        &mut self.slots[idx]
    }

    /// Runs `f` over every occupied slot in admission order, then recycles
    /// all of them (buffers keep their allocations).
    pub fn drain(&mut self, mut f: impl FnMut(&mut PacketSlot)) {
        for i in 0..self.live.len() {
            let idx = self.live[i];
            f(&mut self.slots[idx]);
        }
        self.recycle_all();
    }

    /// Recycles every occupied slot without touching the buffers.
    pub fn recycle_all(&mut self) {
        // Reverse keeps pop order equal to ascending slot index, matching
        // the initial free-list layout.
        while let Some(idx) = self.live.pop() {
            self.free.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_rejects_then_recycles() {
        let mut b = PacketBatch::new(2);
        assert!(b.push_bytes(b"one", 1, 0, 0).is_some());
        assert!(b.push_bytes(b"two", 2, 0, 0).is_some());
        assert!(b.is_full());
        assert!(b.push_bytes(b"three", 3, 0, 0).is_none());
        b.recycle_all();
        assert!(b.is_empty());
        assert!(b.push_bytes(b"four", 4, 0, 0).is_some());
    }

    #[test]
    fn drain_visits_in_admission_order_and_reuses_buffers() {
        let mut b = PacketBatch::new(4);
        for i in 0..4u64 {
            b.push_bytes(&[i as u8; 8], i, i as u32, i);
        }
        let mut seen = Vec::new();
        b.drain(|slot| seen.push(slot.seq));
        assert_eq!(seen, vec![0, 1, 2, 3]);

        // Refill: buffers must keep their 8-byte capacity (no realloc).
        let caps_before: Vec<usize> = (0..4).map(|i| b.slot(i).buf.capacity()).collect();
        for i in 0..4u64 {
            b.push_bytes(&[0xff; 4], i + 10, 0, 0);
        }
        let caps_after: Vec<usize> = (0..4).map(|i| b.slot(i).buf.capacity()).collect();
        assert_eq!(caps_before, caps_after, "recycling must not shrink allocations");
    }

    #[test]
    fn adopt_swaps_buffers() {
        let mut b = PacketBatch::new(1);
        b.push_bytes(&[1, 2, 3], 0, 0, 0);
        b.recycle_all();
        let recycled = b.adopt(vec![9; 16], 1, 2, 3).unwrap();
        assert_eq!(recycled, vec![1, 2, 3], "displaced buffer handed back");
        let idx = b.live()[0];
        assert_eq!(b.slot(idx).buf, vec![9; 16]);
        assert_eq!(b.slot(idx).in_port, 2);
    }
}

//! The multi-worker dataplane: dispatcher, worker threads, reports.
//!
//! The NIC→worker pipeline in software: a single dispatcher thread (the
//! caller of [`Dataplane::submit`]) stamps each packet with a global
//! admission sequence number, flow-hashes it to a worker, and pushes it
//! onto that worker's SPSC ring. Each worker runs to completion over its
//! own [`DipRouter`] — per-flow state (PIT, content store) lives only on
//! the shard that owns the flow, so workers share *nothing* mutable —
//! draining its ring in batches:
//!
//! 1. at each batch boundary, pick up any route-snapshot epoch swap
//!    (one atomic load when nothing changed);
//! 2. fill a [`PacketBatch`] from the ring (up to `batch_size`);
//! 3. **resolve phase** — parse every packet and resolve its program
//!    through the per-worker [`ProgramCache`] (compile + `dipcheck`
//!    admission on first sight, one map probe per program *run* within
//!    the batch thanks to a batch-local memo, cache hit for the rest of
//!    eternity);
//! 4. **execute phase** — run [`DipRouter::process_parsed`] over the
//!    resolved batch back-to-back, the two tight loops keeping parser
//!    and executor code hot instead of interleaving them per packet;
//! 5. recycle every slot without freeing buffers.
//!
//! Determinism: the global sequence numbers give submission a total
//! order, flow affinity gives each flow FIFO processing on one worker,
//! and [`DataplaneReport::sorted_outcomes`] merges per-worker results
//! back into submission order — so for flow-independent state the result
//! is byte-identical to a sequential run (pinned by the
//! `dataplane_determinism` test at the workspace root).

use crate::batch::PacketBatch;
use crate::cputime::ThreadCpuProbe;
use crate::program::{Admission, CacheStats, ProgramCache};
use crate::ring::{spsc, spsc_counted, PushOutcome, RingConsumer, RingProducer};
use crate::shard::FlowShard;
use crate::snapshot::{EpochCell, RouteSnapshot};
use dip_core::{parse_packet, DipRouter, ParsedPacket, Verdict};
use dip_fnops::DropReason;
use dip_tables::{Port, Ticks};
use dip_telemetry::{Counter, Gauge, Histogram, OutcomeCounters, Registry, Snapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Bounded-spin budget before a waiting thread parks: both the blocked
/// dispatcher (full ring) and an idle worker (empty ring) yield this many
/// times first, so the common sub-microsecond wait never pays a park.
const SPIN_YIELDS: u32 = 64;
/// First park interval once the spin budget is exhausted.
const PARK_MIN: std::time::Duration = std::time::Duration::from_micros(5);
/// Park backoff cap: bounds both wasted CPU on long idles and the added
/// latency when work arrives while the thread is parked.
const PARK_MAX: std::time::Duration = std::time::Duration::from_micros(200);

/// Spin-then-park wait state shared by the dispatcher's lossless submit
/// and the workers' idle loop. Call [`Waiter::wait`] each time progress
/// is impossible and [`Waiter::reset`] when it is made; the waiter yields
/// through its spin budget, then parks with exponential backoff — so a
/// starved peer gets the core back instead of competing with a spin loop
/// (the pre-fix behavior that cost the 1-vs-2-worker sweep a full core).
struct Waiter {
    spins: u32,
    park: std::time::Duration,
    parks: u64,
}

impl Waiter {
    fn new() -> Self {
        Waiter { spins: 0, park: PARK_MIN, parks: 0 }
    }

    fn wait(&mut self) {
        if self.spins < SPIN_YIELDS {
            self.spins += 1;
            std::thread::yield_now();
        } else {
            self.parks += 1;
            std::thread::park_timeout(self.park);
            self.park = (self.park * 2).min(PARK_MAX);
        }
    }

    fn reset(&mut self) {
        self.spins = 0;
        self.park = PARK_MIN;
    }
}

/// One packet in flight between the dispatcher and a worker.
#[derive(Debug)]
pub struct Job {
    /// Owned packet bytes.
    pub packet: Vec<u8>,
    /// Global admission sequence number.
    pub seq: u64,
    /// Ingress port.
    pub in_port: Port,
    /// Virtual arrival time.
    pub now: Ticks,
}

/// What `submit` does when the owning worker's ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Wait until the worker frees a slot (lossless; the determinism
    /// test and finite-injection drains use this). The wait is a bounded
    /// spin followed by parking — it must not burn a core, because on
    /// oversubscribed hosts the core it would burn is the one the
    /// blocked-on worker needs to free the slot.
    #[default]
    Block,
    /// Count a ring drop and discard the packet (NIC semantics; the
    /// wall-clock open-loop driver uses this so injection never stalls).
    Drop,
}

/// Dataplane tuning knobs.
#[derive(Debug, Clone)]
pub struct DataplaneConfig {
    /// Worker (shard) count.
    pub workers: usize,
    /// Packets executed per batch.
    pub batch_size: usize,
    /// Per-worker ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Full-ring policy.
    pub backpressure: Backpressure,
    /// Program admission policy.
    pub admission: Admission,
    /// Record every packet's verdict and final bytes (tests; the
    /// benchmark leaves this off to measure the pure pipeline).
    pub record_outcomes: bool,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            workers: 1,
            batch_size: 32,
            ring_capacity: 1024,
            backpressure: Backpressure::Block,
            admission: Admission::Lint,
            record_outcomes: false,
        }
    }
}

/// The recorded result of one packet (when `record_outcomes` is on).
///
/// Not to be confused with [`dip_telemetry::PacketOutcome`], the
/// three-way accounting taxonomy: a record keeps the full verdict and
/// final bytes for test-time comparison.
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Global admission sequence number.
    pub seq: u64,
    /// The router's decision.
    pub verdict: Verdict,
    /// The packet bytes after FN execution (tags updated in place).
    pub bytes: Vec<u8>,
    /// Ingress port.
    pub in_port: Port,
}

/// Per-worker counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Packets executed.
    pub processed: u64,
    /// Batches executed.
    pub batches: u64,
    /// `Forward` verdicts.
    pub forwarded: u64,
    /// Locally terminated packets (deliver/consume/cache-hit).
    pub local: u64,
    /// `Notify` verdicts.
    pub notified: u64,
    /// `Drop` verdicts (any reason, including admission refusals).
    pub dropped: u64,
    /// Router-executed FNs (amortization denominator).
    pub fns_executed: u64,
    /// Program-cache counters.
    pub cache: CacheStats,
    /// Route-snapshot swaps picked up.
    pub epoch_refreshes: u64,
}

/// Everything a worker hands back at shutdown.
#[derive(Debug)]
pub struct WorkerReport {
    /// Counters.
    pub stats: WorkerStats,
    /// Recorded outcomes in this worker's processing order (ascending
    /// `seq` per flow; merge with [`DataplaneReport::sorted_outcomes`]).
    pub outcomes: Vec<PacketRecord>,
    /// The worker's router, returned for state inspection (PIT/CS
    /// digests in the determinism test).
    pub router: DipRouter,
}

/// The final report of a dataplane run.
#[derive(Debug)]
pub struct DataplaneReport {
    /// One report per worker, indexed by shard.
    pub workers: Vec<WorkerReport>,
    /// Packets discarded at each ring under [`Backpressure::Drop`].
    pub ring_drops: Vec<u64>,
    /// Packets accepted by `submit`.
    pub submitted: u64,
    /// The telemetry registry the run reported into; snapshot it to check
    /// the accounting identity (forwarded + consumed + drops == injected).
    pub registry: Registry,
}

impl DataplaneReport {
    /// All recorded outcomes merged into global submission order.
    pub fn sorted_outcomes(&self) -> Vec<&PacketRecord> {
        let mut all: Vec<&PacketRecord> =
            self.workers.iter().flat_map(|w| w.outcomes.iter()).collect();
        all.sort_by_key(|o| o.seq);
        all
    }

    /// Total packets executed across workers.
    pub fn total_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.processed).sum()
    }

    /// Total ring drops across workers.
    pub fn total_ring_drops(&self) -> u64 {
        self.ring_drops.iter().sum()
    }
}

struct WorkerHandle {
    producer: RingProducer<Job>,
    handle: JoinHandle<WorkerReport>,
    /// `dip_ring_occupancy{worker=i}`; refreshed by `metrics_snapshot`.
    occupancy: Arc<Gauge>,
    /// Consumer half of the buffer-recycle ring: the worker returns the
    /// `Vec<u8>` displaced from each batch slot so [`Dataplane::submit_bytes`]
    /// can refill it instead of allocating.
    recycle: RingConsumer<Vec<u8>>,
    /// Dispatcher-local buffer stash (ring-drop reclaims, recycle bursts).
    stash: Vec<Vec<u8>>,
    /// Live `dip_worker_processed_total{worker=i}` (readable mid-run).
    processed: Arc<Counter>,
    /// The worker thread's CPU clock, published once at spawn.
    cpu: Arc<OnceLock<ThreadCpuProbe>>,
    /// Unparks the worker (set after spawn; workers park when idle).
    thread: std::thread::Thread,
}

/// A running multi-worker dataplane.
pub struct Dataplane {
    workers: Vec<WorkerHandle>,
    shard: FlowShard,
    routes: Arc<EpochCell<RouteSnapshot>>,
    stop: Arc<AtomicBool>,
    backpressure: Backpressure,
    seq: u64,
    submitted: u64,
    /// `dip_submit_pool_misses_total`: `submit_bytes` calls that found no
    /// recycled buffer and had to allocate. Bounded by the buffers in
    /// flight (ring + batch), NOT by the packet count — the pin that the
    /// steady-state submit path is allocation-free.
    pool_misses: Arc<Counter>,
    registry: Registry,
}

impl Dataplane {
    /// Starts `config.workers` worker threads; `factory(i)` builds worker
    /// `i`'s router. For deterministic cross-worker results the factory
    /// should give every worker identical tables, secrets and node id
    /// (each flow only ever sees one of them).
    pub fn start(config: DataplaneConfig, factory: impl Fn(usize) -> DipRouter) -> Self {
        let n = config.workers.max(1);
        let registry = Registry::new();
        let routes = Arc::new(EpochCell::new(RouteSnapshot::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let w = i.to_string();
            let labels: [(&str, &str); 1] = [("worker", w.as_str())];
            let telemetry = WorkerTelemetry::register(&registry, &labels);
            // The ring drop counter IS `dip_drops_total{reason=queue_full}`:
            // a packet refused at the ring never reaches a worker, so it
            // appears in the drop taxonomy and nowhere else.
            let (producer, consumer) = spsc_counted::<Job>(
                config.ring_capacity,
                telemetry.outcomes.drop_counter(DropReason::QueueFull),
            );
            let occupancy =
                registry.gauge("dip_ring_occupancy", "Jobs queued on the worker ring", &labels);
            registry
                .gauge("dip_ring_capacity", "Ring capacity (rounded to a power of two)", &labels)
                .set(producer.capacity() as i64);
            let mut router = factory(i);
            router.attach_metrics(&registry, &labels);
            let cache = ProgramCache::new(
                router.registry().clone(),
                router.config().clone(),
                config.admission,
            );
            let routes = Arc::clone(&routes);
            let stop = Arc::clone(&stop);
            let (batch_size, record) = (config.batch_size, config.record_outcomes);
            // Buffer-recycle ring (worker → dispatcher): sized to hold
            // every buffer that can be in flight (job ring + batch), so
            // a worker never has to discard a returnable allocation.
            let (recycle_tx, recycle) =
                spsc::<Vec<u8>>(producer.capacity() + config.batch_size.max(1));
            let processed = Arc::clone(&telemetry.processed);
            let cpu: Arc<OnceLock<ThreadCpuProbe>> = Arc::new(OnceLock::new());
            let cpu_slot = Arc::clone(&cpu);
            let handle = std::thread::Builder::new()
                .name(format!("dip-worker-{i}"))
                .spawn(move || {
                    let _ = cpu_slot.set(ThreadCpuProbe::current());
                    worker_loop(
                        router, cache, consumer, recycle_tx, routes, stop, batch_size, record,
                        telemetry,
                    )
                })
                .expect("spawn dataplane worker");
            let thread = handle.thread().clone();
            workers.push(WorkerHandle {
                producer,
                handle,
                occupancy,
                recycle,
                stash: Vec::new(),
                processed,
                cpu,
                thread,
            });
        }
        let pool_misses = registry.counter(
            "dip_submit_pool_misses_total",
            "submit_bytes calls that allocated because no recycled buffer was available",
            &[],
        );
        Dataplane {
            workers,
            shard: FlowShard::new(n),
            routes,
            stop,
            backpressure: config.backpressure,
            seq: 0,
            submitted: 0,
            pool_misses,
            registry,
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker shard `packet` would be dispatched to — exposed so
    /// load-generation drivers (the `dip-workload` open-loop queue model)
    /// can mirror the dispatcher's flow placement without re-implementing
    /// the hash.
    pub fn shard_of(&self, packet: &[u8]) -> usize {
        self.shard.shard_of(packet)
    }

    /// Capacity of worker `worker`'s ring after power-of-two rounding —
    /// the bound a driver-side queue model must apply to count
    /// injection-side `queue_full` drops the way the real ring would.
    pub fn ring_capacity(&self, worker: usize) -> usize {
        self.workers[worker].producer.capacity()
    }

    /// Cumulative CPU nanoseconds worker `worker`'s thread has spent
    /// on-CPU, or `None` when the host exposes no per-thread clock (or
    /// the worker has not yet published its probe). Sampled at window
    /// boundaries by the wall-clock driver; costs one small /proc read.
    pub fn worker_cpu_ns(&self, worker: usize) -> Option<u64> {
        self.workers[worker].cpu.get()?.cpu_ns()
    }

    /// Live count of packets worker `worker` has executed — monotonic, so
    /// window deltas are exact even while the dataplane runs.
    pub fn worker_processed(&self, worker: usize) -> u64 {
        self.workers[worker].processed.get()
    }

    /// `submit_bytes` calls that allocated because no recycled buffer was
    /// available. Bounded by buffers in flight, not by packets submitted.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.get()
    }

    /// Flow-hashes `packet` to its worker and enqueues it. Returns the
    /// assigned sequence number, or `None` when the ring was full under
    /// [`Backpressure::Drop`].
    pub fn submit(&mut self, packet: Vec<u8>, in_port: Port, now: Ticks) -> Option<u64> {
        let shard = self.shard.shard_of(&packet);
        let seq = self.seq;
        self.seq += 1;
        let mut job = Job { packet, seq, in_port, now };
        let w = &mut self.workers[shard];
        let producer = &mut w.producer;
        match self.backpressure {
            // One call both enqueues-or-discards and keeps the drop
            // counter consistent with what actually happened to the job.
            Backpressure::Drop => match producer.push_or_drop(job) {
                PushOutcome::Queued => {
                    self.submitted += 1;
                    Some(seq)
                }
                PushOutcome::Dropped => None,
            },
            Backpressure::Block => {
                let mut waiter = Waiter::new();
                loop {
                    match producer.try_push(job) {
                        Ok(()) => {
                            self.submitted += 1;
                            return Some(seq);
                        }
                        Err(back) => {
                            job = back;
                            // On oversubscribed hosts the blocked-on worker
                            // needs this core to free a slot: park instead
                            // of spinning (satellite 3), and make sure the
                            // worker is not itself parked idle.
                            w.thread.unpark();
                            waiter.wait();
                        }
                    }
                }
            }
        }
    }

    /// Like [`Dataplane::submit`], but copies `bytes` into a recycled
    /// buffer instead of taking ownership of a caller allocation — the
    /// steady-state hot path of the wall-clock driver. Buffers displaced
    /// from worker batch slots come back over the per-worker recycle ring;
    /// once every in-flight buffer exists, this path performs no
    /// allocation at all (`dip_submit_pool_misses_total` stays bounded by
    /// buffers in flight, which the allocation-free test pins).
    pub fn submit_bytes(&mut self, bytes: &[u8], in_port: Port, now: Ticks) -> Option<u64> {
        let shard = self.shard.shard_of(bytes);
        let mut buf = {
            let w = &mut self.workers[shard];
            // Burst-drain the recycle ring into the stash so the ring
            // never backs up against the worker.
            while let Some(b) = w.recycle.try_pop() {
                w.stash.push(b);
            }
            w.stash.pop().unwrap_or_else(|| {
                self.pool_misses.inc();
                Vec::new()
            })
        };
        buf.clear();
        buf.extend_from_slice(bytes);
        let seq = self.seq;
        self.seq += 1;
        let mut job = Job { packet: buf, seq, in_port, now };
        let w = &mut self.workers[shard];
        match self.backpressure {
            Backpressure::Drop => match w.producer.try_push(job) {
                Ok(()) => {
                    self.submitted += 1;
                    Some(seq)
                }
                Err(back) => {
                    // The packet is dropped (and counted), but its buffer
                    // survives into the stash — overload must not turn
                    // into an allocation storm.
                    w.producer.note_drop();
                    w.stash.push(back.packet);
                    None
                }
            },
            Backpressure::Block => {
                let mut waiter = Waiter::new();
                loop {
                    match w.producer.try_push(job) {
                        Ok(()) => {
                            self.submitted += 1;
                            return Some(seq);
                        }
                        Err(back) => {
                            job = back;
                            w.thread.unpark();
                            waiter.wait();
                        }
                    }
                }
            }
        }
    }

    /// Publishes a new route snapshot; every worker picks it up at its
    /// next batch boundary without the hot path taking a lock.
    pub fn publish_routes(&self, snapshot: RouteSnapshot) {
        self.routes.publish(snapshot);
    }

    /// The epoch cell the workers read routes from — hand this to a
    /// control plane (`ControlNode::mirror_into`) so its published
    /// snapshots reach the threaded workers directly.
    pub fn routes_cell(&self) -> Arc<EpochCell<RouteSnapshot>> {
        Arc::clone(&self.routes)
    }

    /// Current occupancy of each worker's ring.
    pub fn ring_occupancy(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.producer.occupancy()).collect()
    }

    /// The telemetry registry every worker (and its router) reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Refreshes the ring-occupancy gauges and snapshots the registry.
    ///
    /// Safe to call while the dataplane runs: counters are monotonic, so
    /// the snapshot is a consistent lower bound even mid-batch.
    pub fn metrics_snapshot(&self) -> Snapshot {
        for w in &self.workers {
            w.occupancy.set(w.producer.occupancy() as i64);
        }
        self.registry.snapshot()
    }

    /// Drains the rings, stops the workers, and collects their reports.
    pub fn shutdown(self) -> DataplaneReport {
        self.stop.store(true, Ordering::Release);
        // Idle workers may be parked; wake them so they observe `stop`
        // without waiting out a park timeout.
        for w in &self.workers {
            w.thread.unpark();
        }
        let mut reports = Vec::with_capacity(self.workers.len());
        let mut ring_drops = Vec::with_capacity(self.workers.len());
        for w in self.workers {
            ring_drops.push(w.producer.drops());
            reports.push(w.handle.join().expect("dataplane worker panicked"));
            w.occupancy.set(0);
        }
        DataplaneReport {
            workers: reports,
            ring_drops,
            submitted: self.submitted,
            registry: self.registry,
        }
    }
}

/// Packets-per-batch histogram bounds: powers of two up to a generous
/// batch size.
const BATCH_FILL_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The counters one worker thread reports into the dataplane [`Registry`].
///
/// Registered on the dispatcher thread (so registration order is
/// deterministic), then moved into the worker.
struct WorkerTelemetry {
    outcomes: OutcomeCounters,
    /// Live packets-executed counter, also read by the dispatcher through
    /// [`Dataplane::worker_processed`] for windowed rate measurement.
    processed: Arc<Counter>,
    /// Times the idle loop exhausted its spin budget and parked.
    idle_parks: Arc<Counter>,
    batches: Arc<Counter>,
    batch_fill: Arc<Histogram>,
    fns_executed: Arc<Counter>,
    epoch_refreshes: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_rejected: Arc<Counter>,
    programs_optimized: Arc<Counter>,
    opt_ops_eliminated: Arc<Counter>,
    opt_fusions: Arc<Counter>,
    opt_hoists: Arc<Counter>,
    /// Cache totals already exported; `sync_cache` publishes the delta.
    cache_seen: CacheStats,
}

impl WorkerTelemetry {
    fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        WorkerTelemetry {
            outcomes: OutcomeCounters::register(registry, labels),
            processed: registry.counter(
                "dip_worker_processed_total",
                "Packets executed (live; readable mid-run)",
                labels,
            ),
            idle_parks: registry.counter(
                "dip_worker_idle_parks_total",
                "Idle-loop parks after the spin budget was exhausted",
                labels,
            ),
            batches: registry.counter("dip_worker_batches_total", "Batches executed", labels),
            batch_fill: registry.histogram(
                "dip_worker_batch_fill",
                "Packets per executed batch",
                labels,
                &BATCH_FILL_BOUNDS,
            ),
            fns_executed: registry.counter(
                "dip_worker_fns_executed_total",
                "Router-executed FN operations",
                labels,
            ),
            epoch_refreshes: registry.counter(
                "dip_worker_epoch_refreshes_total",
                "Route-snapshot swaps picked up at batch boundaries",
                labels,
            ),
            cache_hits: registry.counter(
                "dip_program_cache_hits_total",
                "Program-cache hits",
                labels,
            ),
            cache_misses: registry.counter(
                "dip_program_cache_misses_total",
                "Program-cache misses (compile + admission on first sight)",
                labels,
            ),
            cache_rejected: registry.counter(
                "dip_program_cache_rejected_total",
                "Programs refused admission by dipcheck",
                labels,
            ),
            programs_optimized: registry.counter(
                "dip_programs_optimized_total",
                "Admitted programs that got a dipopt execution plan",
                labels,
            ),
            opt_ops_eliminated: registry.counter(
                "dip_opt_ops_eliminated_total",
                "Chain steps eliminated by dipopt across cached programs",
                labels,
            ),
            opt_fusions: registry.counter(
                "dip_opt_fusions_total",
                "Adjacent-op fusions applied by dipopt across cached programs",
                labels,
            ),
            opt_hoists: registry.counter(
                "dip_opt_hoists_total",
                "Key schedules hoisted by dipopt across cached programs",
                labels,
            ),
            cache_seen: CacheStats::default(),
        }
    }

    /// Publishes the program-cache counters as deltas against the last
    /// sync, so mid-run snapshots see live values.
    fn sync_cache(&mut self, stats: CacheStats) {
        self.cache_hits.add(stats.hits - self.cache_seen.hits);
        self.cache_misses.add(stats.misses - self.cache_seen.misses);
        self.cache_rejected.add(stats.rejected - self.cache_seen.rejected);
        self.programs_optimized.add(stats.programs_optimized - self.cache_seen.programs_optimized);
        self.opt_ops_eliminated.add(stats.ops_eliminated - self.cache_seen.ops_eliminated);
        self.opt_fusions.add(stats.fusions - self.cache_seen.fusions);
        self.opt_hoists.add(stats.hoists - self.cache_seen.hoists);
        self.cache_seen = stats;
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    mut router: DipRouter,
    mut cache: ProgramCache,
    mut ring: RingConsumer<Job>,
    mut recycle_tx: RingProducer<Vec<u8>>,
    routes: Arc<EpochCell<RouteSnapshot>>,
    stop: Arc<AtomicBool>,
    batch_size: usize,
    record_outcomes: bool,
    mut telemetry: WorkerTelemetry,
) -> WorkerReport {
    let mut reader = routes.reader();
    let mut batch = PacketBatch::new(batch_size);
    let mut stats = WorkerStats::default();
    let mut outcomes = Vec::new();
    let mut idle = Waiter::new();
    // Reused resolve-phase scratch: per-packet parse + program index
    // (`None` = malformed), filled in admission order each batch.
    let mut resolved: Vec<Option<(ParsedPacket, usize)>> = Vec::with_capacity(batch_size.max(1));
    loop {
        // Batch boundary: one atomic load unless the control plane moved.
        if reader.refresh() {
            reader.get().apply(router.state_mut());
            stats.epoch_refreshes += 1;
            telemetry.epoch_refreshes.inc();
        }
        while !batch.is_full() {
            match ring.try_pop() {
                Some(job) => {
                    // The buffer displaced from the slot goes back to the
                    // dispatcher for refilling; the recycle ring is sized
                    // for all buffers in flight, so this only fails once
                    // the dispatcher has stopped draining it (shutdown),
                    // when freeing is the right outcome anyway.
                    if let Some(old) = batch.adopt(job.packet, job.seq, job.in_port, job.now) {
                        let _ = recycle_tx.try_push(old);
                    }
                }
                None => break,
            }
        }
        if batch.is_empty() {
            if stop.load(Ordering::Acquire) && ring.is_empty() {
                break;
            }
            let before = idle.parks;
            idle.wait();
            if idle.parks > before {
                telemetry.idle_parks.inc();
            }
            continue;
        }
        idle.reset();
        stats.batches += 1;
        telemetry.batches.inc();
        telemetry.batch_fill.observe(batch.len() as u64);
        // Resolve phase: parse + program resolution for the whole batch.
        // The memo starts fresh per batch, so a batch full of one program
        // — the common case — costs a single map probe; the rest of the
        // packets revalidate with one byte comparison each.
        resolved.clear();
        let mut memo = None;
        for pos in 0..batch.len() {
            let slot = batch.slot(batch.live()[pos]);
            resolved.push(parse_packet(&slot.buf).map(|parsed| {
                let idx = cache.resolve(&parsed, &slot.buf, &mut memo);
                (parsed, idx)
            }));
        }
        // Execute phase: run the resolved batch back-to-back.
        for (pos, res) in resolved.iter().enumerate() {
            let slot_idx = batch.live()[pos];
            let slot = batch.slot_mut(slot_idx);
            let (verdict, pstats) = match res {
                None => (Verdict::Drop(DropReason::MalformedField), Default::default()),
                Some((parsed, idx)) => {
                    let program = cache.get(*idx);
                    if program.admitted {
                        router.process_parsed(
                            &mut slot.buf,
                            parsed,
                            &program.chain,
                            slot.in_port,
                            slot.now,
                        )
                    } else {
                        (Verdict::Drop(DropReason::ProgramRejected), Default::default())
                    }
                }
            };
            stats.processed += 1;
            stats.fns_executed += u64::from(pstats.fns_executed);
            telemetry.fns_executed.add(u64::from(pstats.fns_executed));
            telemetry.outcomes.record(verdict.outcome());
            match &verdict {
                Verdict::Forward(_) => stats.forwarded += 1,
                Verdict::Deliver | Verdict::Consumed | Verdict::RespondCached(_) => {
                    stats.local += 1
                }
                Verdict::Notify(_) => stats.notified += 1,
                Verdict::Drop(_) => stats.dropped += 1,
            }
            if record_outcomes {
                outcomes.push(PacketRecord {
                    seq: slot.seq,
                    verdict,
                    bytes: slot.buf.clone(),
                    in_port: slot.in_port,
                });
            }
        }
        telemetry.processed.add(batch.len() as u64);
        batch.recycle_all();
        telemetry.sync_cache(cache.stats());
    }
    stats.cache = cache.stats();
    telemetry.sync_cache(stats.cache);
    WorkerReport { stats, outcomes, router }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;

    fn factory(i: usize) -> DipRouter {
        let mut r = DipRouter::new(i as u64, [0x42; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        r
    }

    fn dip32(i: u32) -> Vec<u8> {
        dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
            Ipv4Addr::new(1, 1, 1, 1),
            64,
        )
        .to_bytes(&[0u8; 32])
        .unwrap()
    }

    #[test]
    fn counts_add_up_across_workers_and_batches() {
        let config = DataplaneConfig { workers: 4, batch_size: 8, ..Default::default() };
        let mut dp = Dataplane::start(config, factory);
        for i in 0..400 {
            assert!(dp.submit(dip32(i), 0, u64::from(i)).is_some());
        }
        let report = dp.shutdown();
        assert_eq!(report.total_processed(), 400);
        assert_eq!(report.submitted, 400);
        assert_eq!(report.workers.iter().map(|w| w.stats.forwarded).sum::<u64>(), 400);
        assert_eq!(report.total_ring_drops(), 0);
        // One program, compiled at most once per worker.
        let misses: u64 = report.workers.iter().map(|w| w.stats.cache.misses).sum();
        assert!(misses <= 4, "program compiled more than once per worker: {misses}");
    }

    #[test]
    fn drop_backpressure_counts_ring_drops() {
        // One worker, tiny ring, worker parked behind a full pipe: some
        // packets must be dropped and counted rather than blocking.
        let config = DataplaneConfig {
            workers: 1,
            batch_size: 1,
            ring_capacity: 2,
            backpressure: Backpressure::Drop,
            ..Default::default()
        };
        let mut dp = Dataplane::start(config, factory);
        let mut accepted = 0u64;
        for i in 0..5_000 {
            if dp.submit(dip32(i), 0, 0).is_some() {
                accepted += 1;
            }
        }
        let report = dp.shutdown();
        assert_eq!(report.total_processed(), accepted);
        assert_eq!(report.submitted, accepted);
        assert_eq!(report.total_ring_drops() + accepted, 5_000);
    }

    #[test]
    fn outcomes_merge_into_submission_order() {
        let config = DataplaneConfig {
            workers: 3,
            batch_size: 4,
            record_outcomes: true,
            ..Default::default()
        };
        let mut dp = Dataplane::start(config, factory);
        for i in 0..60 {
            dp.submit(dip32(i), 0, 0);
        }
        let report = dp.shutdown();
        let merged = report.sorted_outcomes();
        assert_eq!(merged.len(), 60);
        let seqs: Vec<u64> = merged.iter().map(|o| o.seq).collect();
        assert_eq!(seqs, (0..60).collect::<Vec<u64>>());
        assert!(merged.iter().all(|o| o.verdict == Verdict::Forward(vec![1])));
    }

    #[test]
    fn epoch_swap_reroutes_without_restart() {
        let config = DataplaneConfig { workers: 2, record_outcomes: true, ..Default::default() };
        // Workers start with NO route for 99/8.
        let mut dp = Dataplane::start(config, |i| DipRouter::new(i as u64, [1; 16]));
        let unrouted = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(99, 0, 0, 1),
            Ipv4Addr::new(1, 1, 1, 1),
            64,
        )
        .to_bytes(&[])
        .unwrap();
        dp.submit(unrouted.clone(), 0, 0);
        // Let the first packet drain before publishing the new table, so
        // the drop-then-forward order is deterministic.
        while dp.ring_occupancy().iter().sum::<usize>() > 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut snap = RouteSnapshot::default();
        snap.ipv4_fib.add_route(Ipv4Addr::new(99, 0, 0, 0), 8, NextHop::port(7));
        dp.publish_routes(snap);
        dp.submit(unrouted, 0, 1);
        let report = dp.shutdown();
        let merged = report.sorted_outcomes();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].verdict, Verdict::Drop(DropReason::NoRoute));
        assert_eq!(merged[1].verdict, Verdict::Forward(vec![7]), "epoch swap took effect");
        assert!(report.workers.iter().any(|w| w.stats.epoch_refreshes > 0));
    }

    #[test]
    fn registry_accounts_for_every_submitted_packet() {
        // Mixed traffic under Drop backpressure: routed, unrouted and
        // malformed packets plus ring drops must partition the injected
        // total exactly — the tentpole accounting identity.
        let config = DataplaneConfig {
            workers: 2,
            batch_size: 4,
            ring_capacity: 8,
            backpressure: Backpressure::Drop,
            ..Default::default()
        };
        let mut dp = Dataplane::start(config, factory);
        let mut injected = 0u64;
        for i in 0..2_000 {
            let pkt = match i % 3 {
                0 => dip32(i),
                1 => dip_protocols::ip::dip32_packet(
                    Ipv4Addr::new(99, 0, (i >> 8) as u8, i as u8),
                    Ipv4Addr::new(1, 1, 1, 1),
                    64,
                )
                .to_bytes(&[])
                .unwrap(),
                _ => vec![0xff; 6],
            };
            dp.submit(pkt, 0, 0);
            injected += 1;
        }
        // A live snapshot must not panic or tear (counters are monotonic).
        let live = dp.metrics_snapshot();
        assert!(live.get("dip_ring_capacity") > 0);
        let report = dp.shutdown();
        let snap = report.registry.snapshot();
        let forwarded = snap.sum_where("dip_packets_total", &[("outcome", "forwarded")]);
        let consumed = snap.sum_where("dip_packets_total", &[("outcome", "consumed")]);
        let drops = snap.get("dip_drops_total");
        assert_eq!(
            forwarded + consumed + drops,
            injected,
            "every injected packet must be forwarded, consumed, or dropped exactly once"
        );
        // Ring drops live only in the drop taxonomy, never in
        // packets_total (they never reached a worker).
        assert_eq!(
            snap.sum_where("dip_drops_total", &[("reason", "queue_full")]),
            report.total_ring_drops()
        );
        assert_eq!(
            snap.sum_where("dip_packets_total", &[("outcome", "dropped")])
                + snap.sum_where("dip_drops_total", &[("reason", "queue_full")]),
            drops
        );
    }

    #[test]
    fn optimized_workers_forward_identically_and_export_opt_counters() {
        let opt_factory = |i: usize| {
            let mut r = factory(i);
            r.config_mut().optimize = true;
            r
        };
        let run = |make: fn(usize) -> DipRouter| {
            let config = DataplaneConfig { workers: 2, batch_size: 8, ..Default::default() };
            let mut dp = Dataplane::start(config, make);
            for i in 0..200 {
                assert!(dp.submit(dip32(i), 0, u64::from(i)).is_some());
            }
            dp.shutdown()
        };
        let plain = run(factory);
        let optimized = run(opt_factory);
        // Same traffic, same verdicts — the optimizer must be invisible.
        assert_eq!(
            optimized.workers.iter().map(|w| w.stats.forwarded).sum::<u64>(),
            plain.workers.iter().map(|w| w.stats.forwarded).sum::<u64>(),
        );
        let snap = optimized.registry.snapshot();
        // One program per worker that saw traffic, each with one fusion
        // (Match32 + Source share a stage).
        let optimized_programs = snap.get("dip_programs_optimized_total");
        assert!(optimized_programs >= 1, "no program was optimized");
        assert_eq!(snap.get("dip_opt_fusions_total"), optimized_programs);
        assert_eq!(snap.get("dip_opt_ops_eliminated_total"), 0);
        let plain_snap = plain.registry.snapshot();
        assert_eq!(plain_snap.get("dip_programs_optimized_total"), 0);
    }

    #[test]
    fn submit_bytes_steady_state_is_allocation_free() {
        // 20k packets through a 1-worker dataplane: allocations on the
        // submit path are bounded by buffers in flight (ring + batch +
        // slack for recycle-ring latency), NOT by the packet count. This
        // is the satellite-2 pin: the old path cloned every packet.
        let config =
            DataplaneConfig { workers: 1, batch_size: 8, ring_capacity: 64, ..Default::default() };
        let mut dp = Dataplane::start(config, factory);
        let in_flight_bound = (dp.ring_capacity(0) + 8 + 1) as u64;
        for i in 0..20_000 {
            assert!(dp.submit_bytes(&dip32(i), 0, u64::from(i)).is_some());
        }
        let misses = dp.pool_misses();
        assert!(
            misses <= in_flight_bound,
            "pool misses {misses} exceed the in-flight buffer bound {in_flight_bound} \
             over 20000 packets — the hot path is allocating per packet"
        );
        let report = dp.shutdown();
        assert_eq!(report.total_processed(), 20_000);
    }

    #[test]
    fn submit_bytes_drop_overload_reclaims_buffers() {
        // Tiny ring + Drop backpressure: most packets die at the ring, but
        // their buffers must come back to the stash — overload must not
        // become an allocation storm either.
        let config = DataplaneConfig {
            workers: 1,
            batch_size: 4,
            ring_capacity: 4,
            backpressure: Backpressure::Drop,
            ..Default::default()
        };
        let mut dp = Dataplane::start(config, factory);
        let in_flight_bound = (dp.ring_capacity(0) + 4 + 1) as u64;
        let mut accepted = 0u64;
        for i in 0..10_000 {
            if dp.submit_bytes(&dip32(i), 0, 0).is_some() {
                accepted += 1;
            }
        }
        assert!(
            dp.pool_misses() <= in_flight_bound,
            "overload allocated per packet: {} misses",
            dp.pool_misses()
        );
        let report = dp.shutdown();
        assert_eq!(report.total_processed(), accepted);
        assert_eq!(report.total_ring_drops() + accepted, 10_000);
    }

    #[test]
    fn blocking_submit_bytes_is_lossless_through_a_tiny_ring() {
        // Block backpressure with a ring far smaller than the workload:
        // the spin-then-park wait must neither lose packets nor deadlock
        // against a parked worker.
        let config =
            DataplaneConfig { workers: 2, batch_size: 2, ring_capacity: 2, ..Default::default() };
        let mut dp = Dataplane::start(config, factory);
        for i in 0..3_000 {
            assert!(dp.submit_bytes(&dip32(i), 0, 0).is_some());
        }
        let report = dp.shutdown();
        assert_eq!(report.total_processed(), 3_000);
        assert_eq!(report.total_ring_drops(), 0);
    }

    #[test]
    fn worker_processed_counter_is_live_and_cpu_probe_samples() {
        let mut dp = Dataplane::start(DataplaneConfig::default(), factory);
        for i in 0..500 {
            dp.submit_bytes(&dip32(i), 0, 0);
        }
        // Drain, then the live counter must reach the submitted total.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while dp.worker_processed(0) < 500 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(dp.worker_processed(0), 500);
        #[cfg(target_os = "linux")]
        assert!(
            dp.worker_cpu_ns(0).is_some(),
            "Linux must expose the per-thread CPU clock for capacity accounting"
        );
        dp.shutdown();
    }

    #[test]
    fn malformed_packets_drop_deterministically() {
        let mut dp = Dataplane::start(
            DataplaneConfig { record_outcomes: true, ..Default::default() },
            factory,
        );
        dp.submit(vec![0xff; 3], 9, 0);
        let report = dp.shutdown();
        assert_eq!(report.sorted_outcomes()[0].verdict, Verdict::Drop(DropReason::MalformedField));
    }
}

//! Per-thread CPU-time sampling for honest throughput accounting.
//!
//! The wall-clock scaling bench wants to distinguish two very different
//! quantities on oversubscribed hosts (more workers than cores):
//!
//! * **wall throughput** — packets delivered per second of wall time.
//!   On a box with fewer cores than workers this is bounded by the
//!   hardware, not the software, and adding workers cannot raise it;
//! * **per-worker capacity** — packets a worker processes per second it
//!   actually spends *on a CPU*. Summed over workers this is the rate
//!   the same binary would sustain given one core per worker, and it is
//!   the statistic that exposes software bottlenecks (lock contention,
//!   shared cache lines, allocation storms) as sub-linear scaling.
//!
//! Capacity needs per-thread CPU time, which `std` does not expose. On
//! Linux every thread can learn its own stat directory by resolving the
//! `/proc/thread-self` symlink once at startup; any *other* thread of
//! the same process may then sample its CPU time from
//! `/proc/self/task/<tid>/schedstat` (field 1: cumulative on-CPU
//! nanoseconds) or, when `CONFIG_SCHEDSTATS` is off, from
//! `/proc/self/task/<tid>/stat` (fields 14+15: utime+stime in 10 ms
//! clock ticks). Workers publish a [`ThreadCpuProbe`] at spawn; the
//! dispatcher samples it at measurement-window boundaries, so the hot
//! path pays nothing.
//!
//! On non-Linux targets (or a /proc-less Linux) every sample returns
//! `None` and callers fall back to wall-clock busy accounting — the
//! capacity statistic then degrades to wall throughput, which the bench
//! reports honestly via its `cpu_time` field.

use std::path::PathBuf;

/// Assumed `USER_HZ` for the `stat` fallback. Linux has reported 100 to
/// userspace on every mainstream architecture since 2.6; `schedstat` is
/// preferred precisely so this constant is almost never load-bearing.
const STAT_TICK_NS: u64 = 10_000_000;

/// A handle another thread can use to sample this thread's CPU time.
#[derive(Debug, Clone)]
pub struct ThreadCpuProbe {
    /// `/proc/self/task/<tid>/schedstat` (ns resolution), when present.
    schedstat: Option<PathBuf>,
    /// `/proc/self/task/<tid>/stat` (10 ms resolution fallback).
    stat: Option<PathBuf>,
}

impl ThreadCpuProbe {
    /// A probe for the *calling* thread. Resolve once at thread startup
    /// (it costs a readlink); sampling later is one small file read.
    pub fn current() -> Self {
        let task_dir = std::fs::read_link("/proc/thread-self")
            .ok()
            .map(|rel| PathBuf::from("/proc").join(rel));
        let exists = |name: &str| task_dir.as_ref().map(|d| d.join(name)).filter(|p| p.exists());
        ThreadCpuProbe { schedstat: exists("schedstat"), stat: exists("stat") }
    }

    /// A probe that always reports `None` (non-Linux fallback, tests).
    pub fn unavailable() -> Self {
        ThreadCpuProbe { schedstat: None, stat: None }
    }

    /// Whether sampling can return real CPU time on this host.
    pub fn is_available(&self) -> bool {
        self.schedstat.is_some() || self.stat.is_some()
    }

    /// Cumulative CPU nanoseconds (user+system) consumed by the probed
    /// thread, or `None` when the host exposes no per-thread clock.
    /// Resolution: 1 ns via `schedstat`, 10 ms via the `stat` fallback.
    pub fn cpu_ns(&self) -> Option<u64> {
        if let Some(p) = &self.schedstat {
            if let Some(ns) = std::fs::read_to_string(p)
                .ok()
                .and_then(|s| s.split_whitespace().next().and_then(|f| f.parse().ok()))
            {
                return Some(ns);
            }
        }
        let content = std::fs::read_to_string(self.stat.as_ref()?).ok()?;
        // The comm field (2) may contain spaces; everything after the
        // closing paren is whitespace-delimited. utime/stime are stat
        // fields 14/15, i.e. indexes 11/12 after the paren.
        let rest = content.rsplit_once(')')?.1;
        let mut it = rest.split_whitespace().skip(11);
        let utime: u64 = it.next()?.parse().ok()?;
        let stime: u64 = it.next()?.parse().ok()?;
        Some((utime + stime) * STAT_TICK_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unavailable_probe_returns_none() {
        let p = ThreadCpuProbe::unavailable();
        assert!(!p.is_available());
        assert_eq!(p.cpu_ns(), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn probe_tracks_cpu_burn_cross_thread() {
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            let probe = ThreadCpuProbe::current();
            tx.send(probe).unwrap();
            // Burn CPU until the main thread has sampled us twice.
            let mut x = 0u64;
            while done_rx.try_recv().is_err() {
                for i in 0..10_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(x);
            }
            x
        });
        let probe = rx.recv().unwrap();
        assert!(probe.is_available(), "Linux must expose a per-thread clock");
        let start = probe.cpu_ns().expect("first sample");
        // Wait for visible CPU consumption; schedstat is ns-resolution so
        // a few ms of burning is plenty even on a loaded single core.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut end = start;
        while end < start + 2_000_000 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
            end = probe.cpu_ns().expect("second sample");
        }
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        assert!(end > start, "cpu time must advance while the thread burns ({start} -> {end})");
    }
}

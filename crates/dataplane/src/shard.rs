//! RSS-style flow sharding over FN locations.
//!
//! Hardware RSS hashes the IP 5-tuple; DIP has no fixed 5-tuple — the
//! flow-identifying bytes are whatever the protocol put in the FN
//! *locations area* (an IPv4/IPv6 destination+source, an NDN content
//! name, an XIA DAG). Hashing the locations therefore gives flow affinity
//! for every paper protocol with one mechanism: packets whose stateful
//! interactions must meet (an NDN interest and its data share the name
//! bytes; an XIA flow shares its DAG) land on the same worker, so
//! per-flow state (PIT entries, content-store lines) never splits or
//! races across shards.

use dip_wire::DipPacket;

/// How many locations bytes participate in the hash (covers every paper
/// protocol's flow identity; matches the `ShardedRouter` precedent).
const HASH_PREFIX: usize = 64;

/// FNV-1a over the flow-identifying prefix of the FN locations area.
pub fn hash_locations(locations: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in locations.iter().take(HASH_PREFIX) {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fixed worker-count flow-shard function.
#[derive(Debug, Clone, Copy)]
pub struct FlowShard {
    shards: usize,
}

impl FlowShard {
    /// A sharder dispatching over `shards` workers (minimum 1).
    pub fn new(shards: usize) -> Self {
        FlowShard { shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The worker owning `packet`'s flow. Malformed packets all map to
    /// shard 0 (they will be dropped there, deterministically).
    pub fn shard_of(&self, packet: &[u8]) -> usize {
        let key =
            DipPacket::new_checked(packet).map(|p| hash_locations(p.locations())).unwrap_or(0);
        (key % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_wire::ipv4::Ipv4Addr;
    use dip_wire::ndn::Name;

    #[test]
    fn affinity_is_stable_and_spread_is_nontrivial() {
        let shard = FlowShard::new(8);
        let pkt = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(10, 0, 0, 7),
            Ipv4Addr::new(1, 1, 1, 1),
            64,
        )
        .to_bytes(&[])
        .unwrap();
        let home = shard.shard_of(&pkt);
        for _ in 0..32 {
            assert_eq!(shard.shard_of(&pkt), home);
        }
        let spread: std::collections::HashSet<usize> = (0..64u8)
            .map(|i| {
                let p = dip_protocols::ip::dip32_packet(
                    Ipv4Addr::new(10, 0, 0, i),
                    Ipv4Addr::new(1, 1, 1, 1),
                    64,
                )
                .to_bytes(&[])
                .unwrap();
                shard.shard_of(&p)
            })
            .collect();
        assert!(spread.len() > 1, "dispatch degenerated to one shard");
    }

    #[test]
    fn interest_and_data_share_a_shard() {
        // The NDN flow invariant the PIT depends on: both packet kinds
        // carry the name in the locations area, so they hash together.
        let shard = FlowShard::new(16);
        for raw in ["/a", "/video/segment/9", "/hotnets/org/deeply/nested/name"] {
            let name = Name::parse(raw);
            let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(b"rq").unwrap();
            let data = dip_protocols::ndn::data(&name, 64).to_bytes(b"content").unwrap();
            assert_eq!(shard.shard_of(&interest), shard.shard_of(&data), "name {raw}");
        }
    }

    #[test]
    fn malformed_goes_to_shard_zero() {
        let shard = FlowShard::new(4);
        assert_eq!(shard.shard_of(&[1, 2, 3]), 0);
    }

    #[test]
    fn single_shard_accepts_everything() {
        let shard = FlowShard::new(1);
        assert_eq!(shard.shard_of(&[]), 0);
    }
}

//! NDN over DIP (§3, *NDN*).
//!
//! Interest packets carry `F_FIB` (the router records the receiving port in
//! the PIT and FIB-matches the content name); data packets carry `F_PIT`
//! (look up and consume, forward to the recorded faces). With the
//! prototype's 32-bit compact content name each header is 16 bytes
//! (Table 2); [`interest_full`]/[`data_full`] build the variable-length
//! hierarchical-name variants for component-wise longest prefix matching.

use dip_wire::ndn::Name;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::Result;

/// Builds an interest for `name` using the compact 32-bit encoding.
/// Header is 16 bytes (Table 2).
pub fn interest(name: &Name, hop_limit: u8) -> DipRepr {
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, 32, FnKey::Fib)],
        locations: name.compact32().to_be_bytes().to_vec(),
    }
}

/// Builds the data packet answering `name` (payload is passed at
/// serialization time). Header is 16 bytes (Table 2).
pub fn data(name: &Name, hop_limit: u8) -> DipRepr {
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, 32, FnKey::Pit)],
        locations: name.compact32().to_be_bytes().to_vec(),
    }
}

/// Interest carrying the full TLV-encoded hierarchical name (enables
/// longest-prefix FIB matching at routers).
pub fn interest_full(name: &Name, hop_limit: u8) -> Result<DipRepr> {
    let tlv = name.encode_tlv()?;
    let bits = (tlv.len() * 8) as u16;
    Ok(DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, bits, FnKey::Fib)],
        locations: tlv,
    })
}

/// Data packet carrying the full TLV-encoded name.
pub fn data_full(name: &Name, hop_limit: u8) -> Result<DipRepr> {
    let tlv = name.encode_tlv()?;
    let bits = (tlv.len() * 8) as u16;
    Ok(DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, bits, FnKey::Pit)],
        locations: tlv,
    })
}

/// Builds a data packet keyed by an already-compacted 32-bit name (used by
/// routers answering from the content store and by simulator producers).
pub fn data_compact(compact: u32, hop_limit: u8) -> DipRepr {
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, 32, FnKey::Pit)],
        locations: compact.to_be_bytes().to_vec(),
    }
}

/// Extracts the compact name from an NDN-over-DIP locations area.
pub fn compact_name(locations: &[u8]) -> Option<u32> {
    locations.get(..4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header_sizes;
    use dip_core::{DipRouter, Verdict};
    use dip_fnops::DropReason;
    use dip_tables::fib::NextHop;

    fn name() -> Name {
        Name::parse("hotnets.org")
    }

    #[test]
    fn ndn_headers_are_16_bytes() {
        assert_eq!(interest(&name(), 64).header_len(), header_sizes::NDN);
        assert_eq!(data(&name(), 64).header_len(), header_sizes::NDN);
    }

    #[test]
    fn interest_then_data_through_one_router() {
        let mut r = DipRouter::new(1, [0; 16]);
        r.state_mut().name_fib.add_route(&name(), NextHop::port(8));

        // Interest from consumer on port 3.
        let mut ibuf = interest(&name(), 64).to_bytes(&[]).unwrap();
        let (v1, _) = r.process(&mut ibuf, 3, 100);
        assert_eq!(v1, Verdict::Forward(vec![8]));

        // Data back from the producer on port 8.
        let mut dbuf = data(&name(), 64).to_bytes(b"the content").unwrap();
        let (v2, _) = r.process(&mut dbuf, 8, 200);
        assert_eq!(v2, Verdict::Forward(vec![3]));

        // A second copy has no PIT entry left.
        let mut dbuf2 = data(&name(), 64).to_bytes(b"the content").unwrap();
        let (v3, _) = r.process(&mut dbuf2, 8, 300);
        assert_eq!(v3, Verdict::Drop(DropReason::PitMiss));
    }

    #[test]
    fn full_name_interest_uses_lpm() {
        let mut r = DipRouter::new(1, [0; 16]);
        r.state_mut().name_fib.add_route(&Name::parse("/hotnets"), NextHop::port(2));
        let full = Name::parse("/hotnets/org/papers/dip");
        let mut buf = interest_full(&full, 64).unwrap().to_bytes(&[]).unwrap();
        let (v, _) = r.process(&mut buf, 1, 0);
        assert_eq!(v, Verdict::Forward(vec![2]));
    }

    #[test]
    fn data_follows_full_name_interest() {
        // Compact and full-name packets interoperate: the PIT is keyed by
        // compact32 in both paths.
        let mut r = DipRouter::new(1, [0; 16]);
        let n = Name::parse("/a/b");
        r.state_mut().name_fib.add_route(&n, NextHop::port(2));
        let mut ibuf = interest_full(&n, 64).unwrap().to_bytes(&[]).unwrap();
        r.process(&mut ibuf, 5, 0);
        let mut dbuf = data(&n, 64).to_bytes(b"x").unwrap();
        let (v, _) = r.process(&mut dbuf, 2, 10);
        assert_eq!(v, Verdict::Forward(vec![5]));
    }

    #[test]
    fn compact_name_accessor() {
        let repr = interest(&name(), 64);
        assert_eq!(compact_name(&repr.locations), Some(name().compact32()));
        assert_eq!(compact_name(&[1, 2]), None);
    }
}

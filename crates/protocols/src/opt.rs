//! OPT over DIP (§3, *OPT*): source authentication and path validation.
//!
//! The session layer reproduces OPT's key model: during negotiation (out of
//! band, like OPT's setup protocol) the source and destination agree on a
//! random `session_id` and learn each on-path router's *dynamic key*
//! `K_i = PRF(S_i, session_id)` — the same value each router re-derives per
//! packet in `F_parm` (§3: the dynamic key "is shared with the host").
//!
//! Per packet, the source computes `DataHash = H(payload)` and seeds the
//! chain `PVF_0 = MAC_{K_S}(DataHash)`; every router then runs the FN chain
//! `(parm, MAC, mark)`, and the destination verifies with `F_ver`.

use dip_core::host::HostContext;
use dip_crypto::{derive_session_key, mmo_hash, Block, CbcMac, MacAlgorithm};
use dip_wire::opt::{triple_bits, OptRepr, OPT_BLOCK_LEN};
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// An established OPT session between a source/destination pair across a
/// fixed router path.
///
/// ```
/// use dip_core::host::deliver;
/// use dip_core::{DipRouter, Verdict};
/// use dip_fnops::{FnRegistry, RouterState};
/// use dip_protocols::opt::OptSession;
///
/// // Key negotiation across one router.
/// let router_secret = [9u8; 16];
/// let session = OptSession::establish([0x5A; 16], &[7; 16], &[router_secret]);
///
/// // Source -> router (parm, MAC, mark run; F_ver is host-tagged).
/// let mut router = DipRouter::new(1, router_secret);
/// router.config_mut().default_port = Some(1);
/// let mut buf = session.packet(b"hello", 42, 64).to_bytes(b"hello").unwrap();
/// assert!(matches!(router.process(&mut buf, 0, 0).0, Verdict::Forward(_)));
///
/// // Destination verifies source + path.
/// let mut host_state = RouterState::new(99, [0; 16]);
/// let d = deliver(&mut buf, &session.host_context(), &mut host_state,
///                 &FnRegistry::standard(), 0).unwrap();
/// assert!(d.verified);
/// ```
#[derive(Debug, Clone)]
pub struct OptSession {
    /// The session identifier carried in every packet.
    pub session_id: Block,
    /// Key shared by source and destination, seeding the PVF chain.
    pub source_key: Block,
    /// Dynamic keys of the on-path routers, in path order.
    pub path_keys: Vec<Block>,
}

impl OptSession {
    /// Key negotiation: derives the session's key material from the
    /// source↔destination shared secret and the local secrets of the
    /// on-path routers (which the setup protocol collects in real OPT).
    pub fn establish(session_id: Block, src_dst_secret: &Block, router_secrets: &[Block]) -> Self {
        OptSession {
            session_id,
            source_key: derive_session_key(src_dst_secret, &session_id),
            path_keys: router_secrets.iter().map(|s| derive_session_key(s, &session_id)).collect(),
        }
    }

    /// The verification material the destination host needs for `F_ver`.
    pub fn host_context(&self) -> HostContext {
        HostContext { source_key: Some(self.source_key), path_keys: self.path_keys.clone() }
    }

    /// Builds the source-side OPT block for `payload` at `timestamp`.
    pub fn initial_block(&self, payload: &[u8], timestamp: u32) -> OptRepr {
        let data_hash = mmo_hash(payload);
        let pvf = CbcMac::new_2em(&self.source_key).mac(&data_hash);
        OptRepr { data_hash, session_id: self.session_id, timestamp, pvf, opv: [0; 16] }
    }

    /// Builds the full OPT-over-DIP header for `payload` (§3's four
    /// triples; 98-byte header, Table 2).
    pub fn packet(&self, payload: &[u8], timestamp: u32, hop_limit: u8) -> DipRepr {
        let block = self.initial_block(payload, timestamp);
        DipRepr {
            next_header: 0,
            hop_limit,
            parallel: false,
            fns: opt_triples(0),
            locations: block.to_bytes().to_vec(),
        }
    }
}

/// The §3 OPT triples, with the OPT block starting at bit `base` of the
/// locations area (`base = 0` for plain OPT, `32` for NDN+OPT where the
/// content name comes first).
pub fn opt_triples(base: u16) -> Vec<FnTriple> {
    vec![
        FnTriple::router(base + triple_bits::PARM.0, triple_bits::PARM.1, FnKey::Parm),
        FnTriple::router(base + triple_bits::MAC.0, triple_bits::MAC.1, FnKey::Mac),
        FnTriple::router(base + triple_bits::MARK.0, triple_bits::MARK.1, FnKey::Mark),
        FnTriple::host(base + triple_bits::VER.0, triple_bits::VER.1, FnKey::Ver),
    ]
}

/// Parses the OPT block back out of a locations area at byte offset
/// `base_bytes`.
pub fn parse_block(locations: &[u8], base_bytes: usize) -> Option<OptRepr> {
    let slice = locations.get(base_bytes..base_bytes + OPT_BLOCK_LEN)?;
    OptRepr::parse(slice).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header_sizes;
    use dip_core::host::deliver;
    use dip_core::{DipRouter, Verdict};
    use dip_fnops::{DropReason, FnRegistry, RouterState};

    fn session(n_routers: usize) -> (OptSession, Vec<DipRouter>) {
        let router_secrets: Vec<Block> = (0..n_routers).map(|i| [(i as u8) + 10; 16]).collect();
        let session = OptSession::establish([0x5a; 16], &[7; 16], &router_secrets);
        let routers = router_secrets
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut r = DipRouter::new(i as u64, *s);
                r.config_mut().default_port = Some(1); // static forwarding like the testbed
                r
            })
            .collect();
        (session, routers)
    }

    #[test]
    fn opt_header_is_98_bytes() {
        let (s, _) = session(1);
        assert_eq!(s.packet(b"x", 1, 64).header_len(), header_sizes::OPT);
    }

    #[test]
    fn end_to_end_one_hop_verifies() {
        let (s, mut routers) = session(1);
        let mut buf = s.packet(b"payload", 123, 64).to_bytes(b"payload").unwrap();
        let (v, stats) = routers[0].process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![1]));
        assert_eq!(stats.fns_executed, 3); // parm, mac, mark
        assert_eq!(stats.skipped_host, 1); // ver

        let mut host_state = RouterState::new(999, [0; 16]);
        let d = deliver(&mut buf, &s.host_context(), &mut host_state, &FnRegistry::standard(), 0)
            .unwrap();
        assert!(d.verified);
    }

    #[test]
    fn end_to_end_three_hops_verifies() {
        let (s, mut routers) = session(3);
        let mut buf = s.packet(b"multi-hop", 9, 64).to_bytes(b"multi-hop").unwrap();
        for r in routers.iter_mut() {
            let (v, _) = r.process(&mut buf, 0, 0);
            assert!(matches!(v, Verdict::Forward(_)));
        }
        let mut host_state = RouterState::new(999, [0; 16]);
        let d = deliver(&mut buf, &s.host_context(), &mut host_state, &FnRegistry::standard(), 0)
            .unwrap();
        assert!(d.verified);
    }

    #[test]
    fn on_path_tampering_is_detected() {
        let (s, mut routers) = session(2);
        let payload = b"sensitive".to_vec();
        let mut buf = s.packet(&payload, 9, 64).to_bytes(&payload).unwrap();
        routers[0].process(&mut buf, 0, 0);
        // A man-in-the-middle rewrites the payload between hops.
        let n = buf.len();
        buf[n - 1] ^= 0xff;
        routers[1].process(&mut buf, 0, 0);
        let mut host_state = RouterState::new(999, [0; 16]);
        assert_eq!(
            deliver(&mut buf, &s.host_context(), &mut host_state, &FnRegistry::standard(), 0),
            Err(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn path_deviation_is_detected() {
        // Packet routed through a different (attacker) router than the
        // session negotiated: PVF chain cannot match.
        let (s, _) = session(2);
        let mut rogue = DipRouter::new(66, [0x66; 16]);
        rogue.config_mut().default_port = Some(1);
        let mut buf = s.packet(b"p", 1, 64).to_bytes(b"p").unwrap();
        rogue.process(&mut buf, 0, 0);
        // Second legit hop.
        let mut legit = DipRouter::new(1, [11; 16]);
        legit.config_mut().default_port = Some(1);
        legit.process(&mut buf, 0, 0);
        let mut host_state = RouterState::new(999, [0; 16]);
        assert_eq!(
            deliver(&mut buf, &s.host_context(), &mut host_state, &FnRegistry::standard(), 0),
            Err(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn skipping_a_hop_is_detected() {
        let (s, mut routers) = session(2);
        let mut buf = s.packet(b"p", 1, 64).to_bytes(b"p").unwrap();
        // Only the first router processes it; the second is bypassed.
        routers[0].process(&mut buf, 0, 0);
        let mut host_state = RouterState::new(999, [0; 16]);
        assert_eq!(
            deliver(&mut buf, &s.host_context(), &mut host_state, &FnRegistry::standard(), 0),
            Err(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn session_keys_match_router_derivation() {
        // What establish() predicts must equal what F_parm derives.
        let secret = [42u8; 16];
        let sid = [0x5a; 16];
        let s = OptSession::establish(sid, &[7; 16], &[secret]);
        assert_eq!(s.path_keys[0], derive_session_key(&secret, &sid));
    }

    #[test]
    fn parse_block_roundtrip() {
        let (s, _) = session(1);
        let repr = s.packet(b"x", 5, 64);
        let block = parse_block(&repr.locations, 0).unwrap();
        assert_eq!(block.session_id, s.session_id);
        assert_eq!(block.timestamp, 5);
        assert!(parse_block(&repr.locations, 60).is_none());
    }
}

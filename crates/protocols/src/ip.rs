//! IP forwarding over DIP (§3, *IP Forwarding*).
//!
//! "We set the destination address in the lower 128/32 bits of the FN
//! locations and the source address in the upper 128/32 bits, so the FN
//! triples used in our prototype are (loc: 0, len: 32/128, match) and
//! (loc: 32/128, len: 32/128, source)."
//!
//! (The paper's prose swaps the key numbers 1/2 relative to its Table 1;
//! we follow Table 1: key 1 = 32-bit match, key 2 = 128-bit match.)

use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// Builds a DIP-32 packet: IPv4 forwarding semantics over DIP.
/// Header is 26 bytes (Table 2).
pub fn dip32_packet(dst: Ipv4Addr, src: Ipv4Addr, hop_limit: u8) -> DipRepr {
    let mut locations = dst.0.to_vec();
    locations.extend_from_slice(&src.0);
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, 32, FnKey::Match32), FnTriple::router(32, 32, FnKey::Source)],
        locations,
    }
}

/// Builds a DIP-128 packet: IPv6 forwarding semantics over DIP.
/// Header is 50 bytes (Table 2).
pub fn dip128_packet(dst: Ipv6Addr, src: Ipv6Addr, hop_limit: u8) -> DipRepr {
    let mut locations = dst.0.to_vec();
    locations.extend_from_slice(&src.0);
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![
            FnTriple::router(0, 128, FnKey::Match128),
            FnTriple::router(128, 128, FnKey::Source),
        ],
        locations,
    }
}

/// Reads the destination address back out of a DIP-32 locations area.
pub fn dip32_dst(locations: &[u8]) -> Option<Ipv4Addr> {
    locations.get(..4).map(|b| Ipv4Addr([b[0], b[1], b[2], b[3]]))
}

/// Reads the source address back out of a DIP-32 locations area.
pub fn dip32_src(locations: &[u8]) -> Option<Ipv4Addr> {
    locations.get(4..8).map(|b| Ipv4Addr([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header_sizes;
    use dip_core::{DipRouter, Verdict};
    use dip_tables::fib::NextHop;

    #[test]
    fn dip32_header_is_26_bytes() {
        let repr = dip32_packet(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64);
        assert_eq!(repr.header_len(), header_sizes::DIP_32);
    }

    #[test]
    fn dip128_header_is_50_bytes() {
        let repr = dip128_packet(
            Ipv6Addr::new([1, 0, 0, 0, 0, 0, 0, 2]),
            Ipv6Addr::new([3, 0, 0, 0, 0, 0, 0, 4]),
            64,
        );
        assert_eq!(repr.header_len(), header_sizes::DIP_128);
    }

    #[test]
    fn dip32_forwards_through_a_router() {
        let mut r = DipRouter::new(1, [0; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(2));
        let repr = dip32_packet(Ipv4Addr::new(10, 9, 8, 7), Ipv4Addr::new(1, 1, 1, 1), 64);
        let mut buf = repr.to_bytes(b"hello").unwrap();
        let (verdict, stats) = r.process(&mut buf, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![2]));
        assert_eq!(stats.fns_executed, 2);
    }

    #[test]
    fn dip128_forwards_through_a_router() {
        let mut r = DipRouter::new(1, [0; 16]);
        let prefix = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0]);
        r.state_mut().ipv6_fib.add_route(prefix, 16, NextHop::port(5));
        let repr = dip128_packet(
            Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 9]),
            Ipv6Addr::new([0xfd00, 0, 0, 0, 0, 0, 0, 1]),
            64,
        );
        let mut buf = repr.to_bytes(&[]).unwrap();
        let (verdict, _) = r.process(&mut buf, 0, 0);
        assert_eq!(verdict, Verdict::Forward(vec![5]));
    }

    #[test]
    fn address_accessors() {
        let repr = dip32_packet(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64);
        assert_eq!(dip32_dst(&repr.locations), Some(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(dip32_src(&repr.locations), Some(Ipv4Addr::new(5, 6, 7, 8)));
        assert_eq!(dip32_dst(&[]), None);
    }

    #[test]
    fn padded_to_figure2_sizes() {
        let repr = dip32_packet(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64);
        for size in [128usize, 768, 1500] {
            assert_eq!(repr.to_bytes_padded(size).unwrap().len(), size);
        }
    }
}

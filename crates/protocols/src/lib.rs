//! # dip-protocols — L3 protocol realizations on DIP (§3)
//!
//! Each module builds the DIP header for one of the paper's five protocols
//! by "properly constructing DIP headers" out of FN triples:
//!
//! * [`ip`] — canonical IPv4/IPv6 forwarding (`F_32_match`/`F_128_match` +
//!   `F_source`); DIP-32 is 26 bytes, DIP-128 is 50 bytes on the wire;
//! * [`ndn`] — NDN interest (`F_FIB`) and data (`F_PIT`) packets with the
//!   prototype's 32-bit compact content name (16-byte headers) or full
//!   TLV names;
//! * [`opt`] — OPT source authentication + path validation
//!   (`F_parm`/`F_MAC`/`F_mark`/`F_ver`, 98-byte header) including the
//!   session/key-negotiation layer;
//! * [`ndn_opt`] — the derived secure content delivery protocol combining
//!   both (108-byte data header), the paper's flagship composition;
//! * [`xia`] — XIA DAG routing (`F_DAG` + `F_intent`).
//!
//! Every builder returns a [`dip_wire::packet::DipRepr`], so protocols can
//! be inspected, mutated (for attack experiments), serialized with
//! `to_bytes`, or padded to the Figure-2 sizes with `to_bytes_padded`.
//!
//! Beyond the paper's five, three *extension* protocols demonstrate the
//! runtime-upgradable FN story of §5 — each is a custom [`dip_fnops::FieldOp`]
//! registered under an experimental key, with private state in
//! `RouterState::ext`, touching no core crate:
//!
//! * [`netfence`] — NetFence-style AIMD congestion policing (`F_cong`);
//! * [`epic`] — EPIC-style per-hop dataplane verification (`F_epic`):
//!   bogus traffic drops at the first honest router instead of the
//!   destination;
//! * [`scion_path`] — SCION-style stateless hop-field forwarding
//!   (`F_hopfield`, the §5 "stateless guaranteed services" primitive);
//! * [`telemetry`] — in-band network telemetry (`F_tele`, §5's "efficient
//!   network telemetry").

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod epic;
pub mod ip;
pub mod ndn;
pub mod ndn_opt;
pub mod netfence;
pub mod opt;
pub mod scion_path;
pub mod telemetry;
pub mod xia;

/// Header sizes reproduced from Table 2 of the paper, in bytes.
pub mod header_sizes {
    /// IPv6 forwarding (native baseline).
    pub const IPV6: usize = 40;
    /// IPv4 forwarding (native baseline).
    pub const IPV4: usize = 20;
    /// DIP-128 forwarding.
    pub const DIP_128: usize = 50;
    /// DIP-32 forwarding.
    pub const DIP_32: usize = 26;
    /// NDN forwarding (interest or data; one FN + 32-bit name).
    pub const NDN: usize = 16;
    /// OPT forwarding.
    pub const OPT: usize = 98;
    /// NDN+OPT forwarding (data packet).
    pub const NDN_OPT: usize = 108;
}

#[cfg(test)]
mod tests {
    use super::header_sizes as hs;

    #[test]
    fn table2_constants_are_the_paper_numbers() {
        assert_eq!(hs::IPV6, 40);
        assert_eq!(hs::IPV4, 20);
        assert_eq!(hs::DIP_128, 50);
        assert_eq!(hs::DIP_32, 26);
        assert_eq!(hs::NDN, 16);
        assert_eq!(hs::OPT, 98);
        assert_eq!(hs::NDN_OPT, 108);
    }
}

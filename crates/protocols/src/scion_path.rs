//! SCION-style stateless path forwarding as a custom Field Operation.
//!
//! OPT (and EPIC) are "designed based on SCION" (§1), whose routers forward
//! on *hop fields* carried in the packet — per-AS `(ingress, egress)`
//! directives each protected by a MAC under that AS's secret — instead of
//! FIB lookups. §5 also names "stateless guaranteed services \[29, 30\]" as
//! a DIP opportunity; this module is that primitive: `F_hopfield`
//! (registered under [`HOPFIELD_KEY`]) forwards with **zero per-router
//! routing state**, and the chained MACs make paths unforgeable and
//! unspliceable.
//!
//! ## Field layout
//!
//! ```text
//! [0)    number of hops
//! [1)    current hop index (advanced in place at each hop)
//! then per hop: ingress port (1B) | egress port (1B) | MAC (8B)
//! MAC_i = trunc8( CBC-MAC_{K_ASi}( "hopfield" ‖ i ‖ in ‖ out ‖ MAC_{i-1} ) )
//! ```
//!
//! Chaining `MAC_{i-1}` into `MAC_i` binds each hop to its position *and*
//! its predecessor, so an attacker cannot cut two authorized paths and
//! splice them into a new one.

use dip_crypto::{ct_eq, Block, CbcMac, MacAlgorithm};
use dip_fnops::{Action, DropReason, FieldOp, OpCost, PacketCtx, RouterState};
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// The experimental operation key `F_hopfield` registers under.
pub const HOPFIELD_KEY: FnKey = FnKey::Other(0x101);

/// Encoded size of one hop field.
pub const HOP_FIELD_LEN: usize = 10;

/// Preamble size (num hops + current index).
pub const PATH_PREAMBLE_LEN: usize = 2;

/// One hop directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopField {
    /// Expected ingress port at this AS (checked against the actual one).
    pub ingress: u8,
    /// Egress port to forward on.
    pub egress: u8,
    /// Truncated chained MAC.
    pub mac: [u8; 8],
}

fn hop_mac(secret: &Block, index: u8, ingress: u8, egress: u8, prev: &[u8; 8]) -> [u8; 8] {
    let mut msg = Vec::with_capacity(20);
    msg.extend_from_slice(b"hopfield");
    msg.push(index);
    msg.push(ingress);
    msg.push(egress);
    msg.extend_from_slice(prev);
    let full = CbcMac::new_2em(secret).mac(&msg);
    full[..8].try_into().expect("8 bytes")
}

/// A constructed, authenticated forwarding path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScionPath {
    /// The hop fields, in traversal order.
    pub hops: Vec<HopField>,
}

impl ScionPath {
    /// Control-plane path construction: the beaconing service, knowing each
    /// on-path AS secret, stamps the chained MACs.
    pub fn construct(hops: &[(u8, u8, Block)]) -> ScionPath {
        let mut prev = [0u8; 8];
        let hops = hops
            .iter()
            .enumerate()
            .map(|(i, (ingress, egress, secret))| {
                let mac = hop_mac(secret, i as u8, *ingress, *egress, &prev);
                prev = mac;
                HopField { ingress: *ingress, egress: *egress, mac }
            })
            .collect();
        ScionPath { hops }
    }

    /// Encodes the path (current index 0).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.hops.len() as u8, 0];
        for h in &self.hops {
            out.push(h.ingress);
            out.push(h.egress);
            out.extend_from_slice(&h.mac);
        }
        out
    }

    /// Encoded width in bits (for the FN triple).
    pub fn encoded_bits(&self) -> u16 {
        ((PATH_PREAMBLE_LEN + self.hops.len() * HOP_FIELD_LEN) * 8) as u16
    }

    /// Builds the full DIP packet carrying this path.
    pub fn packet(&self, hop_limit: u8) -> DipRepr {
        DipRepr {
            next_header: 0,
            hop_limit,
            parallel: false,
            fns: vec![FnTriple::router(0, self.encoded_bits(), HOPFIELD_KEY)],
            locations: self.encode(),
        }
    }
}

/// The hop-field forwarding operation module.
#[derive(Debug, Default, Clone, Copy)]
pub struct HopFieldOp;

impl FieldOp for HopFieldOp {
    fn key(&self) -> FnKey {
        HOPFIELD_KEY
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Ok(mut field) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        if field.len() < PATH_PREAMBLE_LEN {
            return Action::Drop(DropReason::MalformedField);
        }
        let num = usize::from(field[0]);
        let cur = usize::from(field[1]);
        if field.len() < PATH_PREAMBLE_LEN + num * HOP_FIELD_LEN {
            return Action::Drop(DropReason::MalformedField);
        }
        if cur >= num {
            // Path exhausted: the packet has reached its final AS.
            return Action::Deliver;
        }
        let off = PATH_PREAMBLE_LEN + cur * HOP_FIELD_LEN;
        let ingress = field[off];
        let egress = field[off + 1];
        let mac: [u8; 8] = field[off + 2..off + 10].try_into().expect("8 bytes");
        let prev: [u8; 8] = if cur == 0 {
            [0u8; 8]
        } else {
            let poff = PATH_PREAMBLE_LEN + (cur - 1) * HOP_FIELD_LEN;
            field[poff + 2..poff + 10].try_into().expect("8 bytes")
        };

        // Verify this hop was authorized by *this* AS, in this position,
        // after exactly the previous hop.
        let expected = hop_mac(&state.as_secret, cur as u8, ingress, egress, &prev);
        if !ct_eq(&expected, &mac) {
            return Action::Drop(DropReason::AuthenticationFailed);
        }
        // Ingress check: the packet must arrive where the path says.
        if u32::from(ingress) != ctx.in_port {
            return Action::Drop(DropReason::AuthenticationFailed);
        }

        // Advance the index in place and forward — no FIB consulted.
        field[1] = (cur + 1) as u8;
        if ctx.write_field(triple, &field).is_err() {
            return Action::Drop(DropReason::MalformedField);
        }
        Action::Forward(u32::from(egress))
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // One short MAC verification, no table lookup at all.
        OpCost { stages: 2, table_lookups: 0, cipher_blocks: 3, resubmits: 0 }
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        // Only the index byte is written, but report the field for safety.
        Some((usize::from(triple.field_loc), triple.field_end()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::{DipRouter, Verdict};
    use std::sync::Arc;

    fn as_router(secret: Block) -> DipRouter {
        let mut r = DipRouter::new(0, secret);
        r.registry_mut().install(Arc::new(HopFieldOp));
        r
    }

    const S1: Block = [1; 16];
    const S2: Block = [2; 16];
    const S3: Block = [3; 16];

    fn three_as_path() -> ScionPath {
        ScionPath::construct(&[(0, 5, S1), (2, 6, S2), (3, 7, S3)])
    }

    #[test]
    fn forwards_along_the_authorized_path_with_no_fib() {
        let path = three_as_path();
        let mut buf = path.packet(64).to_bytes(b"payload").unwrap();

        let mut r1 = as_router(S1);
        let (v, stats) = r1.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![5]));
        assert_eq!(stats.cost.table_lookups, 0, "stateless forwarding");

        let mut r2 = as_router(S2);
        let (v, _) = r2.process(&mut buf, 2, 0);
        assert_eq!(v, Verdict::Forward(vec![6]));

        let mut r3 = as_router(S3);
        let (v, _) = r3.process(&mut buf, 3, 0);
        assert_eq!(v, Verdict::Forward(vec![7]));

        // Past the last hop: delivered.
        let mut r_dst = as_router(S3);
        let (v, _) = r_dst.process(&mut buf, 7, 0);
        assert_eq!(v, Verdict::Deliver);
    }

    #[test]
    fn wrong_as_secret_rejects() {
        let path = three_as_path();
        let mut buf = path.packet(64).to_bytes(&[]).unwrap();
        let mut rogue = as_router([0xEE; 16]);
        let (v, _) = rogue.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn wrong_ingress_port_rejects() {
        let path = three_as_path();
        let mut buf = path.packet(64).to_bytes(&[]).unwrap();
        let mut r1 = as_router(S1);
        let (v, _) = r1.process(&mut buf, 9, 0); // path says ingress 0
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn forged_hop_field_rejects() {
        let mut path = three_as_path();
        path.hops[1].egress = 9; // attacker redirects mid-path
        let mut buf = path.packet(64).to_bytes(&[]).unwrap();
        let mut r1 = as_router(S1);
        assert!(matches!(r1.process(&mut buf, 0, 0).0, Verdict::Forward(_)));
        let mut r2 = as_router(S2);
        let (v, _) = r2.process(&mut buf, 2, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn spliced_paths_reject() {
        // Take hop 0 of path A and hop 1 of path B — both individually
        // authorized — and splice them. The chained MAC kills it.
        let a = ScionPath::construct(&[(0, 5, S1), (2, 6, S2)]);
        let b = ScionPath::construct(&[(0, 9, S1), (2, 6, S2)]);
        let spliced = ScionPath { hops: vec![a.hops[0], b.hops[1]] };
        let mut buf = spliced.packet(64).to_bytes(&[]).unwrap();
        let mut r1 = as_router(S1);
        assert!(matches!(r1.process(&mut buf, 0, 0).0, Verdict::Forward(_)));
        let mut r2 = as_router(S2);
        let (v, _) = r2.process(&mut buf, 2, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn index_manipulation_cannot_skip_hops() {
        // Jumping the index forward lands on a MAC whose chained
        // predecessor check fails at that AS position... unless the path
        // genuinely authorizes it. Set cur=1 before hop 0 ran: AS2 verifies
        // hop 1's MAC correctly chained — but the ingress check now runs at
        // the *wrong router* (AS1 holds a different secret), so hop
        // skipping still fails everywhere except the legitimate AS2.
        let path = three_as_path();
        let mut repr = path.packet(64);
        repr.locations[1] = 1; // skip hop 0
        let mut buf = repr.to_bytes(&[]).unwrap();
        let mut r1 = as_router(S1);
        let (v, _) = r1.process(&mut buf, 2, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn empty_path_delivers() {
        let path = ScionPath::construct(&[]);
        let mut buf = path.packet(64).to_bytes(&[]).unwrap();
        let mut r = as_router(S1);
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Deliver);
    }

    #[test]
    fn encode_roundtrip_width() {
        let path = three_as_path();
        let enc = path.encode();
        assert_eq!(enc.len(), 2 + 3 * 10);
        assert_eq!(usize::from(path.encoded_bits()), enc.len() * 8);
    }
}

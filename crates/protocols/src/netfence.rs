//! NetFence-style congestion policing as a *custom* Field Operation.
//!
//! The paper's introduction cites NetFence \[19\]: a slim header between L3
//! and L4 through which bottleneck routers emit cryptographically protected
//! congestion feedback, and access routers police each sender with AIMD
//! rate limiters. This module realizes that design as a DIP FN — and, just
//! as importantly, it does so **without touching any core crate**:
//! `F_cong` is registered at runtime under an experimental key
//! ([`CONG_KEY`]), keeps its private state in
//! [`dip_fnops::context::Extensions`], and composes with the standard
//! addressing FNs. This is §5's deployment story ("providers can support
//! new services by only upgrading FNs") made concrete.
//!
//! ## Field layout (25 bytes / 200 bits)
//!
//! ```text
//! [0..8)   flow id
//! [8)      action: 0 = no feedback, 1 = congestion (rate down)
//! [9..25)  feedback MAC over (flow id ‖ action) under the bottleneck key
//! ```
//!
//! ## Roles
//!
//! * a **bottleneck** router (`NetFenceState::congested == true`) stamps
//!   `action = 1` plus the MAC — the unforgeable "slow down" signal;
//! * an **access** router (`NetFenceState::police == true`) runs one AIMD
//!   token bucket per flow: additive increase over time, multiplicative
//!   decrease when a congestion-marked echo passes by, and drops packets
//!   exceeding the current rate ([`DropReason::RateLimited`]).

use dip_crypto::{ct_eq, Block, CbcMac, MacAlgorithm};
use dip_fnops::{Action, DropReason, FieldOp, OpCost, PacketCtx, RouterState};
use dip_tables::Ticks;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};
use std::collections::HashMap;

/// The experimental operation key `F_cong` registers under.
pub const CONG_KEY: FnKey = FnKey::Other(0x100);

/// Width of the congestion field in bits.
pub const CONG_FIELD_BITS: u16 = 200;

/// Width of the congestion field in bytes.
pub const CONG_FIELD_LEN: usize = 25;

/// An AIMD-controlled token bucket for one flow.
#[derive(Debug, Clone)]
pub struct AimdLimiter {
    /// Current permitted rate, bytes per second.
    pub rate_bps: f64,
    tokens: f64,
    last_update: Ticks,
}

impl AimdLimiter {
    fn new(rate_bps: f64, now: Ticks) -> Self {
        AimdLimiter { rate_bps, tokens: rate_bps / 10.0, last_update: now }
    }

    fn refill(&mut self, params: &AimdParams, now: Ticks) {
        let dt = now.saturating_sub(self.last_update) as f64 / 1e9;
        self.last_update = now;
        // Additive increase while the path stays quiet.
        self.rate_bps =
            (self.rate_bps + params.additive_increase_bps * dt).min(params.max_rate_bps);
        // Token bucket refill with a burst of 100 ms worth of traffic.
        self.tokens = (self.tokens + self.rate_bps * dt).min(self.rate_bps / 10.0);
    }

    fn on_congestion(&mut self, params: &AimdParams) {
        self.rate_bps = (self.rate_bps / 2.0).max(params.min_rate_bps);
        self.tokens = self.tokens.min(self.rate_bps / 10.0);
    }

    fn admit(&mut self, bytes: usize) -> bool {
        let need = bytes as f64;
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }
}

/// AIMD parameters of an access router.
#[derive(Debug, Clone, Copy)]
pub struct AimdParams {
    /// Initial per-flow rate.
    pub initial_rate_bps: f64,
    /// Floor after repeated decreases.
    pub min_rate_bps: f64,
    /// Ceiling for additive increase.
    pub max_rate_bps: f64,
    /// Additive increase, bytes/second per second.
    pub additive_increase_bps: f64,
}

impl Default for AimdParams {
    fn default() -> Self {
        AimdParams {
            initial_rate_bps: 1_000_000.0,
            min_rate_bps: 10_000.0,
            max_rate_bps: 100_000_000.0,
            additive_increase_bps: 100_000.0,
        }
    }
}

/// Private state of `F_cong` on one router (lives in
/// `RouterState::ext`).
#[derive(Debug, Default)]
pub struct NetFenceState {
    /// Bottleneck role: when `true`, mark every policed packet.
    pub congested: bool,
    /// Access-router role: police flows with AIMD limiters.
    pub police: bool,
    /// AIMD knobs.
    pub params: Option<AimdParams>,
    /// Per-flow limiters (bounded in a deployment; unbounded here for
    /// experiment clarity — the §2.4 budget story applies identically).
    pub limiters: HashMap<u64, AimdLimiter>,
}

impl NetFenceState {
    /// Current rate of a flow, if policed.
    pub fn flow_rate(&self, flow: u64) -> Option<f64> {
        self.limiters.get(&flow).map(|l| l.rate_bps)
    }
}

/// The congestion-policing operation module.
#[derive(Debug, Default, Clone, Copy)]
pub struct CongestionOp;

fn feedback_mac(secret: &Block, flow_id: u64, action: u8) -> Block {
    let mut msg = Vec::with_capacity(9);
    msg.extend_from_slice(&flow_id.to_be_bytes());
    msg.push(action);
    CbcMac::new_2em(secret).mac(&msg)
}

impl FieldOp for CongestionOp {
    fn key(&self) -> FnKey {
        CONG_KEY
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        if triple.field_len != CONG_FIELD_BITS {
            return Action::Drop(DropReason::MalformedField);
        }
        let Ok(field) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        let flow_id = u64::from_be_bytes(field[..8].try_into().expect("8 bytes"));
        let action = field[8];
        let packet_bytes = ctx.payload.len() + field.len();
        let now = ctx.now;
        let local_secret = state.local_secret;

        let nf = state.ext.get_or_default::<NetFenceState>();

        // Access-router role: police.
        if nf.police {
            let params = nf.params.unwrap_or_default();
            let limiter = nf
                .limiters
                .entry(flow_id)
                .or_insert_with(|| AimdLimiter::new(params.initial_rate_bps, now));
            limiter.refill(&params, now);
            if action == 1 {
                // A congestion-marked echo passing the access router:
                // multiplicative decrease, forward the echo itself freely.
                limiter.on_congestion(&params);
                return Action::Continue;
            }
            if !limiter.admit(packet_bytes) {
                return Action::Drop(DropReason::RateLimited);
            }
        }

        // Bottleneck role: stamp the (authenticated) congestion signal.
        if nf.congested && action == 0 {
            let mut marked = field.clone();
            marked[8] = 1;
            let mac = feedback_mac(&local_secret, flow_id, 1);
            marked[9..25].copy_from_slice(&mac);
            if ctx.write_field(triple, &marked).is_err() {
                return Action::Drop(DropReason::MalformedField);
            }
        }
        Action::Continue
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        // One flow-table access plus (when marking) a short MAC.
        OpCost { stages: 2, table_lookups: 1, cipher_blocks: 2, resubmits: 0 }
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        Some((usize::from(triple.field_loc), triple.field_end()))
    }
}

/// Builds the congestion field for a new flow.
pub fn cong_field(flow_id: u64) -> Vec<u8> {
    let mut f = vec![0u8; CONG_FIELD_LEN];
    f[..8].copy_from_slice(&flow_id.to_be_bytes());
    f
}

/// Builds a NetFence-over-DIP packet: the congestion field plus the FN
/// triple for `F_cong` (compose with addressing FNs as needed).
pub fn packet(flow_id: u64, hop_limit: u8) -> DipRepr {
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, CONG_FIELD_BITS, CONG_KEY)],
        locations: cong_field(flow_id),
    }
}

/// Receiver-side check that a congestion mark really came from the claimed
/// bottleneck (MAC verification; prevents forged "slow down" signals).
pub fn verify_mark(field: &[u8], bottleneck_secret: &Block) -> bool {
    if field.len() < CONG_FIELD_LEN || field[8] != 1 {
        return false;
    }
    let flow_id = u64::from_be_bytes(field[..8].try_into().expect("8 bytes"));
    ct_eq(&feedback_mac(bottleneck_secret, flow_id, 1), &field[9..25])
}

/// Extracts the (flow id, action) pair from a congestion field.
pub fn parse_field(field: &[u8]) -> Option<(u64, u8)> {
    if field.len() < CONG_FIELD_LEN {
        return None;
    }
    Some((u64::from_be_bytes(field[..8].try_into().ok()?), field[8]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::{DipRouter, Verdict};
    use std::sync::Arc;

    fn router(police: bool, congested: bool) -> DipRouter {
        let mut r = DipRouter::new(1, [0x33; 16]);
        r.config_mut().default_port = Some(1);
        r.registry_mut().install(Arc::new(CongestionOp));
        let nf = r.state_mut().ext.get_or_default::<NetFenceState>();
        nf.police = police;
        nf.congested = congested;
        nf.params = Some(AimdParams {
            initial_rate_bps: 10_000.0, // 10 kB/s => 1 kB burst
            min_rate_bps: 1_000.0,
            max_rate_bps: 1_000_000.0,
            additive_increase_bps: 1_000.0,
        });
        r
    }

    fn send(r: &mut DipRouter, flow: u64, payload_len: usize, now: u64) -> Verdict {
        let mut buf = packet(flow, 64).to_bytes(&vec![0u8; payload_len]).unwrap();
        r.process(&mut buf, 0, now).0
    }

    #[test]
    fn unregistered_key_is_skipped_registered_key_runs() {
        // Without installation the FN is unknown-but-optional: skipped.
        let mut plain = DipRouter::new(1, [0; 16]);
        plain.config_mut().default_port = Some(1);
        let mut buf = packet(7, 64).to_bytes(&[]).unwrap();
        let (v, stats) = plain.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![1]));
        assert_eq!(stats.skipped_unsupported, 1);

        // With installation it executes.
        let mut upgraded = router(false, false);
        let mut buf = packet(7, 64).to_bytes(&[]).unwrap();
        let (v, stats) = upgraded.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![1]));
        assert_eq!(stats.fns_executed, 1);
    }

    #[test]
    fn bottleneck_marks_and_mark_verifies() {
        let mut r = router(false, true);
        let secret = r.state().local_secret;
        let mut buf = packet(42, 64).to_bytes(b"data").unwrap();
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![1]));
        let pkt = dip_wire::DipPacket::new_checked(&buf[..]).unwrap();
        let field = pkt.locations();
        assert_eq!(parse_field(field).unwrap(), (42, 1));
        assert!(verify_mark(field, &secret));
        assert!(!verify_mark(field, &[0xEE; 16]), "forged bottleneck key must fail");
    }

    #[test]
    fn access_router_rate_limits_a_greedy_flow() {
        let mut r = router(true, false);
        // 10 kB/s rate, 1 kB burst; 500-byte packets back to back at t=0:
        // about two fit the initial bucket, the rest drop.
        let mut admitted = 0;
        let mut dropped = 0;
        for _ in 0..20 {
            match send(&mut r, 42, 475, 0) {
                Verdict::Forward(_) => admitted += 1,
                Verdict::Drop(DropReason::RateLimited) => dropped += 1,
                other => panic!("{other:?}"),
            }
        }
        assert!((1..=3).contains(&admitted), "admitted {admitted}");
        assert!(dropped >= 17);
        // After a second of refill, traffic flows again.
        assert!(matches!(send(&mut r, 42, 475, 1_000_000_000), Verdict::Forward(_)));
    }

    #[test]
    fn congestion_echo_halves_the_rate() {
        let mut r = router(true, false);
        send(&mut r, 7, 100, 0); // create the limiter
        let before = r.state_mut().ext.get_or_default::<NetFenceState>().flow_rate(7).unwrap();
        // A congestion-marked echo passes by.
        let mut echo = packet(7, 64);
        echo.locations[8] = 1;
        let mut buf = echo.to_bytes(&[]).unwrap();
        assert!(matches!(r.process(&mut buf, 1, 1).0, Verdict::Forward(_)));
        let after = r.state_mut().ext.get_or_default::<NetFenceState>().flow_rate(7).unwrap();
        assert!((after - before / 2.0).abs() < 1e-6, "{before} -> {after}");
    }

    #[test]
    fn additive_increase_recovers_over_time() {
        let mut r = router(true, false);
        send(&mut r, 7, 100, 0);
        // Halve twice.
        for t in [1u64, 2] {
            let mut echo = packet(7, 64);
            echo.locations[8] = 1;
            let mut buf = echo.to_bytes(&[]).unwrap();
            r.process(&mut buf, 1, t);
        }
        let low = r.state_mut().ext.get_or_default::<NetFenceState>().flow_rate(7).unwrap();
        // 10 virtual seconds later the rate has grown additively.
        send(&mut r, 7, 100, 10_000_000_000);
        let recovered = r.state_mut().ext.get_or_default::<NetFenceState>().flow_rate(7).unwrap();
        assert!(recovered > low, "{low} -> {recovered}");
    }

    #[test]
    fn flows_are_isolated() {
        let mut r = router(true, false);
        // Flow 1 exhausts its bucket ...
        for _ in 0..20 {
            send(&mut r, 1, 475, 0);
        }
        assert!(matches!(send(&mut r, 1, 475, 0), Verdict::Drop(DropReason::RateLimited)));
        // ... flow 2 is unaffected.
        assert!(matches!(send(&mut r, 2, 475, 0), Verdict::Forward(_)));
    }

    #[test]
    fn composes_with_addressing_fns() {
        use dip_tables::fib::NextHop;
        use dip_wire::ipv4::Ipv4Addr;
        // DIP-32 + F_cong in one header: match32 decides, cong polices.
        let mut r = router(true, false);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(9));
        let mut locations = vec![10, 0, 0, 1, 1, 1, 1, 1];
        let cong_off = (locations.len() * 8) as u16;
        locations.extend_from_slice(&cong_field(5));
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
                FnTriple::router(cong_off, CONG_FIELD_BITS, CONG_KEY),
            ],
            locations,
            ..Default::default()
        };
        let mut buf = repr.to_bytes(&[0u8; 100]).unwrap();
        let (v, stats) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![9]));
        assert_eq!(stats.fns_executed, 3);
    }
}

//! NDN+OPT — the derived secure content delivery protocol (§3).
//!
//! "With FNs, we can integrate OPT with NDN to derive a secure content
//! delivery network ... we compose the FN modules (F_FIB, F_PIT, F_parm,
//! F_MAC, F_mark and F_ver) to construct the DIP packet header for
//! NDN+OPT."
//!
//! The composition per packet type:
//!
//! * **interest** — `F_FIB` routes by content name (16-byte header, like
//!   plain NDN: the request needs no path authentication);
//! * **data** — `F_PIT` fans the content back along the recorded faces
//!   while `F_parm`/`F_MAC`/`F_mark` build the OPT authentication chain
//!   and `F_ver` lets the consumer verify source and path. Locations =
//!   32-bit content name followed by the 544-bit OPT block → 4 + 68 bytes,
//!   header = 6 + 5·6 + 72 = **108 bytes** (Table 2).
//!
//! This is the paper's §2.3 walkthrough scenario: "a host requests content
//! with content name, and meanwhile it verifies the content's source and
//! the network path used to deliver the content are secure."

use crate::opt::{opt_triples, OptSession};
use dip_wire::ndn::Name;
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// Bit offset of the OPT block inside NDN+OPT locations (after the 32-bit
/// content name).
pub const OPT_BASE_BITS: u16 = 32;

/// Builds an NDN+OPT interest (identical shape to plain NDN; the secure
/// part rides on the returning data).
pub fn interest(name: &Name, hop_limit: u8) -> DipRepr {
    crate::ndn::interest(name, hop_limit)
}

/// Builds an NDN+OPT data packet: content name + OPT block, five FN
/// triples. Header is 108 bytes (Table 2).
pub fn data(
    session: &OptSession,
    name: &Name,
    payload: &[u8],
    timestamp: u32,
    hop_limit: u8,
) -> DipRepr {
    let block = session.initial_block(payload, timestamp);
    let mut locations = name.compact32().to_be_bytes().to_vec();
    locations.extend_from_slice(&block.to_bytes());
    let mut fns = vec![FnTriple::router(0, 32, FnKey::Pit)];
    fns.extend(opt_triples(OPT_BASE_BITS));
    DipRepr { next_header: 0, hop_limit, parallel: false, fns, locations }
}

/// Builds an NDN+OPT data packet keyed by an already-compacted name
/// (simulator producers answer interests that carry only the compact form).
pub fn data_compact(
    session: &OptSession,
    compact: u32,
    payload: &[u8],
    timestamp: u32,
    hop_limit: u8,
) -> DipRepr {
    let block = session.initial_block(payload, timestamp);
    let mut locations = compact.to_be_bytes().to_vec();
    locations.extend_from_slice(&block.to_bytes());
    let mut fns = vec![FnTriple::router(0, 32, FnKey::Pit)];
    fns.extend(opt_triples(OPT_BASE_BITS));
    DipRepr { next_header: 0, hop_limit, parallel: false, fns, locations }
}

/// Like [`data`] but with the parallel flag set (§2.2): the PIT lookup and
/// the key derivation may overlap in a parallelism-capable pipeline.
pub fn data_parallel(
    session: &OptSession,
    name: &Name,
    payload: &[u8],
    timestamp: u32,
    hop_limit: u8,
) -> DipRepr {
    let mut repr = data(session, name, payload, timestamp, hop_limit);
    repr.parallel = true;
    repr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header_sizes;
    use dip_core::host::deliver;
    use dip_core::{DipRouter, Verdict};
    use dip_crypto::Block;
    use dip_fnops::{DropReason, FnRegistry, RouterState};
    use dip_tables::fib::NextHop;

    fn setup() -> (OptSession, DipRouter, Name) {
        let router_secret: Block = [33; 16];
        let session = OptSession::establish([0x77; 16], &[3; 16], &[router_secret]);
        let mut router = DipRouter::new(0, router_secret);
        let name = Name::parse("hotnets.org");
        router.state_mut().name_fib.add_route(&name, NextHop::port(8));
        (session, router, name)
    }

    #[test]
    fn data_header_is_108_bytes() {
        let (s, _, name) = setup();
        assert_eq!(data(&s, &name, b"x", 1, 64).header_len(), header_sizes::NDN_OPT);
    }

    #[test]
    fn interest_header_is_16_bytes() {
        let (_, _, name) = setup();
        assert_eq!(interest(&name, 64).header_len(), header_sizes::NDN);
    }

    #[test]
    fn full_secure_content_delivery_roundtrip() {
        // The §2.3 walkthrough: interest out, authenticated data back.
        let (session, mut router, name) = setup();

        // Consumer (port 3) asks for the content.
        let mut ibuf = interest(&name, 64).to_bytes(&[]).unwrap();
        let (v, _) = router.process(&mut ibuf, 3, 0);
        assert_eq!(v, Verdict::Forward(vec![8]));

        // Producer (port 8) answers with authenticated data.
        let payload = b"the secure content".to_vec();
        let mut dbuf = data(&session, &name, &payload, 42, 64).to_bytes(&payload).unwrap();
        let (v, stats) = router.process(&mut dbuf, 8, 100);
        assert_eq!(v, Verdict::Forward(vec![3])); // PIT fan-out to consumer
        assert_eq!(stats.fns_executed, 4); // PIT + parm + MAC + mark
        assert_eq!(stats.skipped_host, 1); // ver

        // Consumer verifies source and path.
        let mut host_state = RouterState::new(999, [0; 16]);
        let d = deliver(
            &mut dbuf,
            &session.host_context(),
            &mut host_state,
            &FnRegistry::standard(),
            200,
        )
        .unwrap();
        assert!(d.verified);
    }

    #[test]
    fn tampered_content_fails_verification_but_still_forwards() {
        let (session, mut router, name) = setup();
        let mut ibuf = interest(&name, 64).to_bytes(&[]).unwrap();
        router.process(&mut ibuf, 3, 0);

        let payload = b"genuine".to_vec();
        let mut dbuf = data(&session, &name, &payload, 1, 64).to_bytes(&payload).unwrap();
        // Attacker swaps the payload before the router.
        let n = dbuf.len();
        dbuf[n - 1] ^= 1;
        let (v, _) = router.process(&mut dbuf, 8, 100);
        assert!(matches!(v, Verdict::Forward(_))); // routers don't verify
        let mut host_state = RouterState::new(999, [0; 16]);
        assert_eq!(
            deliver(
                &mut dbuf,
                &session.host_context(),
                &mut host_state,
                &FnRegistry::standard(),
                0
            ),
            Err(DropReason::AuthenticationFailed)
        );
    }

    #[test]
    fn unsolicited_secure_data_still_dropped_by_pit() {
        let (session, mut router, name) = setup();
        let payload = b"push".to_vec();
        let mut dbuf = data(&session, &name, &payload, 1, 64).to_bytes(&payload).unwrap();
        let (v, _) = router.process(&mut dbuf, 8, 0);
        assert_eq!(v, Verdict::Drop(DropReason::PitMiss));
    }

    #[test]
    fn parallel_variant_sets_flag_and_shrinks_plan() {
        let (session, mut router, name) = setup();
        let mut ibuf = interest(&name, 64).to_bytes(&[]).unwrap();
        router.process(&mut ibuf, 3, 0);
        let payload = b"p".to_vec();
        let repr = data_parallel(&session, &name, &payload, 1, 64);
        assert!(repr.parallel);
        let mut dbuf = repr.to_bytes(&payload).unwrap();
        let (_, stats) = router.process(&mut dbuf, 8, 10);
        // 4 router FNs collapse into 3 waves (PIT ∥ parm, then MAC, mark).
        assert_eq!(stats.plan_depth, 3);
    }
}

//! XIA over DIP (§3, *XIA*).
//!
//! "We use the F_DAG and F_intent FN modules to realize the complex packet
//! processing logic in XIA. We set the header of XIA in the FN locations
//! and use these two operation modules to parse the directed acyclic graph
//! and handle the intent."

use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};
use dip_wire::xia::Dag;

/// Builds an XIA-over-DIP packet for destination DAG `dag`.
pub fn packet(dag: &Dag, hop_limit: u8) -> DipRepr {
    let encoded = dag.encode();
    let bits = dag.encoded_bits();
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, bits, FnKey::Dag), FnTriple::router(0, bits, FnKey::Intent)],
        locations: encoded,
    }
}

/// Reads the (possibly navigation-updated) DAG back out of a packet's
/// locations area.
pub fn parse_dag(locations: &[u8]) -> Option<Dag> {
    Dag::decode(locations).ok().map(|(d, _)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::{DipRouter, Verdict};
    use dip_fnops::DropReason;
    use dip_tables::XiaNextHop;
    use dip_wire::xia::{DagNode, Xid, XidType};

    fn xid(s: &str) -> Xid {
        Xid::derive(s.as_bytes())
    }

    fn content_dag() -> Dag {
        Dag::direct_with_fallback(
            DagNode::sink(XidType::Cid, xid("the-content")),
            xid("ad-1"),
            xid("host-1"),
        )
        .unwrap()
    }

    #[test]
    fn header_size_scales_with_dag() {
        let repr = packet(&content_dag(), 64);
        // 6 basic + 2*6 triples + (6 + 3*28) locations.
        assert_eq!(repr.header_len(), 6 + 12 + 90);
    }

    #[test]
    fn cid_aware_router_forwards_on_intent() {
        let mut r = DipRouter::new(1, [0; 16]);
        r.state_mut().xia.add_route(XidType::Cid, xid("the-content"), XiaNextHop::Port(4));
        let mut buf = packet(&content_dag(), 64).to_bytes(&[]).unwrap();
        let (v, stats) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![4]));
        assert_eq!(stats.fns_executed, 2);
    }

    #[test]
    fn legacy_router_falls_back_to_ad_path() {
        // A router with no CID table at all — XIA's evolvability case.
        let mut r = DipRouter::new(1, [0; 16]);
        r.state_mut().xia.add_route(XidType::Ad, xid("ad-1"), XiaNextHop::Port(9));
        let mut buf = packet(&content_dag(), 64).to_bytes(&[]).unwrap();
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![9]));
    }

    #[test]
    fn navigation_progress_travels_in_the_packet() {
        // Hop 1 is the AD: it advances last_visited and forwards to the HID.
        let mut ad_router = DipRouter::new(1, [0; 16]);
        ad_router.state_mut().xia.add_route(XidType::Ad, xid("ad-1"), XiaNextHop::Local);
        ad_router.state_mut().xia.add_route(XidType::Hid, xid("host-1"), XiaNextHop::Port(2));
        let mut buf = packet(&content_dag(), 64).to_bytes(&[]).unwrap();
        let (v, _) = ad_router.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![2]));

        // The updated DAG is visible to the next hop.
        let pkt = dip_wire::DipPacket::new_checked(&buf[..]).unwrap();
        let dag = parse_dag(pkt.locations()).unwrap();
        assert_eq!(dag.last_visited, 1);

        // Hop 2 is the HID and owns the content: deliver.
        let mut host = DipRouter::new(2, [0; 16]);
        host.state_mut().xia.add_route(XidType::Hid, xid("host-1"), XiaNextHop::Local);
        host.state_mut().xia.add_route(XidType::Cid, xid("the-content"), XiaNextHop::Local);
        let (v, _) = host.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Deliver);
    }

    #[test]
    fn totally_unroutable_dag_drops() {
        let mut r = DipRouter::new(1, [0; 16]);
        let mut buf = packet(&content_dag(), 64).to_bytes(&[]).unwrap();
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::DagUnroutable));
    }
}

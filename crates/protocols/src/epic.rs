//! EPIC-style per-hop dataplane verification as a custom Field Operation.
//!
//! EPIC \[17\] ("Every Packet Is Checked in the Data Plane", cited alongside
//! OPT in §1) shifts verification from the destination into the network:
//! the *source* precomputes one hop validation field (HVF) per on-path
//! router from the same DRKey-style keys OPT uses, and each router
//! **verifies its HVF before forwarding**, dropping bogus traffic at the
//! first honest hop instead of letting the destination discover it. This is
//! the complementary design point to [`crate::opt`] (routers update,
//! destination verifies), and composing the two FNs is exactly the kind of
//! merge §2.1 promises.
//!
//! ## Field layout (38 + 8·n bytes)
//!
//! ```text
//! [0)        number of hops n
//! [1)        current hop index (advanced in place)
//! [2..18)    session id
//! [18..34)   payload hash
//! [34..38)   timestamp
//! then per hop: HVF (8B) = trunc8( MAC_{K_i}( hash ‖ ts ‖ i ) )
//! ```

use dip_crypto::{ct_eq, derive_session_key, mmo_hash, Block, CbcMac, MacAlgorithm};
use dip_fnops::{Action, DropReason, FieldOp, OpCost, PacketCtx, RouterState};
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// The experimental operation key `F_epic` registers under.
pub const EPIC_KEY: FnKey = FnKey::Other(0x103);

/// Fixed part of the EPIC field.
pub const EPIC_PREAMBLE_LEN: usize = 38;
/// Per-hop validation field size.
pub const HVF_LEN: usize = 8;

fn hvf(key: &Block, data_hash: &[u8; 16], timestamp: u32, index: u8) -> [u8; 8] {
    let mut msg = Vec::with_capacity(21);
    msg.extend_from_slice(data_hash);
    msg.extend_from_slice(&timestamp.to_be_bytes());
    msg.push(index);
    let full = CbcMac::new_2em(key).mac(&msg);
    full[..8].try_into().expect("8 bytes")
}

/// An established EPIC session (source side).
#[derive(Debug, Clone)]
pub struct EpicSession {
    /// The session identifier carried in every packet.
    pub session_id: Block,
    /// Per-hop dynamic keys, in path order.
    pub path_keys: Vec<Block>,
}

impl EpicSession {
    /// Key setup — identical derivation to OPT's (§3): the host learns
    /// `K_i = PRF(S_i, session_id)` for every on-path router.
    pub fn establish(session_id: Block, router_secrets: &[Block]) -> Self {
        EpicSession {
            session_id,
            path_keys: router_secrets.iter().map(|s| derive_session_key(s, &session_id)).collect(),
        }
    }

    /// Builds the EPIC field for `payload` at `timestamp`: the source
    /// precomputes every hop's HVF.
    pub fn field(&self, payload: &[u8], timestamp: u32) -> Vec<u8> {
        let data_hash = mmo_hash(payload);
        let mut out = Vec::with_capacity(EPIC_PREAMBLE_LEN + HVF_LEN * self.path_keys.len());
        out.push(self.path_keys.len() as u8);
        out.push(0);
        out.extend_from_slice(&self.session_id);
        out.extend_from_slice(&data_hash);
        out.extend_from_slice(&timestamp.to_be_bytes());
        for (i, k) in self.path_keys.iter().enumerate() {
            out.extend_from_slice(&hvf(k, &data_hash, timestamp, i as u8));
        }
        out
    }

    /// Width in bits of this session's EPIC field.
    pub fn field_bits(&self) -> u16 {
        ((EPIC_PREAMBLE_LEN + HVF_LEN * self.path_keys.len()) * 8) as u16
    }

    /// Builds a standalone EPIC packet (compose the triple with addressing
    /// FNs for routed traffic).
    pub fn packet(&self, payload: &[u8], timestamp: u32, hop_limit: u8) -> DipRepr {
        DipRepr {
            next_header: 0,
            hop_limit,
            parallel: false,
            fns: vec![FnTriple::router(0, self.field_bits(), EPIC_KEY)],
            locations: self.field(payload, timestamp),
        }
    }
}

/// The per-hop verification operation module.
#[derive(Debug, Default, Clone, Copy)]
pub struct EpicOp;

impl FieldOp for EpicOp {
    fn key(&self) -> FnKey {
        EPIC_KEY
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Ok(mut field) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        if field.len() < EPIC_PREAMBLE_LEN {
            return Action::Drop(DropReason::MalformedField);
        }
        let n = usize::from(field[0]);
        let cur = usize::from(field[1]);
        if field.len() < EPIC_PREAMBLE_LEN + n * HVF_LEN {
            return Action::Drop(DropReason::MalformedField);
        }
        if cur >= n {
            // More routers on the path than HVFs — the source did not
            // authorize this hop.
            return Action::Drop(DropReason::AuthenticationFailed);
        }
        let mut session_id = [0u8; 16];
        session_id.copy_from_slice(&field[2..18]);
        let mut data_hash = [0u8; 16];
        data_hash.copy_from_slice(&field[18..34]);
        let timestamp = u32::from_be_bytes(field[34..38].try_into().expect("4 bytes"));

        // EPIC's defining step: *this router verifies* before forwarding.
        // (1) the payload actually hashes to the carried DataHash;
        let actual_hash = mmo_hash(ctx.payload);
        if !ct_eq(&actual_hash, &data_hash) {
            return Action::Drop(DropReason::AuthenticationFailed);
        }
        // (2) the source knew this router's session key.
        let key = derive_session_key(&state.local_secret, &session_id);
        let expected = hvf(&key, &data_hash, timestamp, cur as u8);
        let off = EPIC_PREAMBLE_LEN + cur * HVF_LEN;
        if !ct_eq(&expected, &field[off..off + HVF_LEN]) {
            return Action::Drop(DropReason::AuthenticationFailed);
        }

        field[1] = (cur + 1) as u8;
        if ctx.write_field(triple, &field).is_err() {
            return Action::Drop(DropReason::MalformedField);
        }
        Action::Continue
    }

    fn cost(&self, field_bits: u16) -> OpCost {
        // Key derivation + one short MAC + the payload hash. The payload
        // hash is the expensive part EPIC's real design replaces with a
        // per-packet MAC over a short header; we report the conservative
        // cost.
        OpCost::cipher(3, 6 + u32::from(field_bits / 512), 0)
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        Some((usize::from(triple.field_loc), triple.field_end()))
    }

    fn requires_participation(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::{DipRouter, Verdict};
    use std::sync::Arc;

    fn epic_router(secret: Block) -> DipRouter {
        let mut r = DipRouter::new(0, secret);
        r.config_mut().default_port = Some(1);
        r.registry_mut().install(Arc::new(EpicOp));
        r
    }

    const SECRETS: [Block; 3] = [[1; 16], [2; 16], [3; 16]];

    #[test]
    fn honest_packet_passes_every_hop() {
        let session = EpicSession::establish([0x5a; 16], &SECRETS);
        let payload = b"checked everywhere".to_vec();
        let mut buf = session.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        for s in SECRETS {
            let mut r = epic_router(s);
            let (v, _) = r.process(&mut buf, 0, 0);
            assert_eq!(v, Verdict::Forward(vec![1]));
        }
        // Index advanced to 3 on the wire.
        let pkt = dip_wire::DipPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.locations()[1], 3);
    }

    #[test]
    fn tampered_payload_dropped_at_the_first_hop_unlike_opt() {
        // The EPIC pitch: bogus traffic dies in the dataplane immediately.
        let session = EpicSession::establish([0x5a; 16], &SECRETS);
        let payload = b"genuine".to_vec();
        let mut buf = session.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        let n = buf.len();
        buf[n - 1] ^= 1;
        let mut first = epic_router(SECRETS[0]);
        let (v, _) = first.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));

        // Contrast: the same tampering under OPT sails through the router
        // and is only caught by the destination (see opt::tests).
        let opt = crate::opt::OptSession::establish([0x5a; 16], &[9; 16], &[SECRETS[0]]);
        let mut obuf = opt.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        let m = obuf.len();
        obuf[m - 1] ^= 1;
        let mut r = DipRouter::new(0, SECRETS[0]);
        r.config_mut().default_port = Some(1);
        let (v, _) = r.process(&mut obuf, 0, 0);
        assert!(matches!(v, Verdict::Forward(_)), "OPT routers forward blindly");
    }

    #[test]
    fn unauthorized_router_rejects() {
        let session = EpicSession::establish([0x5a; 16], &SECRETS);
        let payload = b"p".to_vec();
        let mut buf = session.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        let mut rogue = epic_router([0xEE; 16]);
        let (v, _) = rogue.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn path_longer_than_authorized_rejects() {
        let session = EpicSession::establish([0x5a; 16], &SECRETS[..1]);
        let payload = b"p".to_vec();
        let mut buf = session.packet(&payload, 7, 64).to_bytes(&payload).unwrap();
        let mut r1 = epic_router(SECRETS[0]);
        assert!(matches!(r1.process(&mut buf, 0, 0).0, Verdict::Forward(_)));
        // A second router — not in the HVF list — must refuse.
        let mut r2 = epic_router(SECRETS[1]);
        let (v, _) = r2.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn hvfs_are_position_bound() {
        // Swap two HVFs: both hops fail (index is MAC'd).
        let session = EpicSession::establish([0x5a; 16], &SECRETS[..2]);
        let payload = b"p".to_vec();
        let mut repr = session.packet(&payload, 7, 64);
        let (a, b) = (EPIC_PREAMBLE_LEN, EPIC_PREAMBLE_LEN + HVF_LEN);
        let hvf0: Vec<u8> = repr.locations[a..a + HVF_LEN].to_vec();
        let hvf1: Vec<u8> = repr.locations[b..b + HVF_LEN].to_vec();
        repr.locations[a..a + HVF_LEN].copy_from_slice(&hvf1);
        repr.locations[b..b + HVF_LEN].copy_from_slice(&hvf0);
        let mut buf = repr.to_bytes(&payload).unwrap();
        let mut r = epic_router(SECRETS[0]);
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
    }

    #[test]
    fn composes_with_ndn_forwarding() {
        // EPIC verification + name-based forwarding in one header: the
        // "secure NDN with in-network filtering" composition.
        use dip_tables::fib::NextHop;
        use dip_wire::ndn::Name;
        let session = EpicSession::establish([0x5a; 16], &SECRETS[..1]);
        let name = Name::parse("/filtered");
        let payload = b"data".to_vec();

        let mut locations = name.compact32().to_be_bytes().to_vec();
        let epic_off = (locations.len() * 8) as u16;
        locations.extend_from_slice(&session.field(&payload, 1));
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(epic_off, session.field_bits(), EPIC_KEY),
                FnTriple::router(0, 32, FnKey::Pit),
            ],
            locations,
            ..Default::default()
        };

        let mut r = epic_router(SECRETS[0]);
        r.state_mut().name_fib.add_route(&name, NextHop::port(4));
        // Pending interest so the data has a face to follow.
        let mut ibuf = crate::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        r.process(&mut ibuf, 6, 0);

        let mut buf = repr.to_bytes(&payload).unwrap();
        let (v, stats) = r.process(&mut buf, 4, 10);
        assert_eq!(v, Verdict::Forward(vec![6]));
        assert_eq!(stats.fns_executed, 2);

        // Tampered copy never reaches the PIT.
        let mut ibuf2 = crate::ndn::interest(&name, 64).to_bytes(b"rq2").unwrap();
        r.process(&mut ibuf2, 6, 20);
        let mut bad = repr.to_bytes(b"dataX").unwrap();
        let (v, _) = r.process(&mut bad, 4, 30);
        assert_eq!(v, Verdict::Drop(DropReason::AuthenticationFailed));
        assert!(r.state().pit.contains(&name.compact32(), 31), "PIT entry untouched");
    }
}

//! In-band network telemetry (INT) as a custom Field Operation.
//!
//! §5 lists "efficient network telemetry \[14, 33\]" among DIP's
//! opportunities. `F_tele` (registered under [`TELE_KEY`]) implements the
//! INT pattern: the source reserves space in the FN locations and every
//! on-path router appends a fixed-size record — node id, arrival
//! timestamp, ingress port — which the destination reads back to
//! reconstruct the path and per-hop latency. Pure header rewriting, no
//! router state at all.
//!
//! ## Field layout
//!
//! ```text
//! [0)  capacity (max records)
//! [1)  count (records written so far)
//! then per record (12 B): node id (4B) | arrival time µs (4B) | ingress (4B)
//! ```
//!
//! When the reserved space is full the packet keeps forwarding and the
//! high bit of `count` is set as an overflow marker (telemetry must never
//! break the dataplane).

use dip_fnops::{Action, DropReason, FieldOp, OpCost, PacketCtx, RouterState};
use dip_wire::packet::DipRepr;
use dip_wire::triple::{FnKey, FnTriple};

/// The experimental operation key `F_tele` registers under.
pub const TELE_KEY: FnKey = FnKey::Other(0x102);

/// Encoded size of one telemetry record.
pub const RECORD_LEN: usize = 12;

/// Preamble size (capacity + count).
pub const TELE_PREAMBLE_LEN: usize = 2;

/// Overflow marker in the count byte.
pub const OVERFLOW_BIT: u8 = 0x80;

/// One per-hop telemetry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// The reporting node.
    pub node_id: u32,
    /// Arrival time at that node, in microseconds of virtual time.
    pub arrival_us: u32,
    /// Ingress port the packet arrived on.
    pub ingress: u32,
}

/// The telemetry operation module.
#[derive(Debug, Default, Clone, Copy)]
pub struct TelemetryOp;

impl FieldOp for TelemetryOp {
    fn key(&self) -> FnKey {
        TELE_KEY
    }

    fn execute(
        &self,
        triple: &FnTriple,
        state: &mut RouterState,
        ctx: &mut PacketCtx<'_>,
    ) -> Action {
        let Ok(mut field) = ctx.read_field(triple) else {
            return Action::Drop(DropReason::MalformedField);
        };
        if field.len() < TELE_PREAMBLE_LEN {
            return Action::Drop(DropReason::MalformedField);
        }
        let capacity = usize::from(field[0]);
        let count = usize::from(field[1] & !OVERFLOW_BIT);
        if field.len() < TELE_PREAMBLE_LEN + capacity * RECORD_LEN {
            return Action::Drop(DropReason::MalformedField);
        }
        if count >= capacity {
            // Full: mark overflow, never block the packet.
            field[1] |= OVERFLOW_BIT;
        } else {
            let off = TELE_PREAMBLE_LEN + count * RECORD_LEN;
            field[off..off + 4].copy_from_slice(&(state.node_id as u32).to_be_bytes());
            field[off + 4..off + 8].copy_from_slice(&((ctx.now / 1_000) as u32).to_be_bytes());
            field[off + 8..off + 12].copy_from_slice(&ctx.in_port.to_be_bytes());
            field[1] = (count + 1) as u8 | (field[1] & OVERFLOW_BIT);
        }
        if ctx.write_field(triple, &field).is_err() {
            return Action::Drop(DropReason::MalformedField);
        }
        Action::Continue
    }

    fn cost(&self, _field_bits: u16) -> OpCost {
        OpCost::stages(1)
    }

    fn write_range(&self, triple: &FnTriple) -> Option<(usize, usize)> {
        Some((usize::from(triple.field_loc), triple.field_end()))
    }
}

/// Reserves telemetry space for up to `capacity` hops.
pub fn tele_field(capacity: u8) -> Vec<u8> {
    let mut f = vec![0u8; TELE_PREAMBLE_LEN + usize::from(capacity) * RECORD_LEN];
    f[0] = capacity;
    f
}

/// Width in bits of a telemetry field with `capacity` slots.
pub fn tele_field_bits(capacity: u8) -> u16 {
    ((TELE_PREAMBLE_LEN + usize::from(capacity) * RECORD_LEN) * 8) as u16
}

/// Builds a standalone telemetry probe packet (compose the triple with
/// other FNs for piggybacked telemetry).
pub fn probe(capacity: u8, hop_limit: u8) -> DipRepr {
    DipRepr {
        next_header: 0,
        hop_limit,
        parallel: false,
        fns: vec![FnTriple::router(0, tele_field_bits(capacity), TELE_KEY)],
        locations: tele_field(capacity),
    }
}

/// Destination-side decode: the collected records plus the overflow flag.
pub fn parse_records(field: &[u8]) -> Option<(Vec<TelemetryRecord>, bool)> {
    if field.len() < TELE_PREAMBLE_LEN {
        return None;
    }
    let capacity = usize::from(field[0]);
    let overflow = field[1] & OVERFLOW_BIT != 0;
    let count = usize::from(field[1] & !OVERFLOW_BIT).min(capacity);
    if field.len() < TELE_PREAMBLE_LEN + capacity * RECORD_LEN {
        return None;
    }
    let records = (0..count)
        .map(|i| {
            let off = TELE_PREAMBLE_LEN + i * RECORD_LEN;
            TelemetryRecord {
                node_id: u32::from_be_bytes(field[off..off + 4].try_into().expect("4")),
                arrival_us: u32::from_be_bytes(field[off + 4..off + 8].try_into().expect("4")),
                ingress: u32::from_be_bytes(field[off + 8..off + 12].try_into().expect("4")),
            }
        })
        .collect();
    Some((records, overflow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::{DipRouter, Verdict};
    use dip_wire::DipPacket;
    use std::sync::Arc;

    fn tele_router(node_id: u64) -> DipRouter {
        let mut r = DipRouter::new(node_id, [0; 16]);
        r.config_mut().default_port = Some(1);
        r.registry_mut().install(Arc::new(TelemetryOp));
        r
    }

    #[test]
    fn records_accumulate_across_hops() {
        let mut buf = probe(4, 64).to_bytes(&[]).unwrap();
        for (i, now) in [(1u64, 10_000u64), (2, 25_000), (3, 47_000)] {
            let mut r = tele_router(i);
            let (v, _) = r.process(&mut buf, i as u32 * 10, now);
            assert_eq!(v, Verdict::Forward(vec![1]));
        }
        let pkt = DipPacket::new_checked(&buf[..]).unwrap();
        let (records, overflow) = parse_records(pkt.locations()).unwrap();
        assert!(!overflow);
        assert_eq!(
            records,
            vec![
                TelemetryRecord { node_id: 1, arrival_us: 10, ingress: 10 },
                TelemetryRecord { node_id: 2, arrival_us: 25, ingress: 20 },
                TelemetryRecord { node_id: 3, arrival_us: 47, ingress: 30 },
            ]
        );
        // Per-hop latency reconstruction.
        assert_eq!(records[1].arrival_us - records[0].arrival_us, 15);
    }

    #[test]
    fn overflow_marks_but_never_drops() {
        let mut buf = probe(2, 64).to_bytes(&[]).unwrap();
        for i in 1..=5u64 {
            let mut r = tele_router(i);
            let (v, _) = r.process(&mut buf, 0, i * 1000);
            assert_eq!(v, Verdict::Forward(vec![1]), "hop {i}");
        }
        let pkt = DipPacket::new_checked(&buf[..]).unwrap();
        let (records, overflow) = parse_records(pkt.locations()).unwrap();
        assert_eq!(records.len(), 2);
        assert!(overflow);
    }

    #[test]
    fn zero_capacity_probe_just_flows() {
        let mut buf = probe(0, 64).to_bytes(&[]).unwrap();
        let mut r = tele_router(1);
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Forward(vec![1]));
        let pkt = DipPacket::new_checked(&buf[..]).unwrap();
        let (records, overflow) = parse_records(pkt.locations()).unwrap();
        assert!(records.is_empty());
        assert!(overflow);
    }

    #[test]
    fn undersized_field_is_malformed() {
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, 16, TELE_KEY)],
            locations: vec![4, 0], // claims capacity 4, no room
            ..Default::default()
        };
        let mut buf = repr.to_bytes(&[]).unwrap();
        let mut r = tele_router(1);
        let (v, _) = r.process(&mut buf, 0, 0);
        assert_eq!(v, Verdict::Drop(DropReason::MalformedField));
    }

    #[test]
    fn piggybacks_on_ndn_opt() {
        // Telemetry + the paper's flagship composition in one header.
        use crate::opt::{opt_triples, OptSession};
        use dip_tables::fib::NextHop;
        use dip_wire::ndn::Name;

        let name = Name::parse("/telemetered");
        let session = OptSession::establish([1; 16], &[2; 16], &[[9; 16]]);
        let mut router = DipRouter::new(5, [9; 16]);
        router.registry_mut().install(Arc::new(TelemetryOp));
        router.state_mut().name_fib.add_route(&name, NextHop::port(3));

        // Interest first so the PIT has a face.
        let mut ibuf = crate::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        router.process(&mut ibuf, 8, 0);

        // Data = name + OPT block + telemetry space, 6 FNs + F_tele.
        let payload = b"payload".to_vec();
        let block = session.initial_block(&payload, 1);
        let mut locations = name.compact32().to_be_bytes().to_vec();
        locations.extend_from_slice(&block.to_bytes());
        let tele_off = (locations.len() * 8) as u16;
        locations.extend_from_slice(&tele_field(2));
        let mut fns = vec![FnTriple::router(0, 32, FnKey::Pit)];
        fns.extend(opt_triples(32));
        fns.push(FnTriple::router(tele_off, tele_field_bits(2), TELE_KEY));
        let repr = DipRepr { fns, locations, ..Default::default() };
        let mut buf = repr.to_bytes(&payload).unwrap();

        let (v, stats) = router.process(&mut buf, 3, 77_000);
        assert_eq!(v, Verdict::Forward(vec![8]));
        assert_eq!(stats.fns_executed, 5); // PIT + parm + MAC + mark + tele

        let pkt = DipPacket::new_checked(&buf[..]).unwrap();
        let tele_bytes = &pkt.locations()[4 + 68..];
        let (records, _) = parse_records(tele_bytes).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].node_id, 5);
        assert_eq!(records[0].arrival_us, 77);
    }
}

//! The PISA / Tofino pipeline timing model (§4.1, Figure 2 substitute).
//!
//! §4.1 describes how the prototype maps DIP onto a Tofino: the FN loop is
//! unrolled into an if-else chain selected by `FN_Num`, preset field slices
//! feed per-key match-action tables, and the MAC uses 2EM because "AES
//! needs to resubmit the packet" while 2EM "can be completed without
//! resubmitting".
//!
//! This model converts the architecture costs a router reports
//! ([`dip_core::ProcessStats`]) into nanoseconds:
//!
//! ```text
//! t = base
//!   + stages·t_stage·(plan_depth/fns)   (modular parallelism, §2.2)
//!   + lookups·t_lookup
//!   + cipher_blocks·t_block
//!   + resubmits·t_pipeline              (AES penalty)
//!   + wire_bytes·8 / line_rate          (serialization)
//! ```
//!
//! Constants are calibrated to commodity Tofino figures from the public
//! literature (≈400 ns pipeline traversal, ~1 ns/stage at 12+ stages,
//! SRAM/TCAM lookups folded into their stage). Absolute values are *not*
//! claimed to match the paper's testbed — the reproduction target is the
//! relative shape of Figure 2 (DIP ≈ IP; OPT/NDN+OPT pay for MACs; size
//! affects all protocols equally through serialization).

use dip_core::ProcessStats;
use dip_fnops::context::MacChoice;

/// A calibrated pipeline timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TofinoModel {
    /// Fixed traversal cost of the ingress+egress pipeline (ns).
    pub base_ns: f64,
    /// Per-occupied-stage cost (ns).
    pub stage_ns: f64,
    /// Per table lookup (ns) — SRAM exact/TCAM LPM access.
    pub lookup_ns: f64,
    /// Per 128-bit cipher-block operation (ns) — one 2EM/AES-equivalent
    /// block pass through the arithmetic stages.
    pub cipher_block_ns: f64,
    /// Cost of a full packet resubmission (ns) — what AES pays (§4.1).
    pub resubmit_ns: f64,
    /// Line rate in bits per nanosecond (100 Gbps = 100 bits/ns).
    pub line_rate_bits_per_ns: f64,
}

impl TofinoModel {
    /// Calibrated defaults for a Tofino-class switch port at 100 Gbps.
    pub fn tofino() -> Self {
        TofinoModel {
            base_ns: 400.0,
            stage_ns: 15.0,
            lookup_ns: 25.0,
            cipher_block_ns: 40.0,
            resubmit_ns: 450.0,
            line_rate_bits_per_ns: 100.0,
        }
    }

    /// A slower software-dataplane profile (for comparison experiments).
    pub fn software() -> Self {
        TofinoModel {
            base_ns: 900.0,
            stage_ns: 60.0,
            lookup_ns: 120.0,
            cipher_block_ns: 300.0,
            resubmit_ns: 0.0, // software has no resubmission concept
            line_rate_bits_per_ns: 10.0,
        }
    }

    /// The static-verification budget matching this timing profile: the
    /// bridge from the sim's deployment target to [`dip_verify`]'s
    /// resource pass. The software profile (identified by having no
    /// resubmission concept) maps to the generous software budget; every
    /// hardware-shaped profile gets the Tofino pipeline limits.
    pub fn resource_budget(&self) -> dip_verify::ResourceBudget {
        if self.resubmit_ns == 0.0 {
            dip_verify::ResourceBudget::software()
        } else {
            dip_verify::ResourceBudget::tofino()
        }
    }

    /// Processing time for one packet given the router's reported stats,
    /// the wire size, and the cipher backing `F_MAC`.
    pub fn process_ns(&self, stats: &ProcessStats, wire_bytes: usize, mac: MacChoice) -> f64 {
        // Modular parallelism: stage occupancy shrinks by the plan's
        // depth/width ratio (§2.2); lookups and cipher math are
        // resource-bound and do not shrink.
        let depth_ratio = if stats.fns_executed > 0 {
            stats.plan_depth as f64 / stats.fns_executed as f64
        } else {
            1.0
        };
        let resubmits = stats.cost.resubmits
            + match mac {
                // §4.1: AES cannot finish in one pass.
                MacChoice::Aes if stats.cost.cipher_blocks > 0 => 1,
                _ => 0,
            };
        self.base_ns
            + f64::from(stats.cost.stages) * self.stage_ns * depth_ratio
            + f64::from(stats.cost.table_lookups) * self.lookup_ns
            + f64::from(stats.cost.cipher_blocks) * self.cipher_block_ns
            + f64::from(resubmits) * self.resubmit_ns
            + (wire_bytes as f64 * 8.0) / self.line_rate_bits_per_ns
    }
}

impl Default for TofinoModel {
    fn default() -> Self {
        TofinoModel::tofino()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_core::DipRouter;
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;
    use dip_wire::ndn::Name;

    fn stats_for(repr: dip_wire::packet::DipRepr, payload: &[u8]) -> (ProcessStats, usize) {
        let mut r = DipRouter::new(0, [1; 16]);
        r.config_mut().default_port = Some(1);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(0, 0, 0, 0), 0, NextHop::port(1));
        let name = Name::parse("hotnets.org");
        r.state_mut().name_fib.add_route(&name, NextHop::port(1));
        let mut buf = repr.to_bytes(payload).unwrap();
        let len = buf.len();
        let (_, stats) = r.process(&mut buf, 0, 0);
        (stats, len)
    }

    #[test]
    fn opt_costs_more_than_ip() {
        let m = TofinoModel::tofino();
        let ip = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            64,
        );
        let (ip_stats, ip_len) = stats_for(ip, &[0u8; 64]);
        let session = dip_protocols::opt::OptSession::establish([1; 16], &[2; 16], &[[1; 16]]);
        let (opt_stats, opt_len) = stats_for(session.packet(&[0u8; 64], 1, 64), &[0u8; 64]);
        let t_ip = m.process_ns(&ip_stats, ip_len, MacChoice::TwoRoundEm);
        let t_opt = m.process_ns(&opt_stats, opt_len, MacChoice::TwoRoundEm);
        assert!(t_opt > t_ip, "OPT {t_opt} must exceed IP {t_ip}");
    }

    #[test]
    fn aes_pays_a_resubmission_2em_does_not() {
        let m = TofinoModel::tofino();
        let session = dip_protocols::opt::OptSession::establish([1; 16], &[2; 16], &[[1; 16]]);
        let (stats, len) = stats_for(session.packet(b"x", 1, 64), b"x");
        let t_em = m.process_ns(&stats, len, MacChoice::TwoRoundEm);
        let t_aes = m.process_ns(&stats, len, MacChoice::Aes);
        assert!((t_aes - t_em - m.resubmit_ns).abs() < 1e-9);
    }

    #[test]
    fn serialization_scales_with_packet_size() {
        let m = TofinoModel::tofino();
        let stats = ProcessStats::default();
        let t128 = m.process_ns(&stats, 128, MacChoice::TwoRoundEm);
        let t1500 = m.process_ns(&stats, 1500, MacChoice::TwoRoundEm);
        let delta = t1500 - t128;
        assert!((delta - (1500.0 - 128.0) * 8.0 / 100.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_plan_reduces_stage_time_only() {
        let m = TofinoModel::tofino();
        let mut stats = ProcessStats {
            fns_executed: 4,
            cost: dip_fnops::OpCost { stages: 8, table_lookups: 2, cipher_blocks: 4, resubmits: 0 },
            plan_depth: 4,
            ..Default::default()
        };
        let t_seq = m.process_ns(&stats, 128, MacChoice::TwoRoundEm);
        stats.plan_depth = 2;
        let t_par = m.process_ns(&stats, 128, MacChoice::TwoRoundEm);
        assert!(t_par < t_seq);
        // Only the stage component halves.
        assert!((t_seq - t_par - 8.0 * m.stage_ns * 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_fns_means_baseline_plus_serialization() {
        let m = TofinoModel::tofino();
        let stats = ProcessStats::default();
        let t = m.process_ns(&stats, 0, MacChoice::TwoRoundEm);
        assert!((t - m.base_ns).abs() < 1e-9);
    }

    #[test]
    fn dip_overhead_vs_native_ip_is_small() {
        // Figure 2's headline: DIP processing ≈ IP baseline. Model a native
        // IP hop as one lookup + one stage, DIP-32 as two ops.
        let m = TofinoModel::tofino();
        let native = ProcessStats {
            fns_executed: 1,
            plan_depth: 1,
            cost: dip_fnops::OpCost::lookup(1, 1),
            ..Default::default()
        };
        let t_native = m.process_ns(&native, 128, MacChoice::TwoRoundEm);

        let ip = dip_protocols::ip::dip32_packet(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            64,
        );
        let (dip_stats, _) = stats_for(ip, &[0u8; 102]);
        let t_dip = m.process_ns(&dip_stats, 128, MacChoice::TwoRoundEm);
        let overhead = (t_dip - t_native) / t_native;
        assert!(overhead < 0.15, "DIP overhead {overhead:.2} too large for Figure 2's claim");
    }
}

//! Canned topologies for the experiment harness.

use crate::engine::{Host, Network, NodeId};
use dip_core::DipRouter;
use dip_crypto::Block;

/// A linear chain: `host -- r1 -- r2 -- ... -- rN -- host`.
///
/// Port convention: routers use port 0 toward the consumer side and port 1
/// toward the producer side. Returns `(consumer, routers, producer)`.
pub fn chain(
    net: &mut Network,
    n_routers: usize,
    consumer: Host,
    producer: Host,
    router_secret: impl Fn(usize) -> Block,
    link_latency_ns: u64,
) -> (NodeId, Vec<NodeId>, NodeId) {
    assert!(n_routers >= 1, "a chain needs at least one router");
    let consumer_id = net.add_host(consumer);
    let producer_id = net.add_host(producer);
    let routers: Vec<NodeId> = (0..n_routers)
        .map(|i| net.add_router(DipRouter::new(i as u64 + 1, router_secret(i))))
        .collect();
    net.connect(consumer_id, 0, routers[0], 0, link_latency_ns);
    for w in routers.windows(2) {
        net.connect(w[0], 1, w[1], 0, link_latency_ns);
    }
    net.connect(routers[n_routers - 1], 1, producer_id, 0, link_latency_ns);
    (consumer_id, routers, producer_id)
}

/// A star: one core router with `n_hosts` hosts on ports `0..n`.
/// Returns `(core, hosts)`.
pub fn star(
    net: &mut Network,
    core_secret: Block,
    hosts: Vec<Host>,
    link_latency_ns: u64,
) -> (NodeId, Vec<NodeId>) {
    let core = net.add_router(DipRouter::new(0, core_secret));
    let ids: Vec<NodeId> = hosts
        .into_iter()
        .enumerate()
        .map(|(i, h)| {
            let id = net.add_host(h);
            net.connect(core, i as u32, id, 0, link_latency_ns);
            id
        })
        .collect();
    (core, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;
    use dip_wire::ndn::Name;
    use std::collections::HashMap;

    #[test]
    fn chain_wires_ports_consistently() {
        let name = Name::parse("/x");
        let mut contents = HashMap::new();
        contents.insert(name.compact32(), b"c".to_vec());
        let mut net = Network::new(1);
        let (consumer, routers, _producer) = chain(
            &mut net,
            3,
            Host::consumer(100),
            Host::producer(101, contents),
            |_| [7; 16],
            500,
        );
        // Every router forwards interests toward the producer (port 1).
        for &r in &routers {
            net.router_mut(r).unwrap().state_mut().name_fib.add_route(&name, NextHop::port(1));
        }
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(consumer, 0, interest, 0);
        net.run();
        assert_eq!(net.host(consumer).unwrap().delivered.len(), 1);
        assert_eq!(net.host(consumer).unwrap().delivered[0].payload, b"c");
    }

    #[test]
    fn star_connects_all_hosts() {
        let mut net = Network::new(1);
        let hosts = vec![Host::consumer(1), Host::consumer(2), Host::consumer(3)];
        let (_core, ids) = star(&mut net, [0; 16], hosts, 100);
        assert_eq!(ids.len(), 3);
    }
}

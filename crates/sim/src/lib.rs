//! # dip-sim — discrete-event network simulator + PISA timing model
//!
//! The paper evaluates DIP on a Barefoot Tofino switch with a hardware
//! traffic generator. Neither is available to a library reproduction, so
//! this crate substitutes both (see DESIGN.md §3):
//!
//! * [`engine::Network`] — a deterministic discrete-event simulator:
//!   routers and hosts connected by links with bandwidth, propagation
//!   delay, and optional fault injection (drop/corrupt, smoltcp-style).
//!   It drives the *same* [`dip_core::DipRouter`] dataplane code used by
//!   the benchmarks, so end-to-end experiments (NDN+OPT content retrieval,
//!   content poisoning, heterogeneous deployment) exercise the real
//!   pipeline;
//! * [`tofino::TofinoModel`] — converts the architecture costs reported by
//!   the router ([`dip_core::ProcessStats`]) into per-packet processing
//!   times for a PISA pipeline, reproducing §4.1's constraints: unrolled
//!   if-else FN dispatch, per-stage costs, and the AES-needs-a-resubmission
//!   penalty that motivated 2EM;
//! * [`topology`] — canned topologies (chains, stars, multi-AS) used by
//!   the experiment harness;
//! * [`driver::ShardedRouter`] — an RSS-style multi-core software
//!   dataplane (one `DipRouter` per worker, flow-hashed dispatch over
//!   std::sync::mpsc channels) backing the throughput benchmark.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod engine;
pub mod faults;
pub mod pcap;
pub mod tofino;
pub mod topology;
pub mod trace;

pub use driver::{DriverStats, Job, ShardedRouter};
pub use engine::{Host, Network, NodeId, Producer, RouterNode, SimError};
pub use faults::FaultConfig;
pub use tofino::TofinoModel;
pub use trace::{Trace, TraceEvent};

/// Virtual time in nanoseconds.
pub type SimTime = u64;

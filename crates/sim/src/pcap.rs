//! libpcap trace export.
//!
//! The smoltcp examples ship a `--pcap` flag that writes "a view of every
//! packet" for Wireshark; this module gives the DIP simulator the same
//! facility. Packets are written in the classic libpcap format with the
//! `DLT_USER0` link type (147) — Wireshark will show raw bytes, and a
//! custom dissector can be attached to DLT_USER0 for DIP decoding.

use crate::SimTime;
use std::io::{self, Write};

/// libpcap magic (microsecond timestamps, little-endian writer).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// DLT_USER0: reserved for private use — no false decoding in tools.
const LINKTYPE_USER0: u32 = 147;
/// Per-packet snapshot limit.
const SNAPLEN: u32 = 65_535;

/// Writes a libpcap stream.
pub struct PcapWriter<W: Write> {
    sink: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&PCAP_MAGIC.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN.to_le_bytes())?;
        sink.write_all(&LINKTYPE_USER0.to_le_bytes())?;
        Ok(PcapWriter { sink, packets: 0 })
    }

    /// Appends one packet captured at virtual time `at` (nanoseconds).
    pub fn write_packet(&mut self, at: SimTime, data: &[u8]) -> io::Result<()> {
        let secs = (at / 1_000_000_000) as u32;
        let micros = ((at % 1_000_000_000) / 1_000) as u32;
        let caplen = (data.len() as u32).min(SNAPLEN);
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&micros.to_le_bytes())?;
        self.sink.write_all(&caplen.to_le_bytes())?;
        self.sink.write_all(&(data.len() as u32).to_le_bytes())?;
        self.sink.write_all(&data[..caplen as usize])?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Parses a pcap byte stream back into `(time_ns, packet)` pairs — used by
/// tests and by tooling that post-processes simulator captures.
pub fn parse(bytes: &[u8]) -> Option<Vec<(SimTime, Vec<u8>)>> {
    if bytes.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if magic != PCAP_MAGIC {
        return None;
    }
    let mut out = Vec::new();
    let mut off = 24;
    while off < bytes.len() {
        if bytes.len() < off + 16 {
            return None;
        }
        let secs = u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?);
        let micros = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().ok()?);
        let caplen = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().ok()?) as usize;
        off += 16;
        if bytes.len() < off + caplen {
            return None;
        }
        let at = u64::from(secs) * 1_000_000_000 + u64::from(micros) * 1_000;
        out.push((at, bytes[off..off + caplen].to_vec()));
        off += caplen;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(1_500_000, b"first").unwrap();
        w.write_packet(3_000_000_000, b"second packet").unwrap();
        assert_eq!(w.packets(), 2);
        let bytes = w.finish().unwrap();
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, 1_500_000);
        assert_eq!(parsed[0].1, b"first");
        assert_eq!(parsed[1].0, 3_000_000_000);
        assert_eq!(parsed[1].1, b"second packet");
    }

    #[test]
    fn header_fields() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE_USER0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(b"short").is_none());
        assert!(parse(&[0u8; 40]).is_none());
        // Truncated packet record.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(0, b"data").unwrap();
        let bytes = w.finish().unwrap();
        assert!(parse(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn timestamp_precision_is_microseconds() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(1_234, b"x").unwrap(); // 1.234 µs -> truncates to 1 µs
        let bytes = w.finish().unwrap();
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed[0].0, 1_000);
    }
}

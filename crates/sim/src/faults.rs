//! Per-link fault injection (drop / corrupt), in the style of smoltcp's
//! example harness — used to demonstrate protocol behaviour under adverse
//! conditions and to drive the security experiments.

use dip_crypto::DetRng;

/// Fault configuration for one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0,1]` that a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that one random byte is flipped.
    pub corrupt_chance: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { drop_chance: 0.0, corrupt_chance: 0.0 }
    }
}

impl FaultConfig {
    /// A perfectly reliable link.
    pub fn reliable() -> Self {
        FaultConfig::default()
    }

    /// A lossy link dropping `pct` percent of packets.
    pub fn lossy(pct: f64) -> Self {
        FaultConfig { drop_chance: pct / 100.0, corrupt_chance: 0.0 }
    }

    /// Applies faults to a packet in flight. Returns `false` when the
    /// packet is dropped; may flip one byte in place.
    pub fn apply(&self, rng: &mut DetRng, packet: &mut [u8]) -> bool {
        if self.drop_chance > 0.0 && rng.gen_bool(self.drop_chance.clamp(0.0, 1.0)) {
            return false;
        }
        if self.corrupt_chance > 0.0
            && !packet.is_empty()
            && rng.gen_bool(self.corrupt_chance.clamp(0.0, 1.0))
        {
            let idx = rng.gen_index(packet.len());
            let bit = 1u8 << rng.gen_index(8);
            packet[idx] ^= bit;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn reliable_never_touches_packets() {
        let mut rng = DetRng::seed_from_u64(1);
        let cfg = FaultConfig::reliable();
        let mut pkt = vec![1, 2, 3];
        for _ in 0..100 {
            assert!(cfg.apply(&mut rng, &mut pkt));
        }
        assert_eq!(pkt, vec![1, 2, 3]);
    }

    #[test]
    fn full_drop_drops_everything() {
        let mut rng = DetRng::seed_from_u64(1);
        let cfg = FaultConfig { drop_chance: 1.0, corrupt_chance: 0.0 };
        let mut pkt = vec![0u8; 4];
        assert!(!cfg.apply(&mut rng, &mut pkt));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut rng = DetRng::seed_from_u64(7);
        let cfg = FaultConfig { drop_chance: 0.0, corrupt_chance: 1.0 };
        let mut pkt = vec![0u8; 16];
        assert!(cfg.apply(&mut rng, &mut pkt));
        let flipped: u32 = pkt.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut rng = DetRng::seed_from_u64(42);
        let cfg = FaultConfig::lossy(15.0);
        let mut dropped = 0;
        for _ in 0..10_000 {
            let mut pkt = vec![0u8; 4];
            if !cfg.apply(&mut rng, &mut pkt) {
                dropped += 1;
            }
        }
        assert!((1200..1800).contains(&dropped), "dropped {dropped} of 10000");
    }
}

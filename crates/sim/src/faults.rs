//! Per-link fault injection (drop / corrupt / scheduled outages), in the
//! style of smoltcp's example harness — used to demonstrate protocol
//! behaviour under adverse conditions, to drive the security experiments,
//! and to script the reproducible link failures the control-plane
//! reconvergence tests rely on.

use crate::SimTime;
use dip_crypto::DetRng;

/// Fault configuration for one link direction.
///
/// Probabilistic faults (`drop_chance`, `corrupt_chance`) consume the
/// network's deterministic RNG; scheduled outages (`down_windows`) are
/// purely time-driven and consume no randomness at all, so a
/// reconvergence scenario replays identically under any seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0,1]` that a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that one random byte is flipped.
    pub corrupt_chance: f64,
    /// Half-open `[from, until)` windows of virtual time during which the
    /// link is administratively dead: every packet in a window is dropped
    /// before the probabilistic faults are even consulted.
    pub down_windows: Vec<(SimTime, SimTime)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { drop_chance: 0.0, corrupt_chance: 0.0, down_windows: Vec::new() }
    }
}

impl FaultConfig {
    /// A perfectly reliable link.
    pub fn reliable() -> Self {
        FaultConfig::default()
    }

    /// A lossy link dropping `pct` percent of packets.
    pub fn lossy(pct: f64) -> Self {
        FaultConfig { drop_chance: pct / 100.0, ..FaultConfig::default() }
    }

    /// A reliable link that is dead during `[from, until)`.
    pub fn outage(from: SimTime, until: SimTime) -> Self {
        FaultConfig::reliable().with_outage(from, until)
    }

    /// Adds a scheduled dead window `[from, until)`.
    pub fn with_outage(mut self, from: SimTime, until: SimTime) -> Self {
        self.down_windows.push((from, until));
        self
    }

    /// Whether a scheduled window covers `now`.
    pub fn is_down_at(&self, now: SimTime) -> bool {
        self.down_windows.iter().any(|&(from, until)| now >= from && now < until)
    }

    /// Applies faults to a packet in flight at virtual time `now`.
    /// Returns `false` when the packet is dropped; may flip one byte in
    /// place. Scheduled outages are checked first and draw nothing from
    /// `rng`, keeping window-scripted runs bit-identical across seeds.
    pub fn apply(&self, rng: &mut DetRng, packet: &mut [u8], now: SimTime) -> bool {
        if self.is_down_at(now) {
            return false;
        }
        if self.drop_chance > 0.0 && rng.gen_bool(self.drop_chance.clamp(0.0, 1.0)) {
            return false;
        }
        if self.corrupt_chance > 0.0
            && !packet.is_empty()
            && rng.gen_bool(self.corrupt_chance.clamp(0.0, 1.0))
        {
            let idx = rng.gen_index(packet.len());
            let bit = 1u8 << rng.gen_index(8);
            packet[idx] ^= bit;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn reliable_never_touches_packets() {
        let mut rng = DetRng::seed_from_u64(1);
        let cfg = FaultConfig::reliable();
        let mut pkt = vec![1, 2, 3];
        for _ in 0..100 {
            assert!(cfg.apply(&mut rng, &mut pkt, 0));
        }
        assert_eq!(pkt, vec![1, 2, 3]);
    }

    #[test]
    fn full_drop_drops_everything() {
        let mut rng = DetRng::seed_from_u64(1);
        let cfg = FaultConfig { drop_chance: 1.0, ..FaultConfig::default() };
        let mut pkt = vec![0u8; 4];
        assert!(!cfg.apply(&mut rng, &mut pkt, 0));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut rng = DetRng::seed_from_u64(7);
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() };
        let mut pkt = vec![0u8; 16];
        assert!(cfg.apply(&mut rng, &mut pkt, 0));
        let flipped: u32 = pkt.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut rng = DetRng::seed_from_u64(42);
        let cfg = FaultConfig::lossy(15.0);
        let mut dropped = 0;
        for _ in 0..10_000 {
            let mut pkt = vec![0u8; 4];
            if !cfg.apply(&mut rng, &mut pkt, 0) {
                dropped += 1;
            }
        }
        assert!((1200..1800).contains(&dropped), "dropped {dropped} of 10000");
    }

    #[test]
    fn outage_window_is_half_open_and_deterministic() {
        let cfg = FaultConfig::outage(100, 200);
        assert!(!cfg.is_down_at(99));
        assert!(cfg.is_down_at(100));
        assert!(cfg.is_down_at(199));
        assert!(!cfg.is_down_at(200));

        let mut pkt = vec![0u8; 4];
        // Two different seeds agree on every window decision and draw
        // nothing from the stream: the next random value is identical.
        for seed in [1u64, 2] {
            let mut rng = DetRng::seed_from_u64(seed);
            assert!(!cfg.apply(&mut rng, &mut pkt, 150));
            assert!(cfg.apply(&mut rng, &mut pkt, 250));
            let mut fresh = DetRng::seed_from_u64(seed);
            assert_eq!(rng.gen_index(1 << 16), fresh.gen_index(1 << 16));
        }
    }

    #[test]
    fn multiple_windows_compose() {
        let cfg = FaultConfig::reliable().with_outage(10, 20).with_outage(40, 50);
        let down: Vec<SimTime> = (0..60).filter(|&t| cfg.is_down_at(t)).collect();
        assert_eq!(down, (10..20).chain(40..50).collect::<Vec<_>>());
    }
}

//! A multi-core software dataplane driver.
//!
//! Real software routers scale by RSS: a NIC hashes each flow to one of N
//! cores and every core runs an independent copy of the pipeline.
//! [`ShardedRouter`] reproduces that pattern for the DIP dataplane — N
//! worker threads, each owning its own [`DipRouter`] (FIBs are built per
//! shard by the caller's factory; PIT/limiter state is naturally
//! flow-partitioned because dispatch is by flow hash), fed over bounded
//! bounded std::sync::mpsc channels.
//!
//! This is the substrate for the throughput benchmark (how the software
//! dataplane scales with cores) and a worked answer to "how would you
//! deploy the Algorithm-1 pipeline on a multi-core box".

use dip_core::{DipRouter, Verdict};
use dip_tables::{Port, Ticks};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One packet handed to the dataplane.
#[derive(Debug)]
pub struct Job {
    /// The full packet bytes (owned; the shard mutates tags in place).
    pub packet: Vec<u8>,
    /// Ingress port.
    pub in_port: Port,
    /// Virtual arrival time.
    pub now: Ticks,
}

/// Aggregate counters across all shards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DriverStats {
    /// Packets that produced a `Forward` verdict.
    pub forwarded: u64,
    /// Packets delivered/consumed/answered locally.
    pub local: u64,
    /// Packets dropped (any reason).
    pub dropped: u64,
    /// Control notifications generated.
    pub notified: u64,
}

impl DriverStats {
    /// Total packets processed.
    pub fn total(&self) -> u64 {
        self.forwarded + self.local + self.dropped + self.notified
    }
}

/// An RSS-style sharded software router.
pub struct ShardedRouter {
    senders: Vec<std::sync::mpsc::SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<DriverStats>>,
}

impl ShardedRouter {
    /// Starts `shards` worker threads; `factory(i)` builds shard `i`'s
    /// router (typically: identical FIBs, per-shard secrets as desired).
    pub fn start(shards: usize, factory: impl Fn(usize) -> DipRouter) -> Self {
        assert!(shards >= 1);
        let stats = Arc::new(Mutex::new(DriverStats::default()));
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(1024);
            let mut router = factory(i);
            let stats = Arc::clone(&stats);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dip-shard-{i}"))
                    .spawn(move || {
                        let mut local = DriverStats::default();
                        for mut job in rx.iter() {
                            let (verdict, _) =
                                router.process(&mut job.packet, job.in_port, job.now);
                            match verdict {
                                Verdict::Forward(_) => local.forwarded += 1,
                                Verdict::Deliver
                                | Verdict::Consumed
                                | Verdict::RespondCached(_) => local.local += 1,
                                Verdict::Notify(_) => local.notified += 1,
                                Verdict::Drop(_) => local.dropped += 1,
                            }
                        }
                        let mut s = stats.lock().expect("stats mutex poisoned");
                        s.forwarded += local.forwarded;
                        s.local += local.local;
                        s.dropped += local.dropped;
                        s.notified += local.notified;
                    })
                    .expect("spawn shard"),
            );
            senders.push(tx);
        }
        ShardedRouter { senders, handles, stats }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// RSS dispatch: hash the FN locations (the flow-identifying bytes) to
    /// pick a shard, so one flow's state never splits across shards.
    pub fn shard_for(&self, packet: &[u8]) -> usize {
        let key = dip_wire::DipPacket::new_checked(packet)
            .map(|p| {
                let locs = p.locations();
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in locs.iter().take(64) {
                    h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            })
            .unwrap_or(0);
        (key % self.senders.len() as u64) as usize
    }

    /// Submits a packet, blocking if the owning shard's queue is full.
    pub fn submit(&self, job: Job) {
        let shard = self.shard_for(&job.packet);
        self.senders[shard].send(job).expect("shard alive");
    }

    /// Submits to an explicit shard (for tests / custom steering).
    pub fn submit_to(&self, shard: usize, job: Job) {
        self.senders[shard].send(job).expect("shard alive");
    }

    /// Drains the queues, stops the workers, and returns the totals.
    pub fn shutdown(self) -> DriverStats {
        drop(self.senders);
        for h in self.handles {
            h.join().expect("shard thread");
        }
        let s = self.stats.lock().expect("stats mutex poisoned");
        *s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_protocols::ip;
    use dip_tables::fib::NextHop;
    use dip_wire::ipv4::Ipv4Addr;

    fn routed_factory(i: usize) -> DipRouter {
        let mut r = DipRouter::new(i as u64, [i as u8 + 1; 16]);
        r.state_mut().ipv4_fib.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, NextHop::port(1));
        r
    }

    fn dip32(dst_low: u8) -> Vec<u8> {
        ip::dip32_packet(Ipv4Addr::new(10, 0, 0, dst_low), Ipv4Addr::new(1, 1, 1, 1), 64)
            .to_bytes(&[0u8; 32])
            .unwrap()
    }

    #[test]
    fn counts_add_up_across_shards() {
        let driver = ShardedRouter::start(4, routed_factory);
        for i in 0..400u32 {
            driver.submit(Job { packet: dip32(i as u8), in_port: 0, now: u64::from(i) });
        }
        // 100 unroutable packets.
        for i in 0..100u32 {
            let pkt =
                ip::dip32_packet(Ipv4Addr::new(99, 0, 0, i as u8), Ipv4Addr::new(1, 1, 1, 1), 64)
                    .to_bytes(&[])
                    .unwrap();
            driver.submit(Job { packet: pkt, in_port: 0, now: 0 });
        }
        let stats = driver.shutdown();
        assert_eq!(stats.forwarded, 400);
        assert_eq!(stats.dropped, 100);
        assert_eq!(stats.total(), 500);
    }

    #[test]
    fn flow_affinity_is_stable() {
        let driver = ShardedRouter::start(8, routed_factory);
        let pkt = dip32(7);
        let shard = driver.shard_for(&pkt);
        for _ in 0..100 {
            assert_eq!(driver.shard_for(&pkt), shard);
        }
        // Different flows spread across shards.
        let shards: std::collections::HashSet<usize> =
            (0..64).map(|i| driver.shard_for(&dip32(i))).collect();
        assert!(shards.len() > 1, "dispatch degenerated to one shard");
        driver.shutdown();
    }

    #[test]
    fn ndn_flow_state_stays_consistent_per_shard() {
        use dip_wire::ndn::Name;
        let name = Name::parse("/sharded");
        let factory = |i: usize| {
            let mut r = DipRouter::new(i as u64, [1; 16]);
            r.state_mut().name_fib.add_route(&name, NextHop::port(1));
            r
        };
        let driver = ShardedRouter::start(4, factory);
        // Interest then data for the same name: same locations bytes ->
        // same shard -> the PIT entry is found.
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(b"rq").unwrap();
        driver.submit(Job { packet: interest, in_port: 3, now: 0 });
        // Give the interest time to be processed before the data arrives.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let data = dip_protocols::ndn::data(&name, 64).to_bytes(b"content").unwrap();
        driver.submit(Job { packet: data, in_port: 1, now: 10 });
        let stats = driver.shutdown();
        assert_eq!(stats.forwarded, 2, "interest and data both forwarded: {stats:?}");
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn single_shard_works() {
        let driver = ShardedRouter::start(1, routed_factory);
        driver.submit(Job { packet: dip32(1), in_port: 0, now: 0 });
        let stats = driver.shutdown();
        assert_eq!(stats.forwarded, 1);
    }
}

//! Simulation trace: a queryable record of everything that happened.

use crate::SimTime;
use dip_fnops::DropReason;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was sent from a node's port.
    Sent {
        /// Sending node.
        node: usize,
        /// Egress port.
        port: u32,
        /// Packet length.
        len: usize,
    },
    /// A packet was dropped in flight by fault injection.
    LinkDropped {
        /// Sending node.
        node: usize,
        /// Egress port.
        port: u32,
    },
    /// A router/host dropped a packet with a reason.
    Dropped {
        /// Node that dropped it.
        node: usize,
        /// Why.
        reason: DropReason,
    },
    /// A host delivered a packet to its application.
    Delivered {
        /// Receiving node.
        node: usize,
        /// Whether host verification (`F_ver`) ran and succeeded.
        verified: bool,
        /// Payload length.
        len: usize,
    },
    /// A router answered an interest from its content store.
    CacheHit {
        /// The caching node.
        node: usize,
    },
    /// A control notification was generated (§2.4).
    Notified {
        /// Node that generated the notification.
        node: usize,
        /// Unsupported key.
        key: u16,
    },
}

/// A time-ordered list of [`TraceEvent`]s.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    /// Records an event.
    pub fn push(&mut self, time: SimTime, event: TraceEvent) {
        self.events.push((time, event));
    }

    /// All events.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of delivered packets (optionally only verified ones).
    pub fn delivered(&self, verified_only: bool) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| match e {
                TraceEvent::Delivered { verified, .. } => *verified || !verified_only,
                _ => false,
            })
            .count()
    }

    /// Number of node drops with a given reason.
    pub fn drops_with(&self, reason: DropReason) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Dropped { reason: r, .. } if *r == reason))
            .count()
    }

    /// Total node drops.
    pub fn drops(&self) -> usize {
        self.events.iter().filter(|(_, e)| matches!(e, TraceEvent::Dropped { .. })).count()
    }

    /// Number of in-flight (link) drops.
    pub fn link_drops(&self) -> usize {
        self.events.iter().filter(|(_, e)| matches!(e, TraceEvent::LinkDropped { .. })).count()
    }

    /// Number of content-store hits.
    pub fn cache_hits(&self) -> usize {
        self.events.iter().filter(|(_, e)| matches!(e, TraceEvent::CacheHit { .. })).count()
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_queries() {
        let mut t = Trace::default();
        t.push(1, TraceEvent::Delivered { node: 1, verified: true, len: 10 });
        t.push(2, TraceEvent::Delivered { node: 1, verified: false, len: 10 });
        t.push(3, TraceEvent::Dropped { node: 2, reason: DropReason::PitMiss });
        t.push(4, TraceEvent::Dropped { node: 2, reason: DropReason::NoRoute });
        t.push(5, TraceEvent::LinkDropped { node: 0, port: 1 });
        t.push(6, TraceEvent::CacheHit { node: 3 });
        assert_eq!(t.delivered(false), 2);
        assert_eq!(t.delivered(true), 1);
        assert_eq!(t.drops(), 2);
        assert_eq!(t.drops_with(DropReason::PitMiss), 1);
        assert_eq!(t.link_drops(), 1);
        assert_eq!(t.cache_hits(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }
}

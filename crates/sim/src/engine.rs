//! The discrete-event engine: nodes, links, and the event loop.
//!
//! Nodes are either DIP routers (running the real
//! [`dip_core::DipRouter`] pipeline) or hosts (consumers that verify and
//! record deliveries, and producers that answer interests). Links carry
//! packets with a serialization + propagation delay and optional fault
//! injection. Router processing time comes from the PISA timing model, so
//! simulated end-to-end latencies are consistent with the Figure-2
//! experiment.

use crate::faults::FaultConfig;
use crate::tofino::TofinoModel;
use crate::trace::{Trace, TraceEvent};
use crate::SimTime;
use dip_core::control::{ControlMessage, CONTROL_NEXT_HEADER};
use dip_core::host::{deliver, HostContext};
use dip_core::{DipRouter, ProcessStats, Verdict};
use dip_crypto::DetRng;
use dip_fnops::context::MacChoice;
use dip_fnops::{FnRegistry, RouterState};
use dip_protocols::opt::OptSession;
use dip_telemetry::{Counter, OutcomeCounters, PacketOutcome, Registry, Snapshot};
use dip_wire::packet::DipRepr;
use dip_wire::triple::FnKey;
use dip_wire::DipPacket;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Identifies a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Errors surfaced by the simulator's typed node accessors.
///
/// A misconfigured topology (addressing a host as a router, or vice
/// versa) used to abort the whole run with a panic; it now degrades to a
/// recoverable error the experiment driver can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The node exists but is not the kind the accessor expected.
    WrongNodeKind {
        /// The offending node index.
        node: usize,
        /// What the caller expected the node to be.
        expected: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::WrongNodeKind { node, expected } => {
                write!(f, "node {node} is not a {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A packet-forwarding node the event loop can drive.
///
/// [`DipRouter`] is the canonical implementation (one packet at a time,
/// Algorithm 1); the batched multi-worker dataplane plugs in through the
/// same trait, so every five-protocol experiment runs unchanged on either.
pub trait RouterNode {
    /// Runs the router pipeline over `buf` in place, returning the verdict
    /// and the architecture stats the PISA timing model consumes.
    fn process_packet(
        &mut self,
        buf: &mut [u8],
        in_port: u32,
        now: SimTime,
    ) -> (Verdict, ProcessStats);

    /// Which MAC implementation the node models (timing input).
    fn mac_choice(&self) -> MacChoice;

    /// The node's installed FN registry, consulted by [`Network::lint`].
    fn registry(&self) -> &FnRegistry;

    /// Downcast hook so typed accessors like [`Network::router_mut`] can
    /// recover the concrete node.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Wires the node's internal counters (verdicts, FN invocations, PIT
    /// evictions, …) to the network's [`Registry`] under a `node` label.
    /// Called once by [`Network::add_router_node`]; the default is a
    /// no-op for implementations without internal telemetry.
    fn attach_metrics(&mut self, _registry: &Registry, _node: usize) {}

    /// Periodic control-plane timer, driven by
    /// [`Network::schedule_control_ticks`]: the node returns zero or more
    /// `(port, packet)` pairs to transmit (HELLOs, LSA floods,
    /// retransmissions). The default is a no-op for pure dataplane nodes.
    fn control_tick(&mut self, _now: SimTime) -> Vec<(u32, Vec<u8>)> {
        Vec::new()
    }

    /// Drains packets the node *originated* while processing the last
    /// packet (LSA acks, triggered floods): unlike
    /// [`Verdict::Forward`], which re-transmits the processed buffer,
    /// these are new packets addressed to specific ports. Called by the
    /// event loop right after every `process_packet`.
    fn drain_control(&mut self) -> Vec<(u32, Vec<u8>)> {
        Vec::new()
    }
}

impl RouterNode for DipRouter {
    fn process_packet(
        &mut self,
        buf: &mut [u8],
        in_port: u32,
        now: SimTime,
    ) -> (Verdict, ProcessStats) {
        self.process(buf, in_port, now)
    }

    fn mac_choice(&self) -> MacChoice {
        self.state().mac_choice
    }

    fn registry(&self) -> &FnRegistry {
        DipRouter::registry(self)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn attach_metrics(&mut self, registry: &Registry, node: usize) {
        let n = node.to_string();
        DipRouter::attach_metrics(self, registry, &[("node", n.as_str())]);
    }
}

/// A content producer attached to a host: answers interests from its
/// catalog, optionally with OPT authentication (NDN+OPT).
pub struct Producer {
    /// compact name → content payload.
    pub contents: HashMap<u32, Vec<u8>>,
    /// When set, data packets carry the OPT chain (NDN+OPT).
    pub session: Option<OptSession>,
}

/// A packet delivered to a host application.
#[derive(Debug, Clone)]
pub struct DeliveredPacket {
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Whether host verification ran and succeeded.
    pub verified: bool,
    /// Delivery time.
    pub time: SimTime,
}

/// An end host.
pub struct Host {
    /// Stable identifier.
    pub node_id: u64,
    /// Verification material for host-tagged FNs.
    pub host_ctx: HostContext,
    /// Host-side state (hosts run FNs too).
    pub state: RouterState,
    /// Host-side registry.
    pub registry: FnRegistry,
    /// Producer role, if any.
    pub producer: Option<Producer>,
    /// Packets delivered to the application.
    pub delivered: Vec<DeliveredPacket>,
    /// Control messages received (§2.4 notifications).
    pub control_messages: Vec<ControlMessage>,
}

impl Host {
    /// A plain consumer host.
    pub fn consumer(node_id: u64) -> Self {
        Host {
            node_id,
            host_ctx: HostContext::default(),
            state: RouterState::new(node_id, [0; 16]),
            registry: FnRegistry::standard(),
            producer: None,
            delivered: Vec::new(),
            control_messages: Vec::new(),
        }
    }

    /// A consumer that verifies with the given session material.
    pub fn verifying_consumer(node_id: u64, host_ctx: HostContext) -> Self {
        Host { host_ctx, ..Host::consumer(node_id) }
    }

    /// A producer host serving `contents` (compact name → payload).
    pub fn producer(node_id: u64, contents: HashMap<u32, Vec<u8>>) -> Self {
        Host { producer: Some(Producer { contents, session: None }), ..Host::consumer(node_id) }
    }

    /// A producer whose data packets carry the NDN+OPT chain.
    pub fn secure_producer(
        node_id: u64,
        contents: HashMap<u32, Vec<u8>>,
        session: OptSession,
    ) -> Self {
        Host {
            producer: Some(Producer { contents, session: Some(session) }),
            ..Host::consumer(node_id)
        }
    }
}

enum NodeKind {
    Router(Box<dyn RouterNode>),
    Host(Box<Host>),
}

struct LinkEnd {
    peer: usize,
    peer_port: u32,
    latency_ns: u64,
    bandwidth_bps: u64,
    faults: FaultConfig,
    /// Administrative state: a downed link drops every packet at egress
    /// (counted as `dip_link_dropped_total`) until brought back up.
    up: bool,
}

struct NodeSlot {
    kind: NodeKind,
    ports: Vec<Option<LinkEnd>>,
    /// Per-hop accounting: `dip_packets_total{node=…}` / `dip_drops_total`.
    outcomes: OutcomeCounters,
    /// Packets put on a link by this node (`dip_node_sent_total`).
    sent: Arc<Counter>,
    /// Packets lost to link faults on egress (`dip_link_dropped_total`).
    link_dropped: Arc<Counter>,
}

impl NodeSlot {
    fn new(kind: NodeKind, registry: &Registry, node: usize) -> Self {
        let n = node.to_string();
        let kind_label = match kind {
            NodeKind::Router(_) => "router",
            NodeKind::Host(_) => "host",
        };
        let labels = [("node", n.as_str()), ("kind", kind_label)];
        NodeSlot {
            kind,
            ports: Vec::new(),
            outcomes: OutcomeCounters::register(registry, &labels),
            sent: registry.counter(
                "dip_node_sent_total",
                "Packets transmitted onto links",
                &labels,
            ),
            link_dropped: registry.counter(
                "dip_link_dropped_total",
                "Packets lost to egress link faults",
                &labels,
            ),
        }
    }
}

/// What a queued event does when it fires.
#[derive(PartialEq, Eq)]
enum EventKind {
    /// A packet arriving at `port`.
    Packet { port: u32, packet: Vec<u8> },
    /// A periodic control-plane timer at the node; re-arms itself every
    /// `interval` until `horizon` so [`Network::run`] still terminates.
    ControlTick { interval: SimTime, horizon: SimTime },
    /// Administrative link state change on the node's `port` (applied to
    /// both directions of the link).
    LinkAdmin { port: u32, up: bool },
}

#[derive(PartialEq, Eq)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    node: usize,
    kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
///
/// ```
/// use dip_sim::engine::{Host, Network};
/// use dip_core::DipRouter;
/// use dip_tables::fib::NextHop;
/// use dip_wire::ndn::Name;
/// use std::collections::HashMap;
///
/// let name = Name::parse("/demo");
/// let mut net = Network::new(42);
/// let mut r = DipRouter::new(0, [1; 16]);
/// r.state_mut().name_fib.add_route(&name, NextHop::port(1));
/// let router = net.add_router(r);
/// let consumer = net.add_host(Host::consumer(10));
/// let producer = net.add_host(Host::producer(
///     11,
///     HashMap::from([(name.compact32(), b"content".to_vec())]),
/// ));
/// net.connect(consumer, 0, router, 0, 1_000);
/// net.connect(producer, 0, router, 1, 1_000);
///
/// let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
/// net.send(consumer, 0, interest, 0);
/// net.run();
/// assert_eq!(net.host(consumer).unwrap().delivered[0].payload, b"content");
/// ```
pub struct Network {
    nodes: Vec<NodeSlot>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: SimTime,
    seq: u64,
    rng: DetRng,
    trace: Trace,
    model: TofinoModel,
    /// Safety valve against runaway packet storms.
    pub max_events: u64,
    events_processed: u64,
    capture: Option<Vec<(SimTime, Vec<u8>)>>,
    registry: Registry,
}

impl Network {
    /// A new network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            rng: DetRng::seed_from_u64(seed),
            trace: Trace::default(),
            model: TofinoModel::tofino(),
            max_events: 1_000_000,
            events_processed: 0,
            capture: None,
            registry: Registry::new(),
        }
    }

    /// The telemetry registry every node reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time snapshot of every counter in the network.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The full metrics state in Prometheus text exposition format
    /// (`dipdump --metrics` prints exactly this).
    pub fn metrics_report(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Starts capturing every transmitted packet (for pcap export).
    pub fn enable_capture(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// The captured packets, in transmission order.
    pub fn captured(&self) -> &[(SimTime, Vec<u8>)] {
        self.capture.as_deref().unwrap_or(&[])
    }

    /// Writes the capture as a libpcap stream (smoltcp-style `--pcap`).
    pub fn write_pcap<W: std::io::Write>(&self, sink: W) -> std::io::Result<u64> {
        let mut w = crate::pcap::PcapWriter::new(sink)?;
        for (at, bytes) in self.captured() {
            w.write_packet(*at, bytes)?;
        }
        let n = w.packets();
        w.finish()?;
        Ok(n)
    }

    /// Adds a classic per-packet router node.
    pub fn add_router(&mut self, router: DipRouter) -> NodeId {
        self.add_router_node(Box::new(router))
    }

    /// Adds any [`RouterNode`] implementation (e.g. the batched
    /// multi-worker dataplane) and wires it to the network registry.
    pub fn add_router_node(&mut self, mut node: Box<dyn RouterNode>) -> NodeId {
        let idx = self.nodes.len();
        node.attach_metrics(&self.registry, idx);
        self.nodes.push(NodeSlot::new(NodeKind::Router(node), &self.registry, idx));
        NodeId(idx)
    }

    /// Adds a host node.
    pub fn add_host(&mut self, host: Host) -> NodeId {
        let idx = self.nodes.len();
        self.nodes.push(NodeSlot::new(NodeKind::Host(Box::new(host)), &self.registry, idx));
        NodeId(idx)
    }

    /// Connects `a.port_a` ↔ `b.port_b` with symmetric characteristics.
    pub fn connect(&mut self, a: NodeId, port_a: u32, b: NodeId, port_b: u32, latency_ns: u64) {
        self.connect_with(
            a,
            port_a,
            b,
            port_b,
            latency_ns,
            10_000_000_000,
            FaultConfig::reliable(),
        );
    }

    /// Connects with explicit bandwidth and fault configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with(
        &mut self,
        a: NodeId,
        port_a: u32,
        b: NodeId,
        port_b: u32,
        latency_ns: u64,
        bandwidth_bps: u64,
        faults: FaultConfig,
    ) {
        let set = |slot: &mut NodeSlot, port: u32, end: LinkEnd| {
            let idx = port as usize;
            if slot.ports.len() <= idx {
                slot.ports.resize_with(idx + 1, || None);
            }
            slot.ports[idx] = Some(end);
        };
        set(
            &mut self.nodes[a.0],
            port_a,
            LinkEnd {
                peer: b.0,
                peer_port: port_b,
                latency_ns,
                bandwidth_bps,
                faults: faults.clone(),
                up: true,
            },
        );
        set(
            &mut self.nodes[b.0],
            port_b,
            LinkEnd { peer: a.0, peer_port: port_a, latency_ns, bandwidth_bps, faults, up: true },
        );
    }

    /// Administratively sets both directions of the link on `a.port_a`.
    /// A downed link drops every packet at egress time; packets already
    /// in flight still arrive (the wire drains).
    pub fn set_link_state(&mut self, a: NodeId, port_a: u32, up: bool) {
        let Some(Some(end)) = self.nodes[a.0].ports.get(port_a as usize) else {
            return;
        };
        let (peer, peer_port) = (end.peer, end.peer_port);
        if let Some(Some(end)) = self.nodes[a.0].ports.get_mut(port_a as usize) {
            end.up = up;
        }
        if let Some(Some(end)) = self.nodes[peer].ports.get_mut(peer_port as usize) {
            end.up = up;
        }
    }

    /// Takes the link on `a.port_a` down (both directions), immediately.
    pub fn link_down(&mut self, a: NodeId, port_a: u32) {
        self.set_link_state(a, port_a, false);
    }

    /// Brings the link on `a.port_a` back up (both directions).
    pub fn link_up(&mut self, a: NodeId, port_a: u32) {
        self.set_link_state(a, port_a, true);
    }

    /// Schedules an administrative link-down at virtual time `at` — the
    /// deterministic mid-run failure the reconvergence scenarios script.
    pub fn schedule_link_down(&mut self, at: SimTime, a: NodeId, port_a: u32) {
        self.push_event(at, a.0, EventKind::LinkAdmin { port: port_a, up: false });
    }

    /// Schedules an administrative link-up at virtual time `at`.
    pub fn schedule_link_up(&mut self, at: SimTime, a: NodeId, port_a: u32) {
        self.push_event(at, a.0, EventKind::LinkAdmin { port: port_a, up: true });
    }

    /// Arms a periodic control-plane timer on a router node: starting at
    /// `start`, [`RouterNode::control_tick`] fires every `interval` until
    /// `horizon` (inclusive), transmitting whatever `(port, packet)`
    /// pairs the node emits. The horizon bounds the event stream so
    /// [`Network::run`] still terminates.
    pub fn schedule_control_ticks(
        &mut self,
        node: NodeId,
        start: SimTime,
        interval: SimTime,
        horizon: SimTime,
    ) {
        let interval = interval.max(1);
        if start <= horizon {
            self.push_event(start, node.0, EventKind::ControlTick { interval, horizon });
        }
    }

    fn push_event(&mut self, time: SimTime, node: usize, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { time, seq: self.seq, node, kind }));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trace of everything that happened.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of nodes (routers and hosts) in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The remote end of `node`'s `port`: `(peer, peer_port)`, or `None`
    /// when the port is unwired. Topology-generation layers use this to
    /// trace a converged forwarding path hop by hop (e.g. to establish a
    /// path-bound OPT session over whatever route SPF actually chose).
    pub fn link_peer(&self, node: NodeId, port: u32) -> Option<(NodeId, u32)> {
        let end = self.nodes.get(node.0)?.ports.get(port as usize)?.as_ref()?;
        Some((NodeId(end.peer), end.peer_port))
    }

    /// Mutable access to a classic [`DipRouter`] node.
    ///
    /// Errors with [`SimError::WrongNodeKind`] if the node is a host or a
    /// non-`DipRouter` router implementation.
    pub fn router_mut(&mut self, id: NodeId) -> Result<&mut DipRouter, SimError> {
        let err = SimError::WrongNodeKind { node: id.0, expected: "DipRouter" };
        match &mut self.nodes[id.0].kind {
            NodeKind::Router(r) => r.as_any_mut().downcast_mut::<DipRouter>().ok_or(err),
            NodeKind::Host(_) => Err(err),
        }
    }

    /// Mutable access to any router node behind the [`RouterNode`] trait.
    pub fn router_node_mut(&mut self, id: NodeId) -> Result<&mut dyn RouterNode, SimError> {
        match &mut self.nodes[id.0].kind {
            NodeKind::Router(r) => Ok(r.as_mut()),
            NodeKind::Host(_) => Err(SimError::WrongNodeKind { node: id.0, expected: "router" }),
        }
    }

    /// Access to a host node.
    pub fn host(&self, id: NodeId) -> Result<&Host, SimError> {
        match &self.nodes[id.0].kind {
            NodeKind::Host(h) => Ok(h),
            NodeKind::Router(_) => Err(SimError::WrongNodeKind { node: id.0, expected: "host" }),
        }
    }

    /// Mutable access to a host node.
    pub fn host_mut(&mut self, id: NodeId) -> Result<&mut Host, SimError> {
        match &mut self.nodes[id.0].kind {
            NodeKind::Host(h) => Ok(h),
            NodeKind::Router(_) => Err(SimError::WrongNodeKind { node: id.0, expected: "host" }),
        }
    }

    /// Statically verifies a composed program against this network: the
    /// registry pass runs over the *actual* installed registries of every
    /// router node, and the resource pass uses the budget matching the
    /// network's timing model. Lets experiment drivers lint a protocol
    /// before injecting a single packet.
    pub fn lint(&self, repr: &DipRepr) -> dip_verify::Report {
        let hops: Vec<FnRegistry> = self
            .nodes
            .iter()
            .filter_map(|slot| match &slot.kind {
                NodeKind::Router(r) => Some(r.registry().clone()),
                NodeKind::Host(_) => None,
            })
            .collect();
        let program = dip_verify::FnProgram::from_repr(repr);
        let checker = dip_verify::Checker::new().with_budget(self.model.resource_budget());
        if hops.is_empty() {
            checker.check(&program)
        } else {
            checker.check_path(&program, &hops)
        }
    }

    /// Sends `packet` out of `node`'s `port` at time `at` (a host
    /// originating traffic).
    pub fn send(&mut self, node: NodeId, port: u32, packet: Vec<u8>, at: SimTime) {
        let base = self.now.max(at);
        self.transmit(node.0, port, packet, base);
    }

    fn transmit(&mut self, node: usize, port: u32, mut packet: Vec<u8>, at: SimTime) {
        let Some(Some(end)) = self.nodes[node].ports.get(port as usize) else {
            // Unconnected port: the packet falls on the floor.
            return;
        };
        self.trace.push(at, TraceEvent::Sent { node, port, len: packet.len() });
        self.nodes[node].sent.inc();
        if let Some(cap) = self.capture.as_mut() {
            cap.push((at, packet.clone()));
        }
        let ser_ns = (packet.len() as u64 * 8).saturating_mul(1_000_000_000) / end.bandwidth_bps;
        let arrival = at + ser_ns + end.latency_ns;
        let (peer, peer_port, up) = (end.peer, end.peer_port, end.up);
        let faults = end.faults.clone();
        if !up || !faults.apply(&mut self.rng, &mut packet, at) {
            self.trace.push(at, TraceEvent::LinkDropped { node, port });
            self.nodes[node].link_dropped.inc();
            return;
        }
        self.push_event(arrival, peer, EventKind::Packet { port: peer_port, packet });
    }

    /// Runs until no events remain (or `max_events` is hit). Returns the
    /// final virtual time.
    pub fn run(&mut self) -> SimTime {
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.events_processed += 1;
            if self.events_processed > self.max_events {
                break;
            }
            self.now = self.now.max(ev.time);
            self.dispatch(ev);
        }
        self.now
    }

    fn dispatch(&mut self, ev: QueuedEvent) {
        let QueuedEvent { time, node, kind, .. } = ev;
        match kind {
            EventKind::Packet { port, packet } => self.dispatch_packet(time, node, port, packet),
            EventKind::ControlTick { interval, horizon } => {
                if let NodeKind::Router(router) = &mut self.nodes[node].kind {
                    let emits = router.control_tick(time);
                    for (port, packet) in emits {
                        self.transmit(node, port, packet, time);
                    }
                }
                let next = time.saturating_add(interval);
                if next <= horizon {
                    self.push_event(next, node, EventKind::ControlTick { interval, horizon });
                }
            }
            EventKind::LinkAdmin { port, up } => self.set_link_state(NodeId(node), port, up),
        }
    }

    fn dispatch_packet(&mut self, time: SimTime, node: usize, port: u32, mut packet: Vec<u8>) {
        // Split the borrow: temporarily take the node kind out.
        match &mut self.nodes[node].kind {
            NodeKind::Router(router) => {
                let (verdict, stats) = router.process_packet(&mut packet, port, time);
                let emitted = router.drain_control();
                let mac_choice = router.mac_choice();
                let proc_ns = self.model.process_ns(&stats, packet.len(), mac_choice) as u64;
                let done = time + proc_ns;
                self.nodes[node].outcomes.record(verdict.outcome());
                for (p, pkt) in emitted {
                    self.transmit(node, p, pkt, done);
                }
                match verdict {
                    Verdict::Forward(ports) => {
                        for p in ports {
                            self.transmit(node, p, packet.clone(), done);
                        }
                    }
                    Verdict::Deliver => {
                        self.trace.push(
                            done,
                            TraceEvent::Delivered { node, verified: false, len: packet.len() },
                        );
                    }
                    Verdict::Consumed => {}
                    Verdict::RespondCached(data) => {
                        self.trace.push(done, TraceEvent::CacheHit { node });
                        if let Some(compact) = cached_name(&packet) {
                            let reply = dip_protocols::ndn::data_compact(compact, 64)
                                .to_bytes(&data)
                                .expect("data packet construction");
                            self.transmit(node, port, reply, done);
                        }
                    }
                    Verdict::Notify(msg) => {
                        if let ControlMessage::FnUnsupported { key, .. } = &msg {
                            self.trace.push(done, TraceEvent::Notified { node, key: *key });
                        }
                        let reply = DipRepr {
                            next_header: CONTROL_NEXT_HEADER,
                            hop_limit: 64,
                            ..Default::default()
                        }
                        .to_bytes(&msg.encode())
                        .expect("control packet construction");
                        self.transmit(node, port, reply, done);
                    }
                    Verdict::Drop(reason) => {
                        self.trace.push(done, TraceEvent::Dropped { node, reason });
                    }
                }
            }
            NodeKind::Host(host) => {
                let action = host_receive(host, &mut packet, time);
                // A host consumes everything it doesn't refuse: replies
                // (the interest died here, a new data packet is born),
                // deliveries, and control messages all end the packet.
                let outcome = match &action {
                    HostAction::Dropped(reason) => PacketOutcome::Dropped(*reason),
                    _ => PacketOutcome::Consumed,
                };
                self.nodes[node].outcomes.record(outcome);
                match action {
                    HostAction::Reply(reply) => self.transmit(node, port, reply, time),
                    HostAction::Delivered { verified, len } => {
                        self.trace.push(time, TraceEvent::Delivered { node, verified, len });
                    }
                    HostAction::Dropped(reason) => {
                        self.trace.push(time, TraceEvent::Dropped { node, reason });
                    }
                    HostAction::Quiet => {}
                }
            }
        }
    }
}

enum HostAction {
    Reply(Vec<u8>),
    Delivered { verified: bool, len: usize },
    Dropped(dip_fnops::DropReason),
    Quiet,
}

/// Extracts the compact content name from an NDN-style packet (first 4
/// bytes of the locations area).
fn cached_name(packet: &[u8]) -> Option<u32> {
    let pkt = DipPacket::new_checked(packet).ok()?;
    let locs = pkt.locations();
    locs.get(..4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

fn host_receive(host: &mut Host, packet: &mut [u8], now: SimTime) -> HostAction {
    let Ok(pkt) = DipPacket::new_checked(&packet[..]) else {
        return HostAction::Dropped(dip_fnops::DropReason::MalformedField);
    };

    // Control notifications (§2.4).
    if let Ok(hdr) = pkt.basic_header() {
        if hdr.next_header == CONTROL_NEXT_HEADER {
            if let Ok(msg) = ControlMessage::decode(pkt.payload()) {
                host.control_messages.push(msg);
            }
            return HostAction::Quiet;
        }
    }

    // Interest handling for producers: an F_FIB triple marks a request.
    let is_interest = pkt.triples().is_ok_and(|ts| ts.iter().any(|t| t.key == FnKey::Fib));
    if is_interest {
        if let Some(producer) = &host.producer {
            let Some(compact) =
                pkt.locations().get(..4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
            else {
                return HostAction::Dropped(dip_fnops::DropReason::MalformedField);
            };
            let Some(content) = producer.contents.get(&compact) else {
                return HostAction::Dropped(dip_fnops::DropReason::NoRoute);
            };
            let repr = match &producer.session {
                Some(session) => dip_protocols::ndn_opt::data_compact(
                    session,
                    compact,
                    content,
                    (now / 1_000_000) as u32,
                    64,
                ),
                None => dip_protocols::ndn::data_compact(compact, 64),
            };
            let reply = repr.to_bytes(content).expect("data construction");
            return HostAction::Reply(reply);
        }
        return HostAction::Dropped(dip_fnops::DropReason::NoRoute);
    }

    // Data / plain delivery: run host-tagged FNs then deliver.
    let payload_len = pkt.payload().len();
    let _ = pkt;
    match deliver(packet, &host.host_ctx, &mut host.state, &host.registry, now) {
        Ok(d) => {
            let payload = DipPacket::new_unchecked(&packet[..]).payload().to_vec();
            host.delivered.push(DeliveredPacket { payload, verified: d.verified, time: now });
            HostAction::Delivered { verified: d.verified, len: payload_len }
        }
        Err(reason) => HostAction::Dropped(reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dip_tables::fib::NextHop;
    use dip_wire::ndn::Name;

    /// consumer(h0) -- r0 -- producer(h1)
    fn ndn_triangle(secure: bool) -> (Network, NodeId, NodeId, NodeId, Name, OptSession) {
        let name = Name::parse("hotnets.org");
        let router_secret = [9u8; 16];
        let session = OptSession::establish([0xaa; 16], &[1; 16], &[router_secret]);

        let mut net = Network::new(42);
        let mut r = DipRouter::new(0, router_secret);
        r.state_mut().name_fib.add_route(&name, NextHop::port(1));
        let r0 = net.add_router(r);

        let consumer = if secure {
            Host::verifying_consumer(10, session.host_context())
        } else {
            Host::consumer(10)
        };
        let h0 = net.add_host(consumer);

        let mut contents = HashMap::new();
        contents.insert(name.compact32(), b"the content".to_vec());
        let producer = if secure {
            Host::secure_producer(11, contents, session.clone())
        } else {
            Host::producer(11, contents)
        };
        let h1 = net.add_host(producer);

        net.connect(h0, 0, r0, 0, 1_000);
        net.connect(h1, 0, r0, 1, 1_000);
        (net, r0, h0, h1, name, session)
    }

    #[test]
    fn plain_ndn_retrieval_end_to_end() {
        let (mut net, _r0, h0, _h1, name, _) = ndn_triangle(false);
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        net.run();
        let delivered = &net.host(h0).unwrap().delivered;
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, b"the content");
        assert!(!delivered[0].verified);
    }

    #[test]
    fn ndn_opt_retrieval_verifies_end_to_end() {
        let (mut net, _r0, h0, _h1, name, _) = ndn_triangle(true);
        let interest = dip_protocols::ndn_opt::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        net.run();
        let delivered = &net.host(h0).unwrap().delivered;
        assert_eq!(delivered.len(), 1);
        assert!(delivered[0].verified, "NDN+OPT delivery must verify");
        assert_eq!(delivered[0].payload, b"the content");
    }

    #[test]
    fn corrupted_link_fails_verification() {
        let name = Name::parse("hotnets.org");
        let router_secret = [9u8; 16];
        let session = OptSession::establish([0xaa; 16], &[1; 16], &[router_secret]);
        let mut net = Network::new(7);
        let mut r = DipRouter::new(0, router_secret);
        r.state_mut().name_fib.add_route(&name, NextHop::port(1));
        let r0 = net.add_router(r);
        let h0 = net.add_host(Host::verifying_consumer(10, session.host_context()));
        let mut contents = HashMap::new();
        contents.insert(name.compact32(), vec![0x42; 64]);
        let h1 = net.add_host(Host::secure_producer(11, contents, session.clone()));
        net.connect(h0, 0, r0, 0, 1_000);
        // Producer-side link corrupts every packet.
        net.connect_with(
            h1,
            0,
            r0,
            1,
            1_000,
            10_000_000_000,
            FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() },
        );
        let interest = dip_protocols::ndn_opt::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        net.run();
        // Either the data was dropped at the host as an auth failure, or —
        // if the corruption hit the interest on the way in — nothing was
        // delivered verified.
        assert_eq!(net.trace().delivered(true), 0);
    }

    #[test]
    fn lint_checks_against_installed_router_registries() {
        let (net, _r0, _h0, _h1, name, session) = ndn_triangle(true);
        // The real NDN+OPT data program lints clean against the network.
        let data = dip_protocols::ndn_opt::data_compact(&session, name.compact32(), b"x", 0, 64);
        assert!(net.lint(&data).is_clean(), "{}", net.lint(&data));

        // Strip F_MAC from the router and the same program is flagged with
        // the hop index of the incapable node.
        let (mut net2, r0, ..) = ndn_triangle(true);
        net2.router_mut(r0).unwrap().registry_mut().uninstall(FnKey::Mac);
        let report = net2.lint(&data);
        assert!(report.has_code(dip_verify::DiagCode::UnsupportedAtHop), "{report}");
    }

    #[test]
    fn lint_budget_follows_the_timing_model() {
        let net = Network::new(1);
        assert_eq!(net.model.resource_budget(), dip_verify::ResourceBudget::tofino());
        assert_eq!(
            TofinoModel::software().resource_budget(),
            dip_verify::ResourceBudget::software()
        );
        // With no routers, lint degrades to a single standard-registry hop.
        let repr = dip_protocols::ndn::interest(&Name::parse("/x"), 64);
        assert!(net.lint(&repr).is_clean());
    }

    #[test]
    fn per_hop_metrics_account_for_every_packet() {
        let (mut net, _r0, h0, _h1, name, _) = ndn_triangle(false);
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        net.run();
        let snap = net.metrics_snapshot();
        // The router (node 0) forwarded both the interest and the data.
        assert_eq!(
            snap.sum_where("dip_packets_total", &[("node", "0"), ("outcome", "forwarded")]),
            2
        );
        // The producer (node 2) consumed the interest (replying with
        // data); the consumer (node 1) consumed the delivery.
        assert_eq!(
            snap.sum_where("dip_packets_total", &[("node", "2"), ("outcome", "consumed")]),
            1
        );
        assert_eq!(
            snap.sum_where("dip_packets_total", &[("node", "1"), ("outcome", "consumed")]),
            1
        );
        assert_eq!(snap.get("dip_drops_total"), 0);
        // add_router wired the DipRouter's own verdict counters too.
        assert_eq!(snap.sum_where("dip_router_verdicts_total", &[("verdict", "forward")]), 2);
        // And the Prometheus rendering carries the same families.
        let report = net.metrics_report();
        assert!(report.contains("# TYPE dip_packets_total counter"), "{report}");
        assert!(report.contains("dip_node_sent_total"), "{report}");
    }

    #[test]
    fn link_faults_are_counted_per_node() {
        let name = Name::parse("/faulty");
        let mut net = Network::new(3);
        let mut r = DipRouter::new(0, [1; 16]);
        r.state_mut().name_fib.add_route(&name, NextHop::port(1));
        let r0 = net.add_router(r);
        let h0 = net.add_host(Host::consumer(10));
        net.connect(h0, 0, r0, 0, 1_000);
        // Router egress port 1 drops everything on the floor.
        let h1 = net.add_host(Host::producer(11, HashMap::new()));
        net.connect_with(
            h1,
            0,
            r0,
            1,
            1_000,
            10_000_000_000,
            FaultConfig { drop_chance: 1.0, ..FaultConfig::default() },
        );
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        net.run();
        let snap = net.metrics_snapshot();
        assert_eq!(snap.sum_where("dip_link_dropped_total", &[("node", "0")]), 1);
        assert_eq!(
            snap.sum_where("dip_packets_total", &[("node", "0"), ("outcome", "forwarded")]),
            1
        );
    }

    #[test]
    fn unconnected_port_drops_silently() {
        let mut net = Network::new(1);
        let h0 = net.add_host(Host::consumer(1));
        net.send(h0, 5, vec![1, 2, 3], 0);
        assert_eq!(net.run(), 0);
    }

    #[test]
    fn time_advances_with_latency() {
        let (mut net, _, h0, _, name, _) = ndn_triangle(false);
        let interest = dip_protocols::ndn::interest(&name, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        let end = net.run();
        // Two link traversals each way at 1µs plus serialization + processing.
        assert!(end >= 4_000, "end time {end}");
        assert!(net.host(h0).unwrap().delivered[0].time >= 4_000);
    }

    #[test]
    fn missing_content_is_dropped_at_producer() {
        let (mut net, _, h0, h1, _, _) = ndn_triangle(false);
        let other = Name::parse("/unknown");
        // Add a route so the interest reaches the producer.
        net.router_mut(NodeId(0)).unwrap().state_mut().name_fib.add_route(&other, NextHop::port(1));
        let interest = dip_protocols::ndn::interest(&other, 64).to_bytes(&[]).unwrap();
        net.send(h0, 0, interest, 0);
        net.run();
        assert!(net.host(h0).unwrap().delivered.is_empty());
        assert_eq!(net.trace().drops_with(dip_fnops::DropReason::NoRoute), 1);
        let _ = h1;
    }
}

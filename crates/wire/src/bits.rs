//! Bit-granular field access.
//!
//! FN triples address target fields by *bit* offset and *bit* length into the
//! FN locations area. All the fields used by the paper's five protocols are
//! byte-aligned, so the byte-aligned fast path is the hot one, but the wire
//! format permits arbitrary alignment and the operation modules must handle
//! it; these helpers are the single shared implementation.
//!
//! Convention: extracted fields are **left-aligned** — the first bit of the
//! field becomes the most significant bit of the first output byte, and any
//! trailing pad bits in the last byte are zero. [`write_bits`] is the exact
//! inverse and ignores the pad bits of its input.

use crate::error::{Result, WireError};

/// Number of bytes needed to hold `bit_len` bits.
#[inline]
pub const fn byte_len(bit_len: usize) -> usize {
    bit_len.div_ceil(8)
}

/// Returns `true` when a `(bit_off, bit_len)` field lies on byte boundaries.
#[inline]
pub const fn is_byte_aligned(bit_off: usize, bit_len: usize) -> bool {
    bit_off.is_multiple_of(8) && bit_len.is_multiple_of(8)
}

/// Validates that the field `[bit_off, bit_off + bit_len)` lies inside a
/// buffer of `buf_len` bytes.
#[inline]
pub fn check_range(buf_len: usize, bit_off: usize, bit_len: usize) -> Result<()> {
    let end = bit_off.checked_add(bit_len).ok_or(WireError::Malformed("bit range overflows"))?;
    if end > buf_len * 8 {
        return Err(WireError::OutOfBounds { end, limit: buf_len * 8 });
    }
    Ok(())
}

/// Reads a single bit (0 or 1). `bit_off` counts from the MSB of byte 0.
#[inline]
pub fn get_bit(buf: &[u8], bit_off: usize) -> Result<bool> {
    check_range(buf.len(), bit_off, 1)?;
    let byte = buf[bit_off / 8];
    Ok((byte >> (7 - bit_off % 8)) & 1 == 1)
}

/// Sets a single bit.
#[inline]
pub fn set_bit(buf: &mut [u8], bit_off: usize, value: bool) -> Result<()> {
    check_range(buf.len(), bit_off, 1)?;
    let mask = 1u8 << (7 - bit_off % 8);
    if value {
        buf[bit_off / 8] |= mask;
    } else {
        buf[bit_off / 8] &= !mask;
    }
    Ok(())
}

/// Copies the bit field `[bit_off, bit_off + bit_len)` of `src` into `dst`,
/// left-aligned. `dst` must hold at least [`byte_len`]`(bit_len)` bytes; any
/// extra bytes are untouched, pad bits of the last written byte are zeroed.
///
/// Returns the number of bytes written.
pub fn read_bits_into(src: &[u8], bit_off: usize, bit_len: usize, dst: &mut [u8]) -> Result<usize> {
    check_range(src.len(), bit_off, bit_len)?;
    let out_len = byte_len(bit_len);
    if dst.len() < out_len {
        return Err(WireError::Truncated { needed: out_len, available: dst.len() });
    }
    if bit_len == 0 {
        return Ok(0);
    }
    if is_byte_aligned(bit_off, bit_len) {
        let start = bit_off / 8;
        dst[..out_len].copy_from_slice(&src[start..start + out_len]);
        return Ok(out_len);
    }
    let shift = bit_off % 8;
    let first = bit_off / 8;
    for (i, d) in dst.iter_mut().take(out_len).enumerate() {
        let hi = src[first + i] << shift;
        let lo = if shift > 0 && first + i + 1 < src.len() {
            src[first + i + 1] >> (8 - shift)
        } else {
            0
        };
        *d = hi | lo;
    }
    // Zero the pad bits of the final byte.
    let pad = out_len * 8 - bit_len;
    if pad > 0 {
        dst[out_len - 1] &= 0xffu8 << pad;
    }
    Ok(out_len)
}

/// Allocating convenience wrapper around [`read_bits_into`].
pub fn read_bits(src: &[u8], bit_off: usize, bit_len: usize) -> Result<Vec<u8>> {
    let mut out = vec![0u8; byte_len(bit_len)];
    read_bits_into(src, bit_off, bit_len, &mut out)?;
    Ok(out)
}

/// Writes a left-aligned bit field `value` into `[bit_off, bit_off+bit_len)`
/// of `dst`. Bits of `dst` outside the field are preserved. `value` must hold
/// at least [`byte_len`]`(bit_len)` bytes; its pad bits are ignored.
pub fn write_bits(dst: &mut [u8], bit_off: usize, bit_len: usize, value: &[u8]) -> Result<()> {
    check_range(dst.len(), bit_off, bit_len)?;
    let in_len = byte_len(bit_len);
    if value.len() < in_len {
        return Err(WireError::Truncated { needed: in_len, available: value.len() });
    }
    if bit_len == 0 {
        return Ok(());
    }
    if is_byte_aligned(bit_off, bit_len) {
        let start = bit_off / 8;
        dst[start..start + in_len].copy_from_slice(&value[..in_len]);
        return Ok(());
    }
    // Slow path: bit by bit. Field writes off the byte-aligned path are rare
    // (none of the paper's protocols need them), so clarity wins here.
    for i in 0..bit_len {
        let bit = (value[i / 8] >> (7 - i % 8)) & 1 == 1;
        set_bit(dst, bit_off + i, bit)?;
    }
    Ok(())
}

/// Reads a big-endian unsigned integer of up to 64 bits from a bit field.
pub fn read_uint(src: &[u8], bit_off: usize, bit_len: usize) -> Result<u64> {
    if bit_len > 64 {
        return Err(WireError::Malformed("uint field wider than 64 bits"));
    }
    let bytes = read_bits(src, bit_off, bit_len)?;
    let mut v: u64 = 0;
    for b in &bytes {
        v = (v << 8) | u64::from(*b);
    }
    // The field is left-aligned in `bytes`; shift right to right-align.
    let pad = byte_len(bit_len) * 8 - bit_len;
    Ok(v >> pad)
}

/// Writes a big-endian unsigned integer of up to 64 bits into a bit field.
pub fn write_uint(dst: &mut [u8], bit_off: usize, bit_len: usize, value: u64) -> Result<()> {
    if bit_len > 64 {
        return Err(WireError::Malformed("uint field wider than 64 bits"));
    }
    if bit_len < 64 && value >= 1u64 << bit_len {
        return Err(WireError::FieldOverflow("uint"));
    }
    let pad = byte_len(bit_len) * 8 - bit_len;
    let shifted = value << pad;
    let mut bytes = [0u8; 8];
    let n = byte_len(bit_len);
    for (i, b) in bytes.iter_mut().enumerate().take(n) {
        *b = (shifted >> ((n - 1 - i) * 8)) as u8;
    }
    write_bits(dst, bit_off, bit_len, &bytes[..n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_len_rounds_up() {
        assert_eq!(byte_len(0), 0);
        assert_eq!(byte_len(1), 1);
        assert_eq!(byte_len(8), 1);
        assert_eq!(byte_len(9), 2);
        assert_eq!(byte_len(544), 68);
    }

    #[test]
    fn aligned_read_is_a_slice_copy() {
        let src = [0xde, 0xad, 0xbe, 0xef];
        assert_eq!(read_bits(&src, 8, 16).unwrap(), vec![0xad, 0xbe]);
        assert_eq!(read_bits(&src, 0, 32).unwrap(), src.to_vec());
    }

    #[test]
    fn unaligned_read_shifts_left() {
        // src = 1101_1110 1010_1101
        let src = [0b1101_1110, 0b1010_1101];
        // 4 bits at offset 4 -> 1110 -> left aligned 1110_0000
        assert_eq!(read_bits(&src, 4, 4).unwrap(), vec![0b1110_0000]);
        // 8 bits at offset 4 -> 1110_1010
        assert_eq!(read_bits(&src, 4, 8).unwrap(), vec![0b1110_1010]);
        // 6 bits at offset 3 -> 11110 1 -> 1_1110_1 -> left aligned 111101_00
        assert_eq!(read_bits(&src, 3, 6).unwrap(), vec![0b1111_0100]);
    }

    #[test]
    fn read_rejects_out_of_bounds() {
        let src = [0u8; 4];
        assert!(matches!(read_bits(&src, 24, 16), Err(WireError::OutOfBounds { .. })));
        assert!(read_bits(&src, 24, 8).is_ok());
    }

    #[test]
    fn write_then_read_roundtrip_aligned() {
        let mut buf = [0u8; 8];
        write_bits(&mut buf, 16, 24, &[1, 2, 3]).unwrap();
        assert_eq!(read_bits(&buf, 16, 24).unwrap(), vec![1, 2, 3]);
        assert_eq!(buf[0], 0);
        assert_eq!(buf[5], 0);
    }

    #[test]
    fn write_preserves_surrounding_bits() {
        let mut buf = [0xff; 2];
        write_bits(&mut buf, 4, 8, &[0x00]).unwrap();
        assert_eq!(buf, [0xf0, 0x0f]);
    }

    #[test]
    fn uint_roundtrip() {
        let mut buf = [0u8; 4];
        write_uint(&mut buf, 6, 10, 0x2ab).unwrap();
        assert_eq!(read_uint(&buf, 6, 10).unwrap(), 0x2ab);
        // Field overflow is rejected.
        assert_eq!(write_uint(&mut buf, 0, 4, 16), Err(WireError::FieldOverflow("uint")));
    }

    #[test]
    fn uint_full_width() {
        let mut buf = [0u8; 8];
        write_uint(&mut buf, 0, 64, u64::MAX).unwrap();
        assert_eq!(read_uint(&buf, 0, 64).unwrap(), u64::MAX);
    }

    #[test]
    fn single_bits() {
        let mut buf = [0u8; 1];
        set_bit(&mut buf, 0, true).unwrap();
        set_bit(&mut buf, 7, true).unwrap();
        assert_eq!(buf[0], 0b1000_0001);
        assert!(get_bit(&buf, 0).unwrap());
        assert!(!get_bit(&buf, 1).unwrap());
        assert!(get_bit(&buf, 7).unwrap());
        set_bit(&mut buf, 0, false).unwrap();
        assert_eq!(buf[0], 0b0000_0001);
    }

    #[test]
    fn zero_length_field_is_noop() {
        let mut buf = [0xaa; 2];
        assert_eq!(read_bits(&buf, 3, 0).unwrap(), Vec::<u8>::new());
        write_bits(&mut buf, 3, 0, &[]).unwrap();
        assert_eq!(buf, [0xaa, 0xaa]);
    }

    #[test]
    fn unaligned_write_roundtrip() {
        let mut buf = [0u8; 4];
        let val = [0b1011_0110, 0b1100_0000]; // 10 bits: 1011011011
        write_bits(&mut buf, 5, 10, &val).unwrap();
        assert_eq!(read_bits(&buf, 5, 10).unwrap(), vec![0b1011_0110, 0b1100_0000]);
    }
}

//! Minimal IPv4 header codec.
//!
//! Used (a) as the *IPv4 forwarding* baseline of Figure 2 / Table 2 and
//! (b) by the border router (§2.4) when a legacy IPv4 header rides inside
//! the DIP FN locations area. Options are not supported (matching the DIP
//! prototype, which forwards plain 20-byte headers).

use crate::checksum;
use crate::error::{ensure_len, Result, WireError};

/// Length of an option-less IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 address. (A local newtype rather than `std::net::Ipv4Addr` so the
/// wire crate stays self-contained and trivially `no_std`-portable.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Builds an address from dotted octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// The address as a big-endian integer (used by the bit-trie FIB).
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds from a big-endian integer.
    pub fn from_u32(v: u32) -> Self {
        Ipv4Addr(v.to_be_bytes())
    }
}

impl core::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Owned representation of an option-less IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol number.
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parses and checksum-verifies a header.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, IPV4_HEADER_LEN)?;
        if buf[0] >> 4 != 4 {
            return Err(WireError::BadVersion(buf[0] >> 4));
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(WireError::Malformed("IPv4 options unsupported"));
        }
        if !checksum::verify(&buf[..IPV4_HEADER_LEN]) {
            return Err(WireError::BadChecksum);
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < IPV4_HEADER_LEN {
            return Err(WireError::Malformed("total length shorter than header"));
        }
        Ok(Ipv4Repr {
            src: Ipv4Addr([buf[12], buf[13], buf[14], buf[15]]),
            dst: Ipv4Addr([buf[16], buf[17], buf[18], buf[19]]),
            protocol: buf[9],
            ttl: buf[8],
            payload_len: total_len - IPV4_HEADER_LEN,
        })
    }

    /// Emits the header (with checksum) into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        ensure_len(buf, IPV4_HEADER_LEN)?;
        let total = self.payload_len + IPV4_HEADER_LEN;
        if total > usize::from(u16::MAX) {
            return Err(WireError::FieldOverflow("IPv4 total length"));
        }
        buf[0] = 0x45;
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        buf[4..8].fill(0); // identification + flags/fragment
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10..12].fill(0);
        buf[12..16].copy_from_slice(&self.src.0);
        buf[16..20].copy_from_slice(&self.dst.0);
        let ck = checksum::internet_checksum(&buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// Serializes header + payload into a fresh buffer.
    pub fn to_bytes(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut repr = *self;
        repr.payload_len = payload.len();
        let mut out = vec![0u8; IPV4_HEADER_LEN + payload.len()];
        repr.emit(&mut out)?;
        out[IPV4_HEADER_LEN..].copy_from_slice(payload);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 69, 100),
            protocol: 17,
            ttl: 64,
            payload_len: 0,
        }
    }

    #[test]
    fn roundtrip_with_checksum() {
        let bytes = sample().to_bytes(b"hello").unwrap();
        assert_eq!(bytes.len(), 25);
        let parsed = Ipv4Repr::parse(&bytes).unwrap();
        assert_eq!(parsed.src, sample().src);
        assert_eq!(parsed.dst, sample().dst);
        assert_eq!(parsed.payload_len, 5);
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let mut bytes = sample().to_bytes(&[]).unwrap();
        bytes[16] ^= 0xff;
        assert_eq!(Ipv4Repr::parse(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn emit_into_dirty_buffer_still_verifies() {
        // Recompute-on-emit must not be poisoned by whatever the buffer
        // held before — in particular a stale checksum in bytes 10..12
        // (the reuse pattern: emitting over a previously parsed header).
        let mut buf = [0xde; IPV4_HEADER_LEN];
        buf[10] = 0xde;
        buf[11] = 0xad;
        sample().emit(&mut buf).unwrap();
        assert!(checksum::verify(&buf), "emit must zero the checksum field before summing");
        assert!(Ipv4Repr::parse(&buf).is_ok());
        // And the result is identical to emitting into a clean buffer.
        let mut clean = [0u8; IPV4_HEADER_LEN];
        sample().emit(&mut clean).unwrap();
        assert_eq!(buf, clean);
    }

    #[test]
    fn rejects_v6() {
        let mut bytes = sample().to_bytes(&[]).unwrap();
        bytes[0] = 0x65;
        assert_eq!(Ipv4Repr::parse(&bytes), Err(WireError::BadVersion(6)));
    }

    #[test]
    fn rejects_options() {
        let mut bytes = sample().to_bytes(&[]).unwrap();
        bytes[0] = 0x46; // ihl = 24
                         // fix checksum so we reach the IHL check... the IHL check fires first.
        assert_eq!(Ipv4Repr::parse(&bytes), Err(WireError::Malformed("IPv4 options unsupported")));
    }

    #[test]
    fn header_is_20_bytes_for_table2() {
        assert_eq!(IPV4_HEADER_LEN, 20);
    }

    #[test]
    fn addr_u32_roundtrip() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        assert_eq!(a.to_u32(), 0x0102_0304);
        assert_eq!(Ipv4Addr::from_u32(0x0102_0304), a);
        assert_eq!(a.to_string(), "1.2.3.4");
    }
}

//! Error type shared by every codec in this crate.

use core::fmt;

/// Errors that can occur while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the format requires.
    Truncated {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length or offset field points outside the buffer.
    OutOfBounds {
        /// First bit (or byte, context-dependent) past the valid region.
        end: usize,
        /// Size of the valid region.
        limit: usize,
    },
    /// A version field holds a value this implementation does not speak.
    BadVersion(u8),
    /// A field holds a value that is structurally invalid (bad enum
    /// discriminant, zero where non-zero is required, ...).
    Malformed(&'static str),
    /// A checksum did not verify.
    BadChecksum,
    /// A value does not fit in the wire field that should carry it.
    FieldOverflow(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated packet: need {needed} bytes, have {available}")
            }
            WireError::OutOfBounds { end, limit } => {
                write!(f, "field extends to {end} past limit {limit}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::FieldOverflow(what) => write!(f, "value too large for field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, WireError>;

/// Checks that `buf` holds at least `needed` bytes.
pub fn ensure_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(WireError::Truncated { needed, available: buf.len() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = WireError::Truncated { needed: 6, available: 2 };
        assert_eq!(e.to_string(), "truncated packet: need 6 bytes, have 2");
        assert_eq!(WireError::BadVersion(9).to_string(), "unsupported version 9");
        assert_eq!(WireError::BadChecksum.to_string(), "checksum mismatch");
        assert_eq!(
            WireError::OutOfBounds { end: 600, limit: 544 }.to_string(),
            "field extends to 600 past limit 544"
        );
    }

    #[test]
    fn ensure_len_accepts_exact_and_longer() {
        assert!(ensure_len(&[0u8; 6], 6).is_ok());
        assert!(ensure_len(&[0u8; 7], 6).is_ok());
        assert_eq!(ensure_len(&[0u8; 5], 6), Err(WireError::Truncated { needed: 6, available: 5 }));
    }
}

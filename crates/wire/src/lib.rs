//! # dip-wire — wire formats for the DIP protocol family
//!
//! This crate implements the byte-level representation of everything that
//! travels on the wire in the DIP reproduction:
//!
//! * the **DIP header** of Figure 1 of the paper — a 6-byte basic header,
//!   an array of 6-byte *FN triples* (field location, field length,
//!   operation key), and a variable-length *FN locations* area
//!   ([`DipPacket`], [`DipRepr`], [`FnTriple`]);
//! * the **legacy headers** used as baselines and for border-router
//!   encapsulation ([`ipv4::Ipv4Repr`], [`ipv6::Ipv6Repr`]);
//! * the **protocol field layouts** that protocols place *inside* the FN
//!   locations area: NDN names ([`ndn`]), the 544-bit OPT authentication
//!   block ([`opt`]) and XIA DAG addresses ([`xia`]).
//!
//! The design follows the `smoltcp` idiom: a zero-copy `Packet<T:
//! AsRef<[u8]>>` view over a buffer with getters/setters, plus an owned
//! `Repr` that can be parsed from and emitted into such a view. No heap
//! allocation happens on the parse path for byte-aligned fields.
//!
//! ## Bit addressing
//!
//! FN triples address fields by **bit** offset and **bit** length into the FN
//! locations area (the paper's examples are all byte-aligned, e.g. `(loc: 288,
//! len: 128, key: 8)`, but the format permits arbitrary bit fields). The
//! [`bits`] module provides the shared bit-granular read/write primitives
//! with a fast path for byte-aligned access.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod basic;
pub mod bits;
pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod ipv4;
pub mod ipv6;
pub mod ndn;
pub mod opt;
pub mod packet;
pub mod pretty;
pub mod triple;
pub mod xia;

pub use basic::{BasicHeader, PacketParameter, BASIC_HEADER_LEN, DIP_VERSION};
pub use error::{Result, WireError};
pub use packet::{DipPacket, DipRepr};
pub use triple::{FnKey, FnTriple, FN_TRIPLE_LEN};

/// Maximum length, in bytes, of the FN locations area (10-bit length field in
/// the packet parameter, §2.2).
pub const MAX_FN_LOC_LEN: usize = 1023;

/// Maximum number of FN triples in one packet (8-bit FN number field).
pub const MAX_FN_NUM: usize = 255;

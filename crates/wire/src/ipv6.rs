//! Minimal IPv6 header codec — the 40-byte fixed header.
//!
//! Serves as the *IPv6 forwarding* baseline (Figure 2, Table 2) and as the
//! legacy header carried in FN locations for the §2.4 backward-compatibility
//! path ("when a DIP host connects to another host using IPv6, we set the
//! IPv6 header in the FN location part").

use crate::error::{ensure_len, Result, WireError};

/// Length of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// An IPv6 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv6Addr(pub [u8; 16]);

impl Ipv6Addr {
    /// Builds an address from eight 16-bit groups.
    pub fn new(groups: [u16; 8]) -> Self {
        let mut b = [0u8; 16];
        for (i, g) in groups.iter().enumerate() {
            b[2 * i..2 * i + 2].copy_from_slice(&g.to_be_bytes());
        }
        Ipv6Addr(b)
    }

    /// The address as a big-endian u128 (for the bit-trie FIB).
    pub fn to_u128(self) -> u128 {
        u128::from_be_bytes(self.0)
    }

    /// Builds from a big-endian u128.
    pub fn from_u128(v: u128) -> Self {
        Ipv6Addr(v.to_be_bytes())
    }
}

impl core::fmt::Display for Ipv6Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in 0..8 {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{:x}", u16::from_be_bytes([self.0[2 * i], self.0[2 * i + 1]]))?;
        }
        Ok(())
    }
}

/// Owned representation of the fixed IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Repr {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Next header protocol number.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Ipv6Repr {
    /// Parses the fixed header.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, IPV6_HEADER_LEN)?;
        if buf[0] >> 4 != 6 {
            return Err(WireError::BadVersion(buf[0] >> 4));
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Repr {
            src: Ipv6Addr(src),
            dst: Ipv6Addr(dst),
            next_header: buf[6],
            hop_limit: buf[7],
            payload_len: usize::from(u16::from_be_bytes([buf[4], buf[5]])),
        })
    }

    /// Emits the fixed header into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        ensure_len(buf, IPV6_HEADER_LEN)?;
        if self.payload_len > usize::from(u16::MAX) {
            return Err(WireError::FieldOverflow("IPv6 payload length"));
        }
        buf[0] = 0x60;
        buf[1..4].fill(0); // traffic class + flow label
        buf[4..6].copy_from_slice(&(self.payload_len as u16).to_be_bytes());
        buf[6] = self.next_header;
        buf[7] = self.hop_limit;
        buf[8..24].copy_from_slice(&self.src.0);
        buf[24..40].copy_from_slice(&self.dst.0);
        Ok(())
    }

    /// Serializes header + payload into a fresh buffer.
    pub fn to_bytes(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut repr = *self;
        repr.payload_len = payload.len();
        let mut out = vec![0u8; IPV6_HEADER_LEN + payload.len()];
        repr.emit(&mut out)?;
        out[IPV6_HEADER_LEN..].copy_from_slice(payload);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Repr {
        Ipv6Repr {
            src: Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 1]),
            dst: Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 0x100]),
            next_header: 17,
            hop_limit: 64,
            payload_len: 0,
        }
    }

    #[test]
    fn roundtrip() {
        let bytes = sample().to_bytes(b"abc").unwrap();
        assert_eq!(bytes.len(), 43);
        let parsed = Ipv6Repr::parse(&bytes).unwrap();
        assert_eq!(parsed.src, sample().src);
        assert_eq!(parsed.dst, sample().dst);
        assert_eq!(parsed.payload_len, 3);
        assert_eq!(parsed.hop_limit, 64);
    }

    #[test]
    fn rejects_v4() {
        let mut b = sample().to_bytes(&[]).unwrap();
        b[0] = 0x45;
        assert_eq!(Ipv6Repr::parse(&b), Err(WireError::BadVersion(4)));
    }

    #[test]
    fn header_is_40_bytes_for_table2() {
        assert_eq!(IPV6_HEADER_LEN, 40);
    }

    #[test]
    fn display_groups() {
        let a = Ipv6Addr::new([0xfdaa, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(a.to_string(), "fdaa:0:0:0:0:0:0:1");
    }

    #[test]
    fn u128_roundtrip() {
        let a = Ipv6Addr::new([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(Ipv6Addr::from_u128(a.to_u128()), a);
    }
}

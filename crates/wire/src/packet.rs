//! Zero-copy view and owned representation of a full DIP packet.
//!
//! A DIP packet is laid out as (Figure 1):
//!
//! ```text
//! | basic header (6B) | FN triples (6B x fn_num) | FN locations | payload |
//! ```
//!
//! [`DipPacket`] wraps any `AsRef<[u8]>` buffer and provides field accessors
//! without copying; [`DipRepr`] is the owned, validated form used by hosts to
//! construct packets and by tests to state expectations.

use crate::basic::{BasicHeader, PacketParameter, BASIC_HEADER_LEN};
use crate::bits;
use crate::error::{ensure_len, Result, WireError};
use crate::triple::{FnTriple, FN_TRIPLE_LEN};
use crate::{MAX_FN_LOC_LEN, MAX_FN_NUM};

/// Zero-copy read (and, for mutable buffers, write) access to a DIP packet.
#[derive(Debug, Clone)]
pub struct DipPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> DipPacket<T> {
    /// Wraps a buffer without validation. Accessors are total — on a
    /// buffer shorter than the header claims they return zeros / empty
    /// slices rather than panicking — but only [`DipPacket::new_checked`]
    /// guarantees the views are meaningful; use it for untrusted input.
    pub fn new_unchecked(buffer: T) -> Self {
        DipPacket { buffer }
    }

    /// Wraps a buffer, validating that the full header (basic + triples +
    /// locations) is present and the version is supported.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = DipPacket { buffer };
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        let hdr = BasicHeader::parse(data)?;
        ensure_len(data, hdr.header_len())?;
        Ok(())
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The parsed basic header.
    pub fn basic_header(&self) -> Result<BasicHeader> {
        BasicHeader::parse(self.buffer.as_ref())
    }

    /// Number of FN triples (0 if the buffer is too short to say).
    pub fn fn_num(&self) -> u8 {
        self.buffer.as_ref().get(2).copied().unwrap_or(0)
    }

    /// Hop limit (0 if the buffer is too short to say).
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref().get(3).copied().unwrap_or(0)
    }

    /// Decoded packet parameter (all-zero if the buffer is too short).
    pub fn param(&self) -> PacketParameter {
        let d = self.buffer.as_ref();
        match (d.get(4), d.get(5)) {
            (Some(&hi), Some(&lo)) => PacketParameter::from_wire(u16::from_be_bytes([hi, lo])),
            _ => PacketParameter::from_wire(0),
        }
    }

    /// Length of the FN locations area in bytes.
    pub fn fn_loc_len(&self) -> usize {
        usize::from(self.param().fn_loc_len)
    }

    /// Total header length (basic + triples + locations).
    pub fn header_len(&self) -> usize {
        BASIC_HEADER_LEN + usize::from(self.fn_num()) * FN_TRIPLE_LEN + self.fn_loc_len()
    }

    /// Parses triple `i` (0-based).
    pub fn triple(&self, i: usize) -> Result<FnTriple> {
        if i >= usize::from(self.fn_num()) {
            return Err(WireError::Malformed("triple index past FN number"));
        }
        let off = BASIC_HEADER_LEN + i * FN_TRIPLE_LEN;
        let data = self.buffer.as_ref();
        FnTriple::parse(data.get(off..).unwrap_or(&[]))
    }

    /// Parses all triples, in header order (Algorithm 1 line 2).
    pub fn triples(&self) -> Result<Vec<FnTriple>> {
        (0..usize::from(self.fn_num())).map(|i| self.triple(i)).collect()
    }

    /// The FN locations area (Algorithm 1 line 3). Truncated (possibly to
    /// empty) when the buffer ends before the header says it should.
    pub fn locations(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        let start = BASIC_HEADER_LEN + usize::from(self.fn_num()) * FN_TRIPLE_LEN;
        let end = (start + self.fn_loc_len()).min(data.len());
        data.get(start..end).unwrap_or(&[])
    }

    /// The payload following the DIP header (empty when the buffer ends
    /// inside the header).
    pub fn payload(&self) -> &[u8] {
        self.buffer.as_ref().get(self.header_len()..).unwrap_or(&[])
    }

    /// Reads the target field of `triple` out of the locations area
    /// (left-aligned bytes; Algorithm 1 line 9).
    pub fn target_field(&self, triple: &FnTriple) -> Result<Vec<u8>> {
        bits::read_bits(
            self.locations(),
            usize::from(triple.field_loc),
            usize::from(triple.field_len),
        )
    }

    /// Total packet length in bytes.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> DipPacket<T> {
    /// Sets the hop limit (no-op on a buffer too short to hold one).
    pub fn set_hop_limit(&mut self, v: u8) {
        if let Some(b) = self.buffer.as_mut().get_mut(3) {
            *b = v;
        }
    }

    /// Decrements the hop limit, returning the new value, or `None` when the
    /// hop limit was already zero — or absent — (the packet must be dropped).
    pub fn decrement_hop_limit(&mut self) -> Option<u8> {
        let b = self.buffer.as_mut().get_mut(3)?;
        if *b == 0 {
            return None;
        }
        *b -= 1;
        Some(*b)
    }

    /// Mutable access to the FN locations area (truncated like
    /// [`DipPacket::locations`] on short buffers).
    pub fn locations_mut(&mut self) -> &mut [u8] {
        let start = BASIC_HEADER_LEN + usize::from(self.fn_num()) * FN_TRIPLE_LEN;
        let len = self.fn_loc_len();
        let data = self.buffer.as_mut();
        let end = (start + len).min(data.len());
        data.get_mut(start..end).unwrap_or(&mut [])
    }

    /// Overwrites the target field of `triple` in the locations area.
    pub fn set_target_field(&mut self, triple: &FnTriple, value: &[u8]) -> Result<()> {
        bits::write_bits(
            self.locations_mut(),
            usize::from(triple.field_loc),
            usize::from(triple.field_len),
            value,
        )
    }

    /// Mutable access to the payload (empty on short buffers).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        self.buffer.as_mut().get_mut(start..).unwrap_or(&mut [])
    }
}

impl<T: AsRef<[u8]>> AsRef<[u8]> for DipPacket<T> {
    fn as_ref(&self) -> &[u8] {
        self.buffer.as_ref()
    }
}

/// Owned, validated representation of a DIP header.
///
/// This is what hosts build (§2.3 "Host Constructions") before serializing,
/// and what `new_checked` + `parse` recovers from the wire.
///
/// ```
/// use dip_wire::packet::{DipPacket, DipRepr};
/// use dip_wire::triple::{FnKey, FnTriple};
///
/// // An NDN interest: one FN triple over a 32-bit compact name.
/// let repr = DipRepr {
///     fns: vec![FnTriple::router(0, 32, FnKey::Fib)],
///     locations: 0xDEADBEEFu32.to_be_bytes().to_vec(),
///     ..Default::default()
/// };
/// assert_eq!(repr.header_len(), 16); // Table 2's NDN row
///
/// let bytes = repr.to_bytes(b"payload").unwrap();
/// let parsed = DipRepr::parse(&DipPacket::new_checked(&bytes[..]).unwrap()).unwrap();
/// assert_eq!(parsed, repr);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DipRepr {
    /// Payload protocol identifier.
    pub next_header: u8,
    /// Initial hop limit.
    pub hop_limit: u8,
    /// Modular-parallelism flag.
    pub parallel: bool,
    /// FN triples in execution order.
    pub fns: Vec<FnTriple>,
    /// The FN locations area contents.
    pub locations: Vec<u8>,
}

impl Default for DipRepr {
    fn default() -> Self {
        DipRepr {
            next_header: 0,
            hop_limit: 64,
            parallel: false,
            fns: Vec::new(),
            locations: Vec::new(),
        }
    }
}

impl DipRepr {
    /// Parses a packet view into an owned representation, validating that
    /// every triple's target field lies inside the locations area.
    pub fn parse<T: AsRef<[u8]>>(packet: &DipPacket<T>) -> Result<Self> {
        let hdr = packet.basic_header()?;
        ensure_len(packet.as_ref(), hdr.header_len())?;
        let fns = packet.triples()?;
        let loc_len = usize::from(hdr.param.fn_loc_len);
        for t in &fns {
            if !t.fits(loc_len) {
                return Err(WireError::OutOfBounds { end: t.field_end(), limit: loc_len * 8 });
            }
        }
        Ok(DipRepr {
            next_header: hdr.next_header,
            hop_limit: hdr.hop_limit,
            parallel: hdr.param.parallel,
            fns,
            locations: packet.locations().to_vec(),
        })
    }

    /// Header length this representation will occupy on the wire.
    pub fn header_len(&self) -> usize {
        BASIC_HEADER_LEN + self.fns.len() * FN_TRIPLE_LEN + self.locations.len()
    }

    /// Validates structural invariants: FN count and locations length fit
    /// their wire fields, every field is in bounds.
    pub fn validate(&self) -> Result<()> {
        if self.fns.len() > MAX_FN_NUM {
            return Err(WireError::FieldOverflow("FN number"));
        }
        if self.locations.len() > MAX_FN_LOC_LEN {
            return Err(WireError::FieldOverflow("fn_loc_len"));
        }
        for t in &self.fns {
            if !t.fits(self.locations.len()) {
                return Err(WireError::OutOfBounds {
                    end: t.field_end(),
                    limit: self.locations.len() * 8,
                });
            }
        }
        Ok(())
    }

    /// Emits header into the front of `buf` (which must hold at least
    /// [`DipRepr::header_len`] bytes). The payload is not touched.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        self.validate()?;
        ensure_len(buf, self.header_len())?;
        let hdr = BasicHeader {
            version: crate::DIP_VERSION,
            next_header: self.next_header,
            fn_num: self.fns.len() as u8,
            hop_limit: self.hop_limit,
            param: PacketParameter {
                parallel: self.parallel,
                fn_loc_len: self.locations.len() as u16,
                reserved: 0,
            },
        };
        hdr.emit(buf)?;
        let mut off = BASIC_HEADER_LEN;
        for t in &self.fns {
            t.emit(&mut buf[off..])?;
            off += FN_TRIPLE_LEN;
        }
        buf[off..off + self.locations.len()].copy_from_slice(&self.locations);
        Ok(())
    }

    /// Serializes header + `payload` into a fresh buffer.
    pub fn to_bytes(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut out = vec![0u8; self.header_len() + payload.len()];
        self.emit(&mut out)?;
        out[self.header_len()..].copy_from_slice(payload);
        Ok(out)
    }

    /// Builds a packet padded (with zero payload bytes) or filled to an exact
    /// total size — the Figure 2 experiment sends 128/768/1500-byte packets.
    pub fn to_bytes_padded(&self, total_len: usize) -> Result<Vec<u8>> {
        let hl = self.header_len();
        if total_len < hl {
            return Err(WireError::Truncated { needed: hl, available: total_len });
        }
        let mut out = vec![0u8; total_len];
        self.emit(&mut out)?;
        Ok(out)
    }
}

/// Fluent builder for [`DipRepr`] used by the host construction code.
#[derive(Debug, Default, Clone)]
pub struct DipBuilder {
    repr: DipRepr,
}

impl DipBuilder {
    /// Starts an empty builder (hop limit 64, no FNs).
    pub fn new() -> Self {
        DipBuilder::default()
    }

    /// Sets the next-header protocol number.
    pub fn next_header(mut self, nh: u8) -> Self {
        self.repr.next_header = nh;
        self
    }

    /// Sets the initial hop limit.
    pub fn hop_limit(mut self, hl: u8) -> Self {
        self.repr.hop_limit = hl;
        self
    }

    /// Sets the modular-parallelism flag.
    pub fn parallel(mut self, p: bool) -> Self {
        self.repr.parallel = p;
        self
    }

    /// Appends an FN triple.
    pub fn push_fn(mut self, t: FnTriple) -> Self {
        self.repr.fns.push(t);
        self
    }

    /// Replaces the FN locations area wholesale.
    pub fn locations(mut self, bytes: Vec<u8>) -> Self {
        self.repr.locations = bytes;
        self
    }

    /// Appends `bytes` to the locations area and returns the **bit** offset
    /// at which they were placed — convenient for building triples that point
    /// at the data just appended.
    pub fn append_location(&mut self, bytes: &[u8]) -> u16 {
        let off = (self.repr.locations.len() * 8) as u16;
        self.repr.locations.extend_from_slice(bytes);
        off
    }

    /// Finishes the build, validating the representation.
    pub fn build(self) -> Result<DipRepr> {
        self.repr.validate()?;
        Ok(self.repr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::FnKey;

    fn opt_repr() -> DipRepr {
        DipRepr {
            next_header: 0,
            hop_limit: 64,
            parallel: false,
            fns: vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
                FnTriple::host(0, 544, FnKey::Ver),
            ],
            locations: vec![0u8; 68],
        }
    }

    #[test]
    fn repr_roundtrip() {
        let repr = opt_repr();
        let bytes = repr.to_bytes(b"payload").unwrap();
        assert_eq!(bytes.len(), 98 + 7);
        let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.header_len(), 98);
        assert_eq!(pkt.payload(), b"payload");
        let parsed = DipRepr::parse(&pkt).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn opt_header_is_98_bytes() {
        assert_eq!(opt_repr().header_len(), 98);
    }

    #[test]
    fn checked_rejects_truncated_header() {
        let repr = opt_repr();
        let bytes = repr.to_bytes(&[]).unwrap();
        // Chop inside the locations area.
        assert!(DipPacket::new_checked(&bytes[..50]).is_err());
        // Chop inside the triples.
        assert!(DipPacket::new_checked(&bytes[..10]).is_err());
        assert!(DipPacket::new_checked(&bytes[..]).is_ok());
    }

    #[test]
    fn parse_rejects_field_past_locations() {
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, 128, FnKey::Match128)],
            locations: vec![0u8; 8], // 64 bits, field wants 128
            ..Default::default()
        };
        assert!(repr.validate().is_err());
        assert!(repr.to_bytes(&[]).is_err());
    }

    #[test]
    fn target_field_read_write() {
        let repr = opt_repr();
        let mut bytes = repr.to_bytes(&[]).unwrap();
        let mut pkt = DipPacket::new_unchecked(&mut bytes[..]);
        let mark = FnTriple::router(288, 128, FnKey::Mark);
        let pvf = [0xabu8; 16];
        pkt.set_target_field(&mark, &pvf).unwrap();
        assert_eq!(pkt.target_field(&mark).unwrap(), pvf.to_vec());
        // Bytes 36..52 of the locations area hold the PVF.
        assert_eq!(&pkt.locations()[36..52], &pvf);
        // And the session id field is untouched.
        let parm = FnTriple::router(128, 128, FnKey::Parm);
        assert_eq!(pkt.target_field(&parm).unwrap(), vec![0u8; 16]);
    }

    #[test]
    fn hop_limit_decrement() {
        let mut bytes = opt_repr().to_bytes(&[]).unwrap();
        let mut pkt = DipPacket::new_unchecked(&mut bytes[..]);
        assert_eq!(pkt.decrement_hop_limit(), Some(63));
        pkt.set_hop_limit(0);
        assert_eq!(pkt.decrement_hop_limit(), None);
    }

    #[test]
    fn builder_append_location_returns_bit_offsets() {
        let mut b = DipBuilder::new().next_header(17).hop_limit(32);
        let name_off = b.append_location(&[1, 2, 3, 4]);
        let opt_off = b.append_location(&[0u8; 68]);
        assert_eq!(name_off, 0);
        assert_eq!(opt_off, 32);
        let repr = b
            .push_fn(FnTriple::router(name_off, 32, FnKey::Pit))
            .push_fn(FnTriple::router(opt_off + 128, 128, FnKey::Parm))
            .build()
            .unwrap();
        assert_eq!(repr.locations.len(), 72);
        assert_eq!(repr.header_len(), 6 + 12 + 72);
    }

    #[test]
    fn padded_serialization() {
        let repr = opt_repr();
        let bytes = repr.to_bytes_padded(1500).unwrap();
        assert_eq!(bytes.len(), 1500);
        let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.payload().len(), 1500 - 98);
        // Asking for less than the header is an error.
        assert!(repr.to_bytes_padded(97).is_err());
    }

    #[test]
    fn triple_index_bounds() {
        let bytes = opt_repr().to_bytes(&[]).unwrap();
        let pkt = DipPacket::new_checked(&bytes[..]).unwrap();
        assert!(pkt.triple(3).is_ok());
        assert!(pkt.triple(4).is_err());
        assert_eq!(pkt.triples().unwrap().len(), 4);
    }

    #[test]
    fn unchecked_accessors_are_total_on_truncated_buffers() {
        // Every prefix of a real packet — including ones that lie about
        // their own length — must be readable without panicking.
        let full = opt_repr().to_bytes(b"payload").unwrap();
        for cut in 0..full.len() {
            let mut bytes = full[..cut].to_vec();
            let mut pkt = DipPacket::new_unchecked(&mut bytes[..]);
            let _ = pkt.fn_num();
            let _ = pkt.hop_limit();
            let _ = pkt.param();
            let _ = pkt.header_len();
            let _ = pkt.locations();
            let _ = pkt.payload();
            let _ = pkt.triples();
            let _ = pkt.target_field(&FnTriple::router(288, 128, FnKey::Mark));
            pkt.set_hop_limit(9);
            let _ = pkt.decrement_hop_limit();
            let _ = pkt.locations_mut();
            let _ = pkt.payload_mut();
        }
        // And an empty buffer reads as a zero-FN packet.
        let empty = DipPacket::new_unchecked(&[][..]);
        assert_eq!(empty.fn_num(), 0);
        assert!(empty.locations().is_empty());
        assert!(empty.payload().is_empty());
    }

    #[test]
    fn too_many_fns_rejected() {
        let repr =
            DipRepr { fns: vec![FnTriple::router(0, 0, FnKey::Parm); 256], ..Default::default() };
        assert_eq!(repr.validate(), Err(WireError::FieldOverflow("FN number")));
    }

    #[test]
    fn oversized_locations_rejected() {
        let repr = DipRepr { locations: vec![0u8; 1024], ..Default::default() };
        assert_eq!(repr.validate(), Err(WireError::FieldOverflow("fn_loc_len")));
    }
}

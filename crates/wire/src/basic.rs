//! The 6-byte DIP basic header (§2.2, the grey part of Figure 1).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-------+-------+---------------+---------------+---------------+
//! |version| rsvd  |  next header  |   FN number   |   hop limit   |
//! +-------+-------+---------------+---------------+---------------+
//! |        packet parameter       |  (FN triples follow ...)
//! +-------------------------------+
//! ```
//!
//! The 16-bit packet parameter is, per §2.2: lowest bit = *parallel* flag
//! (operation modules may execute in parallel), next ten bits = length of the
//! FN locations area in bytes, remaining five bits reserved.

use crate::error::{ensure_len, Result, WireError};

/// Length of the basic header in bytes.
pub const BASIC_HEADER_LEN: usize = 6;

/// The DIP version implemented by this crate.
pub const DIP_VERSION: u8 = 1;

/// Byte/bit offsets of the basic header fields.
mod field {
    pub const VERSION: usize = 0; // high nibble of byte 0
    pub const NEXT_HEADER: usize = 1;
    pub const FN_NUM: usize = 2;
    pub const HOP_LIMIT: usize = 3;
    pub const PARAM: core::ops::Range<usize> = 4..6;
}

/// Decoded packet parameter field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketParameter {
    /// Whether the operation modules of this packet may execute in parallel
    /// (modular-parallelism flag, §2.2).
    pub parallel: bool,
    /// Length of the FN locations area, in bytes (10 bits on the wire).
    pub fn_loc_len: u16,
    /// The five reserved bits, kept verbatim for forward compatibility.
    pub reserved: u8,
}

impl PacketParameter {
    /// Encodes into the 16-bit wire value.
    ///
    /// Layout (bit 0 = least significant): bit 0 parallel, bits 1..=10
    /// fn_loc_len, bits 11..=15 reserved.
    pub fn to_wire(self) -> Result<u16> {
        if self.fn_loc_len > 0x3ff {
            return Err(WireError::FieldOverflow("fn_loc_len"));
        }
        if self.reserved > 0x1f {
            return Err(WireError::FieldOverflow("packet parameter reserved bits"));
        }
        Ok(u16::from(self.parallel) | (self.fn_loc_len << 1) | (u16::from(self.reserved) << 11))
    }

    /// Decodes from the 16-bit wire value.
    pub fn from_wire(raw: u16) -> Self {
        PacketParameter {
            parallel: raw & 1 == 1,
            fn_loc_len: (raw >> 1) & 0x3ff,
            reserved: (raw >> 11) as u8,
        }
    }
}

/// Owned representation of the basic header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicHeader {
    /// DIP protocol version; this implementation speaks [`DIP_VERSION`].
    pub version: u8,
    /// Identifies the payload following the DIP header (IANA-style protocol
    /// number; e.g. 17 = UDP). `0` means "no next header".
    pub next_header: u8,
    /// Number of FN triples carried in this packet.
    pub fn_num: u8,
    /// Remaining hops; routers decrement it and drop at zero.
    pub hop_limit: u8,
    /// The packet parameter bits.
    pub param: PacketParameter,
}

impl Default for BasicHeader {
    fn default() -> Self {
        BasicHeader {
            version: DIP_VERSION,
            next_header: 0,
            fn_num: 0,
            hop_limit: 64,
            param: PacketParameter::default(),
        }
    }
}

impl BasicHeader {
    /// Parses a basic header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, BASIC_HEADER_LEN)?;
        let version = buf[field::VERSION] >> 4;
        if version != DIP_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let raw_param = u16::from_be_bytes([buf[field::PARAM.start], buf[field::PARAM.start + 1]]);
        Ok(BasicHeader {
            version,
            next_header: buf[field::NEXT_HEADER],
            fn_num: buf[field::FN_NUM],
            hop_limit: buf[field::HOP_LIMIT],
            param: PacketParameter::from_wire(raw_param),
        })
    }

    /// Emits this header into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        ensure_len(buf, BASIC_HEADER_LEN)?;
        if self.version > 0x0f {
            return Err(WireError::FieldOverflow("version"));
        }
        buf[field::VERSION] = self.version << 4;
        buf[field::NEXT_HEADER] = self.next_header;
        buf[field::FN_NUM] = self.fn_num;
        buf[field::HOP_LIMIT] = self.hop_limit;
        let raw = self.param.to_wire()?;
        buf[field::PARAM].copy_from_slice(&raw.to_be_bytes());
        Ok(())
    }

    /// Total DIP header length implied by this basic header: basic header +
    /// FN triples + FN locations (§2.2: "we can use the FN number and the FN
    /// locations length to derive the DIP header length").
    pub fn header_len(&self) -> usize {
        BASIC_HEADER_LEN
            + usize::from(self.fn_num) * crate::triple::FN_TRIPLE_LEN
            + usize::from(self.param.fn_loc_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = BasicHeader {
            version: DIP_VERSION,
            next_header: 17,
            fn_num: 5,
            hop_limit: 63,
            param: PacketParameter { parallel: true, fn_loc_len: 72, reserved: 0 },
        };
        let mut buf = [0u8; BASIC_HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(BasicHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn header_len_matches_table2_rows() {
        // DIP-32: 2 FNs, 8 bytes of locations -> 26 bytes.
        let dip32 = BasicHeader {
            fn_num: 2,
            param: PacketParameter { fn_loc_len: 8, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(dip32.header_len(), 26);
        // OPT: 4 FNs, 68 bytes -> 98 bytes.
        let opt = BasicHeader {
            fn_num: 4,
            param: PacketParameter { fn_loc_len: 68, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(opt.header_len(), 98);
        // NDN interest: 1 FN, 4 bytes -> 16 bytes.
        let ndn = BasicHeader {
            fn_num: 1,
            param: PacketParameter { fn_loc_len: 4, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(ndn.header_len(), 16);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = [0u8; BASIC_HEADER_LEN];
        BasicHeader::default().emit(&mut buf).unwrap();
        buf[0] = 0x20; // version 2
        assert_eq!(BasicHeader::parse(&buf), Err(WireError::BadVersion(2)));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            BasicHeader::parse(&[0u8; 5]),
            Err(WireError::Truncated { needed: 6, available: 5 })
        ));
    }

    #[test]
    fn param_wire_layout() {
        let p = PacketParameter { parallel: true, fn_loc_len: 0x3ff, reserved: 0x1f };
        let w = p.to_wire().unwrap();
        assert_eq!(w, 0xffff);
        assert_eq!(PacketParameter::from_wire(w), p);

        let p = PacketParameter { parallel: false, fn_loc_len: 1, reserved: 0 };
        assert_eq!(p.to_wire().unwrap(), 0b10);
    }

    #[test]
    fn param_overflow_rejected() {
        let p = PacketParameter { parallel: false, fn_loc_len: 1024, reserved: 0 };
        assert_eq!(p.to_wire(), Err(WireError::FieldOverflow("fn_loc_len")));
    }
}

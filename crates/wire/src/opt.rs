//! The OPT authentication block carried in the DIP FN locations area.
//!
//! OPT \[16\] gives a destination *source authentication* (the packet really
//! came from the claimed source) and *path validation* (it traversed the
//! intended routers, in order). The DIP realization (§3) places a 544-bit
//! block in the FN locations:
//!
//! ```text
//! bits:   0        128       256      288       416       544
//!         +---------+---------+--------+---------+---------+
//!         | DataHash| Session | Times- |   PVF   |   OPV   |
//!         | (128)   | ID (128)| tamp 32| (128)   | (128)   |
//!         +---------+---------+--------+---------+---------+
//! ```
//!
//! which makes the paper's four FN triples line up exactly:
//! `F_parm (128,128)` reads the SessionID, `F_MAC (0,416)` covers everything
//! before the OPV and deposits its result in the 128 bits *after* its target
//! field (the OPV), `F_mark (288,128)` chains the PVF in place, and
//! `F_ver (0,544)` lets the destination check the whole block.
//!
//! The paper evaluates one-hop paths, so a single OPV field suffices; the
//! session layer in `dip-protocols` handles multi-hop chains by folding every
//! hop into the PVF chain (exactly the PVF definition in the OPT paper).

use crate::error::{ensure_len, Result, WireError};

/// Size of the OPT block in bytes (544 bits).
pub const OPT_BLOCK_LEN: usize = 68;
/// Size of the OPT block in bits.
pub const OPT_BLOCK_BITS: u16 = 544;

/// Byte ranges of the block's fields.
pub mod field {
    use core::ops::Range;
    /// 128-bit hash of the packet payload.
    pub const DATA_HASH: Range<usize> = 0..16;
    /// 128-bit session identifier (flow tag from OPT key negotiation).
    pub const SESSION_ID: Range<usize> = 16..32;
    /// 32-bit timestamp (freshness).
    pub const TIMESTAMP: Range<usize> = 32..36;
    /// 128-bit Path Verification Field, MAC-chained by every hop.
    pub const PVF: Range<usize> = 36..52;
    /// 128-bit Origin/Path Validation field (per-hop MAC over [0,416)).
    pub const OPV: Range<usize> = 52..68;
}

/// Bit-level constants for the §3 FN triples.
pub mod triple_bits {
    /// `F_parm` target: the SessionID — `(loc: 128, len: 128, key: 6)`.
    pub const PARM: (u16, u16) = (128, 128);
    /// `F_MAC` target: DataHash‖SessionID‖Timestamp‖PVF — `(loc: 0, len: 416, key: 7)`.
    pub const MAC: (u16, u16) = (0, 416);
    /// `F_mark` target: the PVF — `(loc: 288, len: 128, key: 8)`.
    pub const MARK: (u16, u16) = (288, 128);
    /// `F_ver` target: the whole block — `(loc: 0, len: 544, key: 9)`.
    pub const VER: (u16, u16) = (0, 544);
}

/// Zero-copy view over a 68-byte OPT block (e.g. a slice of the FN
/// locations area).
#[derive(Debug)]
pub struct OptBlock<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> OptBlock<T> {
    /// Wraps a buffer, validating its length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        ensure_len(buffer.as_ref(), OPT_BLOCK_LEN)?;
        Ok(OptBlock { buffer })
    }

    fn get16(&self, r: core::ops::Range<usize>) -> [u8; 16] {
        let mut out = [0u8; 16];
        out.copy_from_slice(&self.buffer.as_ref()[r]);
        out
    }

    /// The payload hash field.
    pub fn data_hash(&self) -> [u8; 16] {
        self.get16(field::DATA_HASH)
    }

    /// The session identifier.
    pub fn session_id(&self) -> [u8; 16] {
        self.get16(field::SESSION_ID)
    }

    /// The timestamp.
    pub fn timestamp(&self) -> u32 {
        let b = &self.buffer.as_ref()[field::TIMESTAMP];
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// The path verification field.
    pub fn pvf(&self) -> [u8; 16] {
        self.get16(field::PVF)
    }

    /// The origin/path validation field.
    pub fn opv(&self) -> [u8; 16] {
        self.get16(field::OPV)
    }

    /// The 52 bytes covered by `F_MAC` (everything before the OPV).
    pub fn mac_coverage(&self) -> &[u8] {
        &self.buffer.as_ref()[0..52]
    }

    /// The raw 68 bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buffer.as_ref()[..OPT_BLOCK_LEN]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> OptBlock<T> {
    /// Sets the payload hash.
    pub fn set_data_hash(&mut self, v: &[u8; 16]) {
        self.buffer.as_mut()[field::DATA_HASH].copy_from_slice(v);
    }

    /// Sets the session identifier.
    pub fn set_session_id(&mut self, v: &[u8; 16]) {
        self.buffer.as_mut()[field::SESSION_ID].copy_from_slice(v);
    }

    /// Sets the timestamp.
    pub fn set_timestamp(&mut self, v: u32) {
        self.buffer.as_mut()[field::TIMESTAMP].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the path verification field.
    pub fn set_pvf(&mut self, v: &[u8; 16]) {
        self.buffer.as_mut()[field::PVF].copy_from_slice(v);
    }

    /// Sets the origin/path validation field.
    pub fn set_opv(&mut self, v: &[u8; 16]) {
        self.buffer.as_mut()[field::OPV].copy_from_slice(v);
    }
}

/// Owned OPT block contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptRepr {
    /// 128-bit hash of the packet payload.
    pub data_hash: [u8; 16],
    /// Session identifier negotiated out of band.
    pub session_id: [u8; 16],
    /// Freshness timestamp.
    pub timestamp: u32,
    /// Path verification field (initialized by the source).
    pub pvf: [u8; 16],
    /// Origin/path validation field (written by `F_MAC` on path).
    pub opv: [u8; 16],
}

impl OptRepr {
    /// Parses from a 68-byte buffer.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        let v = OptBlock::new_checked(buf)?;
        Ok(OptRepr {
            data_hash: v.data_hash(),
            session_id: v.session_id(),
            timestamp: v.timestamp(),
            pvf: v.pvf(),
            opv: v.opv(),
        })
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < OPT_BLOCK_LEN {
            return Err(WireError::Truncated { needed: OPT_BLOCK_LEN, available: buf.len() });
        }
        let mut v = OptBlock { buffer: buf };
        v.set_data_hash(&self.data_hash);
        v.set_session_id(&self.session_id);
        v.set_timestamp(self.timestamp);
        v.set_pvf(&self.pvf);
        v.set_opv(&self.opv);
        Ok(())
    }

    /// Serializes to a fresh 68-byte array.
    pub fn to_bytes(&self) -> [u8; OPT_BLOCK_LEN] {
        let mut out = [0u8; OPT_BLOCK_LEN];
        self.emit(&mut out).expect("array is exactly OPT_BLOCK_LEN");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_544_bits() {
        assert_eq!(OPT_BLOCK_LEN * 8, usize::from(OPT_BLOCK_BITS));
        assert_eq!(field::OPV.end, OPT_BLOCK_LEN);
        // Fields tile the block with no gaps or overlap.
        assert_eq!(field::DATA_HASH.end, field::SESSION_ID.start);
        assert_eq!(field::SESSION_ID.end, field::TIMESTAMP.start);
        assert_eq!(field::TIMESTAMP.end, field::PVF.start);
        assert_eq!(field::PVF.end, field::OPV.start);
    }

    #[test]
    fn triple_bits_match_paper_section3() {
        assert_eq!(triple_bits::PARM, (128, 128));
        assert_eq!(triple_bits::MAC, (0, 416));
        assert_eq!(triple_bits::MARK, (288, 128));
        assert_eq!(triple_bits::VER, (0, 544));
        // And agree with the byte layout.
        assert_eq!(usize::from(triple_bits::PARM.0) / 8, field::SESSION_ID.start);
        assert_eq!(usize::from(triple_bits::MARK.0) / 8, field::PVF.start);
        assert_eq!(usize::from(triple_bits::MAC.1) / 8, field::OPV.start);
    }

    #[test]
    fn repr_roundtrip() {
        let r = OptRepr {
            data_hash: [1; 16],
            session_id: [2; 16],
            timestamp: 0xdead_beef,
            pvf: [3; 16],
            opv: [4; 16],
        };
        let bytes = r.to_bytes();
        assert_eq!(OptRepr::parse(&bytes).unwrap(), r);
    }

    #[test]
    fn view_mac_coverage_excludes_opv() {
        let r = OptRepr { opv: [9; 16], ..Default::default() };
        let bytes = r.to_bytes();
        let v = OptBlock::new_checked(&bytes[..]).unwrap();
        assert_eq!(v.mac_coverage().len(), 52);
        assert!(v.mac_coverage().iter().all(|&b| b != 9));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(OptBlock::new_checked(&[0u8; 67][..]).is_err());
        assert!(OptRepr::parse(&[0u8; 10]).is_err());
    }
}

//! NDN content names.
//!
//! The DIP prototype forwards NDN packets on a **32-bit content name**
//! (§4.1: "we take the 32-bit content name for the packet forwarding with
//! F_FIB and F_PIT"); the general library additionally supports full
//! hierarchical names with a TLV encoding (NDN packet spec style) so the
//! name-prefix FIB can do real longest-prefix matching.

use crate::error::{Result, WireError};

/// A hierarchical NDN name: an ordered list of byte-string components,
/// conventionally written `/a/b/c`.
///
/// ```
/// use dip_wire::ndn::Name;
/// let name = Name::parse("/hotnets/org/dip");
/// assert!(Name::parse("/hotnets").is_prefix_of(&name));
/// assert_eq!(name.to_string(), "/hotnets/org/dip");
/// // The 32-bit compact form used on the prototype dataplane:
/// let compact: u32 = name.compact32();
/// assert_eq!(compact, Name::parse("/hotnets/org/dip").compact32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Name {
    components: Vec<Vec<u8>>,
}

/// TLV type for a name (matches the NDN packet format).
const TLV_NAME: u8 = 0x07;
/// TLV type for a generic name component.
const TLV_COMPONENT: u8 = 0x08;

impl Name {
    /// The empty (root) name `/`.
    pub fn root() -> Self {
        Name::default()
    }

    /// Parses a URI-style name: `/hotnets/org/papers`. A string without
    /// slashes (the paper's example is the single-component name
    /// `hotnets.org`) becomes a one-component name.
    pub fn parse(uri: &str) -> Self {
        let components =
            uri.split('/').filter(|c| !c.is_empty()).map(|c| c.as_bytes().to_vec()).collect();
        Name { components }
    }

    /// Builds a name from raw components.
    pub fn from_components(components: Vec<Vec<u8>>) -> Self {
        Name { components }
    }

    /// The components of this name.
    pub fn components(&self) -> &[Vec<u8>] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root name.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Appends a component, returning the extended name.
    pub fn child(&self, component: &[u8]) -> Name {
        let mut c = self.components.clone();
        c.push(component.to_vec());
        Name { components: c }
    }

    /// The prefix of the first `n` components.
    pub fn prefix(&self, n: usize) -> Name {
        Name { components: self.components[..n.min(self.components.len())].to_vec() }
    }

    /// Whether `self` is a prefix of `other` (every component equal in
    /// order); `/a/b` is a prefix of `/a/b/c` and of itself.
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        self.components.len() <= other.components.len()
            && self.components.iter().zip(&other.components).all(|(a, b)| a == b)
    }

    /// The 32-bit compact content name used on the wire by the DIP
    /// prototype: an FNV-1a hash over the TLV encoding. Stable across runs
    /// and platforms.
    pub fn compact32(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for c in &self.components {
            // Hash a length-prefixed form so component boundaries matter:
            // /ab + /c hashes differently from /a + /bc.
            for b in (c.len() as u32).to_be_bytes() {
                h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
            }
            for &b in c {
                h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
            }
        }
        h
    }

    /// TLV-encodes the name (outer NAME TLV wrapping COMPONENT TLVs).
    /// Component lengths are limited to 255 bytes in this implementation.
    pub fn encode_tlv(&self) -> Result<Vec<u8>> {
        let mut inner = Vec::new();
        for c in &self.components {
            if c.len() > 255 {
                return Err(WireError::FieldOverflow("name component"));
            }
            inner.push(TLV_COMPONENT);
            inner.push(c.len() as u8);
            inner.extend_from_slice(c);
        }
        if inner.len() > 255 {
            return Err(WireError::FieldOverflow("name"));
        }
        let mut out = Vec::with_capacity(inner.len() + 2);
        out.push(TLV_NAME);
        out.push(inner.len() as u8);
        out.extend_from_slice(&inner);
        Ok(out)
    }

    /// Decodes a TLV name from the front of `buf`, returning the name and
    /// the number of bytes consumed.
    pub fn decode_tlv(buf: &[u8]) -> Result<(Name, usize)> {
        if buf.len() < 2 {
            return Err(WireError::Truncated { needed: 2, available: buf.len() });
        }
        if buf[0] != TLV_NAME {
            return Err(WireError::Malformed("expected NAME TLV"));
        }
        let total = usize::from(buf[1]);
        if buf.len() < 2 + total {
            return Err(WireError::Truncated { needed: 2 + total, available: buf.len() });
        }
        let mut components = Vec::new();
        let mut off = 2;
        let end = 2 + total;
        while off < end {
            if end - off < 2 {
                return Err(WireError::Malformed("dangling component header"));
            }
            if buf[off] != TLV_COMPONENT {
                return Err(WireError::Malformed("expected COMPONENT TLV"));
            }
            let clen = usize::from(buf[off + 1]);
            if off + 2 + clen > end {
                return Err(WireError::Malformed("component overruns name"));
            }
            components.push(buf[off + 2..off + 2 + clen].to_vec());
            off += 2 + clen;
        }
        Ok((Name { components }, end))
    }
}

impl core::fmt::Display for Name {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in &self.components {
            write!(f, "/")?;
            for &b in c {
                if b.is_ascii_graphic() {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "%{b:02x}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = Name::parse("/hotnets/org/papers");
        assert_eq!(n.len(), 3);
        assert_eq!(n.to_string(), "/hotnets/org/papers");
        assert_eq!(Name::parse("hotnets.org").len(), 1);
        assert_eq!(Name::parse("").to_string(), "/");
        // Redundant slashes collapse.
        assert_eq!(Name::parse("//a///b/"), Name::parse("/a/b"));
    }

    #[test]
    fn prefix_relation() {
        let a = Name::parse("/a/b");
        let b = Name::parse("/a/b/c");
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(Name::root().is_prefix_of(&a));
        assert!(!Name::parse("/a/x").is_prefix_of(&b));
    }

    #[test]
    fn compact32_is_stable_and_boundary_sensitive() {
        let n = Name::parse("hotnets.org");
        assert_eq!(n.compact32(), Name::parse("hotnets.org").compact32());
        assert_ne!(Name::parse("/ab/c").compact32(), Name::parse("/a/bc").compact32());
        assert_ne!(Name::parse("/a").compact32(), Name::parse("/a/").child(b"").compact32());
    }

    #[test]
    fn tlv_roundtrip() {
        let n = Name::parse("/hotnets/org");
        let enc = n.encode_tlv().unwrap();
        assert_eq!(enc[0], TLV_NAME);
        let (dec, used) = Name::decode_tlv(&enc).unwrap();
        assert_eq!(dec, n);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn tlv_roundtrip_with_binary_components() {
        let n = Name::from_components(vec![vec![0, 1, 255], vec![]]);
        let enc = n.encode_tlv().unwrap();
        let (dec, _) = Name::decode_tlv(&enc).unwrap();
        assert_eq!(dec, n);
    }

    #[test]
    fn tlv_rejects_garbage() {
        assert!(Name::decode_tlv(&[0x09, 0]).is_err());
        assert!(Name::decode_tlv(&[0x07]).is_err());
        assert!(Name::decode_tlv(&[0x07, 4, 0x08, 9, 1, 2]).is_err());
        // Wrong inner type.
        assert!(Name::decode_tlv(&[0x07, 3, 0x09, 1, 0]).is_err());
    }

    #[test]
    fn child_and_prefix() {
        let n = Name::parse("/a").child(b"b");
        assert_eq!(n, Name::parse("/a/b"));
        assert_eq!(n.prefix(1), Name::parse("/a"));
        assert_eq!(n.prefix(9), n);
    }

    #[test]
    fn display_escapes_non_graphic() {
        let n = Name::from_components(vec![vec![0x00, b'a']]);
        assert_eq!(n.to_string(), "/%00a");
    }
}

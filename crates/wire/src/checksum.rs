//! The Internet checksum (RFC 1071), used by the IPv4 baseline header.

/// Computes the 16-bit one's-complement sum of `data` (the "Internet
/// checksum"), returning the value ready to be stored in a checksum field.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// One's-complement sum of 16-bit big-endian words, folding carries.
fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verifies a buffer whose checksum field is already populated: the folded
/// sum over the whole buffer must be `0xffff`.
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
    }

    #[test]
    fn verify_roundtrip() {
        let mut pkt = vec![0x45, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0, 0];
        pkt.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&pkt);
        pkt[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&pkt));
        pkt[0] ^= 0x01;
        assert!(!verify(&pkt));
    }

    #[test]
    fn all_zero_checksum() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }
}

//! The Internet checksum (RFC 1071), used by the IPv4 baseline header.

/// Computes the 16-bit one's-complement sum of `data` (the "Internet
/// checksum"), returning the value ready to be stored in a checksum field.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// One's-complement sum of 16-bit big-endian words, folding carries.
fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verifies a buffer whose checksum field is already populated: the folded
/// sum over the whole buffer must be `0xffff`.
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
    }

    #[test]
    fn verify_roundtrip() {
        let mut pkt = vec![0x45, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0, 0];
        pkt.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&pkt);
        pkt[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&pkt));
        pkt[0] ^= 0x01;
        assert!(!verify(&pkt));
    }

    #[test]
    fn all_zero_checksum() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn data_summing_to_all_ones_stores_zero_and_verifies() {
        // Degenerate case on the low end: when the data words fold to
        // 0xffff, the stored checksum is 0x0000 — and that buffer must
        // still verify (0x0000 in the field adds nothing to the sum).
        let mut pkt = [0xff, 0xff, 0x00, 0x00];
        assert_eq!(internet_checksum(&pkt), 0x0000);
        pkt[2..4].copy_from_slice(&0u16.to_be_bytes());
        assert!(verify(&pkt));
    }

    #[test]
    fn all_zero_data_stores_all_ones_and_verifies() {
        // Degenerate case on the high end: all-zero data folds to 0, so
        // the stored checksum is 0xffff — the one's-complement "negative
        // zero". The filled buffer must verify.
        let mut pkt = [0u8; 20];
        assert_eq!(internet_checksum(&pkt), 0xffff);
        pkt[10..12].copy_from_slice(&0xffffu16.to_be_bytes());
        assert!(verify(&pkt));
    }

    #[test]
    fn odd_length_verify_roundtrip() {
        // A buffer whose length is odd: the final byte pads with an
        // implied zero. Fill-verify must hold, and flipping the trailing
        // (pad-adjacent) byte must break it.
        let mut pkt: Vec<u8> = (0..21u8).map(|i| i.wrapping_mul(37)).collect();
        pkt[10..12].fill(0);
        let ck = internet_checksum(&pkt);
        pkt[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&pkt));
        let last = pkt.len() - 1;
        pkt[last] ^= 0x80;
        assert!(!verify(&pkt), "corrupting the odd trailing byte must be detected");
    }
}

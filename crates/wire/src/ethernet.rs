//! Ethernet II framing — the link layer under DIP.
//!
//! The narrow-waist story needs a floor: DIP packets ride in Ethernet
//! frames with a dedicated EtherType (we use `0x88B5`, the IEEE
//! experimental/local value, as real prototypes do), next to legacy
//! `0x0800`/`0x86DD` traffic. The border router scenarios (§2.4) switch
//! between these EtherTypes without touching the L2 header.

use crate::error::{ensure_len, Result, WireError};

/// Length of an Ethernet II header.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType carrying DIP packets (IEEE experimental/local 1).
pub const ETHERTYPE_DIP: u16 = 0x88B5;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct EthernetAddr(pub [u8; 6]);

impl EthernetAddr {
    /// The broadcast address.
    pub const BROADCAST: EthernetAddr = EthernetAddr([0xff; 6]);

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether this is a multicast (group) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is a locally administered address.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl core::fmt::Display for EthernetAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Owned representation of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Destination MAC.
    pub dst: EthernetAddr,
    /// Source MAC.
    pub src: EthernetAddr,
    /// Payload EtherType.
    pub ethertype: u16,
}

impl EthernetRepr {
    /// Parses a frame header.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, ETHERNET_HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]);
        if ethertype < 0x0600 {
            return Err(WireError::Malformed("802.3 length field, not an EtherType"));
        }
        Ok(EthernetRepr { dst: EthernetAddr(dst), src: EthernetAddr(src), ethertype })
    }

    /// Emits the header into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        ensure_len(buf, ETHERNET_HEADER_LEN)?;
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        Ok(())
    }

    /// Serializes header + payload.
    pub fn to_bytes(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut out = vec![0u8; ETHERNET_HEADER_LEN + payload.len()];
        self.emit(&mut out)?;
        out[ETHERNET_HEADER_LEN..].copy_from_slice(payload);
        Ok(out)
    }
}

/// Frames a DIP packet for transmission on an Ethernet segment.
pub fn frame_dip(dst: EthernetAddr, src: EthernetAddr, dip_packet: &[u8]) -> Result<Vec<u8>> {
    crate::DipPacket::new_checked(dip_packet)?;
    EthernetRepr { dst, src, ethertype: ETHERTYPE_DIP }.to_bytes(dip_packet)
}

/// Unframes a received Ethernet frame, returning the inner DIP packet when
/// the EtherType says DIP (validated), or `None` for other protocols.
pub fn unframe_dip(frame: &[u8]) -> Result<Option<Vec<u8>>> {
    let hdr = EthernetRepr::parse(frame)?;
    if hdr.ethertype != ETHERTYPE_DIP {
        return Ok(None);
    }
    let inner = &frame[ETHERNET_HEADER_LEN..];
    crate::DipPacket::new_checked(inner)?;
    Ok(Some(inner.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DipRepr;
    use crate::triple::{FnKey, FnTriple};

    fn mac(tail: u8) -> EthernetAddr {
        EthernetAddr([0x02, 0, 0, 0, 0, tail])
    }

    fn dip_pkt() -> Vec<u8> {
        DipRepr {
            fns: vec![FnTriple::router(0, 32, FnKey::Match32)],
            locations: vec![10, 0, 0, 1],
            ..Default::default()
        }
        .to_bytes(b"x")
        .unwrap()
    }

    #[test]
    fn header_roundtrip() {
        let hdr = EthernetRepr { dst: mac(2), src: mac(1), ethertype: ETHERTYPE_DIP };
        let bytes = hdr.to_bytes(b"payload").unwrap();
        assert_eq!(bytes.len(), 14 + 7);
        assert_eq!(EthernetRepr::parse(&bytes).unwrap(), hdr);
    }

    #[test]
    fn frame_unframe_dip() {
        let inner = dip_pkt();
        let frame = frame_dip(mac(2), mac(1), &inner).unwrap();
        assert_eq!(unframe_dip(&frame).unwrap(), Some(inner));
    }

    #[test]
    fn non_dip_ethertype_passes_through_as_none() {
        let frame = EthernetRepr { dst: mac(2), src: mac(1), ethertype: ETHERTYPE_IPV4 }
            .to_bytes(&[0x45, 0, 0, 20])
            .unwrap();
        assert_eq!(unframe_dip(&frame).unwrap(), None);
    }

    #[test]
    fn dip_ethertype_with_garbage_inner_errors() {
        let frame = EthernetRepr { dst: mac(2), src: mac(1), ethertype: ETHERTYPE_DIP }
            .to_bytes(&[0xff; 4])
            .unwrap();
        assert!(unframe_dip(&frame).is_err());
    }

    #[test]
    fn rejects_8023_length_field() {
        let mut frame = EthernetRepr { dst: mac(2), src: mac(1), ethertype: ETHERTYPE_DIP }
            .to_bytes(&[])
            .unwrap();
        frame[12..14].copy_from_slice(&100u16.to_be_bytes());
        assert!(EthernetRepr::parse(&frame).is_err());
    }

    #[test]
    fn address_classification() {
        assert!(EthernetAddr::BROADCAST.is_broadcast());
        assert!(EthernetAddr::BROADCAST.is_multicast());
        assert!(EthernetAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!mac(1).is_multicast());
        assert!(mac(1).is_local());
        assert_eq!(mac(1).to_string(), "02:00:00:00:00:01");
    }

    #[test]
    fn frame_refuses_invalid_dip() {
        assert!(frame_dip(mac(2), mac(1), &[0u8; 3]).is_err());
    }
}

//! Human-readable packet dissection (the `dipdump` backend).
//!
//! Renders a DIP packet the way tcpdump renders IP: one summary line plus
//! per-FN detail, decoding known location layouts (addresses, compact
//! names, the OPT block, XIA DAGs) where the FN chain identifies them.

use crate::packet::DipPacket;
use crate::triple::{FnKey, FnTriple};
use crate::{opt, xia};
use std::fmt::Write;

/// Dissects a packet into a multi-line description. Never fails: malformed
/// packets produce a diagnostic line instead.
pub fn dissect(bytes: &[u8]) -> String {
    let mut out = String::new();
    let pkt = match DipPacket::new_checked(bytes) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(out, "malformed DIP packet ({e}); {} raw bytes", bytes.len());
            return out;
        }
    };
    let hdr = match pkt.basic_header() {
        Ok(h) => h,
        Err(e) => {
            let _ = writeln!(out, "bad basic header ({e})");
            return out;
        }
    };
    let _ = writeln!(
        out,
        "DIP v{} len {} (hdr {} + payload {}) hop_limit {} next_header {}{}",
        hdr.version,
        pkt.total_len(),
        pkt.header_len(),
        pkt.payload().len(),
        hdr.hop_limit,
        hdr.next_header,
        if hdr.param.parallel { " [parallel]" } else { "" },
    );
    let triples = pkt.triples().unwrap_or_default();
    for (i, t) in triples.iter().enumerate() {
        let _ = writeln!(
            out,
            "  FN[{i}] {}{} loc {} len {} — {}",
            t.key.notation(),
            if t.host { " (host)" } else { "" },
            t.field_loc,
            t.field_len,
            describe_field(&pkt, t),
        );
    }
    out
}

fn describe_field<T: AsRef<[u8]>>(pkt: &DipPacket<T>, t: &FnTriple) -> String {
    let Ok(field) = pkt.target_field(t) else {
        return "field out of bounds".into();
    };
    match (t.key, t.field_len) {
        (FnKey::Match32 | FnKey::Source, 32) => {
            format!("addr {}.{}.{}.{}", field[0], field[1], field[2], field[3])
        }
        (FnKey::Match128 | FnKey::Source, 128) => {
            let mut s = String::from("addr ");
            for (i, pair) in field.chunks(2).enumerate() {
                if i > 0 {
                    s.push(':');
                }
                let _ = write!(s, "{:x}", u16::from_be_bytes([pair[0], pair[1]]));
            }
            s
        }
        (FnKey::Fib | FnKey::Pit, 32) => {
            format!(
                "compact name {:#010x}",
                u32::from_be_bytes([field[0], field[1], field[2], field[3]])
            )
        }
        (FnKey::Fib | FnKey::Pit, _) => match crate::ndn::Name::decode_tlv(&field) {
            Ok((name, _)) => format!("name {name}"),
            Err(_) => "undecodable name".into(),
        },
        (FnKey::Ver, opt::OPT_BLOCK_BITS) => match opt::OptRepr::parse(&field) {
            Ok(block) => format!(
                "OPT block: session {:02x}{:02x}.. ts {} pvf {:02x}{:02x}.. opv {:02x}{:02x}..",
                block.session_id[0],
                block.session_id[1],
                block.timestamp,
                block.pvf[0],
                block.pvf[1],
                block.opv[0],
                block.opv[1],
            ),
            Err(_) => "undecodable OPT block".into(),
        },
        (FnKey::Parm, 128) => {
            format!("session id {:02x}{:02x}{:02x}{:02x}..", field[0], field[1], field[2], field[3])
        }
        (FnKey::Mac, _) => format!("coverage {} bits", t.field_len),
        (FnKey::Mark, 128) => {
            format!("tag {:02x}{:02x}{:02x}{:02x}..", field[0], field[1], field[2], field[3])
        }
        (FnKey::Dag | FnKey::Intent, _) => match xia::Dag::decode(&field) {
            Ok((dag, _)) => {
                let intent = dag
                    .intent()
                    .map(|n| format!("{} {}", n.ty.name(), n.xid))
                    .unwrap_or_else(|| "?".into());
                format!(
                    "DAG {} nodes, last_visited {}, intent {}",
                    dag.nodes.len(),
                    dag.last_visited,
                    intent
                )
            }
            Err(_) => "undecodable DAG".into(),
        },
        (FnKey::Pass, 256) => format!(
            "source {:02x}{:02x}.. label {:02x}{:02x}..",
            field[0], field[1], field[16], field[17]
        ),
        (FnKey::Other(k), _) => format!("custom op {k:#x}, {} bits", t.field_len),
        _ => format!("{} bits", t.field_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DipRepr;

    #[test]
    fn dissects_a_dip32_packet() {
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(0, 32, FnKey::Match32),
                FnTriple::router(32, 32, FnKey::Source),
            ],
            locations: vec![10, 0, 0, 1, 192, 168, 1, 2],
            ..Default::default()
        };
        let s = dissect(&repr.to_bytes(b"pp").unwrap());
        assert!(s.contains("DIP v1"), "{s}");
        assert!(s.contains("F_32_match"), "{s}");
        assert!(s.contains("addr 10.0.0.1"), "{s}");
        assert!(s.contains("addr 192.168.1.2"), "{s}");
        assert!(s.contains("payload 2"), "{s}");
    }

    #[test]
    fn dissects_opt_and_marks_host_fns() {
        let repr = DipRepr {
            fns: vec![
                FnTriple::router(128, 128, FnKey::Parm),
                FnTriple::router(0, 416, FnKey::Mac),
                FnTriple::router(288, 128, FnKey::Mark),
                FnTriple::host(0, 544, FnKey::Ver),
            ],
            locations: vec![0xab; 68],
            ..Default::default()
        };
        let s = dissect(&repr.to_bytes(&[]).unwrap());
        assert!(s.contains("F_ver (host)"), "{s}");
        assert!(s.contains("OPT block"), "{s}");
        assert!(s.contains("coverage 416 bits"), "{s}");
    }

    #[test]
    fn dissects_names_and_dags() {
        use crate::ndn::Name;
        let name = Name::parse("/a/b");
        let tlv = name.encode_tlv().unwrap();
        let bits = (tlv.len() * 8) as u16;
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, bits, FnKey::Fib)],
            locations: tlv,
            ..Default::default()
        };
        let s = dissect(&repr.to_bytes(&[]).unwrap());
        assert!(s.contains("name /a/b"), "{s}");

        let dag = xia::Dag::direct_with_fallback(
            xia::DagNode::sink(xia::XidType::Cid, xia::Xid::derive(b"c")),
            xia::Xid::derive(b"ad"),
            xia::Xid::derive(b"h"),
        )
        .unwrap();
        let enc = dag.encode();
        let bits = (enc.len() * 8) as u16;
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, bits, FnKey::Dag)],
            locations: enc,
            ..Default::default()
        };
        let s = dissect(&repr.to_bytes(&[]).unwrap());
        assert!(s.contains("DAG 3 nodes"), "{s}");
        assert!(s.contains("intent CID"), "{s}");
    }

    #[test]
    fn garbage_is_reported_not_panicked() {
        assert!(dissect(&[0xff; 3]).contains("malformed"));
        assert!(dissect(&[]).contains("malformed"));
    }

    #[test]
    fn custom_keys_render() {
        let repr = DipRepr {
            fns: vec![FnTriple::router(0, 16, FnKey::Other(0x102))],
            locations: vec![1, 2],
            ..Default::default()
        };
        let s = dissect(&repr.to_bytes(&[]).unwrap());
        assert!(s.contains("custom op 0x102"), "{s}");
    }
}

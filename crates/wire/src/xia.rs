//! XIA DAG addresses.
//!
//! XIA \[12\] replaces the destination address with a **directed acyclic
//! graph** of typed identifiers (XIDs). The *intent* is the sink node; when
//! a router cannot route on the intent's principal type it follows
//! *fallback* edges. DIP realizes XIA by putting the encoded DAG in the FN
//! locations area and running `F_DAG` (parse) and `F_intent` (route with
//! fallback) on it (§3).
//!
//! ## Wire encoding
//!
//! ```text
//! +-----------+--------------+-------------------+------------------+
//! | num_nodes | last_visited | src out-edges x4  | nodes (28B each) |
//! |   (1B)    |     (1B)     |      (4B)         |                  |
//! +-----------+--------------+-------------------+------------------+
//! node := xid_type (4B) | xid (20B) | out-edges x4 (4B)
//! ```
//!
//! Edges are node indices; `0xff` means "no edge". Edge order encodes
//! priority: edge 0 is preferred, later edges are fallbacks. `last_visited`
//! records navigation progress (`0xff` = still at the conceptual source) so
//! per-hop processing is stateless, exactly as in XIA.

use crate::error::{ensure_len, Result, WireError};

/// Length of one encoded DAG node.
pub const NODE_LEN: usize = 28;
/// Length of the DAG preamble (num_nodes, last_visited, source edges).
pub const DAG_PREAMBLE_LEN: usize = 6;
/// Sentinel for "no edge" / "at source".
pub const NO_EDGE: u8 = 0xff;
/// Maximum out-degree of a DAG node (as in XIA).
pub const MAX_OUT_EDGES: usize = 4;

/// Principal types defined by XIA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XidType {
    /// Autonomous domain.
    Ad,
    /// Host.
    Hid,
    /// Service.
    Sid,
    /// Content.
    Cid,
    /// 4ID / future principal, kept verbatim.
    Other(u32),
}

impl XidType {
    /// Wire value (matches the XIA prototype's principal numbers).
    pub fn to_wire(self) -> u32 {
        match self {
            XidType::Ad => 0x10,
            XidType::Hid => 0x11,
            XidType::Sid => 0x12,
            XidType::Cid => 0x13,
            XidType::Other(v) => v,
        }
    }

    /// Decodes a wire value.
    pub fn from_wire(v: u32) -> Self {
        match v {
            0x10 => XidType::Ad,
            0x11 => XidType::Hid,
            0x12 => XidType::Sid,
            0x13 => XidType::Cid,
            other => XidType::Other(other),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            XidType::Ad => "AD",
            XidType::Hid => "HID",
            XidType::Sid => "SID",
            XidType::Cid => "CID",
            XidType::Other(_) => "XID",
        }
    }
}

/// A 160-bit XIA identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xid(pub [u8; 20]);

impl Xid {
    /// Derives an XID from arbitrary bytes with a simple stable hash
    /// (FNV-1a folded to 160 bits) — stand-in for the SHA-1-of-key XIDs of
    /// the XIA paper, adequate for routing-table keys.
    pub fn derive(data: &[u8]) -> Self {
        let mut out = [0u8; 20];
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            for &b in data {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h = h.wrapping_add(i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let bytes = h.to_be_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Xid(out)
    }
}

impl core::fmt::Display for Xid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "..")
    }
}

/// One DAG node: a typed identifier plus up to four prioritized out-edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagNode {
    /// Principal type.
    pub ty: XidType,
    /// The identifier.
    pub xid: Xid,
    /// Out-edges as node indices, most-preferred first; `NO_EDGE` = unused.
    pub edges: [u8; MAX_OUT_EDGES],
}

impl DagNode {
    /// A node with no out-edges (a sink).
    pub fn sink(ty: XidType, xid: Xid) -> Self {
        DagNode { ty, xid, edges: [NO_EDGE; MAX_OUT_EDGES] }
    }

    /// A node with the given out-edges.
    pub fn with_edges(ty: XidType, xid: Xid, edges: &[u8]) -> Self {
        let mut e = [NO_EDGE; MAX_OUT_EDGES];
        e[..edges.len()].copy_from_slice(edges);
        DagNode { ty, xid, edges: e }
    }

    /// Iterator over the present out-edges, in priority order.
    pub fn out_edges(&self) -> impl Iterator<Item = u8> + '_ {
        self.edges.iter().copied().filter(|&e| e != NO_EDGE)
    }

    /// Whether this node is a sink (no out-edges) — i.e. an intent candidate.
    pub fn is_sink(&self) -> bool {
        self.edges.iter().all(|&e| e == NO_EDGE)
    }

    fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, NODE_LEN)?;
        let ty = XidType::from_wire(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]));
        let mut xid = [0u8; 20];
        xid.copy_from_slice(&buf[4..24]);
        let mut edges = [NO_EDGE; MAX_OUT_EDGES];
        edges.copy_from_slice(&buf[24..28]);
        Ok(DagNode { ty, xid: Xid(xid), edges })
    }

    fn emit(&self, buf: &mut [u8]) -> Result<()> {
        ensure_len(buf, NODE_LEN)?;
        buf[0..4].copy_from_slice(&self.ty.to_wire().to_be_bytes());
        buf[4..24].copy_from_slice(&self.xid.0);
        buf[24..28].copy_from_slice(&self.edges);
        Ok(())
    }
}

/// An XIA address DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    /// Out-edges of the conceptual source node, priority ordered.
    pub src_edges: [u8; MAX_OUT_EDGES],
    /// Index of the last node successfully visited, or `NO_EDGE` when the
    /// packet is still at the source.
    pub last_visited: u8,
    /// The nodes.
    pub nodes: Vec<DagNode>,
}

impl Dag {
    /// Builds a DAG, validating structure.
    pub fn new(src_edges: &[u8], nodes: Vec<DagNode>) -> Result<Self> {
        let mut e = [NO_EDGE; MAX_OUT_EDGES];
        if src_edges.len() > MAX_OUT_EDGES {
            return Err(WireError::Malformed("too many source edges"));
        }
        e[..src_edges.len()].copy_from_slice(src_edges);
        let dag = Dag { src_edges: e, last_visited: NO_EDGE, nodes };
        dag.validate()?;
        Ok(dag)
    }

    /// The canonical "direct with fallback" destination DAG of the XIA
    /// papers:
    ///
    /// ```text
    /// src ──────────────▶ intent
    ///  └─▶ AD ─▶ HID ──▶ intent   (fallback path)
    /// ```
    ///
    /// Node order: `[intent, AD, HID]`.
    pub fn direct_with_fallback(intent: DagNode, ad: Xid, hid: Xid) -> Result<Dag> {
        let mut intent = intent;
        intent.edges = [NO_EDGE; MAX_OUT_EDGES];
        let nodes = vec![
            intent,
            DagNode::with_edges(XidType::Ad, ad, &[2]),
            DagNode::with_edges(XidType::Hid, hid, &[0]),
        ];
        Dag::new(&[0, 1], nodes)
    }

    /// The intent of the address: the unique sink reachable from the source.
    /// By XIA convention we take the *first* sink in node order.
    pub fn intent(&self) -> Option<&DagNode> {
        self.nodes.iter().find(|n| n.is_sink())
    }

    /// Out-edges to explore from the current position (priority order).
    pub fn current_edges(&self) -> Vec<u8> {
        let edges = if self.last_visited == NO_EDGE {
            &self.src_edges
        } else {
            &self.nodes[usize::from(self.last_visited)].edges
        };
        edges.iter().copied().filter(|&e| e != NO_EDGE).collect()
    }

    /// Structural validation: edge indices in range, no node unreachable
    /// check is performed (cheap per-hop validation only), graph is acyclic.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.len() > usize::from(NO_EDGE) {
            return Err(WireError::Malformed("too many DAG nodes"));
        }
        let n = self.nodes.len() as u8;
        let edge_ok = |e: u8| e == NO_EDGE || e < n;
        if !self.src_edges.iter().copied().all(edge_ok) {
            return Err(WireError::Malformed("source edge out of range"));
        }
        for node in &self.nodes {
            if !node.edges.iter().copied().all(edge_ok) {
                return Err(WireError::Malformed("node edge out of range"));
            }
        }
        if self.last_visited != NO_EDGE && self.last_visited >= n {
            return Err(WireError::Malformed("last_visited out of range"));
        }
        // Cycle check by DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        fn dfs(nodes: &[DagNode], colors: &mut [Color], i: usize) -> bool {
            colors[i] = Color::Grey;
            for e in nodes[i].out_edges() {
                match colors[usize::from(e)] {
                    Color::Grey => return false,
                    Color::White => {
                        if !dfs(nodes, colors, usize::from(e)) {
                            return false;
                        }
                    }
                    Color::Black => {}
                }
            }
            colors[i] = Color::Black;
            true
        }
        let mut colors = vec![Color::White; self.nodes.len()];
        for i in 0..self.nodes.len() {
            if colors[i] == Color::White && !dfs(&self.nodes, &mut colors, i) {
                return Err(WireError::Malformed("DAG contains a cycle"));
            }
        }
        Ok(())
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        DAG_PREAMBLE_LEN + self.nodes.len() * NODE_LEN
    }

    /// Encoded length in **bits**, for use as an FN triple field length.
    pub fn encoded_bits(&self) -> u16 {
        (self.encoded_len() * 8) as u16
    }

    /// Encodes the DAG.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.encoded_len()];
        out[0] = self.nodes.len() as u8;
        out[1] = self.last_visited;
        out[2..6].copy_from_slice(&self.src_edges);
        for (i, node) in self.nodes.iter().enumerate() {
            node.emit(&mut out[DAG_PREAMBLE_LEN + i * NODE_LEN..])
                .expect("buffer sized by encoded_len");
        }
        out
    }

    /// Decodes and validates a DAG from the front of `buf`; returns the DAG
    /// and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Dag, usize)> {
        ensure_len(buf, DAG_PREAMBLE_LEN)?;
        let n = usize::from(buf[0]);
        let total = DAG_PREAMBLE_LEN + n * NODE_LEN;
        ensure_len(buf, total)?;
        let mut src_edges = [NO_EDGE; MAX_OUT_EDGES];
        src_edges.copy_from_slice(&buf[2..6]);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            nodes.push(DagNode::parse(&buf[DAG_PREAMBLE_LEN + i * NODE_LEN..])?);
        }
        let dag = Dag { src_edges, last_visited: buf[1], nodes };
        dag.validate()?;
        Ok((dag, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(tag: &str) -> Xid {
        Xid::derive(tag.as_bytes())
    }

    fn fallback_dag() -> Dag {
        Dag::direct_with_fallback(
            DagNode::sink(XidType::Cid, cid("content")),
            cid("ad1"),
            cid("host1"),
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dag = fallback_dag();
        let enc = dag.encode();
        assert_eq!(enc.len(), 6 + 3 * 28);
        let (dec, used) = Dag::decode(&enc).unwrap();
        assert_eq!(dec, dag);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn intent_is_first_sink() {
        let dag = fallback_dag();
        let intent = dag.intent().unwrap();
        assert_eq!(intent.ty, XidType::Cid);
        assert_eq!(intent.xid, cid("content"));
    }

    #[test]
    fn current_edges_follow_navigation() {
        let mut dag = fallback_dag();
        // At the source: prefer intent (node 0) then AD (node 1).
        assert_eq!(dag.current_edges(), vec![0, 1]);
        dag.last_visited = 1; // moved to the AD
        assert_eq!(dag.current_edges(), vec![2]); // next hop: HID
        dag.last_visited = 2;
        assert_eq!(dag.current_edges(), vec![0]); // then the intent
        dag.last_visited = 0;
        assert!(dag.current_edges().is_empty()); // at the sink
    }

    #[test]
    fn cycle_is_rejected() {
        let n0 = DagNode::with_edges(XidType::Ad, cid("a"), &[1]);
        let n1 = DagNode::with_edges(XidType::Hid, cid("b"), &[0]);
        assert_eq!(Dag::new(&[0], vec![n0, n1]), Err(WireError::Malformed("DAG contains a cycle")));
    }

    #[test]
    fn self_loop_is_rejected() {
        let n0 = DagNode::with_edges(XidType::Ad, cid("a"), &[0]);
        assert!(Dag::new(&[0], vec![n0]).is_err());
    }

    #[test]
    fn out_of_range_edges_rejected() {
        let n0 = DagNode::with_edges(XidType::Ad, cid("a"), &[7]);
        assert!(Dag::new(&[0], vec![n0]).is_err());
        let n1 = DagNode::sink(XidType::Cid, cid("c"));
        assert!(Dag::new(&[9], vec![n1]).is_err());
    }

    #[test]
    fn decode_validates() {
        let mut enc = fallback_dag().encode();
        enc[1] = 77; // bogus last_visited
        assert!(Dag::decode(&enc).is_err());
    }

    #[test]
    fn xid_derive_is_stable_and_distinct() {
        assert_eq!(cid("x"), cid("x"));
        assert_ne!(cid("x"), cid("y"));
    }

    #[test]
    fn xidtype_roundtrip() {
        for t in [XidType::Ad, XidType::Hid, XidType::Sid, XidType::Cid, XidType::Other(0x99)] {
            assert_eq!(XidType::from_wire(t.to_wire()), t);
        }
        assert_eq!(XidType::Ad.name(), "AD");
    }

    #[test]
    fn truncated_decode_fails() {
        let enc = fallback_dag().encode();
        assert!(Dag::decode(&enc[..10]).is_err());
        assert!(Dag::decode(&enc[..enc.len() - 1]).is_err());
    }
}

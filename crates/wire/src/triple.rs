//! FN triples — the blue part of Figure 1.
//!
//! Each Field Operation is specified on the wire by a fixed 6-byte triple:
//!
//! ```text
//! +----------------+----------------+----------------+
//! | field location | field length   |T| operation key|
//! |    (16 bits)   |   (16 bits)    |1|   (15 bits)  |
//! +----------------+----------------+----------------+
//! ```
//!
//! *Field location* is the **bit** offset of the target field inside the FN
//! locations area, *field length* its width in **bits**, and the operation
//! key names the module to run. The most significant bit of the key word is
//! the *tag* bit (§2.2): `1` means the operation is performed by the host,
//! `0` by routers.

use crate::error::{ensure_len, Result, WireError};

/// Length of one FN triple on the wire, in bytes.
pub const FN_TRIPLE_LEN: usize = 6;

/// Well-known operation keys (Table 1 of the paper, plus `Pass` from §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FnKey {
    /// 32-bit address match (`F_32_match`, key 1).
    Match32,
    /// 128-bit address match (`F_128_match`, key 2).
    Match128,
    /// Source address (`F_source`, key 3).
    Source,
    /// Forwarding information base match (`F_FIB`, key 4).
    Fib,
    /// Pending interest table match (`F_PIT`, key 5).
    Pit,
    /// Load parameters / derive dynamic key (`F_parm`, key 6).
    Parm,
    /// Calculate MAC (`F_MAC`, key 7).
    Mac,
    /// Mark update (`F_mark`, key 8).
    Mark,
    /// Destination verification (`F_ver`, key 9).
    Ver,
    /// Parse the directed acyclic graph (`F_DAG`, key 10).
    Dag,
    /// Handle intent (`F_intent`, key 11).
    Intent,
    /// Source label verification (`F_pass`, key 12; §2.4 security).
    Pass,
    /// Any key this implementation has no name for.
    Other(u16),
}

impl FnKey {
    /// Wire value of this key (15 bits, tag excluded).
    pub fn to_wire(self) -> u16 {
        match self {
            FnKey::Match32 => 1,
            FnKey::Match128 => 2,
            FnKey::Source => 3,
            FnKey::Fib => 4,
            FnKey::Pit => 5,
            FnKey::Parm => 6,
            FnKey::Mac => 7,
            FnKey::Mark => 8,
            FnKey::Ver => 9,
            FnKey::Dag => 10,
            FnKey::Intent => 11,
            FnKey::Pass => 12,
            FnKey::Other(k) => k,
        }
    }

    /// Decodes a 15-bit wire key.
    pub fn from_wire(raw: u16) -> Self {
        match raw {
            1 => FnKey::Match32,
            2 => FnKey::Match128,
            3 => FnKey::Source,
            4 => FnKey::Fib,
            5 => FnKey::Pit,
            6 => FnKey::Parm,
            7 => FnKey::Mac,
            8 => FnKey::Mark,
            9 => FnKey::Ver,
            10 => FnKey::Dag,
            11 => FnKey::Intent,
            12 => FnKey::Pass,
            k => FnKey::Other(k),
        }
    }

    /// Paper notation for the operation, e.g. `F_FIB`.
    pub fn notation(self) -> &'static str {
        match self {
            FnKey::Match32 => "F_32_match",
            FnKey::Match128 => "F_128_match",
            FnKey::Source => "F_source",
            FnKey::Fib => "F_FIB",
            FnKey::Pit => "F_PIT",
            FnKey::Parm => "F_parm",
            FnKey::Mac => "F_MAC",
            FnKey::Mark => "F_mark",
            FnKey::Ver => "F_ver",
            FnKey::Dag => "F_DAG",
            FnKey::Intent => "F_intent",
            FnKey::Pass => "F_pass",
            FnKey::Other(_) => "F_?",
        }
    }

    /// Human description matching Table 1.
    pub fn description(self) -> &'static str {
        match self {
            FnKey::Match32 => "32-bit address match",
            FnKey::Match128 => "128-bit address match",
            FnKey::Source => "source address",
            FnKey::Fib => "forwarding information base match",
            FnKey::Pit => "pending interest table match",
            FnKey::Parm => "load parameters",
            FnKey::Mac => "calculate MAC",
            FnKey::Mark => "mark update",
            FnKey::Ver => "destination verification",
            FnKey::Dag => "parse the directed acyclic graph",
            FnKey::Intent => "handle intent",
            FnKey::Pass => "source label verification",
            FnKey::Other(_) => "unknown operation",
        }
    }

    /// All keys defined by the paper (Table 1) in key order.
    pub fn table1() -> [FnKey; 11] {
        [
            FnKey::Match32,
            FnKey::Match128,
            FnKey::Source,
            FnKey::Fib,
            FnKey::Pit,
            FnKey::Parm,
            FnKey::Mac,
            FnKey::Mark,
            FnKey::Ver,
            FnKey::Dag,
            FnKey::Intent,
        ]
    }
}

/// One FN triple: target field plus operation, the atom of DIP (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FnTriple {
    /// Bit offset of the target field inside the FN locations area.
    pub field_loc: u16,
    /// Width of the target field, in bits.
    pub field_len: u16,
    /// Which operation module to apply.
    pub key: FnKey,
    /// Tag bit: `true` = host operation (routers skip it, Algorithm 1 line 5).
    pub host: bool,
}

impl FnTriple {
    /// A router-executed triple, the common case.
    pub const fn router(field_loc: u16, field_len: u16, key: FnKey) -> Self {
        FnTriple { field_loc, field_len, key, host: false }
    }

    /// A host-executed triple (tag bit set).
    pub const fn host(field_loc: u16, field_len: u16, key: FnKey) -> Self {
        FnTriple { field_loc, field_len, key, host: true }
    }

    /// Parses one triple from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, FN_TRIPLE_LEN)?;
        let field_loc = u16::from_be_bytes([buf[0], buf[1]]);
        let field_len = u16::from_be_bytes([buf[2], buf[3]]);
        let raw_key = u16::from_be_bytes([buf[4], buf[5]]);
        Ok(FnTriple {
            field_loc,
            field_len,
            key: FnKey::from_wire(raw_key & 0x7fff),
            host: raw_key & 0x8000 != 0,
        })
    }

    /// Emits this triple into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        ensure_len(buf, FN_TRIPLE_LEN)?;
        let raw = self.key.to_wire();
        if raw > 0x7fff {
            return Err(WireError::FieldOverflow("operation key"));
        }
        buf[0..2].copy_from_slice(&self.field_loc.to_be_bytes());
        buf[2..4].copy_from_slice(&self.field_len.to_be_bytes());
        let keyword = raw | if self.host { 0x8000 } else { 0 };
        buf[4..6].copy_from_slice(&keyword.to_be_bytes());
        Ok(())
    }

    /// Last bit (exclusive) of the target field.
    pub fn field_end(&self) -> usize {
        usize::from(self.field_loc) + usize::from(self.field_len)
    }

    /// Whether this triple's target field fits in a locations area of
    /// `loc_len` bytes.
    pub fn fits(&self, loc_len: usize) -> bool {
        self.field_end() <= loc_len * 8
    }

    /// Whether two triples' target fields overlap (used by the parallel
    /// execution planner: overlapping operations must run sequentially).
    pub fn overlaps(&self, other: &FnTriple) -> bool {
        if self.field_len == 0 || other.field_len == 0 {
            return false;
        }
        let (a0, a1) = (usize::from(self.field_loc), self.field_end());
        let (b0, b1) = (usize::from(other.field_loc), other.field_end());
        a0 < b1 && b0 < a1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_table1_keys() {
        let mut buf = [0u8; FN_TRIPLE_LEN];
        for key in FnKey::table1() {
            let t = FnTriple::router(288, 128, key);
            t.emit(&mut buf).unwrap();
            assert_eq!(FnTriple::parse(&buf).unwrap(), t);
        }
    }

    #[test]
    fn key_wire_values_match_table1() {
        assert_eq!(FnKey::Match32.to_wire(), 1);
        assert_eq!(FnKey::Match128.to_wire(), 2);
        assert_eq!(FnKey::Source.to_wire(), 3);
        assert_eq!(FnKey::Fib.to_wire(), 4);
        assert_eq!(FnKey::Pit.to_wire(), 5);
        assert_eq!(FnKey::Parm.to_wire(), 6);
        assert_eq!(FnKey::Mac.to_wire(), 7);
        assert_eq!(FnKey::Mark.to_wire(), 8);
        assert_eq!(FnKey::Ver.to_wire(), 9);
        assert_eq!(FnKey::Dag.to_wire(), 10);
        assert_eq!(FnKey::Intent.to_wire(), 11);
        assert_eq!(FnKey::Pass.to_wire(), 12);
    }

    #[test]
    fn tag_bit_is_msb() {
        let mut buf = [0u8; FN_TRIPLE_LEN];
        FnTriple::host(0, 544, FnKey::Ver).emit(&mut buf).unwrap();
        assert_eq!(buf[4] & 0x80, 0x80);
        assert_eq!(u16::from_be_bytes([buf[4], buf[5]]) & 0x7fff, 9);
        let parsed = FnTriple::parse(&buf).unwrap();
        assert!(parsed.host);
        assert_eq!(parsed.key, FnKey::Ver);
    }

    #[test]
    fn unknown_keys_survive_roundtrip() {
        let mut buf = [0u8; FN_TRIPLE_LEN];
        let t = FnTriple::router(10, 20, FnKey::Other(0x1234));
        t.emit(&mut buf).unwrap();
        assert_eq!(FnTriple::parse(&buf).unwrap(), t);
    }

    #[test]
    fn oversized_key_rejected() {
        let mut buf = [0u8; FN_TRIPLE_LEN];
        let t = FnTriple::router(0, 0, FnKey::Other(0x8000));
        assert_eq!(t.emit(&mut buf), Err(WireError::FieldOverflow("operation key")));
    }

    #[test]
    fn overlap_detection() {
        let mac = FnTriple::router(0, 416, FnKey::Mac);
        let mark = FnTriple::router(288, 128, FnKey::Mark);
        let opv = FnTriple::router(416, 128, FnKey::Other(99));
        assert!(mac.overlaps(&mark));
        assert!(!mac.overlaps(&opv));
        assert!(!mark.overlaps(&opv));
        // A zero-length field overlaps nothing.
        let empty = FnTriple::router(100, 0, FnKey::Parm);
        assert!(!empty.overlaps(&mac));
    }

    #[test]
    fn fits_checks_loc_area() {
        let ver = FnTriple::host(0, 544, FnKey::Ver);
        assert!(ver.fits(68));
        assert!(!ver.fits(67));
    }

    #[test]
    fn paper_section3_opt_triples() {
        // §3: (loc:128,len:128,key:6), (loc:0,len:416,key:7),
        //     (loc:288,len:128,key:8), (loc:0,len:544,key:9)
        let parm = FnTriple::router(128, 128, FnKey::Parm);
        let mac = FnTriple::router(0, 416, FnKey::Mac);
        let mark = FnTriple::router(288, 128, FnKey::Mark);
        let ver = FnTriple::host(0, 544, FnKey::Ver);
        for t in [parm, mac, mark, ver] {
            assert!(t.fits(68), "OPT triple {t:?} must fit the 544-bit block");
        }
    }
}

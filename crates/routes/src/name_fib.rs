//! Hash-compacted NDN name FIB.
//!
//! The trie-based [`dip_tables::fib::NameFib`] is the oracle; this is
//! the scale representation: one flat hash map keyed by `(depth,
//! 64-bit prefix hash)`. A longest-prefix lookup computes the rolling
//! prefix hashes of the queried name in a single pass (FNV-1a over
//! length-prefixed components, so `/ab/c` and `/a/bc` never merge) and
//! probes deepest-first — at most `max_depth` map probes, no pointer
//! chasing, and the map itself is `Arc`-shared between table versions
//! so a delta clones it only when a name actually changed.
//!
//! The 32-bit compact index (`Name::compact32`, the prototype's wire
//! fast path) is mirrored next to it, exactly as the oracle mirrors it.

use dip_tables::fib::NextHop;
use dip_wire::ndn::Name;
use std::collections::HashMap;
use std::sync::Arc;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one length-prefixed component into a rolling FNV-1a hash.
fn fold(mut h: u64, component: &[u8]) -> u64 {
    for b in (component.len() as u32).to_be_bytes().into_iter().chain(component.iter().copied()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// The `(depth, hash)` key of a full name (all its components).
pub(crate) fn name_key(name: &Name) -> (u8, u64) {
    let mut h = FNV64_OFFSET;
    for c in name.components() {
        h = fold(h, c);
    }
    (name.len() as u8, h)
}

/// A compiled, immutable, cheaply-clonable name FIB.
#[derive(Clone, Debug, Default)]
pub struct CompactNameFib {
    by_depth: Arc<HashMap<(u8, u64), NextHop>>,
    compact: Arc<HashMap<u32, NextHop>>,
    max_depth: u8,
    len: usize,
}

impl CompactNameFib {
    /// Compiles the FIB from the authoritative name map (full-rebuild
    /// path).
    pub(crate) fn build_from(names: &std::collections::BTreeMap<Vec<Vec<u8>>, NextHop>) -> Self {
        let mut by_depth = HashMap::with_capacity(names.len());
        let mut compact = HashMap::with_capacity(names.len());
        let mut max_depth = 0u8;
        for (components, &nh) in names {
            let name = Name::from_components(components.clone());
            by_depth.insert(name_key(&name), nh);
            compact.insert(name.compact32(), nh);
            max_depth = max_depth.max(name.len() as u8);
        }
        CompactNameFib {
            by_depth: Arc::new(by_depth),
            compact: Arc::new(compact),
            max_depth,
            len: names.len(),
        }
    }

    /// Applies name ops copy-on-write: clones the maps once and edits
    /// only the changed entries. `new_len` is the authoritative count
    /// after the ops.
    pub(crate) fn apply_delta(&self, ops: &[(Name, Option<NextHop>)], new_len: usize) -> Self {
        let mut by_depth = (*self.by_depth).clone();
        let mut compact = (*self.compact).clone();
        let mut max_depth = self.max_depth;
        for (name, action) in ops {
            match action {
                Some(nh) => {
                    by_depth.insert(name_key(name), *nh);
                    compact.insert(name.compact32(), *nh);
                    // max_depth only grows on withdraws-then-readds; a
                    // stale upper bound costs probes, never correctness.
                    max_depth = max_depth.max(name.len() as u8);
                }
                None => {
                    by_depth.remove(&name_key(name));
                    compact.remove(&name.compact32());
                }
            }
        }
        CompactNameFib {
            by_depth: Arc::new(by_depth),
            compact: Arc::new(compact),
            max_depth,
            len: new_len,
        }
    }

    /// Longest-prefix match on a full name: deepest-first probes over
    /// the rolling prefix hashes.
    pub fn lookup(&self, name: &Name) -> Option<NextHop> {
        let components = name.components();
        let depth = components.len().min(self.max_depth as usize);
        let mut hashes = Vec::with_capacity(depth);
        let mut h = FNV64_OFFSET;
        for c in components.iter().take(depth) {
            h = fold(h, c);
            hashes.push(h);
        }
        (1..=depth).rev().find_map(|d| self.by_depth.get(&(d as u8, hashes[d - 1])).copied())
    }

    /// Exact match on a 32-bit compact name.
    pub fn lookup_compact(&self, compact: u32) -> Option<NextHop> {
        self.compact.get(&compact).copied()
    }

    /// Number of installed name routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no name routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn table(entries: &[(&str, u32)]) -> CompactNameFib {
        let mut names = BTreeMap::new();
        for &(text, port) in entries {
            names.insert(Name::parse(text).components().to_vec(), NextHop::port(port));
        }
        CompactNameFib::build_from(&names)
    }

    #[test]
    fn longest_prefix_wins_and_misses_are_none() {
        let fib = table(&[("/wl/cat", 1), ("/wl/cat/5", 2), ("/syn/aa/bb", 3)]);
        assert_eq!(fib.lookup(&Name::parse("/wl/cat/5")), Some(NextHop::port(2)));
        assert_eq!(fib.lookup(&Name::parse("/wl/cat/6")), Some(NextHop::port(1)));
        assert_eq!(fib.lookup(&Name::parse("/wl/cat/5/extra")), Some(NextHop::port(2)));
        assert_eq!(fib.lookup(&Name::parse("/syn/aa")), None);
        assert_eq!(fib.lookup(&Name::parse("/other")), None);
        assert_eq!(
            fib.lookup_compact(Name::parse("/syn/aa/bb").compact32()),
            Some(NextHop::port(3))
        );
        assert_eq!(fib.len(), 3);
    }

    #[test]
    fn component_boundaries_do_not_merge() {
        let fib = table(&[("/ab/c", 1)]);
        assert_eq!(fib.lookup(&Name::parse("/a/bc")), None);
        assert_eq!(fib.lookup(&Name::parse("/ab/c")), Some(NextHop::port(1)));
    }

    #[test]
    fn delta_matches_rebuild() {
        let fib = table(&[("/a/b", 1), ("/a/b/c", 2)]);
        let ops =
            vec![(Name::parse("/a/b"), None), (Name::parse("/x/y/z/w"), Some(NextHop::port(9)))];
        let applied = fib.apply_delta(&ops, 2);
        let mut names = BTreeMap::new();
        names.insert(Name::parse("/a/b/c").components().to_vec(), NextHop::port(2));
        names.insert(Name::parse("/x/y/z/w").components().to_vec(), NextHop::port(9));
        let rebuilt = CompactNameFib::build_from(&names);
        for probe in ["/a/b", "/a/b/c", "/a/b/c/d", "/x/y/z/w", "/x/y"] {
            assert_eq!(applied.lookup(&Name::parse(probe)), rebuilt.lookup(&Name::parse(probe)));
        }
        assert_eq!(applied.len(), rebuilt.len());
    }
}

//! Deterministic *distinct* synthetic route generators.
//!
//! `Fib::populate_synthetic` draws with replacement, so a million
//! draws collide down to ~650 k distinct prefixes — fine for seeding a
//! workload table, useless for proving "this structure holds ≥1M
//! routes". These generators loop until exactly `n` distinct
//! `(prefix, len)` pairs exist; identical `(n, seed)` always produce
//! the identical route list, in insertion order.

use dip_crypto::DetRng;
use dip_tables::fib::NextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use std::collections::HashSet;

/// `n` distinct IPv4 routes (lengths 8..=32, ports 1..=64).
pub fn synthesize_v4(n: usize, seed: u64) -> Vec<(Ipv4Addr, u8, NextHop)> {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x5bd1_e995_7b79_f611);
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let len = rng.gen_range_inclusive(8, 32) as u8;
        let addr = rng.next_u32() & (u32::MAX << (32 - u32::from(len)));
        if seen.insert((addr, len)) {
            let port = rng.gen_range_inclusive(1, 64) as u32;
            out.push((Ipv4Addr::from_u32(addr), len, NextHop::port(port)));
        }
    }
    out
}

/// `n` distinct IPv6 routes (lengths 16..=128, ports 1..=64).
pub fn synthesize_v6(n: usize, seed: u64) -> Vec<(Ipv6Addr, u8, NextHop)> {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let len = rng.gen_range_inclusive(16, 128) as u8;
        let raw = u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64());
        let addr = raw & crate::lpm::mask_bits(len);
        if seen.insert((addr, len)) {
            let port = rng.gen_range_inclusive(1, 64) as u32;
            out.push((Ipv6Addr::from_u128(addr), len, NextHop::port(port)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_distinct_and_deterministic() {
        let a = synthesize_v4(5_000, 42);
        let b = synthesize_v4(5_000, 42);
        assert_eq!(a, b);
        let distinct: HashSet<_> = a.iter().map(|&(addr, len, _)| (addr.to_u32(), len)).collect();
        assert_eq!(distinct.len(), 5_000);

        let v6 = synthesize_v6(2_000, 42);
        let distinct6: HashSet<_> = v6.iter().map(|&(a, l, _)| (a.to_u128(), l)).collect();
        assert_eq!(distinct6.len(), 2_000);
    }
}

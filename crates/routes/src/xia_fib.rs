//! Compacted XIA route table.
//!
//! [`dip_tables::XiaRouteTable`] keeps one hash map per principal
//! type; at scale that is one heap allocation and one indirection per
//! type for no information. The compact form flattens every route into
//! a single `(type, XID)`-keyed map plus the set of *declared* types —
//! XIA's evolvability contract distinguishes "I do not understand this
//! principal type" (no table) from "no route" (empty table), and that
//! distinction must survive compaction. Both maps are `Arc`-shared
//! between table versions.

use dip_tables::XiaNextHop;
use dip_wire::xia::{Xid, XidType};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A compiled, immutable, cheaply-clonable XIA route table.
#[derive(Clone, Debug, Default)]
pub struct CompactXia {
    routes: Arc<HashMap<(u32, Xid), XiaNextHop>>,
    declared: Arc<HashSet<u32>>,
}

impl CompactXia {
    /// Compiles from the authoritative route map and declared-type set
    /// (full-rebuild path).
    pub(crate) fn build_from(
        routes: &std::collections::BTreeMap<(u32, Xid), XiaNextHop>,
        declared: &std::collections::BTreeSet<u32>,
    ) -> Self {
        CompactXia {
            routes: Arc::new(routes.iter().map(|(&k, &v)| (k, v)).collect()),
            declared: Arc::new(declared.iter().copied().collect()),
        }
    }

    /// Applies XIA ops copy-on-write. Announcing a route implicitly
    /// declares its type, exactly like `XiaRouteTable::add_route`.
    pub(crate) fn apply_delta(&self, ops: &[(XidType, Xid, Option<XiaNextHop>)]) -> Self {
        let mut routes = (*self.routes).clone();
        let mut declared = (*self.declared).clone();
        for &(ty, xid, action) in ops {
            match action {
                Some(nh) => {
                    declared.insert(ty.to_wire());
                    routes.insert((ty.to_wire(), xid), nh);
                }
                None => {
                    routes.remove(&(ty.to_wire(), xid));
                }
            }
        }
        CompactXia { routes: Arc::new(routes), declared: Arc::new(declared) }
    }

    /// Looks up an XID: `None` both for an undeclared principal type
    /// and for a declared type with no such route.
    pub fn lookup(&self, ty: XidType, xid: &Xid) -> Option<XiaNextHop> {
        if !self.declared.contains(&ty.to_wire()) {
            return None;
        }
        self.routes.get(&(ty.to_wire(), *xid)).copied()
    }

    /// Whether this router understands principal type `ty`.
    pub fn supports_type(&self, ty: XidType) -> bool {
        self.declared.contains(&ty.to_wire())
    }

    /// Total number of routes across all principal types.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes exist.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    fn xid(s: &str) -> Xid {
        Xid::derive(s.as_bytes())
    }

    #[test]
    fn declared_types_gate_lookups() {
        let mut routes = BTreeMap::new();
        routes.insert((XidType::Ad.to_wire(), xid("ad1")), XiaNextHop::Port(4));
        let mut declared = BTreeSet::new();
        declared.insert(XidType::Ad.to_wire());
        declared.insert(XidType::Hid.to_wire());
        let t = CompactXia::build_from(&routes, &declared);
        assert_eq!(t.lookup(XidType::Ad, &xid("ad1")), Some(XiaNextHop::Port(4)));
        assert_eq!(t.lookup(XidType::Hid, &xid("ad1")), None, "declared but routeless");
        assert!(t.supports_type(XidType::Hid));
        assert!(!t.supports_type(XidType::Cid), "undeclared type is not understood");
        assert_eq!(t.lookup(XidType::Cid, &xid("ad1")), None);
    }

    #[test]
    fn delta_announce_withdraw_round_trip() {
        let t = CompactXia::default();
        let up = t.apply_delta(&[(XidType::Cid, xid("c"), Some(XiaNextHop::Local))]);
        assert_eq!(up.lookup(XidType::Cid, &xid("c")), Some(XiaNextHop::Local));
        assert!(up.supports_type(XidType::Cid), "announce implies declare");
        let down = up.apply_delta(&[(XidType::Cid, xid("c"), None)]);
        assert_eq!(down.lookup(XidType::Cid, &xid("c")), None);
        assert!(down.supports_type(XidType::Cid), "withdraw keeps the type declared");
        assert!(down.is_empty());
    }
}

//! `RouteDelta` — a batch of add/withdraw/replace operations against
//! the current route state.
//!
//! A delta is the unit of incremental update: the control plane (or
//! the churn generator) accumulates the changed prefixes of one
//! reconvergence event into a delta and commits it; committing
//! produces a new table version copy-on-write, so the world is never
//! rebuilt for a handful of flapping prefixes. An announce of an
//! already-present prefix is a replace; `None` is a withdraw.

use dip_tables::fib::NextHop;
use dip_tables::XiaNextHop;
use dip_wire::ipv4::Ipv4Addr;
use dip_wire::ipv6::Ipv6Addr;
use dip_wire::ndn::Name;
use dip_wire::xia::{Xid, XidType};

/// A batch of route operations; `Some(next_hop)` announces or
/// replaces, `None` withdraws.
#[derive(Clone, Debug, Default)]
pub struct RouteDelta {
    /// IPv4 prefix operations as `(addr, len, action)`.
    pub v4: Vec<(Ipv4Addr, u8, Option<NextHop>)>,
    /// IPv6 prefix operations as `(addr, len, action)`.
    pub v6: Vec<(Ipv6Addr, u8, Option<NextHop>)>,
    /// NDN name-prefix operations.
    pub names: Vec<(Name, Option<NextHop>)>,
    /// XIA per-principal operations.
    pub xia: Vec<(XidType, Xid, Option<XiaNextHop>)>,
}

impl RouteDelta {
    /// An empty delta.
    pub fn new() -> Self {
        RouteDelta::default()
    }

    /// Announces (or replaces) an IPv4 prefix.
    pub fn announce_v4(&mut self, addr: Ipv4Addr, len: u8, next_hop: NextHop) {
        self.v4.push((addr, len, Some(next_hop)));
    }

    /// Withdraws an IPv4 prefix.
    pub fn withdraw_v4(&mut self, addr: Ipv4Addr, len: u8) {
        self.v4.push((addr, len, None));
    }

    /// Announces (or replaces) an IPv6 prefix.
    pub fn announce_v6(&mut self, addr: Ipv6Addr, len: u8, next_hop: NextHop) {
        self.v6.push((addr, len, Some(next_hop)));
    }

    /// Withdraws an IPv6 prefix.
    pub fn withdraw_v6(&mut self, addr: Ipv6Addr, len: u8) {
        self.v6.push((addr, len, None));
    }

    /// Announces (or replaces) an NDN name prefix.
    pub fn announce_name(&mut self, name: Name, next_hop: NextHop) {
        self.names.push((name, Some(next_hop)));
    }

    /// Withdraws an NDN name prefix.
    pub fn withdraw_name(&mut self, name: Name) {
        self.names.push((name, None));
    }

    /// Announces (or replaces) an XIA route.
    pub fn announce_xia(&mut self, ty: XidType, xid: Xid, next_hop: XiaNextHop) {
        self.xia.push((ty, xid, Some(next_hop)));
    }

    /// Withdraws an XIA route.
    pub fn withdraw_xia(&mut self, ty: XidType, xid: Xid) {
        self.xia.push((ty, xid, None));
    }

    /// Total number of operations across all families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len() + self.names.len() + self.xia.len()
    }

    /// Whether the delta carries no operations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
